//! The video pipeline under the discrete-event simulator: computes the
//! optimal mapping, then reproduces a Figure-6-style ramp-up curve
//! (cumulative throughput vs. number of processed instances).
//!
//! Run with: `cargo run --release --example video_pipeline`

use cellstream::apps::video;
use cellstream::core::{evaluate, solve, Mapping, SolveOptions};
use cellstream::platform::{CellSpec, PeId};
use cellstream::sim::{simulate, SimConfig};

fn main() {
    let g = video::graph().expect("valid graph");
    let spec = CellSpec::ps3();
    println!("video pipeline: {} tasks on {spec}", g.n_tasks());

    let outcome = solve(&g, &spec, &SolveOptions::default()).expect("solver runs");
    let model = evaluate(&g, &spec, &outcome.mapping).unwrap();
    println!("MILP mapping: {}", outcome.mapping);
    println!("model-predicted throughput: {:.0} tiles/s\n", model.throughput);

    let trace = simulate(&g, &spec, &outcome.mapping, &SimConfig::calibrated(), 10_000)
        .expect("feasible mapping simulates");

    println!("{:>10} {:>16} {:>10}", "instances", "throughput (/s)", "% of model");
    for (count, rho) in trace.throughput_curve(16) {
        println!("{count:>10} {rho:>16.0} {:>9.1}%", 100.0 * rho / model.throughput);
    }
    let steady = trace.steady_state_throughput();
    println!(
        "\nsteady state: {:.0} tiles/s = {:.1}% of prediction (paper §6.4.1 reports ~95%)",
        steady,
        100.0 * steady / model.throughput
    );

    // The PPE-only reference for the speed-up.
    let ppe = simulate(&g, &spec, &Mapping::all_on(&g, PeId(0)), &SimConfig::calibrated(), 10_000)
        .expect("PPE-only always simulates");
    println!(
        "measured speed-up over PPE-only: {:.2}x",
        steady / ppe.steady_state_throughput()
    );
}
