//! The video pipeline under the discrete-event simulator: plans the
//! mapping through the `Session` facade, then reproduces a
//! Figure-6-style ramp-up curve (cumulative throughput vs. number of
//! processed instances).
//!
//! Run with: `cargo run --release --example video_pipeline`

use cellstream::apps::video;
use cellstream::prelude::*;

fn main() {
    let g = video::graph().expect("valid graph");
    let spec = CellSpec::ps3();
    println!("video pipeline: {} tasks on {spec}", g.n_tasks());

    let scheduled = Session::new(&g, &spec)
        .plan()
        .expect("portfolio plans")
        .schedule()
        .expect("winner is feasible");
    let plan = scheduled.plan();
    println!("winner `{}`: {}", plan.scheduler, plan.mapping);
    println!("model-predicted throughput: {:.0} tiles/s\n", plan.throughput());

    let trace =
        scheduled.simulate(&SimConfig::calibrated(), 10_000).expect("feasible mapping simulates");

    println!("{:>10} {:>16} {:>10}", "instances", "throughput (/s)", "% of model");
    for (count, rho) in trace.throughput_curve(16) {
        println!("{count:>10} {rho:>16.0} {:>9.1}%", 100.0 * rho / plan.throughput());
    }
    let steady = trace.steady_state_throughput();
    println!(
        "\nsteady state: {:.0} tiles/s = {:.1}% of prediction (paper §6.4.1 reports ~95%)",
        steady,
        100.0 * steady / plan.throughput()
    );

    // The PPE-only reference for the speed-up.
    let ppe = Session::new(&g, &spec)
        .scheduler_named("ppe_only")
        .expect("registered")
        .plan()
        .expect("always feasible")
        .schedule()
        .expect("always feasible")
        .simulate(&SimConfig::calibrated(), 10_000)
        .expect("PPE-only always simulates");
    println!("measured speed-up over PPE-only: {:.2}x", steady / ppe.steady_state_throughput());
}
