//! The audio-encoder application end to end: plan it with every
//! registered scheduler (the paper's heuristics, the extensions, the
//! MILP), compare predicted throughputs, then actually *run* the best
//! mapping on the threaded Cell emulator with the real DSP kernels.
//!
//! Run with: `cargo run --release --example audio_encoder`

use cellstream::apps::audio;
use cellstream::prelude::*;

fn main() {
    let g = audio::graph().expect("valid graph");
    let spec = CellSpec::qs22();
    println!("audio encoder: {} tasks, {} edges on {spec}", g.n_tasks(), g.n_edges());

    // Sweep the registry: every algorithm through the same interface.
    let baseline = scheduler_by_name("ppe_only")
        .unwrap()
        .plan(&g, &spec, &Default::default())
        .expect("PPE-only always plans");
    println!("\n{:<22} {:>12} {:>10} {:>6}", "scheduler", "period (us)", "speed-up", "cuts");
    for scheduler in all_schedulers() {
        match scheduler.plan(&g, &spec, &Default::default()) {
            Ok(plan) => {
                let feas = if plan.is_feasible() { "" } else { "  (infeasible!)" };
                println!(
                    "{:<22} {:>12.3} {:>10.2} {:>6}{feas}",
                    plan.scheduler,
                    plan.period() * 1e6,
                    baseline.period() / plan.period(),
                    plan.mapping.n_cut_edges(&g),
                );
            }
            Err(e) => println!("{:<22} {e}", scheduler.name()),
        }
    }

    // Execute the portfolio winner for real: one thread per PE, real FFTs
    // and filterbanks, 256 kB local-store accounting.
    println!("\nplanning with the standard portfolio and executing the winner ...");
    let scheduled = Session::new(&g, &spec)
        .plan()
        .expect("portfolio plans")
        .schedule()
        .expect("winner is feasible");
    println!("winner: {}", scheduled.plan());
    let stats = scheduled
        .execute(&audio::kernels(), &RtConfig { n_instances: 2000, ..RtConfig::default() })
        .expect("mapping fits the local stores");
    println!(
        "processed {} frames in {:.2?} -> {:.0} frames/s wall-clock",
        stats.processed[0], stats.wall, stats.throughput
    );
    for pe in spec.spes() {
        let used = stats.store_used[pe.index()];
        if used > 0 {
            println!("  {pe}: {:.1} KiB of local store in stream buffers", used as f64 / 1024.0);
        }
    }
}
