//! The audio-encoder application end to end: schedule it with the paper's
//! heuristics and the MILP, compare predicted throughputs, then actually
//! *run* the best mapping on the threaded Cell emulator with the real DSP
//! kernels.
//!
//! Run with: `cargo run --release --example audio_encoder`

use cellstream::apps::audio;
use cellstream::core::{evaluate, solve, Mapping, SolveOptions};
use cellstream::heuristics::{comm_aware_greedy, greedy_cpu, greedy_mem};
use cellstream::platform::{CellSpec, PeId};
use cellstream::rt::{run, RtConfig};

fn main() {
    let g = audio::graph().expect("valid graph");
    let spec = CellSpec::qs22();
    println!("audio encoder: {} tasks, {} edges on {spec}", g.n_tasks(), g.n_edges());

    let ppe_only = Mapping::all_on(&g, PeId(0));
    let baseline = evaluate(&g, &spec, &ppe_only).unwrap();
    println!("\n{:<22} {:>12} {:>10} {:>6}", "strategy", "period (us)", "speed-up", "cuts");
    let report = |name: &str, m: &Mapping| {
        let r = evaluate(&g, &spec, m).unwrap();
        let feas = if r.is_feasible() { "" } else { "  (infeasible!)" };
        println!(
            "{:<22} {:>12.3} {:>10.2} {:>6}{feas}",
            name,
            r.period * 1e6,
            baseline.period / r.period,
            m.n_cut_edges(&g),
        );
    };
    report("PPE only", &ppe_only);
    let gm = greedy_mem(&g, &spec);
    report("GreedyMem (§6.3)", &gm);
    let gc = greedy_cpu(&g, &spec);
    report("GreedyCpu (§6.3)", &gc);
    let ca = comm_aware_greedy(&g, &spec);
    report("comm-aware greedy", &ca);

    let outcome = solve(
        &g,
        &spec,
        &SolveOptions { seeds: vec![gm, gc, ca], ..SolveOptions::default() },
    )
    .expect("solver runs");
    report("MILP (paper §5)", &outcome.mapping);

    // Execute the winner for real: one thread per PE, real FFTs and
    // filterbanks, 256 kB local-store accounting.
    println!("\nexecuting the MILP mapping on the threaded emulator ...");
    let stats = run(
        &g,
        &spec,
        &outcome.mapping,
        &audio::kernels(),
        &RtConfig { n_instances: 2000, ..RtConfig::default() },
    )
    .expect("mapping fits the local stores");
    println!(
        "processed {} frames in {:.2?} -> {:.0} frames/s wall-clock",
        stats.processed[0],
        stats.wall,
        stats.throughput
    );
    for pe in spec.spes() {
        let used = stats.store_used[pe.index()];
        if used > 0 {
            println!("  {pe}: {:.1} KiB of local store in stream buffers", used as f64 / 1024.0);
        }
    }
}
