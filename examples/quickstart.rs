//! Quickstart: describe a streaming application, plan it with the
//! standard scheduler portfolio on a PlayStation 3, and check the
//! prediction in the discrete-event simulator — all through the
//! `Session` facade.
//!
//! Run with: `cargo run --release --example quickstart`

use cellstream::prelude::*;

fn main() {
    // A small video-filter style application: split -> 2 parallel filters
    // -> merge, with a peeking motion stage (Figure 2(b) in miniature).
    let mut b = StreamGraph::builder("quickstart");
    let split = b.add_task(TaskSpec::new("split").ppe_cost(0.4e-6).spe_cost(0.5e-6).reads(4096.0));
    let blur = b.add_task(TaskSpec::new("blur").ppe_cost(1.8e-6).spe_cost(0.6e-6));
    let sharpen = b.add_task(TaskSpec::new("sharpen").ppe_cost(1.6e-6).spe_cost(0.5e-6));
    let motion = b.add_task(TaskSpec::new("motion").ppe_cost(2.0e-6).spe_cost(0.9e-6).peek(1));
    let merge = b.add_task(TaskSpec::new("merge").ppe_cost(0.7e-6).spe_cost(0.9e-6).writes(4096.0));
    b.add_edge(split, blur, 2048.0).unwrap();
    b.add_edge(split, sharpen, 2048.0).unwrap();
    b.add_edge(split, motion, 4096.0).unwrap();
    b.add_edge(blur, merge, 2048.0).unwrap();
    b.add_edge(sharpen, merge, 2048.0).unwrap();
    b.add_edge(motion, merge, 256.0).unwrap();
    let g = b.build().expect("valid DAG");

    let spec = CellSpec::ps3();
    println!("platform: {spec}");
    println!("application: {} tasks, {} edges", g.n_tasks(), g.n_edges());

    // One call plans with the whole portfolio: both §6.3 greedies, the
    // comm-aware greedy, multi-start local search, and the MILP warm-started
    // with their results.
    let planned = Session::new(&g, &spec).plan().expect("portfolio always finds a plan");
    println!("\nleaderboard:");
    for member in planned.leaderboard() {
        match &member.result {
            Ok(p) => println!("  {p}"),
            Err(e) => println!("  {}: failed ({e})", member.scheduler),
        }
    }
    let plan = planned.plan().clone();
    println!(
        "\nwinner `{}`: period {:.2} us -> {:.0} instances/s, mapping {}",
        plan.scheduler,
        plan.period() * 1e6,
        plan.throughput(),
        plan.mapping
    );

    // Validate on the simulated Cell.
    let scheduled = planned.schedule().expect("feasible plan");
    let trace =
        scheduled.simulate(&SimConfig::calibrated(), 5000).expect("feasible mappings simulate");
    let measured = trace.steady_state_throughput();
    println!(
        "simulated:  {:.0} instances/s ({:.1}% of the model prediction)",
        measured,
        100.0 * measured / plan.throughput()
    );
}
