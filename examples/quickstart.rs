//! Quickstart: describe a streaming application, compute the
//! throughput-optimal mapping for a PlayStation 3, and check the
//! prediction in the discrete-event simulator.
//!
//! Run with: `cargo run --release --example quickstart`

use cellstream::core::{evaluate, solve, Mapping, SolveOptions};
use cellstream::graph::{StreamGraph, TaskSpec};
use cellstream::platform::{CellSpec, PeId};
use cellstream::sim::{simulate, SimConfig};

fn main() {
    // A small video-filter style application: split -> 2 parallel filters
    // -> merge, with a peeking motion stage (Figure 2(b) in miniature).
    let mut b = StreamGraph::builder("quickstart");
    let split = b.add_task(TaskSpec::new("split").ppe_cost(0.4e-6).spe_cost(0.5e-6).reads(4096.0));
    let blur = b.add_task(TaskSpec::new("blur").ppe_cost(1.8e-6).spe_cost(0.6e-6));
    let sharpen = b.add_task(TaskSpec::new("sharpen").ppe_cost(1.6e-6).spe_cost(0.5e-6));
    let motion = b.add_task(TaskSpec::new("motion").ppe_cost(2.0e-6).spe_cost(0.9e-6).peek(1));
    let merge = b.add_task(TaskSpec::new("merge").ppe_cost(0.7e-6).spe_cost(0.9e-6).writes(4096.0));
    b.add_edge(split, blur, 2048.0).unwrap();
    b.add_edge(split, sharpen, 2048.0).unwrap();
    b.add_edge(split, motion, 4096.0).unwrap();
    b.add_edge(blur, merge, 2048.0).unwrap();
    b.add_edge(sharpen, merge, 2048.0).unwrap();
    b.add_edge(motion, merge, 256.0).unwrap();
    let g = b.build().expect("valid DAG");

    let spec = CellSpec::ps3();
    println!("platform: {spec}");
    println!("application: {} tasks, {} edges", g.n_tasks(), g.n_edges());

    // Baseline: everything on the PPE.
    let ppe_only = Mapping::all_on(&g, PeId(0));
    let baseline = evaluate(&g, &spec, &ppe_only).expect("valid mapping");
    println!(
        "PPE-only: period {:.2} us -> {:.0} instances/s",
        baseline.period * 1e6,
        baseline.throughput
    );

    // Optimal mapping through the mixed linear program (paper §5).
    let outcome = solve(&g, &spec, &SolveOptions::default()).expect("solver runs");
    println!(
        "MILP mapping ({} B&B nodes, gap {:.1}%): {}",
        outcome.nodes,
        outcome.gap * 100.0,
        outcome.mapping
    );
    println!(
        "predicted: period {:.2} us -> {:.0} instances/s ({:.2}x speed-up)",
        outcome.period * 1e6,
        outcome.throughput,
        baseline.period / outcome.period
    );

    // Validate on the simulated Cell.
    let trace = simulate(&g, &spec, &outcome.mapping, &SimConfig::calibrated(), 5000)
        .expect("feasible mappings simulate");
    let measured = trace.steady_state_throughput();
    println!(
        "simulated:  {:.0} instances/s ({:.1}% of the model prediction)",
        measured,
        100.0 * measured / outcome.throughput
    );
}
