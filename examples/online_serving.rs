//! Online serving: applications arrive, change rate and depart while the
//! Cell keeps streaming — each event replanned incrementally from the
//! incumbent mapping, with the migration bill printed per event.
//!
//! Run with `cargo run --release --example online_serving`.

use cellstream::prelude::*;
use cellstream::serve::ServiceOptions;
use std::time::Duration;

fn main() {
    let spec = CellSpec::qs22();
    let opts = ServiceOptions {
        // refuse any application that would push a resident pipeline's
        // per-instance period beyond 1 ms, and queue it for later
        max_period: Some(1e-3),
        queue_rejected: true,
        // keep a full portfolio re-solve running in the background and
        // adopt it only when it pays for its own migration traffic
        background: Some(Duration::from_millis(300)),
        ..Default::default()
    };
    let mut svc = Service::with_options(spec, opts);

    let audio = cellstream::apps::audio::graph().expect("audio builds");
    let video = cellstream::apps::video::graph().expect("video builds");
    let cipher = cellstream::apps::cipher::graph().expect("cipher builds");
    let dsp = cellstream::apps::dsp::graph().expect("dsp builds");

    println!(
        "{:<28} {:>10} {:>12} {:>12} {:>8}",
        "event", "verdict", "period(us)", "migr(KiB)", "ms"
    );
    let describe = |report: &ServeReport| {
        println!(
            "{:<28} {:>10} {:>12.3} {:>12.2} {:>8.2}",
            report.event.to_string(),
            match &report.verdict {
                Verdict::Admitted(id) => format!("{id}"),
                other => format!("{other:?}").chars().take(10).collect(),
            },
            report.period * 1e6,
            report.migration_bytes() / 1024.0,
            report.replan.as_secs_f64() * 1e3,
        );
        for d in &report.drained {
            println!("  └ drained: {} -> {:?}", d.event, d.verdict);
        }
    };

    let a = svc.admit(&audio, 1.0);
    describe(&a);
    let a = a.admitted().expect("audio fits");
    describe(&svc.admit(&video, 1.0));
    describe(&svc.admit(&cipher, 2.0));

    // audio doubles its rate: costs and buffers rescale, the incumbent
    // is repaired, survivors keep their seats where possible
    describe(&svc.reweight(a, 2.0).expect("live handle"));

    // a second video stream joins under a fresh name
    describe(&svc.admit(&video.renamed("video-2"), 1.0));
    describe(&svc.admit(&dsp, 1.0));

    // audio leaves; queued work (if any) is retried automatically
    describe(&svc.retire(a).expect("live handle"));

    // harvest the background improver's verdict, if it finished
    if let Some(adoption) = svc.poll_background() {
        println!(
            "background: {:?} (Δ {} tasks, {:.1} KiB over the EIB)",
            adoption.verdict,
            adoption.delta.n_moved(),
            adoption.delta.migration_bytes / 1024.0
        );
    }

    println!(
        "\nserving {} applications at round period {:.3} us:",
        svc.n_apps(),
        svc.period() * 1e6
    );
    for app in svc.app_reports() {
        println!(
            "  {:<10} weight {:>3}  guarantee {:>9.0}/s  fair share {:>9.0}/s",
            app.app, app.weight, app.throughput, app.fair_throughput
        );
    }
}
