//! A miniature of the paper's §6 evaluation: sweep the
//! communication-to-computation ratio of a random DagGen graph and print
//! the speed-up of each mapping strategy (Figure 8 in table form, on a
//! smaller graph so it runs in seconds).
//!
//! Run with: `cargo run --release --example random_graph_sweep`

use cellstream::core::{evaluate, solve, Mapping, SolveOptions};
use cellstream::daggen::{generate, CostParams, DagGenParams};
use cellstream::graph::ccr::{paper_ccr_sweep, rescale_to_ccr, DEFAULT_BW};
use cellstream::heuristics::{greedy_cpu, greedy_mem};
use cellstream::platform::{CellSpec, PeId};

fn main() {
    let base = generate(
        "sweep",
        &DagGenParams { n: 24, fat: 0.5, regular: 0.5, density: 0.2, jump: 2, costs: CostParams::default() },
        0xC0FFEE,
    )
    .expect("valid parameters");
    let spec = CellSpec::qs22();
    println!("random graph: {} tasks, {} edges on {spec}\n", base.n_tasks(), base.n_edges());
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "CCR", "GreedyMem", "GreedyCpu", "MILP"
    );

    for target in paper_ccr_sweep() {
        let g = rescale_to_ccr(&base, target, DEFAULT_BW);
        let baseline = evaluate(&g, &spec, &Mapping::all_on(&g, PeId(0))).unwrap();
        let su = |m: &Mapping| {
            let r = evaluate(&g, &spec, m).unwrap();
            if r.is_feasible() { baseline.period / r.period } else { f64::NAN }
        };
        let gm = greedy_mem(&g, &spec);
        let gc = greedy_cpu(&g, &spec);
        let milp = solve(
            &g,
            &spec,
            &SolveOptions { seeds: vec![gm.clone(), gc.clone()], ..SolveOptions::default() },
        )
        .expect("solver runs");
        println!(
            "{target:>6.2} {:>12.2} {:>12.2} {:>12.2}",
            su(&gm),
            su(&gc),
            baseline.period / milp.period
        );
    }
    println!("\nhigher CCR -> communication dominates -> speed-ups collapse toward 1 (Figure 8).");
}
