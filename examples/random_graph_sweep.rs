//! A miniature of the paper's §6 evaluation: sweep the
//! communication-to-computation ratio of a random DagGen graph and print
//! the speed-up of each mapping strategy (Figure 8 in table form, on a
//! smaller graph so it runs in seconds). Strategies come from the
//! scheduler registry, so adding one name to the `STRATEGIES` list adds
//! a column.
//!
//! Run with: `cargo run --release --example random_graph_sweep`

use cellstream::daggen::{generate, CostParams, DagGenParams};
use cellstream::graph::ccr::{paper_ccr_sweep, rescale_to_ccr, DEFAULT_BW};
use cellstream::prelude::*;

const STRATEGIES: [&str; 3] = ["greedy_mem", "greedy_cpu", "milp"];

fn main() {
    let base = generate(
        "sweep",
        &DagGenParams {
            n: 24,
            fat: 0.5,
            regular: 0.5,
            density: 0.2,
            jump: 2,
            costs: CostParams::default(),
        },
        0xC0FFEE,
    )
    .expect("valid parameters");
    let spec = CellSpec::qs22();
    println!("random graph: {} tasks, {} edges on {spec}\n", base.n_tasks(), base.n_edges());
    print!("{:>6}", "CCR");
    for name in STRATEGIES {
        print!(" {name:>12}");
    }
    println!();

    for target in paper_ccr_sweep() {
        let g = rescale_to_ccr(&base, target, DEFAULT_BW);
        let baseline = evaluate(&g, &spec, &Mapping::all_on(&g, PeId(0))).unwrap();
        print!("{target:>6.2}");
        // feed the greedy mappings forward as MILP warm starts, exactly
        // like the old hand-wired pipeline did
        let mut ctx = PlanContext::default();
        for name in STRATEGIES {
            let scheduler = scheduler_by_name(name).expect("registered");
            match scheduler.plan(&g, &spec, &ctx) {
                Ok(plan) => {
                    let su =
                        if plan.is_feasible() { baseline.period / plan.period() } else { f64::NAN };
                    print!(" {su:>12.2}");
                    if plan.is_feasible() {
                        ctx.seeds.push(plan.mapping);
                    }
                }
                Err(_) => print!(" {:>12}", "-"),
            }
        }
        println!();
    }
    println!("\nhigher CCR -> communication dominates -> speed-ups collapse toward 1 (Figure 8).");
}
