//! The encryption pipeline on the threaded emulator: four parallel
//! ChaCha20 lanes spread across SPEs, planned with the heuristic-only
//! portfolio (no MILP needed for a farm this regular), with end-to-end
//! data integrity checked against an offline reference.
//!
//! Run with: `cargo run --release --example cipher_farm`

use cellstream::apps::cipher;
use cellstream::prelude::*;

fn main() {
    let g = cipher::graph().expect("valid graph");
    let spec = CellSpec::with_spes(6); // PS3-class machine
    let key = [0x42u8; 32];
    let nonce = [7u8; 12];

    // Plan with the fast heuristic portfolio (greedies + local search).
    let planned = Session::new(&g, &spec)
        .portfolio(Portfolio::heuristics_only())
        .plan()
        .expect("heuristics always plan");
    let plan = planned.plan().clone();
    let baseline = evaluate(&g, &spec, &Mapping::all_on(&g, PeId(0))).unwrap();
    println!("cipher pipeline: {} tasks on {spec}", g.n_tasks());
    println!("winner `{}`: {}", plan.scheduler, plan.mapping);
    println!(
        "model: period {:.2} us ({:.2}x over PPE-only)",
        plan.period() * 1e6,
        baseline.period / plan.period()
    );

    let n = 5000;
    let stats = planned
        .schedule()
        .expect("feasible plan")
        .execute(&cipher::kernels(key, nonce), &RtConfig { n_instances: n, ..RtConfig::default() })
        .expect("mapping fits");
    println!(
        "encrypted {} blocks ({:.1} MiB) in {:.2?} -> {:.1} MiB/s wall-clock",
        n,
        n as f64 * cipher::BLOCK_BYTES as f64 / (1024.0 * 1024.0),
        stats.wall,
        n as f64 * cipher::BLOCK_BYTES as f64 / (1024.0 * 1024.0) / stats.wall.as_secs_f64()
    );

    // Offline spot-check: lane 0 of instance 0 must equal a direct
    // ChaCha20 of the same plaintext.
    let lane_len = cipher::BLOCK_BYTES / cipher::LANES;
    let mut reference: Vec<u8> =
        (0..lane_len).map(|i| 0u8.wrapping_mul(31).wrapping_add(i as u8)).collect();
    cipher::chacha20_xor(&key, &nonce, 0, &mut reference);
    println!("reference lane-0 ciphertext head: {:02x?}", &reference[..8]);
    println!("(end-to-end integrity is asserted by the crate's tests)");
}
