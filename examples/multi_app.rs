//! Co-schedule two real applications on one Cell.
//!
//! Composes the audio encoder and the cipher farm into a single
//! [`Workload`], plans it through the `Session` facade (every scheduler
//! co-schedules the composed graph unchanged), compares against the
//! best disjoint-SPE-partition baseline, and attributes the simulated
//! throughput back to each application.
//!
//! ```text
//! cargo run --release --example multi_app
//! ```

use cellstream::apps::{audio, cipher};
use cellstream::prelude::*;
use cellstream::sim::SimConfig;

fn main() {
    let audio_g = audio::graph().expect("audio graph builds");
    let cipher_g = cipher::graph().expect("cipher graph builds");

    // give the cipher stream twice the audio stream's throughput target
    let mut builder = Workload::builder("audio+cipher");
    builder.push(&audio_g, 1.0).expect("audio joins the workload");
    builder.push(&cipher_g, 2.0).expect("cipher joins the workload");
    let w = builder.build().expect("workload composes");
    let spec = CellSpec::qs22();
    println!("{w} on {spec}");

    // the disjoint-partition baseline: each app alone on its own SPEs
    let (baseline, alloc, base_report) =
        best_partition(&w, &spec, &PlanContext::default()).expect("a partition exists");
    println!(
        "best partition {alloc:?}: max weighted per-app period {:.3} us",
        base_report.max_weighted_period() * 1e6
    );

    // co-scheduling: plan the composed workload, seeded with the baseline
    let planned = Session::for_workload(&w, &spec)
        .portfolio(Portfolio::heuristics_only())
        .seed(baseline)
        .plan()
        .expect("the heuristic portfolio always plans");
    let plan = planned.plan();
    println!(
        "co-scheduled by `{}`: max weighted per-app period {:.3} us ({:+.1}% vs partition)",
        plan.scheduler,
        plan.period() * 1e6,
        (plan.period() / base_report.max_weighted_period() - 1.0) * 100.0
    );
    for app in planned.per_app() {
        println!("  {app}");
    }

    // simulate and attribute per-application throughput from the trace
    let scheduled = planned.schedule().expect("feasible plans schedule");
    let (_, per_app) =
        scheduled.simulate_per_app(&SimConfig::ideal(), 2000).expect("simulation runs");
    for (report, measured) in scheduled.per_app().iter().zip(&per_app) {
        println!(
            "  {}: simulated {measured:.0}/s (predicted {:.0}/s, guaranteed {:.0}/s, \
             isolated bound {:.0}/s)",
            report.app,
            report.fair_throughput,
            report.throughput,
            1.0 / report.isolated_period
        );
    }
}
