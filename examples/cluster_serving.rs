//! Fleet serving: one coordinator sharding the serving loop across a
//! small cluster of Cell nodes — applications placed by the scoring
//! placer, a node drained for maintenance with every cross-node move
//! priced by the network model, then the fleet rebalanced.
//!
//! Run with `cargo run --release --example cluster_serving`.

use cellstream::cluster::ClusterVerdict;
use cellstream::daggen::{chain, CostParams};
use cellstream::prelude::*;

fn main() {
    // four QS22 blades behind one coordinator, wired by the in-process
    // transport; the scoring placer and a 10 GbE-class network model
    // are the defaults
    let mut fleet = Cluster::homogeneous(4, &CellSpec::qs22(), ClusterOptions::default());

    println!("{:<22} {:>12} {:>12} {:>10}", "event", "verdict", "period(us)", "ms");
    let describe = |report: &ClusterReport| {
        println!(
            "{:<22} {:>12} {:>12.3} {:>10.2}",
            report.event,
            match &report.verdict {
                ClusterVerdict::Admitted(node) => format!("{node}"),
                ClusterVerdict::Drained { moved, stranded } =>
                    format!("moved {moved}/{}", moved + stranded),
                ClusterVerdict::Rebalanced { moved } => format!("moved {moved}"),
                other => format!("{other:?}").chars().take(12).collect(),
            },
            report.max_period * 1e6,
            report.latency.as_secs_f64() * 1e3,
        );
        for m in &report.migrations {
            println!(
                "  └ {} {} -> {}: {:.1} KiB over the network in {:.3} ms",
                m.app,
                m.from,
                m.to,
                m.bytes / 1024.0,
                m.seconds * 1e3
            );
        }
    };

    // a dozen pipelines of mixed size and rate spread across the fleet
    for i in 0..12 {
        let g = chain(&format!("app{i:02}"), 2 + i % 4, &CostParams::default(), 7 + i as u64);
        describe(&fleet.admit(&g, 1.0 + (i % 3) as f64));
    }
    describe(&fleet.reweight("app03", 4.0).expect("app03 is placed"));
    describe(&fleet.retire("app07").expect("app07 is placed"));

    // take node 0 out for maintenance: every resident application is
    // admitted elsewhere *before* being retired here (make-before-break),
    // and each move pays the network, not the EIB
    describe(&fleet.drain(NodeId(0)).expect("node 0 exists"));

    // bring it back and let the coordinator even the fleet out again —
    // a move happens only when the predicted period gain amortises the
    // network transfer over the migration horizon
    fleet.undrain(NodeId(0)).expect("node 0 exists");
    describe(&fleet.process(ClusterEvent::Rebalance).expect("rebalance never errors"));

    let status = fleet.status();
    println!("\nfleet of {} nodes, {} applications:", status.nodes.len(), status.n_apps);
    for n in &status.nodes {
        println!("  {n}");
    }
}
