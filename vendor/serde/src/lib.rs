//! Vendored, dependency-free stand-in for the slice of `serde` this
//! workspace uses.
//!
//! The real serde models serialisation through visitor-based data
//! formats; reproducing that offline (including the derive proc-macro)
//! is out of scope, so this stub collapses the data model to a JSON
//! [`Value`] tree. Types implement [`Serialize`]/[`Deserialize`] by
//! converting to/from `Value`, usually via the [`impl_json_struct!`] and
//! [`impl_json_newtype!`] helper macros, and `serde_json` (the sibling
//! stub) renders `Value` to text and back.

#![forbid(unsafe_code)]

use std::fmt;

/// A JSON value tree: the stub's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Obj(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            other => Err(Error::new(format!("expected object with field `{name}`, got {other:?}"))),
        }
    }

    /// The value as `f64`.
    pub fn as_f64(&self) -> Result<f64, Error> {
        match self {
            Value::Num(x) => Ok(*x),
            other => Err(Error::new(format!("expected number, got {other:?}"))),
        }
    }

    /// The value as a non-negative integer.
    pub fn as_u64(&self) -> Result<u64, Error> {
        let x = self.as_f64()?;
        if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 {
            Ok(x as u64)
        } else {
            Err(Error::new(format!("expected unsigned integer, got {x}")))
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Result<bool, Error> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, got {other:?}"))),
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::new(format!("expected string, got {other:?}"))),
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Result<&[Value], Error> {
        match self {
            Value::Arr(items) => Ok(items),
            other => Err(Error::new(format!("expected array, got {other:?}"))),
        }
    }
}

/// Serialisation/deserialisation error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a JSON [`Value`].
pub trait Serialize {
    /// Convert to a JSON value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Parse from a JSON value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = v.as_f64()?;
                if x.fract() != 0.0 {
                    return Err(Error::new(format!("expected integer, got {x}")));
                }
                if x < <$t>::MIN as f64 || x > <$t>::MAX as f64 {
                    return Err(Error::new(format!("integer {x} out of range")));
                }
                Ok(x as $t)
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_owned)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_arr()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

/// Implement [`Serialize`]/[`Deserialize`] for a tuple struct with one
/// public-in-crate field (renders transparently as the inner value,
/// like `#[serde(transparent)]`).
#[macro_export]
macro_rules! impl_json_newtype {
    ($t:ident) => {
        impl $crate::Serialize for $t {
            fn to_value(&self) -> $crate::Value {
                $crate::Serialize::to_value(&self.0)
            }
        }
        impl $crate::Deserialize for $t {
            fn from_value(v: &$crate::Value) -> Result<Self, $crate::Error> {
                Ok($t($crate::Deserialize::from_value(v)?))
            }
        }
    };
}

/// Implement [`Serialize`]/[`Deserialize`] for a struct with named
/// fields (renders as a JSON object, one key per field).
#[macro_export]
macro_rules! impl_json_struct {
    ($t:ident { $($f:ident),* $(,)? }) => {
        impl $crate::Serialize for $t {
            fn to_value(&self) -> $crate::Value {
                $crate::Value::Obj(vec![
                    $((stringify!($f).to_owned(), $crate::Serialize::to_value(&self.$f)),)*
                ])
            }
        }
        impl $crate::Deserialize for $t {
            fn from_value(v: &$crate::Value) -> Result<Self, $crate::Error> {
                Ok($t {
                    $($f: $crate::Deserialize::from_value(v.field(stringify!($f))?)?,)*
                })
            }
        }
    };
}

/// Implement [`Serialize`]/[`Deserialize`] for a fieldless enum
/// (renders as the variant name string).
#[macro_export]
macro_rules! impl_json_unit_enum {
    ($t:ident { $($variant:ident),* $(,)? }) => {
        impl $crate::Serialize for $t {
            fn to_value(&self) -> $crate::Value {
                match self {
                    $($t::$variant => $crate::Value::Str(stringify!($variant).to_owned()),)*
                }
            }
        }
        impl $crate::Deserialize for $t {
            fn from_value(v: &$crate::Value) -> Result<Self, $crate::Error> {
                match v.as_str()? {
                    $(stringify!($variant) => Ok($t::$variant),)*
                    other => Err($crate::Error::new(format!(
                        concat!("unknown ", stringify!($t), " variant `{}`"), other))),
                }
            }
        }
    };
}
