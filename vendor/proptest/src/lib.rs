//! Vendored, dependency-free stand-in for the slice of `proptest` this
//! workspace uses.
//!
//! Differences from the real crate, by design:
//!
//! * cases are **deterministic**: the RNG for case `i` of test `t` is
//!   seeded from `hash(t) ^ i`, so failures reproduce without a
//!   persistence file;
//! * there is **no shrinking** — a failing case panics with the sampled
//!   inputs left to the assertion message;
//! * `prop_assert!`/`prop_assert_eq!` are plain assertions and
//!   `prop_assume!` skips the case.
//!
//! The [`Strategy`] surface covers what the workspace's tests use:
//! integer/float ranges, `any::<T>()`, `Just`, tuples, `prop_map`,
//! `prop_flat_map`, and `collection::vec`.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SampleRange, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (`cases` = iterations per property).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` iterations.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// The RNG handed to strategies (wraps the vendored `StdRng`).
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Deterministic RNG for case `case` of the named test.
    pub fn deterministic(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// A source of random values of an associated type.
pub trait Strategy {
    /// The type of sampled values.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform sampled values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derive a second strategy from each sampled value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Strategy producing one constant value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+),)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
}

/// Types with a canonical "anything" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Sample an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<u64>() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

/// Strategy over the full domain of `T` (see [`any`]).
#[derive(Debug, Clone)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "any value of `T`" strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// Collection strategies.
pub mod collection {
    use super::{SampleRange, Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        len: R,
    }

    /// `vec(element, len_range)`: a vector of sampled elements.
    pub fn vec<S: Strategy, R: SampleRange<usize> + Clone>(
        element: S,
        len: R,
    ) -> VecStrategy<S, R> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, R: SampleRange<usize> + Clone> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Assert inside a property (plain `assert!` in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property (plain `assert_eq!` in this stub).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::TestRng::deterministic(stringify!($name), __case);
                    $( let $pat = $crate::Strategy::sample(&($strat), &mut __rng); )*
                    $body
                }
            }
        )*
    };
}

/// The usual imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Any, Arbitrary, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(n in 3usize..10, x in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn assume_skips(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn combinators_compose(v in (2usize..6).prop_flat_map(|n| {
            (Just(n), collection::vec(0usize..10, 0..8))
        }).prop_map(|(n, xs)| (n, xs.len()))) {
            prop_assert!(v.0 >= 2 && v.0 < 6);
            prop_assert!(v.1 < 8);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::deterministic("t", 3);
        let mut b = TestRng::deterministic("t", 3);
        let s = 0u64..1000;
        assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
    }
}
