//! Vendored, dependency-free stand-in for the slice of `criterion` this
//! workspace uses: `Criterion::bench_function`, `Bencher::iter` /
//! `iter_batched`, `BatchSize`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple — warm up briefly, run a fixed
//! wall-clock window, report mean time per iteration — enough to compare
//! runs on one machine, with none of the real crate's statistics.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub use std::hint::black_box;

/// How batched inputs are sized (accepted for API compatibility; the
/// stub runs one input per measured call either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Handed to the benchmark closure; runs and times the routine.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // short warm-up
        let warm_until = Instant::now() + self.budget / 10;
        while Instant::now() < warm_until {
            black_box(routine());
        }
        let started = Instant::now();
        while started.elapsed() < self.budget {
            black_box(routine());
            self.iters_done += 1;
        }
        self.elapsed = started.elapsed();
    }

    /// Time `routine` on fresh inputs from `setup` (setup time excluded).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let warm_until = Instant::now() + self.budget / 10;
        while Instant::now() < warm_until {
            black_box(routine(setup()));
        }
        let mut measured = Duration::ZERO;
        while measured < self.budget {
            let input = setup();
            let started = Instant::now();
            black_box(routine(input));
            measured += started.elapsed();
            self.iters_done += 1;
        }
        self.elapsed = measured;
    }
}

/// The benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // CELLSTREAM_QUICK=1 shrinks the per-benchmark budget, matching
        // the convention of the bench binaries.
        let quick = std::env::var("CELLSTREAM_QUICK").map(|v| v == "1").unwrap_or(false);
        Criterion {
            budget: if quick { Duration::from_millis(50) } else { Duration::from_millis(400) },
        }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { iters_done: 0, elapsed: Duration::ZERO, budget: self.budget };
        f(&mut b);
        if b.iters_done == 0 {
            println!("{name:<40} (no iterations)");
        } else {
            let per_iter = b.elapsed.as_secs_f64() / b.iters_done as f64;
            println!("{name:<40} {:>12.3} us/iter ({} iters)", per_iter * 1e6, b.iters_done);
        }
        self
    }

    /// Start a named group; benchmarks in it report as `group/label`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_owned() }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, label: &str, f: F) -> &mut Self {
        let full = format!("{}/{label}", self.name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// End the group (no-op in the stub; kept for API compatibility).
    pub fn finish(self) {}
}

/// Collect benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion { budget: Duration::from_millis(5) }
    }

    #[test]
    fn iter_runs_and_counts() {
        let mut c = quick();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn iter_batched_runs() {
        let mut c = quick();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
