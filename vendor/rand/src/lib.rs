//! Vendored, dependency-free stand-in for the parts of the `rand` crate
//! this workspace uses: `StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng` extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64. Streams are
//! deterministic in the seed but are **not** bit-compatible with the real
//! `rand::rngs::StdRng`; everything in this workspace that depends on
//! randomness only requires determinism, never a specific stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (the subset of `rand::SeedableRng` we need).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw a value from the generator.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from uniformly (the subset of
/// `rand::distributions::uniform::SampleRange` we need).
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range. Panics on empty ranges.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::draw(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * f64::draw(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f32::draw(rng)
    }
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draw a value of type `T` uniformly (e.g. `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draw uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1], got {p}");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s
    /// `StdRng`; same trait surface, different stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(-2.0..3.5f64);
            assert!((-2.0..3.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
