//! Vendored, dependency-free stand-in for the slice of `serde_json` this
//! workspace uses: [`to_string`] and [`from_str`] over the JSON `Value`
//! data model of the sibling `serde` stub.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON encoding or parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Render any [`Serialize`] value as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Parse JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(x) => {
            if !x.is_finite() {
                return Err(Error::new(format!("cannot encode non-finite number {x}")));
            }
            // `{:?}` is Rust's shortest round-trip float formatting; strip
            // the `.0` suffix so integers read naturally.
            let s = format!("{x:?}");
            out.push_str(s.strip_suffix(".0").unwrap_or(&s));
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, self.bytes[self.pos] as char
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at pos-1.
                    let rest = &self.bytes[self.pos - 1..];
                    let s = std::str::from_utf8(rest)
                        .or_else(|e| {
                            if e.valid_up_to() > 0 {
                                std::str::from_utf8(&rest[..e.valid_up_to()])
                            } else {
                                Err(e)
                            }
                        })
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8() - 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&2.5e-6f64).unwrap(), "2.5e-6");
        assert_eq!(from_str::<f64>("2.5e-6").unwrap(), 2.5e-6);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\\c\n".to_owned()).unwrap(), r#""a\"b\\c\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\\c\n""#).unwrap(), "a\"b\\c\n");
    }

    #[test]
    fn round_trip_vec() {
        let v = vec![1.5f64, -2.0, 0.0];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&s).unwrap(), v);
    }

    #[test]
    fn parse_whitespace_and_nesting() {
        let v: Vec<Vec<u32>> = from_str(" [ [1, 2] , [ ] , [3] ] ").unwrap();
        assert_eq!(v, vec![vec![1, 2], vec![], vec![3]]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("1.0.0").is_err());
        assert!(from_str::<f64>("[1").is_err());
        assert!(from_str::<f64>("1 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn unicode_round_trip() {
        let s = "héllo ☂ \u{1F600}".to_owned();
        let enc = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&enc).unwrap(), s);
    }
}
