//! Vendored, dependency-free stand-in for the slice of `parking_lot`
//! this workspace uses: a `Mutex` whose `lock()` returns the guard
//! directly (no poisoning in the API) and a `Condvar` whose `wait_for`
//! takes the guard by `&mut`.
//!
//! Built on `std::sync`; poisoning is swallowed (`into_inner`), matching
//! parking_lot's poison-free semantics.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};
use std::time::Duration;

/// A mutual-exclusion primitive (parking_lot-style API over `std`).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// RAII guard of a locked [`Mutex`].
pub struct MutexGuard<'a, T> {
    // `Option` so `Condvar::wait_for` can temporarily take the std guard
    // out (std's wait API consumes and returns it).
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard { guard: Some(guard) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { guard: Some(guard) }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard { guard: Some(p.into_inner()) }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<'a, T> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait")
    }
}

impl<'a, T> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait")
    }
}

/// Result of a timed wait: whether it timed out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` if the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable (parking_lot-style `&mut`-guard API over `std`).
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Block until notified or `timeout` elapses. The guard is unlocked
    /// while waiting and re-locked before returning.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.guard.take().expect("guard present outside wait");
        let (inner, res) =
            self.inner.wait_timeout(inner, timeout).unwrap_or_else(sync::PoisonError::into_inner);
        guard.guard = Some(inner);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present outside wait");
        let inner = self.inner.wait(inner).unwrap_or_else(sync::PoisonError::into_inner);
        guard.guard = Some(inner);
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let started = Instant::now();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
        assert!(started.elapsed() >= Duration::from_millis(5));
        drop(g);
    }

    #[test]
    fn notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut started = m.lock();
            *started = true;
            cv.notify_all();
            drop(started);
        });
        let (m, cv) = &*pair;
        let mut started = m.lock();
        while !*started {
            let _ = cv.wait_for(&mut started, Duration::from_millis(50));
        }
        drop(started);
        t.join().unwrap();
    }
}
