//! **cellstream** — steady-state scheduling of complex streaming
//! applications on the Cell processor.
//!
//! A Rust reproduction of Gallet, Jacquelin & Marchal, *Scheduling complex
//! streaming applications on the Cell processor* (RR-LIP-2009-29 / IPDPS
//! 2010). This facade crate re-exports the whole workspace; see the README
//! for the architecture tour and DESIGN.md for the paper-to-code map.
//!
//! The 30-second version:
//!
//! ```
//! use cellstream::core::{solve, SolveOptions};
//! use cellstream::graph::{StreamGraph, TaskSpec};
//! use cellstream::platform::CellSpec;
//!
//! // two-stage pipeline from the paper's Figure 2(a)
//! let mut b = StreamGraph::builder("fig2a");
//! let t1 = b.add_task(TaskSpec::new("T1").ppe_cost(2e-6).spe_cost(0.7e-6));
//! let t2 = b.add_task(TaskSpec::new("T2").ppe_cost(1e-6).spe_cost(0.4e-6));
//! b.add_edge(t1, t2, 4096.0).unwrap();
//! let app = b.build().unwrap();
//!
//! let outcome = solve(&app, &CellSpec::ps3(), &SolveOptions::default()).unwrap();
//! assert!(outcome.throughput > 0.0);
//! ```
//!
//! Crate map:
//!
//! * [`platform`] — the Cell machine model (§2.1)
//! * [`graph`] — streaming task graphs with peek semantics (§2.2)
//! * [`daggen`] — random graph generation + the paper's evaluation graphs
//! * [`milp`] — the LP/MILP solver (CPLEX substitute)
//! * [`core`] — steady-state scheduling: `firstPeriod`, buffers,
//!   evaluation, Linear Program (1), the optimal-mapping driver (§3–§5)
//! * [`heuristics`] — GreedyMem/GreedyCpu (§6.3) + extensions
//! * [`sim`] — the discrete-event Cell simulator (the "hardware") plus
//!   the online arrival-trace driver (`sim::online`)
//! * [`rt`] — the threaded runtime emulator (the §6.1 framework)
//! * [`serve`] — the online serving loop: dynamic application
//!   arrival/departure with migration-aware incremental replanning
//! * [`cluster`] — two-level fleet scheduling: a coordinator sharding
//!   the serving loop across many Cell nodes, with network-priced
//!   cross-node migration
//! * [`apps`] — audio encoder, video pipeline, cipher farm, DSP chain
//! * [`telemetry`] — observability: lock-free metrics, the replan
//!   flight recorder, and Prometheus/JSON exposition snapshots

#![forbid(unsafe_code)]

pub use cellstream_apps as apps;
pub use cellstream_cluster as cluster;
pub use cellstream_core as core;
pub use cellstream_daggen as daggen;
pub use cellstream_graph as graph;
pub use cellstream_heuristics as heuristics;
pub use cellstream_milp as milp;
pub use cellstream_platform as platform;
pub use cellstream_rt as rt;
pub use cellstream_serve as serve;
pub use cellstream_sim as sim;
pub use cellstream_telemetry as telemetry;

pub mod session;

pub use session::{PlannedSession, ScheduledSession, Session};

/// The most common imports in one place.
///
/// ```
/// use cellstream::prelude::*;
/// let spec = CellSpec::qs22();
/// assert_eq!(spec.n_spe(), 8);
/// ```
pub mod prelude {
    pub use crate::session::{PlannedSession, ScheduledSession, Session};
    pub use cellstream_cluster::{
        Cluster, ClusterEvent, ClusterOptions, ClusterReport, ClusterVerdict, NetworkModel, NodeId,
        PlacePolicy,
    };
    pub use cellstream_core::scheduler::CancelToken;
    pub use cellstream_core::{
        evaluate, evaluate_workload, solve, AppReport, Mapping, MappingDelta, MappingReport, Plan,
        PlanContext, PlanError, PlanStats, Scheduler, SolveOptions, SolveOutcome, WorkloadReport,
    };
    pub use cellstream_graph::{AppId, StreamGraph, TaskId, TaskSpec, Workload};
    pub use cellstream_heuristics::{
        all_schedulers, best_partition, multi_start, partition_mapping, scheduler_by_name,
        scheduler_names, Portfolio, PortfolioOutcome, SCHEDULER_NAMES,
    };
    pub use cellstream_platform::{CellSpec, PeId, PeKind};
    pub use cellstream_rt::{RtConfig, RunStats};
    pub use cellstream_serve::{Event, ServeReport, Service, ServiceOptions, Verdict};
    pub use cellstream_sim::{simulate, EventTrace, RunTrace, SimConfig, TraceEvent};
    pub use cellstream_telemetry::{FlightEvent, FlightRecorder, Snapshot};
}
