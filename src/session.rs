//! The `Session` pipeline facade: graph + platform in, mapping →
//! periodic schedule → simulation / execution out, in one builder chain.
//!
//! Every consumer of this workspace used to hand-wire the same pipeline:
//! pick an algorithm, evaluate the mapping, build the
//! [`PeriodicSchedule`], then call `sim::simulate` or `rt::run`.
//! [`Session`] packages that flow:
//!
//! ```
//! use cellstream::prelude::*;
//!
//! let mut b = StreamGraph::builder("fig2a");
//! let t1 = b.add_task(TaskSpec::new("T1").ppe_cost(2e-6).spe_cost(0.7e-6));
//! let t2 = b.add_task(TaskSpec::new("T2").ppe_cost(1e-6).spe_cost(0.4e-6));
//! b.add_edge(t1, t2, 4096.0).unwrap();
//! let g = b.build().unwrap();
//! let spec = CellSpec::ps3();
//!
//! let planned = Session::new(&g, &spec)
//!     .scheduler_named("multi_start")
//!     .unwrap()
//!     .plan()
//!     .unwrap();
//! let scheduled = planned.schedule().unwrap();
//! let trace = scheduled.simulate(&SimConfig::ideal(), 500).unwrap();
//! assert!(trace.steady_state_throughput() > 0.0);
//! ```

use cellstream_core::schedule::PeriodicSchedule;
use cellstream_core::scheduler::{Plan, PlanContext, PlanError, Scheduler};
use cellstream_core::workload::{per_app_reports, AppReport};
use cellstream_core::{Mapping, SolveOptions};
use cellstream_graph::{StreamGraph, Workload};
use cellstream_heuristics::{scheduler_by_name, MemberResult, Portfolio};
use cellstream_platform::CellSpec;
use cellstream_rt::{run, synthetic_kernels_for_mapping, Kernel, RtConfig, RtError, RunStats};
use cellstream_sim::{simulate, RunTrace, SimConfig, SimError};
use std::sync::Arc;
use std::time::Duration;

enum Strategy {
    Single(Box<dyn Scheduler>),
    Portfolio(Portfolio),
}

/// Builder for one planning run. Start with [`Session::new`], configure
/// the strategy (a single scheduler or a [`Portfolio`]; the default is
/// [`Portfolio::standard`]), then call [`plan`](Session::plan).
pub struct Session<'a> {
    g: &'a StreamGraph,
    spec: &'a CellSpec,
    strategy: Strategy,
    ctx: PlanContext,
    /// Set when the session plans a composed multi-application workload:
    /// carried through the pipeline so per-application reports are one
    /// call away at every stage.
    workload: Option<&'a Workload>,
}

impl<'a> Session<'a> {
    /// A session planning `g` on `spec` with the standard portfolio.
    pub fn new(g: &'a StreamGraph, spec: &'a CellSpec) -> Self {
        Session {
            g,
            spec,
            strategy: Strategy::Portfolio(Portfolio::standard()),
            ctx: PlanContext::default(),
            workload: None,
        }
    }

    /// A session co-scheduling a composed multi-application [`Workload`]
    /// on `spec`: the composed graph is planned like any other graph
    /// (its period *is* the maximum weighted per-application period),
    /// and the planned/scheduled stages expose per-application reports
    /// and simulated throughputs.
    pub fn for_workload(w: &'a Workload, spec: &'a CellSpec) -> Self {
        Session { workload: Some(w), ..Session::new(w.graph(), spec) }
    }

    /// Plan with a single scheduler instance instead of a portfolio.
    pub fn scheduler(mut self, s: impl Scheduler + 'static) -> Self {
        self.strategy = Strategy::Single(Box::new(s));
        self
    }

    /// Plan with a single scheduler looked up by registry name
    /// (`"milp"`, `"greedy_mem"`, ...). Errors on unknown names.
    pub fn scheduler_named(mut self, name: &str) -> Result<Self, PlanError> {
        let s = scheduler_by_name(name)
            .ok_or_else(|| PlanError::Unsupported(format!("unknown scheduler `{name}`")))?;
        self.strategy = Strategy::Single(s);
        Ok(self)
    }

    /// Plan with a custom portfolio.
    pub fn portfolio(mut self, p: Portfolio) -> Self {
        self.strategy = Strategy::Portfolio(p);
        self
    }

    /// Cap the planning wall-clock time.
    pub fn budget(mut self, budget: Duration) -> Self {
        self.ctx.budget = Some(budget);
        self
    }

    /// Add a warm-start seed mapping.
    pub fn seed(mut self, m: Mapping) -> Self {
        self.ctx.seeds.push(m);
        self
    }

    /// Override the MILP configuration.
    pub fn solve_options(mut self, opts: SolveOptions) -> Self {
        self.ctx.solve = opts;
        self
    }

    /// Run the configured strategy and move to the planned stage.
    pub fn plan(self) -> Result<PlannedSession<'a>, PlanError> {
        let (plan, leaderboard) = match &self.strategy {
            Strategy::Single(s) => (s.plan(self.g, self.spec, &self.ctx)?, Vec::new()),
            Strategy::Portfolio(p) => {
                let outcome = p.run_with(self.g, self.spec, &self.ctx)?;
                (outcome.best, outcome.leaderboard)
            }
        };
        Ok(PlannedSession {
            g: self.g,
            spec: self.spec,
            plan,
            leaderboard,
            workload: self.workload,
        })
    }
}

/// A session holding a computed [`Plan`]. Inspect it, compare the
/// leaderboard, then [`schedule`](PlannedSession::schedule).
pub struct PlannedSession<'a> {
    g: &'a StreamGraph,
    spec: &'a CellSpec,
    plan: Plan,
    leaderboard: Vec<MemberResult>,
    workload: Option<&'a Workload>,
}

impl<'a> PlannedSession<'a> {
    /// The winning plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Per-member results when the session ran a portfolio (best first;
    /// empty for single-scheduler sessions).
    pub fn leaderboard(&self) -> &[MemberResult] {
        &self.leaderboard
    }

    /// The graph being scheduled.
    pub fn graph(&self) -> &StreamGraph {
        self.g
    }

    /// The target platform.
    pub fn spec(&self) -> &CellSpec {
        self.spec
    }

    /// The composed workload, for sessions started with
    /// [`Session::for_workload`].
    pub fn workload(&self) -> Option<&'a Workload> {
        self.workload
    }

    /// Per-application split of the winning plan (period, throughput and
    /// weighted period per app). Empty unless the session was started
    /// with [`Session::for_workload`].
    pub fn per_app(&self) -> Vec<AppReport> {
        match self.workload {
            Some(w) => per_app_reports(w, self.spec, &self.plan.mapping, &self.plan.report),
            None => Vec::new(),
        }
    }

    /// Materialise the periodic steady-state schedule (paper §3.1).
    /// Errors when the plan's mapping is infeasible — an infeasible
    /// mapping has no meaningful steady state to schedule. Takes `&self`
    /// so a failed call leaves the plan and leaderboard available for
    /// diagnosis (portfolio runs are expensive to redo).
    pub fn schedule(&self) -> Result<ScheduledSession<'a>, PlanError> {
        if !self.plan.is_feasible() {
            return Err(PlanError::Infeasible(format!(
                "plan from `{}` violates {} constraint(s); cannot build a schedule",
                self.plan.scheduler,
                self.plan.report.violations.len()
            )));
        }
        let schedule =
            PeriodicSchedule::build(self.g, self.spec, &self.plan.mapping, &self.plan.report);
        Ok(ScheduledSession {
            g: self.g,
            spec: self.spec,
            plan: self.plan.clone(),
            schedule,
            workload: self.workload,
        })
    }
}

/// A session holding a feasible plan and its [`PeriodicSchedule`]:
/// ready to simulate (model hardware) or execute (real threads).
pub struct ScheduledSession<'a> {
    g: &'a StreamGraph,
    spec: &'a CellSpec,
    plan: Plan,
    schedule: PeriodicSchedule,
    workload: Option<&'a Workload>,
}

impl<'a> ScheduledSession<'a> {
    /// The winning plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The periodic schedule.
    pub fn schedule(&self) -> &PeriodicSchedule {
        &self.schedule
    }

    /// The graph being scheduled.
    pub fn graph(&self) -> &StreamGraph {
        self.g
    }

    /// The target platform.
    pub fn spec(&self) -> &CellSpec {
        self.spec
    }

    /// The composed workload, for sessions started with
    /// [`Session::for_workload`].
    pub fn workload(&self) -> Option<&'a Workload> {
        self.workload
    }

    /// Per-application split of the plan (see
    /// [`PlannedSession::per_app`]). Empty for single-graph sessions.
    pub fn per_app(&self) -> Vec<AppReport> {
        match self.workload {
            Some(w) => per_app_reports(w, self.spec, &self.plan.mapping, &self.plan.report),
            None => Vec::new(),
        }
    }

    /// Run the mapping on the discrete-event Cell simulator for
    /// `instances` stream instances.
    pub fn simulate(&self, cfg: &SimConfig, instances: u64) -> Result<RunTrace, SimError> {
        simulate(self.g, self.spec, &self.plan.mapping, cfg, instances)
    }

    /// Simulate and attribute the measured steady-state throughput to
    /// each application of the composed workload (instances per second,
    /// in application-instance terms). The per-application vector is
    /// empty for single-graph sessions.
    pub fn simulate_per_app(
        &self,
        cfg: &SimConfig,
        instances: u64,
    ) -> Result<(RunTrace, Vec<f64>), SimError> {
        let trace = self.simulate(cfg, instances)?;
        let per_app = match self.workload {
            Some(w) => trace.per_app_throughput(w),
            None => Vec::new(),
        };
        Ok((trace, per_app))
    }

    /// Execute the mapping on the threaded runtime emulator with the
    /// given task kernels.
    pub fn execute(
        &self,
        kernels: &[Arc<dyn Kernel>],
        cfg: &RtConfig,
    ) -> Result<RunStats, RtError> {
        run(self.g, self.spec, &self.plan.mapping, kernels, cfg)
    }

    /// Execute with synthetic spin kernels calibrated to each task's
    /// modelled cost on its host PE, scaled by `scale` (1.0 = real time;
    /// smaller values fast-forward). Useful when no real kernels exist
    /// for the graph.
    pub fn execute_synthetic(&self, cfg: &RtConfig, scale: f64) -> Result<RunStats, RtError> {
        let kernels = synthetic_kernels_for_mapping(self.g, self.spec, &self.plan.mapping, scale);
        run(self.g, self.spec, &self.plan.mapping, &kernels, cfg)
    }
}
