//! Concurrent serving: a lock-free intake ring feeding a planner thread.
//!
//! [`Service`] is single-threaded — every `process` call replans before
//! the caller may hand over the next event, so intake stalls for the
//! whole replan. [`ServePipeline`] splits the two roles across threads:
//! the **intake** side pushes name-addressed [`TraceEvent`]s into a
//! bounded [`SpscRing`] (a full ring hands the event back — the
//! backpressure signal), while the **planner** thread owns the
//! [`Service`] and drains whatever has accumulated since its last
//! replan into one [`Service::process_batch`] call. A burst that piled
//! up behind a slow replan is then amortised over a *single* compose +
//! carry-over + repair instead of paying one replan per event.
//!
//! Events are applied in submission order; the planner never reorders
//! across a dependency. Two events touching the **same application
//! name** (admit then retire, retire then re-admit, ...) are split into
//! separate batches, because names resolve to handles against the live
//! incumbent — the first batch must commit before the second one's
//! names make sense.
//!
//! The pipeline implements [`IntakeSystem`], so
//! [`cellstream_sim::online::replay_concurrent`] can drive it straight
//! from an [`EventTrace`](cellstream_sim::online::EventTrace).

use crate::metrics::ServeMetrics;
use crate::service::{Event, Service, Verdict};
use cellstream_rt::SpscRing;
use cellstream_sim::online::{IntakeSystem, TraceEvent};
use cellstream_telemetry::percentile_sorted;
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tunables of one [`ServePipeline`].
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Intake ring slots; a full ring backpressures the submitter.
    pub capacity: usize,
    /// Largest burst fused into one [`Service::process_batch`] call.
    pub max_batch: usize,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions { capacity: 256, max_batch: 64 }
    }
}

/// What the planner thread did, harvested by [`ServePipeline::finish`].
#[derive(Debug, Clone, Default)]
pub struct PipelineStats {
    /// Events handed to the service (admits, retires, reweights).
    pub events: u64,
    /// Replans — `process_batch` calls covering those events.
    pub batches: u64,
    /// Events whose application name resolved to no live handle and
    /// that were therefore dropped (a retire racing a rejection, say).
    pub skipped: u64,
    /// Events the service refused (guarantee/feasibility/weight).
    pub rejected: u64,
    /// Most events ever fused into one replan.
    pub largest_batch: usize,
    /// Per-batch replan wall-clock, in completion order.
    pub replans: Vec<Duration>,
}

impl PipelineStats {
    /// The `p`-th percentile (0.0 ..= 1.0) of per-batch replan latency.
    pub fn replan_percentile(&self, p: f64) -> Duration {
        let mut sorted = self.replans.clone();
        sorted.sort();
        percentile_sorted(&sorted, p.clamp(0.0, 1.0) * 100.0)
    }

    /// Mean events per replan — the batching win over one-at-a-time.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.events as f64 / self.batches as f64
        }
    }
}

/// A [`Service`] behind a lock-free intake ring and a planner thread.
///
/// Submit name-addressed [`TraceEvent`]s from one thread (the SPSC
/// contract: a single submitting thread at a time); the planner applies
/// them asynchronously, batching whatever accumulates. [`finish`] joins
/// the planner and returns the service with its incumbent, plus the
/// batching statistics.
///
/// [`finish`]: Self::finish
#[derive(Debug)]
pub struct ServePipeline {
    ring: Arc<SpscRing<TraceEvent>>,
    done: Arc<AtomicBool>,
    planner: Option<JoinHandle<(Service, PipelineStats)>>,
    metrics: Arc<ServeMetrics>,
}

impl ServePipeline {
    /// Move `service` onto a fresh planner thread and open the intake.
    pub fn launch(service: Service, opts: PipelineOptions) -> Self {
        let ring = Arc::new(SpscRing::with_capacity(opts.capacity.max(1)));
        let done = Arc::new(AtomicBool::new(false));
        let metrics = service.metrics_handle();
        let planner = {
            let ring = Arc::clone(&ring);
            let done = Arc::clone(&done);
            let max_batch = opts.max_batch.max(1);
            std::thread::spawn(move || planner_loop(service, &ring, &done, max_batch))
        };
        ServePipeline { ring, done, planner: Some(planner), metrics }
    }

    /// The service's metric cells, live while the planner runs: the
    /// submitting side can watch ring occupancy, batch shapes and
    /// replan latency without joining the planner.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Try to submit one event; a full ring hands it back as `Err`.
    ///
    /// The event rides in the `Err` by value so the caller can retry
    /// without ever heap-allocating on the intake path; boxing it to
    /// shrink the variant would defeat that.
    #[allow(clippy::result_large_err)]
    pub fn try_submit(&self, ev: TraceEvent) -> Result<(), TraceEvent> {
        self.ring.try_push(ev)
    }

    /// Submit one event, yielding until the ring accepts it. Returns
    /// `true` if the ring refused it at least once first.
    pub fn submit(&self, mut ev: TraceEvent) -> bool {
        let mut refused = false;
        loop {
            match self.ring.try_push(ev) {
                Ok(()) => return refused,
                Err(back) => {
                    refused = true;
                    ev = back;
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Events accepted but not yet popped by the planner.
    pub fn backlog(&self) -> usize {
        self.ring.len()
    }

    /// Close the intake, drain the ring, join the planner, and return
    /// the service (with its final incumbent) and the batching stats.
    pub fn finish(mut self) -> (Service, PipelineStats) {
        self.done.store(true, Ordering::Release);
        let handle = self.planner.take().expect("finish runs once"); // check:allow(hot-path-panic): finish consumes self, so the handle is still present
        handle.join().expect("planner thread never panics") // check:allow(hot-path-panic): propagating a planner panic is the right failure mode
    }
}

impl Drop for ServePipeline {
    fn drop(&mut self) {
        if let Some(handle) = self.planner.take() {
            self.done.store(true, Ordering::Release);
            let _ = handle.join();
        }
    }
}

impl IntakeSystem for ServePipeline {
    fn submit(&self, ev: TraceEvent) -> bool {
        ServePipeline::submit(self, ev)
    }

    fn backlog(&self) -> usize {
        ServePipeline::backlog(self)
    }
}

/// Build the next batch from the front of `pending`: translate
/// name-addressed trace events into handle-addressed [`Event`]s against
/// the live incumbent, stopping at `max_batch` or at the first event
/// whose application name an earlier event of this batch already
/// touched (its handle only exists once this batch commits). Unknown
/// names are dropped and counted, never blocking the batch.
fn build_batch(
    service: &Service,
    pending: &mut VecDeque<TraceEvent>,
    max_batch: usize,
    events: &mut Vec<Event>,
    touched: &mut HashSet<String>,
) -> u64 {
    let mut skipped = 0;
    touched.clear();
    while events.len() < max_batch {
        // impairment events are batch barriers: they commit alone, in
        // trace order, never fused with the churn around them (a fault
        // can shed arbitrary applications, invalidating handles the
        // rest of the batch resolved)
        if pending.front().is_some_and(TraceEvent::is_fault) {
            if !events.is_empty() {
                break; // flush the churn batch first; the fault goes next
            }
            // check:allow(hot-path-panic): the loop peeked Some at the front just above
            match pending.pop_front().expect("front was Some") {
                TraceEvent::PeFailed { node: 0, pe } => events.push(Event::PeFailed(pe)),
                TraceEvent::PeRestored { node: 0, pe } => events.push(Event::PeRestored(pe)),
                TraceEvent::CostDrift { app, factor } => match service.handle_of(&app) {
                    Some(id) => events.push(Event::CostDrift(id, factor)),
                    None => skipped += 1,
                },
                // impairments aimed at other fleet nodes — including
                // whole-node loss, the cluster's event — mean nothing
                // to a single-node pipeline
                _ => skipped += 1,
            }
            break;
        }
        let name = match pending.front() {
            Some(TraceEvent::Admit { graph, .. }) => graph.name(),
            Some(TraceEvent::Retire { app }) | Some(TraceEvent::Reweight { app, .. }) => app,
            _ => break, // empty (faults were handled above)
        };
        if touched.contains(name) {
            break; // dependency on this batch's own commit: cut here
        }
        // check:allow(hot-path-panic): the loop peeked Some at the front just above
        match pending.pop_front().expect("front was Some") {
            TraceEvent::Admit { graph, weight } => {
                touched.insert(graph.name().to_owned());
                events.push(Event::Admit(graph, weight));
            }
            TraceEvent::Retire { app } => match service.handle_of(&app) {
                Some(id) => {
                    touched.insert(app);
                    events.push(Event::Retire(id));
                }
                None => skipped += 1,
            },
            TraceEvent::Reweight { app, weight } => match service.handle_of(&app) {
                Some(id) => {
                    touched.insert(app);
                    events.push(Event::Reweight(id, weight));
                }
                None => skipped += 1,
            },
            // check:allow(hot-path-panic): is_fault events never reach the churn path
            _ => unreachable!("fault events are handled as barriers above"),
        }
    }
    skipped
}

fn planner_loop(
    mut service: Service,
    ring: &SpscRing<TraceEvent>,
    done: &AtomicBool,
    max_batch: usize,
) -> (Service, PipelineStats) {
    let metrics = service.metrics_handle();
    let mut stats = PipelineStats::default();
    let mut pending: VecDeque<TraceEvent> = VecDeque::with_capacity(max_batch);
    let mut events: Vec<Event> = Vec::with_capacity(max_batch);
    let mut touched: HashSet<String> = HashSet::with_capacity(max_batch);
    loop {
        while pending.len() < max_batch {
            match ring.try_pop() {
                Some(ev) => pending.push_back(ev),
                None => break,
            }
        }
        if pending.is_empty() {
            if done.load(Ordering::Acquire) && ring.is_empty() {
                break;
            }
            std::thread::yield_now();
            continue;
        }

        events.clear();
        let occupancy = pending.len();
        stats.skipped += build_batch(&service, &mut pending, max_batch, &mut events, &mut touched);
        if events.is_empty() {
            continue;
        }
        if metrics.enabled() {
            metrics.ring_occupancy.record(occupancy as u64);
            if events.len() < max_batch && !pending.is_empty() {
                // fusion ended early on a same-name dependency or a
                // fault barrier, not for lack of accumulated events
                metrics.skipped_fusions_total.inc();
            }
        }
        match service.process_batch(&events) {
            Ok(report) => {
                stats.events += events.len() as u64;
                stats.batches += 1;
                stats.largest_batch = stats.largest_batch.max(events.len());
                stats.rejected +=
                    report.events.iter().filter(|(_, v)| matches!(v, Verdict::Rejected(_))).count()
                        as u64;
                stats.replans.push(report.replan);
            }
            // every handle was resolved against the live incumbent on
            // this same thread, so batch validation cannot fail — but if
            // it ever does, degrade to one-at-a-time rather than lose
            // the burst
            Err(_) => {
                for ev in events.drain(..) {
                    match service.process(ev) {
                        Ok(report) => {
                            stats.events += 1;
                            stats.batches += 1;
                            stats.replans.push(report.replan);
                        }
                        Err(_) => stats.skipped += 1,
                    }
                }
            }
        }
    }
    (service, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceOptions;
    use cellstream_apps::{audio, cipher, dsp, video};
    use cellstream_platform::CellSpec;
    use cellstream_sim::online::{replay_concurrent, EventTrace};

    fn churn_trace() -> EventTrace {
        let audio = audio::graph().unwrap();
        let video = video::graph().unwrap();
        let cipher = cipher::graph().unwrap();
        let dsp = dsp::graph().unwrap();
        EventTrace::new(0.30)
            .at(0.00, TraceEvent::Admit { graph: audio.clone(), weight: 1.0 })
            .at(0.02, TraceEvent::Admit { graph: video.clone(), weight: 1.0 })
            .at(0.04, TraceEvent::Admit { graph: cipher.clone(), weight: 2.0 })
            .at(0.06, TraceEvent::Reweight { app: audio.name().into(), weight: 2.0 })
            .at(0.08, TraceEvent::Admit { graph: dsp.clone(), weight: 1.0 })
            .at(0.10, TraceEvent::Retire { app: video.name().into() })
            .at(0.12, TraceEvent::Admit { graph: video.renamed("video-2"), weight: 1.0 })
            .at(0.14, TraceEvent::Reweight { app: cipher.name().into(), weight: 1.0 })
            .at(0.16, TraceEvent::Retire { app: audio.name().into() })
            .at(0.18, TraceEvent::Admit { graph: audio.renamed("audio-2"), weight: 2.0 })
            .at(0.20, TraceEvent::Retire { app: dsp.name().into() })
    }

    /// Apply a trace to a plain single-threaded service, resolving
    /// names exactly the way the planner thread does.
    fn replay_sequential(svc: &mut Service, trace: &EventTrace) {
        for te in trace.events() {
            match &te.event {
                TraceEvent::Admit { graph, weight } => {
                    svc.admit(graph, *weight);
                }
                TraceEvent::Retire { app } => {
                    let id = svc.handle_of(app).expect("trace retires live apps");
                    svc.retire(id).unwrap();
                }
                TraceEvent::Reweight { app, weight } => {
                    let id = svc.handle_of(app).expect("trace reweights live apps");
                    svc.reweight(id, *weight).unwrap();
                }
                other => panic!("churn traces carry no fault events: {other:?}"),
            }
        }
    }

    #[test]
    fn pipelined_replay_matches_sequential_final_state() {
        let spec = CellSpec::qs22();
        let trace = churn_trace();

        let mut seq = Service::new(spec.clone());
        replay_sequential(&mut seq, &trace);

        let pipe = ServePipeline::launch(Service::new(spec), PipelineOptions::default());
        let intake = replay_concurrent(&pipe, &trace);
        let (svc, stats) = pipe.finish();

        assert_eq!(intake.submitted, trace.len());
        assert_eq!(stats.skipped, 0, "every name resolves in submission order");
        assert_eq!(stats.events, trace.len() as u64);
        assert!(stats.batches as usize <= trace.len());
        assert_eq!(stats.replans.len() as u64, stats.batches);

        // same surviving applications under the same names and weights
        let names = |s: &Service| -> Vec<String> { s.apps().map(|(_, n)| n.to_owned()).collect() };
        assert_eq!(names(&svc), names(&seq));
        assert_eq!(svc.workload(), seq.workload());
        // both incumbents feasible, periods in the same band (different
        // warm starts may land in different local optima)
        let (a, b) = (svc.period(), seq.period());
        assert!(a.is_finite() && b.is_finite());
        assert!(a <= b * 2.0 + 1e-12 && b <= a * 2.0 + 1e-12, "periods {a} vs {b}");
    }

    #[test]
    fn tiny_ring_backpressures_without_losing_events() {
        let trace = churn_trace();
        let pipe = ServePipeline::launch(
            Service::new(CellSpec::ps3()),
            PipelineOptions { capacity: 2, max_batch: 4 },
        );
        let intake = replay_concurrent(&pipe, &trace);
        let (svc, stats) = pipe.finish();
        assert_eq!(intake.submitted, trace.len());
        assert!(intake.peak_backlog <= 2);
        assert_eq!(stats.events + stats.skipped, trace.len() as u64);
        assert_eq!(stats.skipped, 0);
        assert_eq!(svc.n_apps(), 3, "audio-2, cipher and video-2 survive");
    }

    #[test]
    fn batches_cut_at_same_name_dependencies() {
        let g = audio::graph().unwrap();
        let svc = Service::new(CellSpec::ps3());
        let mut pending: VecDeque<TraceEvent> = VecDeque::from([
            TraceEvent::Admit { graph: g.clone(), weight: 1.0 },
            TraceEvent::Retire { app: g.name().into() },
            TraceEvent::Admit { graph: g.clone(), weight: 2.0 },
            TraceEvent::Admit { graph: g.renamed("other"), weight: 1.0 },
        ]);
        let mut events = Vec::new();
        let mut touched = HashSet::new();

        // batch 1: just the first admit — the retire names it
        let skipped = build_batch(&svc, &mut pending, 16, &mut events, &mut touched);
        assert_eq!(skipped, 0);
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], Event::Admit(..)));
        assert_eq!(pending.len(), 3);

        // the retire now resolves only once batch 1 committed; against
        // the still-idle service it is an unknown name and is dropped —
        // batch 2 then cuts again between retire and re-admit
        events.clear();
        let skipped = build_batch(&svc, &mut pending, 16, &mut events, &mut touched);
        assert_eq!(skipped, 1, "retire of a never-admitted name is dropped");
        assert_eq!(events.len(), 2, "re-admit and the unrelated admit fuse");
        assert!(pending.is_empty());
    }

    #[test]
    fn pipelined_same_name_churn_lands_on_the_re_admission() {
        let g = audio::graph().unwrap();
        let trace = EventTrace::new(0.10)
            .at(0.00, TraceEvent::Admit { graph: g.clone(), weight: 1.0 })
            .at(0.02, TraceEvent::Retire { app: g.name().into() })
            .at(0.04, TraceEvent::Admit { graph: g.clone(), weight: 2.0 })
            .at(0.06, TraceEvent::Reweight { app: g.name().into(), weight: 3.0 });
        let pipe = ServePipeline::launch(Service::new(CellSpec::ps3()), PipelineOptions::default());
        replay_concurrent(&pipe, &trace);
        let (svc, stats) = pipe.finish();
        assert_eq!(stats.skipped, 0);
        assert_eq!(svc.n_apps(), 1);
        let w = svc.workload().expect("one app lives");
        assert_eq!(w.apps().len(), 1);
        assert_eq!(w.apps()[0].name, g.name());
        assert!((w.apps()[0].weight - 3.0).abs() < 1e-12, "the reweight landed last");
    }

    #[test]
    fn guarantee_mode_pipeline_still_gates_admissions() {
        let opts = ServiceOptions { max_period: Some(1e-9), ..ServiceOptions::default() };
        let pipe = ServePipeline::launch(
            Service::with_options(CellSpec::ps3(), opts),
            PipelineOptions::default(),
        );
        let trace = EventTrace::new(0.02)
            .at(0.00, TraceEvent::Admit { graph: video::graph().unwrap(), weight: 1.0 });
        replay_concurrent(&pipe, &trace);
        let (svc, stats) = pipe.finish();
        assert_eq!(svc.n_apps(), 0, "an impossible guarantee admits nothing");
        assert_eq!(stats.rejected, 1);
    }
}
