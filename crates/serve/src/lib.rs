//! Online serving of streaming applications on one Cell: dynamic
//! arrival/departure with migration-aware incremental replanning.
//!
//! The paper plans one static mapping offline. A Cell blade in
//! production *serves*: media pipelines join, change rate, and leave
//! while the machine runs (the regime of Benoit et al., *Resource
//! Allocation for Multiple Concurrent In-Network Stream-Processing
//! Applications*). [`Service`] is that serving loop. It owns a live
//! [`Workload`](cellstream_graph::Workload) and an incumbent
//! [`Mapping`](cellstream_core::Mapping) and processes an event stream:
//!
//! * [`Event::Admit`] — an application arrives with a throughput weight.
//!   **Admission control** plans a candidate placement and rejects (or
//!   queues, see [`ServiceOptions::queue_rejected`]) the application if
//!   the plan would break the §3.2 feasibility constraints or any
//!   resident application's period guarantee. An admitted application
//!   never violates SPE local-store capacity: the repair planner evicts
//!   to the PPE before it ever returns an infeasible seat.
//! * [`Event::Retire`] — an application departs; its tasks are dropped
//!   and the survivors' mapping is repaired in place. Queued admissions
//!   are retried against the freed capacity.
//! * [`Event::Reweight`] — an application changes rate; costs, traffic
//!   and buffer footprints rescale, and the repair planner restores
//!   feasibility if the new footprints broke it.
//!
//! **Incremental replanning.** Each event goes through
//! [`cellstream_heuristics::repair`]: retained applications keep their
//! seats, only the delta is placed/evicted, and a budgeted local search
//! polishes from the incumbent — orders of magnitude cheaper than a
//! from-scratch portfolio run at within a few percent of its quality
//! (the `online` bench gates both). A full
//! [`Portfolio`](cellstream_heuristics::Portfolio) re-solve runs only as
//! an **asynchronous background improver** whose result is adopted iff
//! it beats the incumbent *including* migration cost, and which is
//! cancelled the moment a new event arrives (cooperative
//! [`CancelToken`](cellstream_core::scheduler::CancelToken) threaded
//! through every member down to the MILP's pivot loops).
//!
//! **Migration cost.** Every adopted replan reports a
//! [`MappingDelta`](cellstream_core::MappingDelta): which surviving
//! tasks moved, and how many bytes of task state + stream buffers their
//! moves push across the EIB ([`ServeReport::migration_bytes`]). The
//! background improver's adoption rule charges that one-off cost against
//! the per-round gain over [`ServiceOptions::migration_horizon`] rounds.
//!
//! ```
//! use cellstream_serve::{Event, Service};
//! use cellstream_graph::{StreamGraph, TaskSpec};
//! use cellstream_platform::CellSpec;
//!
//! fn app(name: &str) -> StreamGraph {
//!     let mut b = StreamGraph::builder(name);
//!     let s = b.add_task(TaskSpec::new("src").ppe_cost(2e-6).spe_cost(1e-6));
//!     let t = b.add_task(TaskSpec::new("enc").ppe_cost(4e-6).spe_cost(1e-6));
//!     b.add_edge(s, t, 2048.0).unwrap();
//!     b.build().unwrap()
//! }
//!
//! let mut svc = Service::new(CellSpec::ps3());
//! let report = svc.process(Event::Admit(app("mic"), 1.0)).unwrap();
//! let mic = report.admitted().expect("fits easily");
//! let report = svc.process(Event::Admit(app("cam"), 2.0)).unwrap();
//! assert!(report.admitted().is_some());
//! assert!(svc.period().is_finite());
//!
//! // rate change, then departure — the incumbent is repaired in place
//! svc.process(Event::Reweight(mic, 3.0)).unwrap();
//! let report = svc.process(Event::Retire(mic)).unwrap();
//! assert!(report.delta.dropped.iter().all(|t| t.starts_with("mic/")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod pipeline;
mod service;

pub use metrics::{verdict_name, ServeMetrics};
pub use pipeline::{PipelineOptions, PipelineStats, ServePipeline};
pub use service::{
    BatchReport, Event, EventLabel, QueueBackoff, RecoveryReport, RejectReason, ServeError,
    ServeReport, Service, ServiceOptions, Verdict,
};
