//! The event-driven serving loop. See the crate docs for the model.

use cellstream_core::scheduler::{CancelToken, PlanContext};
use cellstream_core::workload::AppReport;
use cellstream_core::{evaluate_with, evaluate_workload_with, Availability, Mapping, MappingDelta};
use cellstream_graph::{AppId, StreamGraph, Workload};
use cellstream_heuristics::repair::{carry_over_into, repair_with, RepairOptions};
use cellstream_heuristics::{LocalSearchOptions, Portfolio};
use cellstream_platform::{CellSpec, PeId};
use cellstream_sim::online::{EventOutcome, OnlineSystem, TraceEvent};
use cellstream_telemetry::Snapshot;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::metrics::ServeMetrics;

/// One workload-churn event. Applications are addressed by the **stable
/// handle** [`Service::process`] returned at admission — handles never
/// shift, unlike the positional ids inside the composed [`Workload`].
#[derive(Debug, Clone)]
pub enum Event {
    /// An application arrives, asking for the given throughput weight.
    Admit(StreamGraph, f64),
    /// The application with this handle departs.
    Retire(AppId),
    /// The application with this handle changes its throughput weight.
    Reweight(AppId, f64),
    /// An SPE dies. The service evacuates its seats via a recovery
    /// replan and sheds applications if the shrunken platform cannot
    /// carry everyone ([`Service::fail_pe`]).
    PeFailed(PeId),
    /// A failed or degraded PE returns to nominal health; the service
    /// rebalances onto it and retries parked admissions
    /// ([`Service::restore_pe`]).
    PeRestored(PeId),
    /// The application's declared compute costs turn out wrong by this
    /// factor (`> 1` underestimated). The service corrects the declared
    /// costs and re-validates the incumbent ([`Service::cost_drift`]).
    CostDrift(AppId, f64),
}

impl Event {
    /// Compact label (`"admit w=1"`, `"retire A3"`, ...). Admissions
    /// learn their handle at commit time, so an [`Event::Admit`] label
    /// carries only the weight until then.
    pub fn label(&self) -> EventLabel {
        match self {
            Event::Admit(_, w) => EventLabel::admit(*w),
            Event::Retire(id) => EventLabel::retire(*id),
            Event::Reweight(id, w) => EventLabel::reweight(*id, *w),
            Event::PeFailed(pe) => EventLabel::pe_failed(*pe),
            Event::PeRestored(pe) => EventLabel::pe_restored(*pe),
            Event::CostDrift(id, f) => EventLabel::cost_drift(*id, *f),
        }
    }
}

/// Allocation-free label of a processed event: a static kind plus the
/// handle/weight operands, formatted on demand. The hot path used to
/// build a `String` per event even when nobody printed it; this is the
/// same information as plain copies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventLabel {
    /// Event class: `"admit"`, `"retire"`, `"reweight"`,
    /// `"pe failed"`, `"pe restored"`, `"cost drift"`,
    /// `"background solve"`.
    pub kind: &'static str,
    /// The application handle, once known (admissions get theirs at
    /// commit).
    pub app: Option<AppId>,
    /// The requested weight, for admits and reweights.
    pub weight: Option<f64>,
    /// The processing element, for PE fail/restore events.
    pub pe: Option<PeId>,
    /// The drift factor, for cost-drift events.
    pub factor: Option<f64>,
}

impl EventLabel {
    /// Label of an admission.
    pub fn admit(weight: f64) -> Self {
        EventLabel { kind: "admit", app: None, weight: Some(weight), pe: None, factor: None }
    }

    /// Label of a retirement.
    pub fn retire(app: AppId) -> Self {
        EventLabel { kind: "retire", app: Some(app), weight: None, pe: None, factor: None }
    }

    /// Label of a weight change.
    pub fn reweight(app: AppId, weight: f64) -> Self {
        EventLabel {
            kind: "reweight",
            app: Some(app),
            weight: Some(weight),
            pe: None,
            factor: None,
        }
    }

    /// Label of a PE failure.
    pub fn pe_failed(pe: PeId) -> Self {
        EventLabel { kind: "pe failed", app: None, weight: None, pe: Some(pe), factor: None }
    }

    /// Label of a PE restoration.
    pub fn pe_restored(pe: PeId) -> Self {
        EventLabel { kind: "pe restored", app: None, weight: None, pe: Some(pe), factor: None }
    }

    /// Label of a cost-drift correction.
    pub fn cost_drift(app: AppId, factor: f64) -> Self {
        EventLabel {
            kind: "cost drift",
            app: Some(app),
            weight: None,
            pe: None,
            factor: Some(factor),
        }
    }

    /// Label of a background-solve conclusion.
    pub fn background() -> Self {
        EventLabel { kind: "background solve", app: None, weight: None, pe: None, factor: None }
    }

    /// The same label with the handle filled in.
    fn with_app(self, app: AppId) -> Self {
        EventLabel { app: Some(app), ..self }
    }
}

impl fmt::Display for EventLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        if let Some(app) = self.app {
            write!(f, " {app}")?;
        }
        if let Some(pe) = self.pe {
            write!(f, " {pe}")?;
        }
        if let Some(w) = self.weight {
            write!(f, " w={w}")?;
        }
        if let Some(x) = self.factor {
            write!(f, " x{x}")?;
        }
        Ok(())
    }
}

/// Why an admission (or a reweight) was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum RejectReason {
    /// No feasible placement exists at all (defensive: the repair
    /// planner can always fall back to the PPE, so this indicates a
    /// platform without one).
    Infeasible,
    /// The requested weight was zero, negative or non-finite. Never
    /// queued — it cannot succeed later.
    InvalidWeight(f64),
    /// The candidate plan would break this application's per-instance
    /// period guarantee.
    Guarantee {
        /// The application whose guarantee would break (may be a
        /// resident one, not the arriving one).
        app: String,
        /// Its per-instance period under the candidate plan (seconds).
        period: f64,
        /// The configured cap ([`ServiceOptions::max_period`]).
        guarantee: f64,
    },
    /// A cost-drift factor was zero, negative or non-finite.
    InvalidFactor(f64),
    /// A queued admission exhausted its retry budget
    /// ([`ServiceOptions::queue_max_attempts`]) and left the queue for
    /// good — dropped visibly, never silently.
    Expired {
        /// The application that gave up waiting.
        app: String,
        /// Admission attempts made before expiring.
        attempts: u32,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::Infeasible => write!(f, "no feasible placement"),
            RejectReason::InvalidWeight(w) => {
                write!(f, "weight must be positive finite, got {w}")
            }
            RejectReason::Guarantee { app, period, guarantee } => write!(
                f,
                "'{app}' would run at {:.3} us > guaranteed {:.3} us",
                period * 1e6,
                guarantee * 1e6
            ),
            RejectReason::InvalidFactor(x) => {
                write!(f, "drift factor must be positive finite, got {x}")
            }
            RejectReason::Expired { app, attempts } => {
                write!(f, "'{app}' expired from the admission queue after {attempts} attempts")
            }
        }
    }
}

/// What happened to one event.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Admission succeeded; the handle addresses the application from
    /// now on.
    Admitted(AppId),
    /// Admission control refused the application and
    /// [`ServiceOptions::queue_rejected`] parked it for retry when
    /// capacity frees up.
    Queued,
    /// Admission control (or a guarantee-breaking reweight) refused.
    Rejected(RejectReason),
    /// A retire/reweight took effect.
    Applied,
    /// A background portfolio plan was adopted
    /// ([`Service::poll_background`]).
    Adopted,
    /// A background solve concluded without beating the incumbent (or
    /// arrived stale) and was discarded.
    NoChange,
}

/// Errors from [`Service::process`]: malformed events, not admission
/// outcomes (a refused admission is a [`Verdict`], not an error).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// No live application has this handle.
    UnknownApp(AppId),
    /// A PE fail/restore named a PE that cannot be failed: out of range,
    /// or the PPE — the serving loop itself runs there, so a dead PPE
    /// means a dead node (the cluster layer's event, not this one).
    InvalidPe(PeId),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownApp(id) => write!(f, "no live application with handle {id}"),
            ServeError::InvalidPe(pe) => {
                write!(f, "{pe} cannot fail or be restored (out of range, or the control PPE)")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Per-event report: what the service did and what it cost.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Label of the processed event.
    pub event: EventLabel,
    /// The outcome.
    pub verdict: Verdict,
    /// Wall-clock replanning latency (compose + repair + checks).
    pub replan: Duration,
    /// What changed between the previous and the new incumbent mapping
    /// (empty when nothing was adopted).
    pub delta: MappingDelta,
    /// Composed round period after the event (`+∞` while idle).
    pub period: f64,
    /// Per-application reports after the event (guarantee `w/T`,
    /// fair-share prediction, isolated bound — see
    /// [`cellstream_core::workload::AppReport`]).
    pub per_app: Vec<AppReport>,
    /// `true` if a finished background solve was adopted while handling
    /// this event (before the event's own replanning).
    pub background_adopted: bool,
    /// The adoption's own task moves when `background_adopted` — the
    /// EIB traffic of switching to the background plan, separate from
    /// [`delta`](Self::delta) (which diffs against the already-adopted
    /// incumbent). Empty otherwise.
    pub background_delta: MappingDelta,
    /// Reports of queued admissions that entered service because this
    /// event freed capacity.
    pub drained: Vec<ServeReport>,
    /// Recovery metrics when this event was a fault (PE fail/restore,
    /// cost drift); `None` for ordinary churn events.
    pub recovery: Option<RecoveryReport>,
    /// Retry-queue depth after this event (drains included).
    pub queue_depth: usize,
    /// Per-application backoff state of everything still parked in the
    /// retry queue after this event, in FIFO order.
    pub queue_backoff: Vec<QueueBackoff>,
}

/// One parked admission's retry bookkeeping, itemised in
/// [`ServeReport::queue_backoff`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueueBackoff {
    /// The queued application's name.
    pub app: String,
    /// Failed admission attempts so far.
    pub attempts: u32,
    /// Drain passes the entry still sits out (exponential backoff,
    /// `2^attempts` capped at 64).
    pub cooldown: u32,
}

/// What recovering from one fault event cost.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Seats the fault stranded on the failed PE — every one was
    /// evacuated by the recovery replan (or shed with its application).
    pub evacuated_seats: usize,
    /// EIB bytes the recovery replan moved (§4.2 migration cost of the
    /// whole recovery delta, including rebalancing ripple moves).
    pub migration_bytes: f64,
    /// Applications shed into the retry queue — lowest weight first —
    /// because the post-fault platform could not carry everyone within
    /// feasibility and guarantees. Never silently dropped: shed apps
    /// retry on every capacity change until admitted or expired.
    pub shed: Vec<String>,
}

impl ServeReport {
    /// The assigned handle when this event admitted an application.
    pub fn admitted(&self) -> Option<AppId> {
        match self.verdict {
            Verdict::Admitted(id) => Some(id),
            _ => None,
        }
    }

    /// `true` when the event changed the served workload.
    pub fn applied(&self) -> bool {
        matches!(self.verdict, Verdict::Admitted(_) | Verdict::Applied | Verdict::Adopted)
    }

    /// Migration traffic this event's replan pushes over the EIB (bytes;
    /// includes a background adoption folded into this event and any
    /// drained queue admissions).
    pub fn migration_bytes(&self) -> f64 {
        self.delta.migration_bytes
            + self.background_delta.migration_bytes
            + self.drained.iter().map(ServeReport::migration_bytes).sum::<f64>()
    }

    /// Seconds the migration traffic occupies the EIB.
    pub fn migration_time(&self, spec: &CellSpec) -> f64 {
        self.delta.migration_time(spec)
            + self.background_delta.migration_time(spec)
            + self.drained.iter().map(|r| r.migration_time(spec)).sum::<f64>()
    }
}

/// What one batched burst did: per-event verdicts plus one fused
/// replan covering the whole burst — see [`Service::process_batch`].
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-event labels and verdicts, in the canonical
    /// retire → reweight → admit application order.
    pub events: Vec<(EventLabel, Verdict)>,
    /// Wall-clock latency of the whole burst (one compose + one replan).
    pub replan: Duration,
    /// Seat changes between the pre-burst and post-burst incumbents.
    pub delta: MappingDelta,
    /// Composed round period after the burst (`+∞` when it emptied the
    /// service).
    pub period: f64,
    /// Per-application reports after the burst (empty when
    /// [`ServiceOptions::per_app_reports`] is off).
    pub per_app: Vec<AppReport>,
    /// `true` if a finished background solve was adopted on entry.
    pub background_adopted: bool,
    /// The adoption's own moves (see [`ServeReport::background_delta`]).
    pub background_delta: MappingDelta,
    /// Queued admissions drained because the burst freed capacity.
    pub drained: Vec<ServeReport>,
}

impl BatchReport {
    /// Handles assigned by this burst's admissions, in admission order.
    pub fn admitted(&self) -> impl Iterator<Item = AppId> + '_ {
        self.events.iter().filter_map(|(_, v)| match v {
            Verdict::Admitted(id) => Some(*id),
            _ => None,
        })
    }

    /// Number of events that changed the served workload.
    pub fn applied(&self) -> usize {
        self.events
            .iter()
            .filter(|(_, v)| matches!(v, Verdict::Admitted(_) | Verdict::Applied))
            .count()
    }

    /// Migration traffic of the burst (bytes over the EIB).
    pub fn migration_bytes(&self) -> f64 {
        self.delta.migration_bytes
            + self.background_delta.migration_bytes
            + self.drained.iter().map(ServeReport::migration_bytes).sum::<f64>()
    }
}

/// Tunables of one [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceOptions {
    /// Local-search refinement applied by the repair replanner on every
    /// event. The default runs first-improvement *sweeps*
    /// ([`LocalSearchOptions::sweep`]) — warm-started repairs apply the
    /// whole delta's worth of moves in a few O(K·n) passes instead of
    /// paying a full neighbourhood rescan per move, which is what keeps
    /// replan latency an order of magnitude under a from-scratch solve.
    pub repair: LocalSearchOptions,
    /// Uniform per-instance period guarantee: an admission (or reweight)
    /// is refused if any application's per-instance period `T / w_i`
    /// would exceed this under the candidate plan. `None` (default)
    /// admits anything feasible.
    pub max_period: Option<f64>,
    /// Park refused admissions in a FIFO wait queue and retry them
    /// whenever a retire/reweight frees capacity (default: reject
    /// outright).
    pub queue_rejected: bool,
    /// Retry budget per queued admission. Each failed retry backs the
    /// entry off exponentially (it sits out `2^attempts` drain passes,
    /// capped at 64) so one unadmittable application cannot starve the
    /// drain loop; after this many failed attempts the entry expires
    /// and is reported as [`RejectReason::Expired`] — visible, never
    /// silently dropped. Applications shed by fault recovery ride the
    /// same queue and the same budget.
    pub queue_max_attempts: u32,
    /// Budget for the asynchronous full-portfolio improver spawned after
    /// every adopted replan. `None` (default) disables background
    /// improvement.
    pub background: Option<Duration>,
    /// Amortisation horizon (in composed rounds) for adopting a
    /// background plan: adopt iff
    /// `(T_incumbent − T_candidate) · migration_horizon >
    /// migration_time`. Defaults to 10⁶ rounds (a streaming pipeline
    /// runs many millions).
    pub migration_horizon: f64,
    /// Threads for parallel seat probing inside the repair replanner
    /// (see [`RepairOptions`]). 1 (default) probes sequentially; more
    /// fan the candidate-seat scan of large deltas out across this many
    /// OS threads with a deterministic fold, so the batched admit path
    /// replans faster without changing its answer.
    pub probe_threads: usize,
    /// Attach per-application reports to every [`ServeReport`]
    /// (default). Off, reports carry an empty `per_app` and the hot
    /// path skips a full workload evaluation per event — query
    /// [`Service::app_reports`] explicitly when needed.
    pub per_app_reports: bool,
    /// Maintain the telemetry cells and the replan flight recorder
    /// (default). Off, every record call early-returns — the baseline
    /// of the serve-hot-path overhead comparison.
    pub telemetry: bool,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            repair: LocalSearchOptions { sweep: true, ..Default::default() },
            max_period: None,
            queue_rejected: false,
            queue_max_attempts: 8,
            background: None,
            migration_horizon: 1e6,
            probe_threads: 1,
            per_app_reports: true,
            telemetry: true,
        }
    }
}

/// The live state: what is currently being served.
struct Live {
    workload: Workload,
    mapping: Mapping,
    period: f64,
}

/// A queued (admission-refused or fault-shed) application awaiting
/// capacity, with its retry bookkeeping.
struct Queued {
    graph: StreamGraph,
    weight: f64,
    /// Failed admission attempts so far.
    attempts: u32,
    /// Drain passes this entry still sits out (exponential backoff).
    cooldown: u32,
}

/// An in-flight background portfolio solve.
struct Background {
    cancel: CancelToken,
    version: u64,
    handle: JoinHandle<Option<(Mapping, f64)>>,
}

/// The online serving loop. See the crate docs.
pub struct Service {
    spec: CellSpec,
    opts: ServiceOptions,
    live: Option<Live>,
    /// Stable handle of each live application, parallel to the
    /// workload's positional app list.
    handles: Vec<AppId>,
    next_handle: usize,
    /// Bumped on every workload change; stale background results are
    /// discarded by comparing against it.
    version: u64,
    queue: VecDeque<Queued>,
    background: Option<Background>,
    /// Delta of the most recent background adoption, surfaced by
    /// [`Service::poll_background`].
    last_adoption_delta: MappingDelta,
    /// Live per-PE health, mirrored into `repair_opts.avail` so every
    /// replan plans against real capacity ([`Service::fail_pe`]).
    avail: Availability,
    /// Replanner configuration derived from `opts` once at construction.
    repair_opts: RepairOptions,
    /// Reusable carry-over scratch — one seat per task, cleared and
    /// refilled per event instead of reallocated.
    scratch_partial: Vec<Option<PeId>>,
    /// Applications a recovery shed while the retry queue is disabled
    /// (cluster agents): the caller collects them via
    /// [`Service::take_shed`] and owns their re-placement.
    shed_out: Vec<(StreamGraph, f64)>,
    /// The metric cells and flight recorder, shared (`Arc`) so the
    /// pipeline planner thread records into the same cells across the
    /// thread move ([`Service::metrics_handle`]).
    metrics: Arc<ServeMetrics>,
}

impl Service {
    /// A service on the given platform with default options.
    pub fn new(spec: CellSpec) -> Self {
        Service::with_options(spec, ServiceOptions::default())
    }

    /// A service with explicit options.
    pub fn with_options(spec: CellSpec, opts: ServiceOptions) -> Self {
        assert!(spec.n_ppe() >= 1, "the serving loop needs a PPE to evict to");
        let repair_opts = RepairOptions {
            refine: opts.repair.clone(),
            probe_threads: opts.probe_threads.max(1),
            ..RepairOptions::default()
        };
        let avail = Availability::full(&spec);
        let metrics = Arc::new(ServeMetrics::new(opts.telemetry));
        Service {
            spec,
            opts,
            live: None,
            handles: Vec::new(),
            next_handle: 0,
            version: 0,
            queue: VecDeque::new(),
            background: None,
            last_adoption_delta: MappingDelta::default(),
            avail,
            repair_opts,
            scratch_partial: Vec::new(),
            shed_out: Vec::new(),
            metrics,
        }
    }

    /// The platform.
    pub fn spec(&self) -> &CellSpec {
        &self.spec
    }

    /// The served workload (`None` while idle).
    pub fn workload(&self) -> Option<&Workload> {
        self.live.as_ref().map(|l| &l.workload)
    }

    /// The incumbent mapping (`None` while idle).
    pub fn mapping(&self) -> Option<&Mapping> {
        self.live.as_ref().map(|l| &l.mapping)
    }

    /// Composed round period of the incumbent (`+∞` while idle).
    pub fn period(&self) -> f64 {
        self.live.as_ref().map_or(f64::INFINITY, |l| l.period)
    }

    /// Live applications as `(stable handle, name)` pairs, in workload
    /// order — a borrowing iterator, so listing allocates nothing.
    pub fn apps(&self) -> impl Iterator<Item = (AppId, &str)> + '_ {
        self.handles
            .iter()
            .zip(self.live.as_ref().map(|l| l.workload.apps()).into_iter().flatten())
            .map(|(&h, info)| (h, info.name.as_str()))
    }

    /// Number of live applications.
    pub fn n_apps(&self) -> usize {
        self.handles.len()
    }

    /// The stable handle of a live application by name.
    pub fn handle_of(&self, name: &str) -> Option<AppId> {
        let l = self.live.as_ref()?;
        let idx = l.workload.app_id(name)?;
        Some(self.handles[idx.index()])
    }

    /// Number of admissions waiting in the queue.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Live per-PE health: what the replanner currently plans against.
    pub fn availability(&self) -> &Availability {
        &self.avail
    }

    /// Hand over the applications a recovery shed while the retry queue
    /// was disabled ([`ServiceOptions::queue_rejected`] `false`): their
    /// drift-corrected source graphs and weights, in shed order. The
    /// caller (a cluster agent's coordinator) owns their re-placement;
    /// with queueing enabled this is always empty — shed apps park in
    /// the local queue instead.
    pub fn take_shed(&mut self) -> Vec<(StreamGraph, f64)> {
        std::mem::take(&mut self.shed_out)
    }

    /// The serving loop's metric cells and flight recorder.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// A shared handle to the metric cells — how the pipeline planner
    /// thread keeps recording into the same cells after the service
    /// moves into it ([`ServePipeline`](crate::ServePipeline)).
    pub fn metrics_handle(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.metrics)
    }

    /// One exposition snapshot of the serving loop: every metric cell,
    /// liveness gauges derived from the live bookkeeping (`serving`,
    /// `queued`, `stranded` and their conservation sum `tracked`), and
    /// per-application weight / retry-backoff rows. Render it with
    /// [`Snapshot::to_prometheus`] or [`Snapshot::to_json`].
    pub fn telemetry_snapshot(&self) -> Snapshot {
        let m = &self.metrics;
        let mut s = Snapshot::new();
        s.push_counter("cellstream_serve_events_total", &[], m.events_total.get());
        for (verdict, c) in [
            ("admitted", &m.admitted_total),
            ("applied", &m.applied_total),
            ("queued", &m.queued_total),
            ("rejected", &m.rejected_total),
            ("adopted", &m.adopted_total),
            ("nochange", &m.nochange_total),
        ] {
            s.push_counter("cellstream_serve_verdicts_total", &[("verdict", verdict)], c.get());
        }
        s.push_counter(
            "cellstream_serve_migration_bytes_total",
            &[],
            m.migration_bytes_total.get(),
        );
        s.push_counter("cellstream_serve_readmitted_total", &[], m.readmitted_total.get());
        s.push_counter("cellstream_serve_expired_total", &[], m.expired_total.get());
        s.push_counter("cellstream_serve_recoveries_total", &[], m.recoveries_total.get());
        s.push_counter("cellstream_serve_shed_total", &[], m.shed_total.get());
        s.push_counter(
            "cellstream_serve_evacuated_seats_total",
            &[],
            m.evacuated_seats_total.get(),
        );
        s.push_counter("cellstream_serve_batches_total", &[], m.batches_total.get());
        s.push_counter(
            "cellstream_serve_skipped_fusions_total",
            &[],
            m.skipped_fusions_total.get(),
        );
        s.push_counter("cellstream_serve_flight_recorded_total", &[], m.recorder.recorded());
        s.push_counter("cellstream_serve_flight_dropped_total", &[], m.recorder.dropped());
        s.push_histogram("cellstream_serve_replan_ns", &[], m.replan_ns.snapshot());
        s.push_histogram("cellstream_serve_batch_events", &[], m.batch_events.snapshot());
        s.push_histogram("cellstream_serve_ring_occupancy", &[], m.ring_occupancy.snapshot());
        // liveness gauges from the live bookkeeping, not the cells: the
        // conservation law `tracked = serving + queued + stranded` ties
        // four independent structures together (see tests/invariants.rs)
        let serving = self.live.as_ref().map_or(0, |l| l.workload.n_apps());
        s.push_gauge("cellstream_serve_serving", &[], serving as f64);
        s.push_gauge("cellstream_serve_queued", &[], self.queue.len() as f64);
        s.push_gauge("cellstream_serve_stranded", &[], self.shed_out.len() as f64);
        s.push_gauge(
            "cellstream_serve_tracked",
            &[],
            (self.handles.len() + self.queue.len() + self.shed_out.len()) as f64,
        );
        s.push_gauge("cellstream_serve_period_seconds", &[], self.period());
        s.push_gauge("cellstream_serve_queue_depth", &[], m.queue_depth.get());
        s.push_gauge("cellstream_serve_dead_pes", &[], self.avail.dead_pes().count() as f64);
        if let Some(l) = &self.live {
            for a in l.workload.apps() {
                s.push_gauge("cellstream_serve_app_weight", &[("app", a.name.as_str())], a.weight);
            }
        }
        for q in &self.queue {
            let app = q.graph.name();
            s.push_gauge("cellstream_serve_queue_attempts", &[("app", app)], f64::from(q.attempts));
            s.push_gauge("cellstream_serve_queue_cooldown", &[("app", app)], f64::from(q.cooldown));
        }
        s
    }

    /// Stamp the retry-queue view onto a finished report (its
    /// `queue_depth` / `queue_backoff` fields) and hand it to the
    /// metric cells: every public per-event operation returns through
    /// here, so telemetry sees exactly one entry per event.
    fn finish(&self, mut r: ServeReport) -> ServeReport {
        r.queue_depth = self.queue.len();
        r.queue_backoff = self
            .queue
            .iter()
            .map(|q| QueueBackoff {
                app: q.graph.name().to_owned(),
                attempts: q.attempts,
                cooldown: q.cooldown,
            })
            .collect();
        self.metrics.note_report(&r, self.shed_out.len());
        r
    }

    /// Per-application reports of the incumbent (empty while idle).
    pub fn app_reports(&self) -> Vec<AppReport> {
        let mut out = Vec::new();
        self.app_reports_into(&mut out);
        out
    }

    /// [`app_reports`](Self::app_reports) into a caller-owned buffer:
    /// `out` is cleared and refilled, so a monitoring loop reuses one
    /// allocation across polls.
    pub fn app_reports_into(&self, out: &mut Vec<AppReport>) {
        out.clear();
        if let Some(l) = &self.live {
            out.extend(
                evaluate_workload_with(&l.workload, &self.spec, &self.avail, &l.mapping)
                    .expect("incumbents stay structurally valid") // check:allow(hot-path-panic): incumbent mappings were validated when committed
                    .per_app,
            );
        }
    }

    /// Process one event. Refused admissions come back as
    /// [`Verdict::Rejected`]/[`Verdict::Queued`] reports; only malformed
    /// events (unknown handles) are errors.
    pub fn process(&mut self, ev: Event) -> Result<ServeReport, ServeError> {
        let res = match ev {
            Event::Admit(g, w) => Ok(self.admit(&g, w)),
            Event::Retire(id) => self.retire(id),
            Event::Reweight(id, w) => self.reweight(id, w),
            Event::PeFailed(pe) => self.fail_pe(pe),
            Event::PeRestored(pe) => self.restore_pe(pe),
            Event::CostDrift(id, f) => self.cost_drift(id, f),
        };
        #[cfg(feature = "debug_invariants")]
        self.check_invariants("process");
        res
    }

    /// Process a burst of events as **one replan**. Events apply in
    /// canonical *retire → reweight → admit* order (stable within each
    /// class) — the order that frees capacity before asking for more —
    /// and the final state matches processing them one at a time in
    /// that order: same composed workload, and the repair planner sees
    /// the same retained seats either way, because new tasks always
    /// start unseated and surviving tasks keep their current seat. The
    /// burst pays one workload recomposition, one carry-over and one
    /// repair instead of one of each per event; that fusion is the
    /// serving hot path's throughput.
    ///
    /// With a per-instance guarantee configured
    /// ([`ServiceOptions::max_period`]), admission control needs a
    /// candidate replan per admission to refuse selectively, so the
    /// burst degrades to sequential processing — same canonical order,
    /// same outcome, no fusion speedup.
    ///
    /// Handles are validated upfront against the canonical order before
    /// anything applies: an unknown handle — including a reweight of a
    /// handle the same burst retires, which the canonical order
    /// resolves as retire-first — fails the whole burst with
    /// [`ServeError::UnknownApp`].
    ///
    /// Fault events ([`Event::PeFailed`] / [`Event::PeRestored`] /
    /// [`Event::CostDrift`]) rank *first* — they report reality, which
    /// precedes requests — and force the sequential path: recovery can
    /// shed applications mid-burst, which does not fuse.
    pub fn process_batch(&mut self, events: &[Event]) -> Result<BatchReport, ServeError> {
        // canonical application order: faults, retires, reweights, admits
        let rank = |ev: &Event| match ev {
            Event::PeFailed(_) | Event::PeRestored(_) | Event::CostDrift(..) => 0u8,
            Event::Retire(_) => 1,
            Event::Reweight(..) => 2,
            Event::Admit(..) => 3,
        };
        let mut order: Vec<usize> = (0..events.len()).collect();
        order.sort_by_key(|&i| rank(&events[i]));

        // upfront validation: the whole burst applies or none of it does
        let mut faults = false;
        let mut sim = self.handles.clone();
        for &i in &order {
            match &events[i] {
                Event::Retire(id) => {
                    let pos =
                        sim.iter().position(|h| h == id).ok_or(ServeError::UnknownApp(*id))?;
                    sim.remove(pos);
                }
                Event::Reweight(id, _) => {
                    if !sim.contains(id) {
                        return Err(ServeError::UnknownApp(*id));
                    }
                }
                Event::Admit(..) => {}
                Event::PeFailed(pe) => {
                    if pe.index() >= self.spec.n_pes() || !self.spec.is_spe(*pe) {
                        return Err(ServeError::InvalidPe(*pe));
                    }
                    faults = true;
                }
                Event::PeRestored(pe) => {
                    if pe.index() >= self.spec.n_pes() {
                        return Err(ServeError::InvalidPe(*pe));
                    }
                    faults = true;
                }
                Event::CostDrift(id, _) => {
                    if !sim.contains(id) {
                        return Err(ServeError::UnknownApp(*id));
                    }
                    faults = true;
                }
            }
        }

        if self.opts.max_period.is_some() || faults {
            return self.process_batch_sequential(events, &order);
        }

        let adopted = self.interrupt_background();
        let started = Instant::now();
        let prev = self.live.take();
        let mut handles = std::mem::take(&mut self.handles);
        let mut work = prev.as_ref().map(|l| l.workload.clone());
        let mut next = self.next_handle;
        let mut outcomes: Vec<(EventLabel, Verdict)> = Vec::with_capacity(events.len());
        let mut applied = 0usize;

        match work.as_mut() {
            Some(w) => {
                // one mutation guard over the whole burst: the composed
                // graph is rebuilt once, at commit
                let mut b = w.batch();
                for &i in &order {
                    match &events[i] {
                        Event::Retire(id) => {
                            let pos =
                                handles.iter().position(|h| h == id).expect("validated upfront"); // check:allow(hot-path-panic): handle membership validated before the batch formed
                            b.retire(AppId(pos)).expect("position in range"); // check:allow(hot-path-panic): position comes from the handle table just searched
                            handles.remove(pos);
                            outcomes.push((EventLabel::retire(*id), Verdict::Applied));
                            applied += 1;
                        }
                        Event::Reweight(id, weight) => {
                            if !(weight.is_finite() && *weight > 0.0) {
                                outcomes.push((
                                    EventLabel::reweight(*id, *weight),
                                    Verdict::Rejected(RejectReason::InvalidWeight(*weight)),
                                ));
                                continue;
                            }
                            let pos =
                                handles.iter().position(|h| h == id).expect("validated upfront"); // check:allow(hot-path-panic): handle membership validated before the batch formed
                            b.reweight(AppId(pos), *weight).expect("weight pre-validated"); // check:allow(hot-path-panic): weight was validated at submission
                            outcomes.push((EventLabel::reweight(*id, *weight), Verdict::Applied));
                            applied += 1;
                        }
                        Event::Admit(g, weight) => {
                            if !(weight.is_finite() && *weight > 0.0) {
                                outcomes.push((
                                    EventLabel::admit(*weight),
                                    Verdict::Rejected(RejectReason::InvalidWeight(*weight)),
                                ));
                                continue;
                            }
                            // unique name: a second "video" becomes
                            // "video#<handle>"
                            let unique = match b.contains(g.name()) {
                                true => g.renamed(format!("{}#{next}", g.name())),
                                false => g.clone(),
                            };
                            b.add(&unique, *weight).expect("weight validated, name uniquified"); // check:allow(hot-path-panic): weight validated and the name uniquified at admission
                            let handle = AppId(next);
                            next += 1;
                            handles.push(handle);
                            outcomes.push((
                                EventLabel::admit(*weight).with_app(handle),
                                Verdict::Admitted(handle),
                            ));
                            applied += 1;
                        }
                        Event::PeFailed(_) | Event::PeRestored(_) | Event::CostDrift(..) => {
                            unreachable!("fault events take the sequential path")
                        }
                    }
                }
                // the burst's one recomposition; an emptied workload is
                // dropped below (handles decide)
                if b.n_apps() > 0 {
                    b.commit().expect("non-empty batches recompose"); // check:allow(hot-path-panic): a non-empty batch always recomposes
                }
            }
            None => {
                // idle service: validation left only admits in the burst
                let mut b = Workload::builder("served");
                for &i in &order {
                    let Event::Admit(g, weight) = &events[i] else {
                        unreachable!("an idle service has no handles to retire or reweight")
                    };
                    if !(weight.is_finite() && *weight > 0.0) {
                        outcomes.push((
                            EventLabel::admit(*weight),
                            Verdict::Rejected(RejectReason::InvalidWeight(*weight)),
                        ));
                        continue;
                    }
                    let unique = match b.contains(g.name()) {
                        true => g.renamed(format!("{}#{next}", g.name())),
                        false => g.clone(),
                    };
                    b.push(&unique, *weight).expect("weight validated, name uniquified"); // check:allow(hot-path-panic): weight validated and the name uniquified at admission
                    let handle = AppId(next);
                    next += 1;
                    handles.push(handle);
                    outcomes.push((
                        EventLabel::admit(*weight).with_app(handle),
                        Verdict::Admitted(handle),
                    ));
                    applied += 1;
                }
                if applied > 0 {
                    // check:allow(hot-path-panic): each admitted workload was validated on entry
                    work = Some(b.build().expect("admitted workloads compose"));
                }
            }
        }
        let work = match handles.is_empty() {
            true => None, // the burst emptied (or never populated) the service
            false => work,
        };

        // the burst's one replan (skipped when nothing applied or the
        // burst emptied the service)
        let mut report = match work {
            Some(workload) if applied > 0 => {
                let (mapping, period) = match prev.as_ref() {
                    Some(p) => self.replan(p.workload.graph(), &p.mapping, workload.graph()),
                    None => {
                        let mut partial = std::mem::take(&mut self.scratch_partial);
                        partial.clear();
                        partial.resize(workload.graph().n_tasks(), None);
                        let out =
                            repair_with(workload.graph(), &self.spec, &partial, &self.repair_opts);
                        self.scratch_partial = partial;
                        out
                    }
                };
                let delta = match prev.as_ref() {
                    Some(p) => MappingDelta::between(
                        p.workload.graph(),
                        &p.mapping,
                        workload.graph(),
                        &mapping,
                    ),
                    None => MappingDelta {
                        placed: workload.graph().tasks().iter().map(|t| t.name.clone()).collect(),
                        ..MappingDelta::default()
                    },
                };
                self.version += 1;
                let per_app = self.per_app(&workload, &mapping);
                self.live = Some(Live { workload, mapping, period });
                let period = self.period();
                BatchReport {
                    events: outcomes,
                    replan: started.elapsed(),
                    delta,
                    period,
                    per_app,
                    background_adopted: adopted,
                    background_delta: MappingDelta::default(),
                    drained: Vec::new(),
                }
            }
            Some(workload) => {
                // nothing applied: restore the incumbent untouched
                debug_assert!(prev.is_some(), "an unchanged workload implies an incumbent");
                self.live = prev;
                drop(workload);
                BatchReport {
                    events: outcomes,
                    replan: started.elapsed(),
                    delta: MappingDelta::default(),
                    period: self.period(),
                    per_app: self.app_reports(),
                    background_adopted: adopted,
                    background_delta: MappingDelta::default(),
                    drained: Vec::new(),
                }
            }
            None => {
                // the burst emptied the service
                let delta = match prev.as_ref() {
                    Some(p) => MappingDelta {
                        dropped: p
                            .workload
                            .graph()
                            .tasks()
                            .iter()
                            .map(|t| t.name.clone())
                            .collect(),
                        ..MappingDelta::default()
                    },
                    None => MappingDelta::default(),
                };
                if applied > 0 {
                    self.version += 1;
                }
                BatchReport {
                    events: outcomes,
                    replan: started.elapsed(),
                    delta,
                    period: f64::INFINITY,
                    per_app: Vec::new(),
                    background_adopted: adopted,
                    background_delta: MappingDelta::default(),
                    drained: Vec::new(),
                }
            }
        };
        self.handles = handles;
        self.next_handle = next;
        report.background_delta = self.take_adoption_delta(adopted);

        self.drain_queue_into(&mut report.drained);
        if !report.drained.is_empty() {
            report.period = self.period();
            self.current_per_app_into(&mut report.per_app);
        }
        self.spawn_background();
        self.metrics.note_batch(&report, self.queue.len(), self.shed_out.len(), true);
        #[cfg(feature = "debug_invariants")]
        self.check_invariants("process_batch");
        Ok(report)
    }

    /// Deep audit (`debug_invariants` feature): the service's
    /// bookkeeping must be self-consistent — the handle table is
    /// parallel to (and exactly covers) the live workload, handles are
    /// unique and below the allocator watermark, the incumbent still
    /// evaluates feasible with its cached period, and nothing invalid
    /// sits in the admission queue. Panics with `ctx` on any breach.
    /// Allocating and O(V + E) — never call it outside the feature.
    #[cfg(feature = "debug_invariants")]
    pub fn check_invariants(&self, ctx: &str) {
        match &self.live {
            None => {
                assert!(self.handles.is_empty(), "{ctx}: handles without a live workload");
            }
            Some(l) => {
                assert_eq!(
                    self.handles.len(),
                    l.workload.n_apps(),
                    "{ctx}: handle table and workload disagree on the app count"
                );
                let rep = evaluate_workload_with(&l.workload, &self.spec, &self.avail, &l.mapping)
                    .expect("audited incumbents evaluate"); // check:allow(hot-path-panic): debug_invariants audit, not the serving path
                assert!(
                    rep.is_feasible(),
                    "{ctx}: incumbent mapping violates the placement constraints (live capacity)"
                );
                for pe in self.avail.dead_pes() {
                    assert_eq!(
                        l.mapping.count_on(pe),
                        0,
                        "{ctx}: incumbent seats tasks on dead {pe}"
                    );
                }
                let verified = rep.aggregate.period;
                let tol = 1e-9 * verified.abs().max(1e-12);
                assert!(
                    (verified - l.period).abs() <= tol,
                    "{ctx}: cached period {} drifted from verified {verified}",
                    l.period
                );
            }
        }
        for (i, a) in self.handles.iter().enumerate() {
            assert!(
                a.index() < self.next_handle,
                "{ctx}: handle {a} at or above the allocator watermark {}",
                self.next_handle
            );
            assert!(!self.handles[..i].contains(a), "{ctx}: duplicate handle {a}");
        }
        for q in &self.queue {
            assert!(
                q.weight.is_finite() && q.weight > 0.0,
                "{ctx}: queued app {} carries invalid weight {} (must be rejected, not queued)",
                q.graph.name(),
                q.weight
            );
            assert!(
                q.attempts < self.opts.queue_max_attempts,
                "{ctx}: queued app {} sits at {} attempts past the {} budget (must have expired)",
                q.graph.name(),
                q.attempts,
                self.opts.queue_max_attempts
            );
        }
        match &self.repair_opts.avail {
            None => assert!(
                self.avail.all_healthy(),
                "{ctx}: impaired platform but the replanner plans nominal capacity"
            ),
            Some(a) => assert_eq!(
                a, &self.avail,
                "{ctx}: replanner availability drifted from the service's"
            ),
        }
    }

    /// The guarantee-gated fallback: process the burst one event at a
    /// time in canonical order and fold the per-event reports into one
    /// [`BatchReport`] whose delta diffs the pre-burst incumbent
    /// against the final one (so background adoptions and drains are
    /// folded in).
    fn process_batch_sequential(
        &mut self,
        events: &[Event],
        order: &[usize],
    ) -> Result<BatchReport, ServeError> {
        let started = Instant::now();
        let prev = self.live.as_ref().map(|l| (l.workload.graph().clone(), l.mapping.clone()));
        let mut outcomes = Vec::with_capacity(events.len());
        let mut adopted = false;
        let mut drained = Vec::new();
        for &i in order {
            let mut r = match self.process(events[i].clone()) {
                Ok(r) => r,
                // upfront validation saw this handle alive, so the only
                // way it is gone now is a fault earlier in this burst
                // shedding the application — record a no-op, don't
                // abort a half-applied burst
                Err(ServeError::UnknownApp(_)) => {
                    outcomes.push((events[i].label(), Verdict::NoChange));
                    continue;
                }
                Err(e) => return Err(e),
            };
            adopted |= r.background_adopted;
            outcomes.push((r.event, r.verdict.clone()));
            drained.append(&mut r.drained);
        }
        let delta = match (prev.as_ref(), self.live.as_ref()) {
            (Some((pg, pm)), Some(l)) => {
                MappingDelta::between(pg, pm, l.workload.graph(), &l.mapping)
            }
            (Some((pg, _)), None) => MappingDelta {
                dropped: pg.tasks().iter().map(|t| t.name.clone()).collect(),
                ..MappingDelta::default()
            },
            (None, Some(l)) => MappingDelta {
                placed: l.workload.graph().tasks().iter().map(|t| t.name.clone()).collect(),
                ..MappingDelta::default()
            },
            (None, None) => MappingDelta::default(),
        };
        let mut per_app = Vec::new();
        self.current_per_app_into(&mut per_app);
        let report = BatchReport {
            events: outcomes,
            replan: started.elapsed(),
            delta,
            period: self.period(),
            per_app,
            background_adopted: adopted,
            background_delta: MappingDelta::default(),
            drained,
        };
        // the per-event reports above already fed the cells; this call
        // records only the batch-shape histograms (`fused: false`)
        self.metrics.note_batch(&report, self.queue.len(), self.shed_out.len(), false);
        Ok(report)
    }

    /// Admit an application (see [`Event::Admit`]).
    pub fn admit(&mut self, g: &StreamGraph, weight: f64) -> ServeReport {
        let adopted = self.interrupt_background();
        let mut report = self.try_admit(g, weight, self.opts.queue_rejected);
        report.background_adopted = adopted;
        report.background_delta = self.take_adoption_delta(adopted);
        // respawn even after a refusal: the interrupt cancelled the
        // previous solve, and the (unchanged) workload still deserves
        // its improver
        self.spawn_background();
        self.finish(report)
    }

    /// Retire an application by handle (see [`Event::Retire`]).
    pub fn retire(&mut self, id: AppId) -> Result<ServeReport, ServeError> {
        let idx = self.index_of(id)?;
        let adopted = self.interrupt_background();
        let started = Instant::now();
        let live = self.live.take().expect("index_of implies live"); // check:allow(hot-path-panic): index_of returned Some, so a live incumbent exists

        let mut report = if live.workload.n_apps() == 1 {
            // last application out: the service goes idle
            let delta = MappingDelta {
                dropped: live.workload.graph().tasks().iter().map(|t| t.name.clone()).collect(),
                ..MappingDelta::default()
            };
            self.handles.clear();
            self.version += 1;
            ServeReport {
                event: EventLabel::retire(id),
                verdict: Verdict::Applied,
                replan: started.elapsed(),
                delta,
                period: f64::INFINITY,
                per_app: Vec::new(),
                background_adopted: adopted,
                background_delta: MappingDelta::default(),
                drained: Vec::new(),
                recovery: None,
                queue_depth: 0,
                queue_backoff: Vec::new(),
            }
        } else {
            let mut workload = live.workload.clone();
            workload.retire(AppId(idx)).expect("index checked"); // check:allow(hot-path-panic): the index was just resolved against the live workload
            let (mapping, period) =
                self.replan(live.workload.graph(), &live.mapping, workload.graph());
            let delta = MappingDelta::between(
                live.workload.graph(),
                &live.mapping,
                workload.graph(),
                &mapping,
            );
            self.handles.remove(idx);
            self.version += 1;
            let per_app = self.per_app(&workload, &mapping);
            self.live = Some(Live { workload, mapping, period });
            ServeReport {
                event: EventLabel::retire(id),
                verdict: Verdict::Applied,
                replan: started.elapsed(),
                delta,
                period,
                per_app,
                background_adopted: adopted,
                background_delta: MappingDelta::default(),
                drained: Vec::new(),
                recovery: None,
                queue_depth: 0,
                queue_backoff: Vec::new(),
            }
        };
        report.background_delta = self.take_adoption_delta(adopted);

        self.drain_queue_into(&mut report.drained);
        if !report.drained.is_empty() {
            // drained admissions re-populated the service: the report
            // must describe the *post-event* state, not the momentary
            // idle/pre-drain one
            report.period = self.period();
            self.current_per_app_into(&mut report.per_app);
        }
        self.spawn_background();
        Ok(self.finish(report))
    }

    /// Change an application's throughput weight (see
    /// [`Event::Reweight`]). Guarantee-breaking reweights are refused
    /// with [`Verdict::Rejected`] and leave the incumbent untouched.
    pub fn reweight(&mut self, id: AppId, weight: f64) -> Result<ServeReport, ServeError> {
        let idx = self.index_of(id)?;
        let adopted = self.interrupt_background();
        let started = Instant::now();
        let mut incumbent = self.live.take().expect("index_of implies live"); // check:allow(hot-path-panic): index_of returned Some, so a live incumbent exists

        let mut verdict = Verdict::Applied;
        let mut delta = MappingDelta::default();
        if !(weight.is_finite() && weight > 0.0) {
            verdict = Verdict::Rejected(RejectReason::InvalidWeight(weight));
        } else {
            let mut workload = incumbent.workload.clone();
            workload.reweight(AppId(idx), weight).expect("index and weight pre-validated"); // check:allow(hot-path-panic): index and weight were validated by the caller
            let (mapping, period) =
                self.replan(incumbent.workload.graph(), &incumbent.mapping, workload.graph());
            match self.guarantee_violation(&workload, period) {
                Some(reason) => verdict = Verdict::Rejected(reason),
                None => {
                    delta = MappingDelta::between(
                        incumbent.workload.graph(),
                        &incumbent.mapping,
                        workload.graph(),
                        &mapping,
                    );
                    self.version += 1;
                    incumbent = Live { workload, mapping, period };
                }
            }
        }

        let per_app = self.per_app(&incumbent.workload, &incumbent.mapping);
        let period = incumbent.period;
        self.live = Some(incumbent);
        let mut report = ServeReport {
            event: EventLabel::reweight(id, weight),
            verdict,
            replan: started.elapsed(),
            delta,
            period,
            per_app,
            background_adopted: adopted,
            background_delta: MappingDelta::default(),
            drained: Vec::new(),
            recovery: None,
            queue_depth: 0,
            queue_backoff: Vec::new(),
        };
        report.background_delta = self.take_adoption_delta(adopted);
        if report.applied() {
            self.drain_queue_into(&mut report.drained);
            if !report.drained.is_empty() {
                report.period = self.period();
                self.current_per_app_into(&mut report.per_app);
            }
        }
        // respawn even after a refusal (the interrupt above cancelled
        // the previous solve)
        self.spawn_background();
        Ok(self.finish(report))
    }

    /// An SPE dies (see [`Event::PeFailed`]): mark it dead, evacuate
    /// every seat it held via a recovery replan (the evaluator reads
    /// dead-PE occupancy as a §3.2 violation, so the ordinary evict
    /// machinery does the evacuation), and shed lowest-weight
    /// applications into the retry queue if the shrunken platform cannot
    /// carry everyone within feasibility and guarantees. Idempotent on
    /// an already-dead PE. Failing the PPE — where the serving loop
    /// itself runs — or an out-of-range id is [`ServeError::InvalidPe`]:
    /// a dead PPE is a dead *node*, the cluster layer's event.
    pub fn fail_pe(&mut self, pe: PeId) -> Result<ServeReport, ServeError> {
        if pe.index() >= self.spec.n_pes() || !self.spec.is_spe(pe) {
            return Err(ServeError::InvalidPe(pe));
        }
        let adopted = self.interrupt_background();
        let started = Instant::now();
        let mut recovery = RecoveryReport::default();
        let (delta, period) = if self.avail.is_dead(pe) {
            (MappingDelta::default(), self.period())
        } else {
            self.avail.fail(pe);
            self.sync_avail();
            self.recover_incumbent(Some(pe), &mut recovery)
        };
        let mut report = ServeReport {
            event: EventLabel::pe_failed(pe),
            verdict: Verdict::Applied,
            replan: started.elapsed(),
            delta,
            period,
            per_app: Vec::new(),
            background_adopted: adopted,
            background_delta: MappingDelta::default(),
            drained: Vec::new(),
            recovery: Some(recovery),
            queue_depth: 0,
            queue_backoff: Vec::new(),
        };
        self.current_per_app_into(&mut report.per_app);
        report.background_delta = self.take_adoption_delta(adopted);
        self.spawn_background();
        Ok(self.finish(report))
    }

    /// A failed or degraded PE returns to nominal health (see
    /// [`Event::PeRestored`]): rebalance the incumbent onto the restored
    /// capacity and retry parked admissions — shed applications re-enter
    /// here. Idempotent on a healthy PE (the queue is still retried).
    pub fn restore_pe(&mut self, pe: PeId) -> Result<ServeReport, ServeError> {
        if pe.index() >= self.spec.n_pes() {
            return Err(ServeError::InvalidPe(pe));
        }
        let adopted = self.interrupt_background();
        let started = Instant::now();
        let mut recovery = RecoveryReport::default();
        let (delta, period) = if self.avail.factor(pe) == 1.0 {
            (MappingDelta::default(), self.period())
        } else {
            self.avail.restore(pe);
            self.sync_avail();
            self.recover_incumbent(None, &mut recovery)
        };
        let mut report = ServeReport {
            event: EventLabel::pe_restored(pe),
            verdict: Verdict::Applied,
            replan: started.elapsed(),
            delta,
            period,
            per_app: Vec::new(),
            background_adopted: adopted,
            background_delta: MappingDelta::default(),
            drained: Vec::new(),
            recovery: Some(recovery),
            queue_depth: 0,
            queue_backoff: Vec::new(),
        };
        report.background_delta = self.take_adoption_delta(adopted);
        // restored capacity is exactly what parked admissions wait for
        self.drain_queue_into(&mut report.drained);
        if !report.drained.is_empty() {
            report.period = self.period();
        }
        self.current_per_app_into(&mut report.per_app);
        self.spawn_background();
        Ok(self.finish(report))
    }

    /// An application's declared compute costs turn out wrong by
    /// `factor` (see [`Event::CostDrift`]): correct the declared costs
    /// in place — the correction sticks across every later
    /// recomposition — and re-validate the incumbent under them,
    /// shedding lowest-weight applications if reality no longer fits.
    /// Drift is a *measurement*, not a request: it cannot be refused,
    /// only absorbed (malformed factors are rejected, though).
    pub fn cost_drift(&mut self, id: AppId, factor: f64) -> Result<ServeReport, ServeError> {
        let idx = self.index_of(id)?;
        let adopted = self.interrupt_background();
        let started = Instant::now();
        let label = EventLabel::cost_drift(id, factor);
        if !(factor.is_finite() && factor > 0.0) {
            let mut report = ServeReport {
                event: label,
                verdict: Verdict::Rejected(RejectReason::InvalidFactor(factor)),
                replan: started.elapsed(),
                delta: MappingDelta::default(),
                period: self.period(),
                per_app: Vec::new(),
                background_adopted: adopted,
                background_delta: MappingDelta::default(),
                drained: Vec::new(),
                recovery: None,
                queue_depth: 0,
                queue_backoff: Vec::new(),
            };
            self.current_per_app_into(&mut report.per_app);
            report.background_delta = self.take_adoption_delta(adopted);
            self.spawn_background();
            return Ok(self.finish(report));
        }
        self.live
            .as_mut()
            .expect("index_of implies live") // check:allow(hot-path-panic): index_of returned Ok, so a live incumbent exists
            .workload
            .rescale_costs(AppId(idx), factor)
            .expect("index resolved and factor validated"); // check:allow(hot-path-panic): the index came from the handle table and the factor was just validated
        let mut recovery = RecoveryReport::default();
        let (delta, period) = self.recover_incumbent(None, &mut recovery);
        let mut report = ServeReport {
            event: label,
            verdict: Verdict::Applied,
            replan: started.elapsed(),
            delta,
            period,
            per_app: Vec::new(),
            background_adopted: adopted,
            background_delta: MappingDelta::default(),
            drained: Vec::new(),
            recovery: Some(recovery),
            queue_depth: 0,
            queue_backoff: Vec::new(),
        };
        self.current_per_app_into(&mut report.per_app);
        report.background_delta = self.take_adoption_delta(adopted);
        self.spawn_background();
        Ok(self.finish(report))
    }

    /// Conclude a finished background solve, if any: adopt it when it
    /// beats the incumbent including migration cost. Returns `None`
    /// while the solve is still running (it is *not* interrupted) or
    /// when none was started.
    pub fn poll_background(&mut self) -> Option<ServeReport> {
        if self.background.as_ref().is_some_and(|bg| !bg.handle.is_finished()) {
            return None;
        }
        let started = Instant::now();
        let adopted = self.reap_background(false)?;
        let delta = self.take_adoption_delta(adopted);
        let mut per_app = Vec::new();
        self.current_per_app_into(&mut per_app);
        Some(self.finish(ServeReport {
            event: EventLabel::background(),
            verdict: if adopted { Verdict::Adopted } else { Verdict::NoChange },
            replan: started.elapsed(),
            delta,
            period: self.period(),
            per_app,
            background_adopted: adopted,
            background_delta: MappingDelta::default(),
            drained: Vec::new(),
            recovery: None,
            queue_depth: 0,
            queue_backoff: Vec::new(),
        }))
    }

    /// Cancel and discard any in-flight background solve (used on
    /// shutdown; events do this implicitly).
    pub fn shutdown(&mut self) {
        let _ = self.interrupt_background();
    }

    // ---- internals --------------------------------------------------------

    /// Workload index of a stable handle.
    fn index_of(&self, id: AppId) -> Result<usize, ServeError> {
        self.handles.iter().position(|&h| h == id).ok_or(ServeError::UnknownApp(id))
    }

    /// Mirror the health mask into the replanner options. A fully
    /// healthy platform plans with `avail: None` — the zero-overhead
    /// nominal path, bitwise identical to pre-fault behaviour.
    fn sync_avail(&mut self) {
        self.repair_opts.avail = match self.avail.all_healthy() {
            true => None,
            false => Some(self.avail.clone()),
        };
    }

    /// The fault-recovery replan: re-repair the incumbent against live
    /// capacity, then shed lowest-weight applications into the retry
    /// queue until the survivors are feasible and meet their guarantees
    /// — graceful degradation instead of serving a §3.2-violating plan.
    /// Returns the seat delta versus the pre-fault incumbent and the
    /// recovered period; `recovery` accumulates what recovery cost.
    fn recover_incumbent(
        &mut self,
        evac_pe: Option<PeId>,
        recovery: &mut RecoveryReport,
    ) -> (MappingDelta, f64) {
        let Some(live) = self.live.take() else {
            return (MappingDelta::default(), f64::INFINITY);
        };
        if let Some(pe) = evac_pe {
            recovery.evacuated_seats =
                live.mapping.assignment().iter().filter(|&&s| s == pe).count();
        }
        let pre_graph = live.workload.graph().clone();
        let pre_mapping = live.mapping.clone();
        let mut workload = live.workload;
        let (mut mapping, mut period) = self.replan(&pre_graph, &pre_mapping, workload.graph());
        while !period.is_finite() || self.guarantee_violation(&workload, period).is_some() {
            let idx = workload
                .apps()
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.weight.total_cmp(&b.1.weight))
                .map(|(i, _)| i)
                .expect("a live workload has applications"); // check:allow(hot-path-panic): live workloads are non-empty by construction
            let weight = workload.apps()[idx].weight;
            // the *unscaled* source graph (drift corrections included):
            // what re-admission at the same weight wants
            let shed_graph = workload.source_graph(AppId(idx));
            recovery.shed.push(shed_graph.name().to_owned());
            // with queueing off (cluster agents: the coordinator owns
            // retry policy fleet-wide) the shed app leaves the node
            // entirely — the caller re-homes it via `take_shed`
            if self.opts.queue_rejected {
                self.queue.push_back(Queued {
                    graph: shed_graph,
                    weight,
                    attempts: 0,
                    cooldown: 0,
                });
            } else {
                self.shed_out.push((shed_graph, weight));
            }
            self.handles.remove(idx);
            if workload.n_apps() == 1 {
                // everything shed: the service goes idle, dropping the
                // whole pre-fault placement
                let delta = MappingDelta {
                    dropped: pre_graph.tasks().iter().map(|t| t.name.clone()).collect(),
                    ..MappingDelta::default()
                };
                self.version += 1;
                return (delta, f64::INFINITY);
            }
            let old_graph = workload.graph().clone();
            let old_mapping = mapping.clone();
            workload.retire(AppId(idx)).expect("index enumerated from the live app list"); // check:allow(hot-path-panic): the index was just enumerated against this workload
            let (m, p) = self.replan(&old_graph, &old_mapping, workload.graph());
            mapping = m;
            period = p;
        }
        let delta = MappingDelta::between(&pre_graph, &pre_mapping, workload.graph(), &mapping);
        recovery.migration_bytes = delta.migration_bytes;
        self.version += 1;
        self.live = Some(Live { workload, mapping, period });
        (delta, period)
    }

    /// Hand over the most recent adoption's delta (empty when nothing
    /// was adopted), clearing the stash so it is reported exactly once.
    fn take_adoption_delta(&mut self, adopted: bool) -> MappingDelta {
        if adopted {
            std::mem::take(&mut self.last_adoption_delta)
        } else {
            MappingDelta::default()
        }
    }

    /// The admission pipeline: candidate compose → repair → feasibility
    /// and guarantee probes → commit or refuse. Does not touch the
    /// background solver (callers do). `queue_on_refuse` parks refused
    /// applications for retry; it is off during queue drains so a failed
    /// retry does not re-enqueue through this path.
    fn try_admit(&mut self, g: &StreamGraph, weight: f64, queue_on_refuse: bool) -> ServeReport {
        let started = Instant::now();
        let label = EventLabel::admit(weight);
        if !(weight.is_finite() && weight > 0.0) {
            // malformed, not capacity-bound: never queued
            return self.refuse(
                label,
                started,
                RejectReason::InvalidWeight(weight),
                g,
                weight,
                false,
            );
        }

        // unique name: a second "video" becomes "video#<handle>"
        let unique = match self.live.as_ref().is_some_and(|l| l.workload.app_id(g.name()).is_some())
        {
            true => g.renamed(format!("{}#{}", g.name(), self.next_handle)),
            false => g.clone(),
        };

        // candidate workload
        let workload = match self.live.as_ref() {
            None => {
                let mut b = Workload::builder("served");
                b.push(&unique, weight).expect("weight validated, name fresh"); // check:allow(hot-path-panic): weight validated and the name is fresh
                b.build().expect("single-app workloads compose") // check:allow(hot-path-panic): a single freshly validated app always composes
            }
            Some(live) => {
                let mut w = live.workload.clone();
                w.add(&unique, weight).expect("weight validated, name uniquified"); // check:allow(hot-path-panic): weight validated and the name is uniquified
                w
            }
        };
        // repaired candidate mapping, seats carried through the scratch
        let mut partial = std::mem::take(&mut self.scratch_partial);
        match self.live.as_ref() {
            None => {
                partial.clear();
                partial.resize(workload.graph().n_tasks(), None);
            }
            Some(live) => carry_over_into(
                live.workload.graph(),
                &live.mapping,
                workload.graph(),
                &self.spec,
                &mut partial,
            ),
        }
        let (mapping, period) =
            repair_with(workload.graph(), &self.spec, &partial, &self.repair_opts);
        self.scratch_partial = partial;

        // admission control: feasibility (repair evicts until the §3.2
        // constraints hold, so an infinite period means no PPE fallback
        // existed) and every application's period guarantee
        if !period.is_finite() {
            return self.refuse(
                label,
                started,
                RejectReason::Infeasible,
                g,
                weight,
                queue_on_refuse,
            );
        }
        if let Some(reason) = self.guarantee_violation(&workload, period) {
            return self.refuse(label, started, reason, g, weight, queue_on_refuse);
        }

        // commit
        let delta = match self.live.as_ref() {
            Some(live) => MappingDelta::between(
                live.workload.graph(),
                &live.mapping,
                workload.graph(),
                &mapping,
            ),
            None => MappingDelta {
                placed: workload.graph().tasks().iter().map(|t| t.name.clone()).collect(),
                ..MappingDelta::default()
            },
        };
        let handle = AppId(self.next_handle);
        self.next_handle += 1;
        self.handles.push(handle);
        self.version += 1;
        let per_app = self.per_app(&workload, &mapping);
        self.live = Some(Live { workload, mapping, period });
        ServeReport {
            event: label.with_app(handle),
            verdict: Verdict::Admitted(handle),
            replan: started.elapsed(),
            delta,
            period,
            per_app,
            background_adopted: false,
            background_delta: MappingDelta::default(),
            drained: Vec::new(),
            recovery: None,
            queue_depth: 0,
            queue_backoff: Vec::new(),
        }
    }

    /// Build a refusal report, queueing the application when asked.
    fn refuse(
        &mut self,
        event: EventLabel,
        started: Instant,
        reason: RejectReason,
        g: &StreamGraph,
        weight: f64,
        queue: bool,
    ) -> ServeReport {
        let verdict = if queue {
            self.queue.push_back(Queued { graph: g.clone(), weight, attempts: 0, cooldown: 0 });
            Verdict::Queued
        } else {
            Verdict::Rejected(reason)
        };
        let mut per_app = Vec::new();
        self.current_per_app_into(&mut per_app);
        ServeReport {
            event,
            verdict,
            replan: started.elapsed(),
            delta: MappingDelta::default(),
            period: self.period(),
            per_app,
            background_adopted: false,
            background_delta: MappingDelta::default(),
            drained: Vec::new(),
            recovery: None,
            queue_depth: 0,
            queue_backoff: Vec::new(),
        }
    }

    /// The first application whose per-instance period guarantee the
    /// candidate round `period` would break.
    fn guarantee_violation(&self, w: &Workload, period: f64) -> Option<RejectReason> {
        let cap = self.opts.max_period?;
        for info in w.apps() {
            let per_instance = period / info.weight;
            if per_instance > cap * (1.0 + 1e-12) {
                return Some(RejectReason::Guarantee {
                    app: info.name.clone(),
                    period: per_instance,
                    guarantee: cap,
                });
            }
        }
        None
    }

    /// Retry queued admissions after capacity freed up: one rotation
    /// over the queue in FIFO order. An entry still cooling down from
    /// its exponential backoff sits the pass out; a retry that fails
    /// again deepens the backoff and re-queues — so one unadmittable
    /// application no longer blocks everything behind it — until the
    /// entry exhausts [`ServiceOptions::queue_max_attempts`] and expires
    /// with a visible [`RejectReason::Expired`] report. Reports (both
    /// admissions and expiries) land in the caller's buffer.
    fn drain_queue_into(&mut self, out: &mut Vec<ServeReport>) {
        let mut pass = self.queue.len();
        while pass > 0 {
            pass -= 1;
            let Some(mut q) = self.queue.pop_front() else { break };
            if q.cooldown > 0 {
                q.cooldown -= 1;
                self.queue.push_back(q);
                continue;
            }
            let mut report = self.try_admit(&q.graph, q.weight, false);
            if report.applied() {
                out.push(report);
            } else {
                q.attempts += 1;
                if q.attempts >= self.opts.queue_max_attempts {
                    report.verdict = Verdict::Rejected(RejectReason::Expired {
                        app: q.graph.name().to_owned(),
                        attempts: q.attempts,
                    });
                    out.push(report);
                } else {
                    q.cooldown = 1u32 << q.attempts.min(6);
                    self.queue.push_back(q);
                }
            }
        }
    }

    /// One warm-started replan: carry the incumbent's seats over into
    /// the reusable scratch vector and repair. Reuses the same
    /// carry-over allocation across every event the service processes.
    fn replan(
        &mut self,
        old_g: &StreamGraph,
        old_m: &Mapping,
        new_g: &StreamGraph,
    ) -> (Mapping, f64) {
        let mut partial = std::mem::take(&mut self.scratch_partial);
        carry_over_into(old_g, old_m, new_g, &self.spec, &mut partial);
        let out = repair_with(new_g, &self.spec, &partial, &self.repair_opts);
        self.scratch_partial = partial;
        out
    }

    /// Per-application reports of a candidate plan, gated by
    /// [`ServiceOptions::per_app_reports`].
    fn per_app(&self, w: &Workload, m: &Mapping) -> Vec<AppReport> {
        if !self.opts.per_app_reports {
            return Vec::new();
        }
        evaluate_workload_with(w, &self.spec, &self.avail, m)
            // check:allow(hot-path-panic): repair returns mappings valid by construction
            .expect("repair returns valid mappings")
            .per_app
    }

    /// Per-application reports of the incumbent into `out`, gated by
    /// [`ServiceOptions::per_app_reports`].
    fn current_per_app_into(&self, out: &mut Vec<AppReport>) {
        if self.opts.per_app_reports {
            self.app_reports_into(out);
        } else {
            out.clear();
        }
    }

    // ---- background improver ----------------------------------------------

    /// Launch the asynchronous full-portfolio re-solve for the current
    /// workload (no-op when disabled or idle). Any previous solve must
    /// already be reaped.
    fn spawn_background(&mut self) {
        let Some(budget) = self.opts.background else { return };
        let Some(live) = self.live.as_ref() else { return };
        debug_assert!(self.background.is_none(), "reap before spawn");
        let cancel = CancelToken::new();
        let ctx = PlanContext {
            seeds: vec![live.mapping.clone()],
            budget: Some(budget),
            cancel: cancel.clone(),
            ..Default::default()
        };
        let g = live.workload.graph().clone();
        let spec = self.spec.clone();
        let handle = std::thread::spawn(move || {
            Portfolio::standard().run_with(&g, &spec, &ctx).ok().map(|o| {
                let period = o.best.period();
                (o.best.mapping, period)
            })
        });
        self.background = Some(Background { cancel, version: self.version, handle });
    }

    /// Cancel any in-flight background solve, join it, and adopt its
    /// result if it is current and worth the migration. Returns whether
    /// adoption happened.
    fn interrupt_background(&mut self) -> bool {
        self.reap_background(true).unwrap_or(false)
    }

    /// Join the background solve (cancelling first when `abort`) and
    /// apply the adoption rule. `None` when no solve was in flight.
    fn reap_background(&mut self, abort: bool) -> Option<bool> {
        let bg = self.background.take()?;
        if abort {
            bg.cancel.cancel();
        }
        let result = bg.handle.join().ok().flatten();
        self.last_adoption_delta = MappingDelta::default();
        let (mapping, mut period) = result?;
        if bg.version != self.version {
            return Some(false); // stale: the workload changed meanwhile
        }
        let Some(live) = self.live.as_ref() else {
            return Some(false);
        };
        // the portfolio plans against the nominal platform; on an
        // impaired one its candidate must be re-scored (and possibly
        // refused) against live capacity before adoption
        if !self.avail.all_healthy() {
            match evaluate_with(live.workload.graph(), &self.spec, &self.avail, &mapping) {
                Ok(rep) if rep.is_feasible() => period = rep.period,
                _ => return Some(false),
            }
        }
        let live = self.live.as_mut().expect("checked above"); // check:allow(hot-path-panic): the incumbent was just observed present

        let gain = live.period - period;
        if gain <= 0.0 {
            return Some(false);
        }
        let delta = MappingDelta::between(
            live.workload.graph(),
            &live.mapping,
            live.workload.graph(),
            &mapping,
        );
        // migration-aware adoption: the one-off EIB transfer must pay
        // for itself within the amortisation horizon
        if gain * self.opts.migration_horizon <= delta.migration_time(&self.spec) {
            return Some(false);
        }
        live.mapping = mapping;
        live.period = period;
        self.last_adoption_delta = delta;
        Some(true)
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl OnlineSystem for Service {
    fn apply_event(&mut self, ev: &TraceEvent) -> EventOutcome {
        let report = match ev {
            TraceEvent::Admit { graph, weight } => Some(self.admit(graph, *weight)),
            TraceEvent::Retire { app } => {
                // check:allow(hot-path-panic): handle_of returned a live handle
                self.handle_of(app).map(|id| self.retire(id).expect("live handle"))
            }
            TraceEvent::Reweight { app, weight } => {
                // check:allow(hot-path-panic): handle_of returned a live handle
                self.handle_of(app).map(|id| self.reweight(id, *weight).expect("live handle"))
            }
            // a single-node service is fleet index 0; impairments aimed
            // at other nodes (and whole-node loss, which is the
            // cluster's event) degrade to "nothing happened"
            TraceEvent::PeFailed { node: 0, pe } => self.fail_pe(*pe).ok(),
            TraceEvent::PeRestored { node: 0, pe } => self.restore_pe(*pe).ok(),
            TraceEvent::CostDrift { app, factor } => {
                // check:allow(hot-path-panic): handle_of returned a live handle
                self.handle_of(app).map(|id| self.cost_drift(id, *factor).expect("live handle"))
            }
            TraceEvent::PeFailed { .. }
            | TraceEvent::PeRestored { .. }
            | TraceEvent::NodeFailed { .. }
            | TraceEvent::NodeRestored { .. } => None,
        };
        match report {
            Some(r) => EventOutcome {
                at: 0.0,
                label: ev.label(),
                applied: r.applied() || r.drained.iter().any(|d| d.applied()),
                queued: matches!(r.verdict, Verdict::Queued),
                replan: r.replan,
                migration_bytes: r.migration_bytes(),
                period: self.period(),
            },
            // unknown application: the trace is data, not a contract —
            // report "nothing happened" instead of panicking
            None => EventOutcome {
                at: 0.0,
                label: ev.label(),
                applied: false,
                queued: false,
                replan: Duration::ZERO,
                migration_bytes: 0.0,
                period: self.period(),
            },
        }
    }

    fn current(&self) -> Option<(&Workload, &Mapping)> {
        self.live.as_ref().map(|l| (&l.workload, &l.mapping))
    }

    fn spec(&self) -> &CellSpec {
        &self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellstream_core::evaluate;
    use cellstream_daggen::{chain, CostParams};
    use cellstream_graph::TaskSpec;
    use cellstream_platform::{ByteSize, CellSpecBuilder, PeId};

    fn app(name: &str, n: usize) -> StreamGraph {
        chain(name, n, &CostParams::default(), (n * 7 + 1) as u64)
    }

    /// An app whose single cross-task edge carries a huge buffer: fits
    /// nowhere but the PPE.
    fn fat_app(name: &str, kib: f64) -> StreamGraph {
        let mut b = StreamGraph::builder(name);
        let s = b.add_task(TaskSpec::new("s").ppe_cost(5e-6).spe_cost(1e-6));
        let t = b.add_task(TaskSpec::new("t").ppe_cost(5e-6).spe_cost(1e-6));
        b.add_edge(s, t, kib * 1024.0).unwrap();
        b.build().unwrap()
    }

    fn incumbent_feasible(svc: &Service) {
        if let (Some(w), Some(m)) = (svc.workload(), svc.mapping()) {
            let r = evaluate(w.graph(), svc.spec(), m).unwrap();
            assert!(r.is_feasible(), "incumbent must stay feasible: {:?}", r.violations);
            assert!((r.period - svc.period()).abs() <= 1e-9 * r.period.max(1e-12));
        }
    }

    #[test]
    fn lifecycle_admit_reweight_retire() {
        let mut svc = Service::new(CellSpec::ps3());
        assert!(svc.period().is_infinite());
        assert_eq!(svc.n_apps(), 0);

        let r1 = svc.process(Event::Admit(app("a", 5), 1.0)).unwrap();
        let a = r1.admitted().expect("admitted");
        assert_eq!(r1.delta.placed.len(), 5, "first admit places everything");
        assert_eq!(r1.delta.migration_bytes, 0.0, "fresh placements cost no migration");
        incumbent_feasible(&svc);

        let r2 = svc.process(Event::Admit(app("b", 4), 2.0)).unwrap();
        let b = r2.admitted().expect("admitted");
        assert_ne!(a, b, "stable handles are distinct");
        assert_eq!(svc.n_apps(), 2);
        assert_eq!(r2.per_app.len(), 2);
        incumbent_feasible(&svc);

        let r3 = svc.process(Event::Reweight(b, 3.0)).unwrap();
        assert_eq!(r3.verdict, Verdict::Applied);
        incumbent_feasible(&svc);
        // b now three times a's rate: per-instance periods differ 3x
        let reports = svc.app_reports();
        assert!((reports[0].period / reports[1].period - 3.0).abs() < 1e-9);

        let r4 = svc.process(Event::Retire(a)).unwrap();
        assert_eq!(r4.verdict, Verdict::Applied);
        assert!(r4.delta.dropped.iter().all(|t| t.starts_with("a/")));
        assert_eq!(svc.n_apps(), 1);
        // b's stable handle survives a's retirement
        assert_eq!(svc.handle_of("b"), Some(b));
        svc.process(Event::Reweight(b, 1.0)).unwrap();
        incumbent_feasible(&svc);

        let r5 = svc.process(Event::Retire(b)).unwrap();
        assert!(r5.period.is_infinite());
        assert!(svc.workload().is_none());
        // unknown handles are errors, not panics
        assert!(
            matches!(svc.process(Event::Retire(b)), Err(ServeError::UnknownApp(id)) if id == b)
        );
    }

    #[test]
    fn duplicate_names_are_uniquified() {
        let mut svc = Service::new(CellSpec::ps3());
        svc.process(Event::Admit(app("video", 3), 1.0)).unwrap();
        let r = svc.process(Event::Admit(app("video", 3), 1.0)).unwrap();
        assert!(r.admitted().is_some());
        let names: Vec<&str> = svc.apps().map(|(_, n)| n).collect();
        assert_eq!(names.len(), 2);
        assert_eq!(names[0], "video");
        assert!(names[1].starts_with("video#"), "{names:?}");
    }

    #[test]
    fn admission_never_violates_spe_local_store() {
        // one tiny SPE: each fat app fits only on the PPE
        let spec = CellSpecBuilder::default()
            .spes(1)
            .local_store(ByteSize::kib(96))
            .code_size(ByteSize::kib(64))
            .build()
            .unwrap();
        let mut svc = Service::new(spec);
        for i in 0..4 {
            let r = svc.admit(&fat_app(&format!("f{i}"), 64.0), 1.0);
            assert!(r.admitted().is_some(), "feasible via PPE fallback: {:?}", r.verdict);
            incumbent_feasible(&svc);
        }
        // everything fat sits on the PPE, not the overflowing SPE
        let m = svc.mapping().unwrap();
        let w = svc.workload().unwrap();
        let r = evaluate(w.graph(), svc.spec(), m).unwrap();
        assert!(r.is_feasible());
        let _ = m.count_on(PeId(1));
    }

    #[test]
    fn guarantee_rejects_and_queue_drains_on_retire() {
        // PPE-only capacity: each 2-task fat app costs 10us on the PPE;
        // guarantee caps the per-instance period at 25us, so the third
        // app cannot be admitted until one leaves
        let spec = CellSpecBuilder::default()
            .spes(1)
            .local_store(ByteSize::kib(96))
            .code_size(ByteSize::kib(64))
            .build()
            .unwrap();
        let opts =
            ServiceOptions { max_period: Some(25e-6), queue_rejected: true, ..Default::default() };
        let mut svc = Service::with_options(spec, opts);
        let a = svc.admit(&fat_app("a", 64.0), 1.0).admitted().expect("fits");
        let _b = svc.admit(&fat_app("b", 64.0), 1.0).admitted().expect("fits");
        let r = svc.admit(&fat_app("c", 64.0), 1.0);
        assert_eq!(r.verdict, Verdict::Queued, "third app breaks the 25us guarantee");
        assert_eq!(svc.queued(), 1);
        incumbent_feasible(&svc);

        // capacity frees: the queued app enters service
        let r = svc.retire(a).unwrap();
        assert_eq!(r.drained.len(), 1, "queued admission drained on retire");
        assert!(r.drained[0].admitted().is_some());
        assert_eq!(svc.queued(), 0);
        assert_eq!(svc.n_apps(), 2);
        incumbent_feasible(&svc);
    }

    #[test]
    fn retiring_the_last_app_reports_post_drain_state() {
        // the queued app enters service the moment the last live one
        // leaves; the retire report must describe that state, not the
        // momentary idle one between retire and drain
        let spec = CellSpecBuilder::default()
            .spes(1)
            .local_store(ByteSize::kib(96))
            .code_size(ByteSize::kib(64))
            .build()
            .unwrap();
        // one fat app fills the 15us budget alone: c queues behind a
        let opts =
            ServiceOptions { max_period: Some(15e-6), queue_rejected: true, ..Default::default() };
        let mut svc = Service::with_options(spec, opts);
        let a = svc.admit(&fat_app("a", 64.0), 1.0).admitted().expect("fits");
        let c = svc.admit(&fat_app("c", 64.0), 1.0);
        assert_eq!(c.verdict, Verdict::Queued);
        let r = svc.retire(a).unwrap();
        assert_eq!(r.drained.len(), 1, "c enters as the last app leaves");
        assert!(r.period.is_finite(), "the report reflects the drained admission");
        assert_eq!(r.per_app.len(), 1);
        assert_eq!(r.per_app[0].app, "c");
        assert_eq!(svc.n_apps(), 1);
    }

    #[test]
    fn guarantee_rejects_outright_without_queueing() {
        let opts = ServiceOptions { max_period: Some(1e-9), ..Default::default() };
        let mut svc = Service::with_options(CellSpec::ps3(), opts);
        let r = svc.admit(&app("a", 5), 1.0);
        assert!(
            matches!(r.verdict, Verdict::Rejected(RejectReason::Guarantee { .. })),
            "{:?}",
            r.verdict
        );
        assert!(svc.workload().is_none(), "rejected admissions leave the service idle");
        assert_eq!(svc.queued(), 0);
    }

    #[test]
    fn invalid_weights_are_rejected_not_queued() {
        let opts = ServiceOptions { queue_rejected: true, ..Default::default() };
        let mut svc = Service::with_options(CellSpec::ps3(), opts);
        let r = svc.admit(&app("a", 3), f64::NAN);
        assert!(matches!(r.verdict, Verdict::Rejected(RejectReason::InvalidWeight(_))));
        assert_eq!(svc.queued(), 0, "malformed admissions never queue");
        let a = svc.admit(&app("a", 3), 1.0).admitted().unwrap();
        let r = svc.reweight(a, -2.0).unwrap();
        assert!(matches!(r.verdict, Verdict::Rejected(RejectReason::InvalidWeight(_))));
        incumbent_feasible(&svc);
    }

    #[test]
    fn guarantee_breaking_reweight_is_refused_and_reverted() {
        let spec = CellSpecBuilder::default()
            .spes(1)
            .local_store(ByteSize::kib(96))
            .code_size(ByteSize::kib(64))
            .build()
            .unwrap();
        let opts = ServiceOptions { max_period: Some(25e-6), ..Default::default() };
        let mut svc = Service::with_options(spec, opts);
        let a = svc.admit(&fat_app("a", 64.0), 1.0).admitted().unwrap();
        let _b = svc.admit(&fat_app("b", 64.0), 1.0).admitted().unwrap();
        let before = svc.period();
        // weight 40 would need a 40x faster round than the cap allows
        let r = svc.reweight(a, 40.0).unwrap();
        assert!(matches!(r.verdict, Verdict::Rejected(RejectReason::Guarantee { .. })));
        assert_eq!(svc.period(), before, "refused reweight leaves the incumbent untouched");
        assert_eq!(svc.workload().unwrap().app(cellstream_graph::AppId(0)).weight, 1.0);
    }

    #[test]
    fn repair_reports_migration_bytes_when_seats_move() {
        let mut svc = Service::new(CellSpec::with_spes(2));
        svc.admit(&app("a", 6), 1.0);
        // grow the workload until something has to move; sum deltas
        let mut total_moved_bytes = 0.0;
        for i in 0..3 {
            let r = svc.admit(&app(&format!("x{i}"), 5), 1.0);
            assert!(r.admitted().is_some());
            total_moved_bytes += r.delta.migration_bytes;
            for mv in &r.delta.moved {
                assert!(mv.bytes > 0.0);
                assert_ne!(mv.from, mv.to);
            }
            incumbent_feasible(&svc);
        }
        // migration time is consistent with the byte count
        let t = MappingDelta { migration_bytes: total_moved_bytes, ..Default::default() }
            .migration_time(svc.spec());
        assert!(t >= 0.0);
    }

    /// Batched processing must land in the same final state as
    /// processing the same events one at a time in canonical order.
    fn assert_batch_matches_sequential(events: Vec<Event>, seed: &[(&str, usize, f64)]) {
        let mut batched = Service::new(CellSpec::ps3());
        let mut seq = Service::new(CellSpec::ps3());
        for &(name, n, w) in seed {
            let hb = batched.admit(&app(name, n), w).admitted().expect("seed fits");
            let hs = seq.admit(&app(name, n), w).admitted().expect("seed fits");
            assert_eq!(hb, hs, "seeding runs in lockstep");
        }
        let report = batched.process_batch(&events).expect("valid burst");

        // sequential reference: canonical order, same events
        let rank = |ev: &Event| match ev {
            Event::PeFailed(_) | Event::PeRestored(_) | Event::CostDrift(..) => 0u8,
            Event::Retire(_) => 1,
            Event::Reweight(..) => 2,
            Event::Admit(..) => 3,
        };
        let mut order: Vec<usize> = (0..events.len()).collect();
        order.sort_by_key(|&i| rank(&events[i]));
        for &i in &order {
            seq.process(events[i].clone()).expect("valid event");
        }

        let bn: Vec<(AppId, String)> = batched.apps().map(|(h, n)| (h, n.to_owned())).collect();
        let sn: Vec<(AppId, String)> = seq.apps().map(|(h, n)| (h, n.to_owned())).collect();
        assert_eq!(bn, sn, "handles and names agree");
        assert_eq!(batched.workload(), seq.workload(), "composed workloads agree");
        // both replans descend to a feasible local optimum over the SAME
        // composed workload, but from different warm starts (one fused
        // repair vs one per event) — plans may differ, quality must not
        // diverge wildly
        let (bp, sp) = (batched.period(), seq.period());
        assert_eq!(bp.is_finite(), sp.is_finite(), "batched {bp} vs sequential {sp}");
        if bp.is_finite() {
            assert!(bp <= 2.0 * sp && sp <= 2.0 * bp, "batched {bp} vs sequential {sp}");
        }
        incumbent_feasible(&batched);
        incumbent_feasible(&seq);
        assert_eq!(report.events.len(), events.len(), "every event gets a verdict");
    }

    #[test]
    fn batch_matches_sequential_processing() {
        // churn over a seeded service: retires + reweights + admits
        assert_batch_matches_sequential(
            vec![
                Event::Admit(app("d", 4), 1.0),
                Event::Retire(AppId(0)),
                Event::Reweight(AppId(1), 2.5),
                Event::Admit(app("e", 3), 2.0),
                Event::Retire(AppId(2)),
            ],
            &[("a", 5), ("b", 4), ("c", 3)].map(|(n, k)| (n, k, 1.0)),
        );
        // duplicate names uniquify identically
        assert_batch_matches_sequential(
            vec![Event::Admit(app("a", 3), 1.0), Event::Admit(app("a", 3), 2.0)],
            &[("a", 5, 1.0)],
        );
        // burst from idle: admits only
        assert_batch_matches_sequential(
            vec![Event::Admit(app("x", 4), 1.0), Event::Admit(app("y", 3), 3.0)],
            &[],
        );
        // invalid weights are rejected in place, rest applies
        assert_batch_matches_sequential(
            vec![
                Event::Admit(app("x", 3), f64::NAN),
                Event::Reweight(AppId(0), -1.0),
                Event::Admit(app("y", 3), 1.0),
            ],
            &[("a", 4, 1.0)],
        );
    }

    #[test]
    fn batch_empties_and_refills_the_service() {
        let mut svc = Service::new(CellSpec::ps3());
        let a = svc.admit(&app("a", 4), 1.0).admitted().unwrap();
        let b = svc.admit(&app("b", 3), 1.0).admitted().unwrap();
        let r = svc
            .process_batch(&[Event::Retire(a), Event::Retire(b), Event::Admit(app("c", 5), 2.0)])
            .unwrap();
        assert_eq!(r.applied(), 3);
        assert_eq!(svc.n_apps(), 1);
        let names: Vec<&str> = svc.apps().map(|(_, n)| n).collect();
        assert_eq!(names, ["c"]);
        incumbent_feasible(&svc);

        // emptying burst goes idle
        let c = svc.handle_of("c").unwrap();
        let r = svc.process_batch(&[Event::Retire(c)]).unwrap();
        assert!(r.period.is_infinite());
        assert!(svc.workload().is_none());
        assert!(r.delta.dropped.iter().all(|t| t.starts_with("c/")));
    }

    #[test]
    fn batch_validates_handles_upfront() {
        let mut svc = Service::new(CellSpec::ps3());
        let a = svc.admit(&app("a", 4), 1.0).admitted().unwrap();
        let bogus = AppId(99);
        let before = svc.period();
        let err = svc
            .process_batch(&[Event::Admit(app("b", 3), 1.0), Event::Reweight(bogus, 2.0)])
            .unwrap_err();
        assert_eq!(err, ServeError::UnknownApp(bogus));
        assert_eq!(svc.n_apps(), 1, "nothing applied");
        assert_eq!(svc.period(), before);

        // reweighting a handle the same burst retires resolves
        // retire-first and fails the burst
        let err = svc.process_batch(&[Event::Reweight(a, 2.0), Event::Retire(a)]).unwrap_err();
        assert_eq!(err, ServeError::UnknownApp(a));
        assert_eq!(svc.n_apps(), 1);
    }

    #[test]
    fn guarantee_gated_batches_fall_back_to_sequential() {
        let spec = CellSpecBuilder::default()
            .spes(1)
            .local_store(ByteSize::kib(96))
            .code_size(ByteSize::kib(64))
            .build()
            .unwrap();
        let opts = ServiceOptions { max_period: Some(25e-6), ..Default::default() };
        let mut svc = Service::with_options(spec, opts);
        let a = svc.admit(&fat_app("a", 64.0), 1.0).admitted().expect("fits");
        // b fits next to a, c breaks the guarantee and is refused —
        // selective admission needs per-event replans
        let r = svc
            .process_batch(&[
                Event::Admit(fat_app("b", 64.0), 1.0),
                Event::Admit(fat_app("c", 64.0), 1.0),
            ])
            .unwrap();
        let verdicts: Vec<bool> =
            r.events.iter().map(|(_, v)| matches!(v, Verdict::Admitted(_))).collect();
        assert_eq!(verdicts, [true, false], "b admitted, c refused");
        assert_eq!(svc.n_apps(), 2);
        incumbent_feasible(&svc);
        let _ = a;
    }

    #[test]
    fn background_improver_adopts_better_plans() {
        let opts = ServiceOptions {
            background: Some(Duration::from_millis(600)),
            // crippled foreground repair: no refinement at all, so the
            // background portfolio has something to improve
            repair: LocalSearchOptions { max_rounds: 0, ..Default::default() },
            ..Default::default()
        };
        let mut svc = Service::with_options(CellSpec::ps3(), opts);
        let r = svc.admit(&app("a", 8), 1.0);
        assert!(r.admitted().is_some());
        let rough = svc.period();
        // wait for the background portfolio to finish, then poll
        let deadline = Instant::now() + Duration::from_secs(30);
        let adoption = loop {
            match svc.poll_background() {
                Some(rep) => break rep,
                None => {
                    assert!(Instant::now() < deadline, "background solve never concluded");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        };
        match adoption.verdict {
            Verdict::Adopted => {
                assert!(svc.period() < rough, "adoption must improve the period");
                assert!(adoption.delta.n_moved() > 0);
            }
            Verdict::NoChange => {
                // legal only if the unrefined repair was already optimal
                assert!(svc.period() <= rough);
            }
            other => panic!("unexpected background verdict {other:?}"),
        }
        incumbent_feasible(&svc);
        // polling again finds nothing in flight
        assert!(svc.poll_background().is_none());
    }

    fn incumbent_feasible_live(svc: &Service) {
        if let (Some(w), Some(m)) = (svc.workload(), svc.mapping()) {
            let r = cellstream_core::evaluate_with(w.graph(), svc.spec(), svc.availability(), m)
                .unwrap();
            assert!(r.is_feasible(), "incumbent must stay feasible: {:?}", r.violations);
            assert!((r.period - svc.period()).abs() <= 1e-9 * r.period.max(1e-12));
        }
    }

    #[test]
    fn spe_failure_evacuates_and_restore_rebalances() {
        let mut svc = Service::new(CellSpec::ps3());
        svc.admit(&app("a", 8), 1.0).admitted().unwrap();
        svc.admit(&app("b", 6), 2.0).admitted().unwrap();
        let pre_period = svc.period();
        // pick an SPE that actually holds seats
        let dead = svc
            .mapping()
            .unwrap()
            .assignment()
            .iter()
            .copied()
            .find(|pe| pe.index() > 0)
            .expect("the plan uses SPEs");
        let seats = svc.mapping().unwrap().count_on(dead);

        let r = svc.fail_pe(dead).unwrap();
        let rec = r.recovery.as_ref().expect("fault events report recovery");
        assert_eq!(rec.evacuated_seats, seats);
        assert!(rec.shed.is_empty(), "a PS3 absorbs one SPE loss without shedding");
        assert_eq!(svc.mapping().unwrap().count_on(dead), 0, "dead PE fully evacuated");
        assert!(svc.period() >= pre_period - 1e-15, "less capacity cannot speed the round up");
        incumbent_feasible_live(&svc);

        // idempotent second failure
        let r2 = svc.fail_pe(dead).unwrap();
        assert_eq!(r2.recovery.as_ref().unwrap().evacuated_seats, 0);
        assert_eq!(r2.delta.n_moved(), 0);

        // restore: capacity returns, period never worsens
        let failed_period = svc.period();
        let r3 = svc.restore_pe(dead).unwrap();
        assert!(r3.recovery.is_some());
        assert!(svc.period() <= failed_period + 1e-15);
        incumbent_feasible_live(&svc);

        // the PPE cannot fail — the serving loop runs there
        assert!(matches!(svc.fail_pe(PeId(0)), Err(ServeError::InvalidPe(PeId(0)))));
        assert!(matches!(svc.fail_pe(PeId(99)), Err(ServeError::InvalidPe(PeId(99)))));
    }

    /// Cheap on the SPE, expensive on the PPE, tiny edge: fits
    /// anywhere, but PPE-only plans are 5x slower.
    fn lean_app(name: &str) -> StreamGraph {
        let mut b = StreamGraph::builder(name);
        let s = b.add_task(TaskSpec::new("s").ppe_cost(10e-6).spe_cost(2e-6));
        let t = b.add_task(TaskSpec::new("t").ppe_cost(10e-6).spe_cost(2e-6));
        b.add_edge(s, t, 1024.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn failure_sheds_lowest_weight_and_restore_readmits() {
        // one SPE + guarantee sized so both apps fit only with the SPE
        // alive: its failure must shed the lighter app, visibly.
        // PPE-only arithmetic: heavy(w=2) 40us + light(w=1) 20us = 60us
        // round, light's per-instance 60us > 30us cap; heavy alone runs
        // 40us, per-instance 20us — under the cap
        let spec = CellSpecBuilder::default()
            .spes(1)
            .local_store(ByteSize::kib(256))
            .code_size(ByteSize::kib(64))
            .build()
            .unwrap();
        let opts =
            ServiceOptions { max_period: Some(30e-6), queue_rejected: true, ..Default::default() };
        let mut svc = Service::with_options(spec, opts);
        svc.admit(&lean_app("heavy"), 2.0).admitted().expect("fits");
        svc.admit(&lean_app("light"), 1.0).admitted().expect("fits");
        assert_eq!(svc.n_apps(), 2);

        let r = svc.fail_pe(PeId(1)).unwrap();
        let rec = r.recovery.as_ref().unwrap();
        assert_eq!(rec.shed, ["light"], "lowest weight sheds first");
        assert_eq!(svc.n_apps(), 1);
        assert_eq!(svc.queued(), 1, "shed apps park in the retry queue");
        incumbent_feasible_live(&svc);

        // restoring the SPE re-admits the shed app
        let r2 = svc.restore_pe(PeId(1)).unwrap();
        assert_eq!(r2.drained.len(), 1, "shed app re-enters on restore");
        assert!(r2.drained[0].admitted().is_some());
        assert_eq!(svc.n_apps(), 2);
        assert_eq!(svc.queued(), 0);
        incumbent_feasible_live(&svc);
    }

    #[test]
    fn cost_drift_rescales_and_revalidates() {
        let mut svc = Service::new(CellSpec::ps3());
        let a = svc.admit(&app("a", 5), 1.0).admitted().unwrap();
        let before = svc.period();
        let r = svc.cost_drift(a, 3.0).unwrap();
        assert_eq!(r.verdict, Verdict::Applied);
        assert!(r.recovery.is_some());
        assert!(svc.period() > before, "3x heavier tasks slow the round");
        incumbent_feasible_live(&svc);
        // drift composes: 3 × (1/3) = declared costs again
        svc.cost_drift(a, 1.0 / 3.0).unwrap();
        assert!((svc.period() - before).abs() <= 1e-9 * before);
        // malformed factors are rejected, incumbent untouched
        let r = svc.cost_drift(a, f64::NAN).unwrap();
        assert!(matches!(r.verdict, Verdict::Rejected(RejectReason::InvalidFactor(_))));
        assert!((svc.period() - before).abs() <= 1e-9 * before);
        // unknown handles are errors
        assert!(matches!(svc.cost_drift(AppId(99), 2.0), Err(ServeError::UnknownApp(_))));
    }

    #[test]
    fn cost_drift_can_shed_under_guarantee() {
        let spec = CellSpecBuilder::default()
            .spes(1)
            .local_store(ByteSize::kib(96))
            .code_size(ByteSize::kib(64))
            .build()
            .unwrap();
        // PPE-only arithmetic: a(w=1) 10us + b(w=2) 20us = 30us round,
        // per-instance a 30us, b 15us — inside the 45us cap. After b's
        // costs quadruple: 10 + 80 = 90us, a's per-instance 90us > 45us
        // cap → shed a; b alone runs 80us, per-instance 40us — fits
        let opts =
            ServiceOptions { max_period: Some(45e-6), queue_rejected: true, ..Default::default() };
        let mut svc = Service::with_options(spec, opts);
        svc.admit(&fat_app("a", 64.0), 1.0).admitted().expect("fits");
        let b = svc.admit(&fat_app("b", 64.0), 2.0).admitted().expect("fits");
        // b's costs quadruple: the pair no longer fits the guarantee, so
        // the lighter app sheds (drift is reality — it cannot be refused)
        let r = svc.cost_drift(b, 4.0).unwrap();
        assert_eq!(r.verdict, Verdict::Applied);
        assert_eq!(r.recovery.as_ref().unwrap().shed, ["a"]);
        assert_eq!(svc.n_apps(), 1);
        assert_eq!(svc.queued(), 1);
        incumbent_feasible_live(&svc);
    }

    #[test]
    fn queue_retries_are_bounded_with_backoff_and_expiry() {
        // a queue entry that can never be admitted must expire after
        // queue_max_attempts, not starve the drain loop forever
        let spec = CellSpecBuilder::default()
            .spes(1)
            .local_store(ByteSize::kib(96))
            .code_size(ByteSize::kib(64))
            .build()
            .unwrap();
        let opts = ServiceOptions {
            max_period: Some(25e-6),
            queue_rejected: true,
            queue_max_attempts: 3,
            ..Default::default()
        };
        let mut svc = Service::with_options(spec, opts);
        let a = svc.admit(&fat_app("a", 64.0), 1.0).admitted().expect("fits");
        let _b = svc.admit(&fat_app("b", 64.0), 1.0).admitted().expect("fits");
        // hog can never fit under the guarantee next to a and b, and a
        // reweight churn keeps triggering drains
        let hog = fat_app("hog", 64.0);
        assert_eq!(svc.admit(&hog, 10.0).verdict, Verdict::Queued);
        assert_eq!(svc.queued(), 1);
        let mut expired = None;
        // each reweight triggers one drain pass; with backoff the entry
        // sits out 2^attempts passes between retries
        for _ in 0..20 {
            let r = svc.reweight(a, 1.0).unwrap();
            if let Some(exp) = r
                .drained
                .iter()
                .find(|d| matches!(d.verdict, Verdict::Rejected(RejectReason::Expired { .. })))
            {
                expired = Some(exp.clone());
                break;
            }
        }
        let exp = expired.expect("the hopeless entry expires within the retry budget");
        match &exp.verdict {
            Verdict::Rejected(RejectReason::Expired { app, attempts }) => {
                assert_eq!(app, "hog");
                assert_eq!(*attempts, 3);
            }
            other => panic!("unexpected verdict {other:?}"),
        }
        assert_eq!(svc.queued(), 0, "expired entries leave the queue for good");
        assert_eq!(svc.n_apps(), 2, "residents were never disturbed");
    }

    #[test]
    fn backoff_does_not_starve_later_queue_entries() {
        // head-of-line: an unadmittable heavy entry in front must not
        // block a small app behind it once capacity frees up
        let spec = CellSpecBuilder::default()
            .spes(1)
            .local_store(ByteSize::kib(96))
            .code_size(ByteSize::kib(64))
            .build()
            .unwrap();
        let opts = ServiceOptions {
            max_period: Some(25e-6),
            queue_rejected: true,
            queue_max_attempts: 8,
            ..Default::default()
        };
        let mut svc = Service::with_options(spec, opts);
        let a = svc.admit(&fat_app("a", 64.0), 1.0).admitted().expect("fits");
        let _b = svc.admit(&fat_app("b", 64.0), 1.0).admitted().expect("fits");
        assert_eq!(svc.admit(&fat_app("hog", 64.0), 40.0).verdict, Verdict::Queued);
        assert_eq!(svc.admit(&fat_app("small", 64.0), 1.0).verdict, Verdict::Queued);
        // retiring a frees room for "small" but never for "hog"
        let r = svc.retire(a).unwrap();
        let admitted: Vec<_> =
            r.drained.iter().filter_map(|d| d.admitted().map(|_| d.event.kind)).collect();
        assert_eq!(admitted.len(), 1, "small admitted past the blocked hog: {:?}", r.drained);
        assert!(svc.handle_of("small").is_some());
        assert_eq!(svc.n_apps(), 2);
        assert_eq!(svc.queued(), 1, "hog keeps waiting with deeper backoff");
    }

    #[test]
    fn new_events_abort_the_background_solve() {
        let opts = ServiceOptions {
            background: Some(Duration::from_secs(120)), // would run for minutes
            ..Default::default()
        };
        let mut svc = Service::with_options(CellSpec::ps3(), opts);
        svc.admit(&app("a", 10), 1.0);
        let started = Instant::now();
        // the admit spawned a 120s-budget solve; the next event must
        // cancel it cooperatively instead of waiting it out
        let r = svc.admit(&app("b", 8), 1.0);
        assert!(r.admitted().is_some());
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "event waited {:?} on a cancelled background solve",
            started.elapsed()
        );
        svc.shutdown();
        incumbent_feasible(&svc);
    }
}
