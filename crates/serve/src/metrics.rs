//! Serving-loop telemetry: the metric cells and flight recorder every
//! event path feeds, and the snapshot builder that exposes them.
//!
//! [`ServeMetrics`] is interior-mutable (atomics plus the recorder's
//! mutexed ring), so recording needs `&self` — the service records from
//! inside `&mut self` event handlers, and the pipeline planner thread
//! shares the same cells through [`Service::metrics_handle`]. The
//! record paths are allocation-free and panic-free: this module is part
//! of the serving hot path and is covered by the `hot-path-panic` and
//! `no-alloc` lint scopes plus the telemetry counting-allocator suite.
//!
//! [`Service::metrics_handle`]: crate::Service::metrics_handle

use crate::service::{BatchReport, RejectReason, ServeReport, Verdict};
use cellstream_telemetry::{Counter, FlightEvent, FlightRecorder, Gauge, Histogram};

/// A [`Verdict`] as a static exposition label.
pub fn verdict_name(v: &Verdict) -> &'static str {
    match v {
        Verdict::Admitted(_) => "admitted",
        Verdict::Queued => "queued",
        Verdict::Rejected(_) => "rejected",
        Verdict::Applied => "applied",
        Verdict::Adopted => "adopted",
        Verdict::NoChange => "nochange",
    }
}

/// Every metric cell the serving loop maintains. Field docs double as
/// the metric catalogue (see DESIGN.md "Observability").
#[derive(Debug)]
pub struct ServeMetrics {
    enabled: bool,
    /// Events processed (per-event ops plus fused batch events).
    pub events_total: Counter,
    /// Events ending [`Verdict::Admitted`].
    pub admitted_total: Counter,
    /// Events ending [`Verdict::Applied`].
    pub applied_total: Counter,
    /// Events ending [`Verdict::Queued`].
    pub queued_total: Counter,
    /// Events ending [`Verdict::Rejected`].
    pub rejected_total: Counter,
    /// Background polls ending [`Verdict::Adopted`].
    pub adopted_total: Counter,
    /// Events ending [`Verdict::NoChange`].
    pub nochange_total: Counter,
    /// Replan wall-clock latency, nanoseconds.
    pub replan_ns: Histogram,
    /// EIB migration traffic of every replan, bytes (rounded).
    pub migration_bytes_total: Counter,
    /// Retry-queue depth after the most recent event.
    pub queue_depth: Gauge,
    /// Queued admissions that entered service on a drain pass.
    pub readmitted_total: Counter,
    /// Queued admissions that exhausted their retry budget.
    pub expired_total: Counter,
    /// Fault events that ran the recovery replan.
    pub recoveries_total: Counter,
    /// Applications shed by recovery (queued or handed out).
    pub shed_total: Counter,
    /// Seats evacuated off failed PEs by recovery replans.
    pub evacuated_seats_total: Counter,
    /// `process_batch` calls (fused or sequential).
    pub batches_total: Counter,
    /// Events per `process_batch` call.
    pub batch_events: Histogram,
    /// Intake-ring occupancy observed by the pipeline planner at each
    /// batch start.
    pub ring_occupancy: Histogram,
    /// Batch cuts before `max_batch`: same-name dependencies and fault
    /// barriers that ended fusion early.
    pub skipped_fusions_total: Counter,
    /// The replan flight recorder (drain after a storm).
    pub recorder: FlightRecorder,
}

impl ServeMetrics {
    /// Fresh cells; `enabled` off turns every record call into an
    /// early-return (the overhead-comparison baseline).
    pub fn new(enabled: bool) -> ServeMetrics {
        ServeMetrics {
            enabled,
            events_total: Counter::new(),
            admitted_total: Counter::new(),
            applied_total: Counter::new(),
            queued_total: Counter::new(),
            rejected_total: Counter::new(),
            adopted_total: Counter::new(),
            nochange_total: Counter::new(),
            replan_ns: Histogram::new(),
            migration_bytes_total: Counter::new(),
            queue_depth: Gauge::new(),
            readmitted_total: Counter::new(),
            expired_total: Counter::new(),
            recoveries_total: Counter::new(),
            shed_total: Counter::new(),
            evacuated_seats_total: Counter::new(),
            batches_total: Counter::new(),
            batch_events: Histogram::new(),
            ring_occupancy: Histogram::new(),
            skipped_fusions_total: Counter::new(),
            recorder: FlightRecorder::default(),
        }
    }

    /// Whether recording is on ([`ServiceOptions::telemetry`]).
    ///
    /// [`ServiceOptions::telemetry`]: crate::ServiceOptions::telemetry
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Bump the per-verdict counter.
    // check: no-alloc
    fn note_verdict(&self, v: &Verdict) {
        match v {
            Verdict::Admitted(_) => self.admitted_total.inc(),
            Verdict::Queued => self.queued_total.inc(),
            Verdict::Rejected(_) => self.rejected_total.inc(),
            Verdict::Applied => self.applied_total.inc(),
            Verdict::Adopted => self.adopted_total.inc(),
            Verdict::NoChange => self.nochange_total.inc(),
        }
    }

    /// Count a drained sub-report: a queued admission re-entering
    /// service or expiring out of it.
    // check: no-alloc
    fn note_drained(&self, d: &ServeReport) {
        match &d.verdict {
            Verdict::Admitted(_) => self.readmitted_total.inc(),
            Verdict::Rejected(RejectReason::Expired { .. }) => self.expired_total.inc(),
            _ => {}
        }
    }

    /// Record one per-event report: counters, the replan histogram and
    /// one flight-recorder entry. `stranded` is the shed-ledger size
    /// after the event ([`Service::take_shed`] backlog).
    ///
    /// [`Service::take_shed`]: crate::Service::take_shed
    // check: no-alloc
    pub fn note_report(&self, r: &ServeReport, stranded: usize) {
        if !self.enabled {
            return;
        }
        self.events_total.inc();
        self.note_verdict(&r.verdict);
        self.replan_ns.record_duration(r.replan);
        let migration = r.migration_bytes();
        self.migration_bytes_total.add(migration as u64);
        self.queue_depth.set_usize(r.queue_depth);
        let mut shed = 0u32;
        if let Some(rec) = &r.recovery {
            self.recoveries_total.inc();
            shed = rec.shed.len() as u32;
            self.shed_total.add(u64::from(shed));
            self.evacuated_seats_total.add(rec.evacuated_seats as u64);
        }
        for d in &r.drained {
            self.note_drained(d);
        }
        self.recorder.record(FlightEvent {
            seq: 0,
            kind: r.event.kind,
            verdict: verdict_name(&r.verdict),
            replan_ns: u64::try_from(r.replan.as_nanos()).unwrap_or(u64::MAX),
            migration_bytes: migration,
            shed,
            stranded: stranded as u32,
            queued: r.queue_depth as u32,
            mask_delta: match r.event.kind {
                "pe failed" => -1,
                "pe restored" => 1,
                _ => 0,
            },
        });
    }

    /// Record one `process_batch` call. The sequential fallback already
    /// recorded its events one at a time through [`Self::note_report`],
    /// so only the fused path (`fused`) records per-event counters and
    /// the batch-level flight entry here.
    // check: no-alloc
    pub fn note_batch(&self, b: &BatchReport, queue_depth: usize, stranded: usize, fused: bool) {
        if !self.enabled {
            return;
        }
        self.batches_total.inc();
        self.batch_events.record(b.events.len() as u64);
        if !fused {
            return;
        }
        self.events_total.add(b.events.len() as u64);
        for (_, v) in &b.events {
            self.note_verdict(v);
        }
        self.replan_ns.record_duration(b.replan);
        let migration = b.migration_bytes();
        self.migration_bytes_total.add(migration as u64);
        self.queue_depth.set_usize(queue_depth);
        for d in &b.drained {
            self.note_drained(d);
        }
        self.recorder.record(FlightEvent {
            seq: 0,
            kind: "batch",
            verdict: "applied",
            replan_ns: u64::try_from(b.replan.as_nanos()).unwrap_or(u64::MAX),
            migration_bytes: migration,
            shed: 0,
            stranded: stranded as u32,
            queued: queue_depth as u32,
            mask_delta: 0,
        });
    }
}
