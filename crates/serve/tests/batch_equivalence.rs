//! Property test: `Service::process_batch` and one-at-a-time
//! `Service::process` (in the canonical retire → reweight → admit
//! order) agree on the **final service state** for random bursts over
//! random workloads — same surviving applications under the same
//! handles, names and weights, identically composed workload, both
//! incumbents feasible. The *mappings* may differ (one fused repair and
//! per-event repairs descend from different warm starts), so the period
//! is held to a 2× quality band rather than equality.

use cellstream_graph::{AppId, StreamGraph, TaskSpec};
use cellstream_platform::CellSpec;
use cellstream_serve::{Event, Service};
use proptest::prelude::*;

fn pipeline(name: &str, n: usize, cost_scale: u8) -> StreamGraph {
    let c = 1e-6 * (1.0 + f64::from(cost_scale));
    let mut b = StreamGraph::builder(name);
    let mut prev = None;
    for i in 0..n {
        let t = b.add_task(TaskSpec::new(format!("t{i}")).ppe_cost(c).spe_cost(c / 3.0));
        if let Some(p) = prev {
            b.add_edge(p, t, 1024.0).unwrap();
        }
        prev = Some(t);
    }
    b.build().unwrap()
}

/// One seed application: task count, cost scale, weight.
type SeedApp = (usize, u8, f64);

/// One admission in the burst: task count, cost scale, weight, and
/// whether it reuses the first seed's name (exercising the uniquify
/// path) instead of a fresh one.
type BurstAdmit = (usize, u8, f64, bool);

#[derive(Debug, Clone)]
struct Burst {
    seeds: Vec<SeedApp>,
    /// Per-seed retire mask.
    retire: Vec<bool>,
    /// Seed index → new weight; retired or repeated targets are skipped
    /// when the events are materialised.
    reweights: Vec<(usize, f64)>,
    admits: Vec<BurstAdmit>,
}

/// Mostly sane weights, occasionally an invalid zero: rejection
/// verdicts must agree between the two paths too.
fn arb_weight() -> impl Strategy<Value = f64> {
    (0u8..9, 0.25f64..4.0).prop_map(|(z, w)| if z == 0 { 0.0 } else { w })
}

fn arb_burst() -> impl Strategy<Value = Burst> {
    collection::vec((2usize..=5, 0u8..4, 0.5f64..3.0), 1..=3).prop_flat_map(|seeds| {
        let n = seeds.len();
        (
            Just(seeds),
            collection::vec(any::<bool>(), n..=n),
            collection::vec((0..n, arb_weight()), 0..=2),
            collection::vec((2usize..=4, 0u8..4, arb_weight(), any::<bool>()), 0..=2),
        )
            .prop_map(|(seeds, retire, reweights, admits)| Burst {
                seeds,
                retire,
                reweights,
                admits,
            })
    })
}

fn events_of(burst: &Burst, handles: &[AppId]) -> Vec<Event> {
    let mut seen_reweight: Vec<usize> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    for (k, &(t, c, w, dup)) in burst.admits.iter().enumerate() {
        let name = if dup { "seed0".to_owned() } else { format!("new{k}") };
        events.push(Event::Admit(pipeline(&name, t, c), w));
    }
    for &(i, w) in &burst.reweights {
        // a handle may be targeted by at most one reweight and must not
        // race its own retire — batch validation refuses such bursts up
        // front, which is its own (separately tested) contract
        if burst.retire[i] || seen_reweight.contains(&i) {
            continue;
        }
        seen_reweight.push(i);
        events.push(Event::Reweight(handles[i], w));
    }
    for (i, &gone) in burst.retire.iter().enumerate() {
        if gone {
            events.push(Event::Retire(handles[i]));
        }
    }
    events
}

fn assert_feasible(svc: &Service) {
    if let (Some(w), Some(m)) = (svc.workload(), svc.mapping()) {
        let report =
            cellstream_core::evaluate(w.graph(), svc.spec(), m).expect("structurally valid");
        assert!(report.is_feasible(), "infeasible incumbent: {:?}", report.violations);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_bursts_batch_like_sequential(burst in arb_burst()) {
        let mut batched = Service::new(CellSpec::ps3());
        let mut seq = Service::new(CellSpec::ps3());
        let mut handles = Vec::new();
        for (k, &(t, c, w)) in burst.seeds.iter().enumerate() {
            let g = pipeline(&format!("seed{k}"), t, c);
            let hb = batched.admit(&g, w).admitted().expect("seed fits a PS3");
            let hs = seq.admit(&g, w).admitted().expect("seed fits a PS3");
            prop_assert_eq!(hb, hs, "seeding runs in lockstep");
            handles.push(hb);
        }
        let events = events_of(&burst, &handles);
        prop_assume!(!events.is_empty());

        let report = batched.process_batch(&events).expect("valid burst");

        // sequential reference: canonical faults → retire → reweight →
        // admit order (this harness generates no fault events; the
        // fault-path equivalence is pinned by the invariants suite)
        let rank = |ev: &Event| match ev {
            Event::PeFailed(_) | Event::PeRestored(_) | Event::CostDrift(..) => 0u8,
            Event::Retire(_) => 1,
            Event::Reweight(..) => 2,
            Event::Admit(..) => 3,
        };
        let mut order: Vec<usize> = (0..events.len()).collect();
        order.sort_by_key(|&i| rank(&events[i]));
        for &i in &order {
            seq.process(events[i].clone()).expect("valid event");
        }

        let bn: Vec<(AppId, String)> = batched.apps().map(|(h, n)| (h, n.to_owned())).collect();
        let sn: Vec<(AppId, String)> = seq.apps().map(|(h, n)| (h, n.to_owned())).collect();
        prop_assert_eq!(bn, sn, "handles and names agree");
        prop_assert_eq!(batched.workload(), seq.workload(), "composed workloads agree");
        prop_assert_eq!(report.events.len(), events.len(), "every event gets a verdict");

        let (bp, sp) = (batched.period(), seq.period());
        prop_assert_eq!(bp.is_finite(), sp.is_finite(), "batched {} vs sequential {}", bp, sp);
        if bp.is_finite() {
            prop_assert!(bp <= 2.0 * sp && sp <= 2.0 * bp, "batched {} vs sequential {}", bp, sp);
        }
        assert_feasible(&batched);
        assert_feasible(&seq);
    }
}
