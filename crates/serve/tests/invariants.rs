//! `debug_invariants` replay harness: drive a [`Service`] through
//! random event sequences — single events, fused bursts, and injected
//! impairments (SPE failure/restore, cost drift), valid and
//! deliberately invalid — and let the deep audit wired into
//! `process`/`process_batch` (plus an explicit sweep after every step)
//! catch any divergence between the handle table, the live workload,
//! the cached period, the availability mask and the admission queue.
//!
//! Compiles to nothing without the feature:
//! `cargo test -p cellstream-serve --features debug_invariants`.
#![cfg(feature = "debug_invariants")]

use cellstream_graph::{AppId, StreamGraph, TaskSpec};
use cellstream_platform::CellSpec;
use cellstream_serve::{Event, Service};
use proptest::prelude::*;

fn pipeline(name: &str, n: usize, cost_scale: u8) -> StreamGraph {
    let c = 1e-6 * (1.0 + f64::from(cost_scale));
    let mut b = StreamGraph::builder(name);
    let mut prev = None;
    for i in 0..n {
        let t = b.add_task(TaskSpec::new(format!("t{i}")).ppe_cost(c).spe_cost(c / 3.0));
        if let Some(p) = prev {
            b.add_edge(p, t, 1024.0).unwrap();
        }
        prev = Some(t);
    }
    b.build().unwrap()
}

/// One scripted step, with indices resolved against the service's own
/// handle listing at replay time.
#[derive(Debug, Clone)]
enum Step {
    /// Admit a fresh pipeline: (tasks, cost scale, weight).
    Admit(usize, u8, f64),
    /// Retire the `k % live`-th handle (no-op while idle).
    Retire(usize),
    /// Reweight the `k % live`-th handle (occasionally to an invalid
    /// weight — the service must reject without corrupting state).
    Reweight(usize, f64),
    /// Retire a handle that was never issued: must error, must not
    /// corrupt state.
    RetireUnknown,
    /// Process several admissions as one fused burst.
    Burst(Vec<(usize, u8, f64)>),
    /// Fail the `k % n_spe`-th SPE (idempotent on a dead one).
    PeFail(usize),
    /// Restore the `k % n_spe`-th SPE (no-op on a live one).
    PeRestore(usize),
    /// Drift the `k % live`-th handle's costs (occasionally by an
    /// invalid factor — rejected without corrupting state).
    Drift(usize, f64),
}

fn arb_weight() -> impl Strategy<Value = f64> {
    (0u8..12, 0.25f64..4.0).prop_map(|(z, w)| if z == 0 { 0.0 } else { w })
}

fn arb_step() -> impl Strategy<Value = Step> {
    // the vendored proptest has no prop_oneof: draw every variant's
    // operands plus a selector and pick in a map (admissions weighted
    // double so services actually fill up)
    (
        0u8..9,
        (2usize..=6, 0u8..4, arb_weight()),
        0usize..8,
        collection::vec((2usize..=4, 0u8..4, arb_weight()), 1..=3),
    )
        .prop_map(|(sel, (t, c, w), k, burst)| match sel {
            0 | 1 => Step::Admit(t, c, w),
            2 => Step::Retire(k),
            3 => Step::Reweight(k, w),
            4 => Step::RetireUnknown,
            5 => Step::Burst(burst),
            6 => Step::PeFail(k),
            7 => Step::PeRestore(k),
            // w == 0.0 stands in for an invalid drift factor too
            _ => Step::Drift(k, if w == 0.0 { 0.0 } else { 0.25 + w }),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_event_sequences_uphold_the_service_invariants(
        steps in collection::vec(arb_step(), 1..=12)
    ) {
        let spec = CellSpec::ps3();
        let mut svc = Service::new(spec.clone());
        let mut fresh = 0usize;
        for step in steps {
            // queue drains can admit (and hand out handles) inside any
            // event, so resolve indices against the live listing instead
            // of hand-tracking admissions
            let live: Vec<AppId> = svc.apps().map(|(h, _)| h).collect();
            match step {
                Step::Admit(t, c, w) => {
                    let g = pipeline(&format!("app{fresh}"), t, c);
                    fresh += 1;
                    svc.process(Event::Admit(g, w)).expect("admissions never error");
                }
                Step::Retire(k) => {
                    if live.is_empty() {
                        continue;
                    }
                    let h = live[k % live.len()];
                    svc.process(Event::Retire(h)).expect("live handles retire");
                }
                Step::Reweight(k, w) => {
                    if live.is_empty() {
                        continue;
                    }
                    let h = live[k % live.len()];
                    svc.process(Event::Reweight(h, w)).expect("live handles reweight");
                }
                Step::RetireUnknown => {
                    let bogus = AppId(9_999);
                    prop_assert!(svc.process(Event::Retire(bogus)).is_err());
                }
                Step::Burst(admits) => {
                    let events: Vec<Event> = admits
                        .iter()
                        .map(|&(t, c, w)| {
                            let g = pipeline(&format!("app{fresh}"), t, c);
                            fresh += 1;
                            Event::Admit(g, w)
                        })
                        .collect();
                    svc.process_batch(&events).expect("admit-only bursts are valid");
                }
                Step::PeFail(k) => {
                    let spe = spec.pe(spec.n_ppe() + k % spec.n_spe());
                    svc.process(Event::PeFailed(spe)).expect("SPE faults never error");
                }
                Step::PeRestore(k) => {
                    let spe = spec.pe(spec.n_ppe() + k % spec.n_spe());
                    svc.process(Event::PeRestored(spe)).expect("SPE restores never error");
                }
                Step::Drift(k, f) => {
                    if live.is_empty() {
                        continue;
                    }
                    let h = live[k % live.len()];
                    // invalid factors come back as Rejected verdicts,
                    // not errors — either way the audit must hold
                    svc.process(Event::CostDrift(h, f)).expect("live handles drift");
                }
            }
            // the entry points audit themselves under the feature; this
            // explicit sweep additionally pins the post-event state the
            // harness observes between steps
            svc.check_invariants("harness sweep");

            // snapshot conservation: the liveness gauges come from four
            // independent structures (handle table, live workload,
            // retry queue, shed ledger) and their law must hold after
            // every event, faults and rejections included
            let snap = svc.telemetry_snapshot();
            let tracked = snap.gauge("cellstream_serve_tracked").expect("tracked gauge");
            let serving = snap.gauge("cellstream_serve_serving").expect("serving gauge");
            let queued = snap.gauge("cellstream_serve_queued").expect("queued gauge");
            let stranded = snap.gauge("cellstream_serve_stranded").expect("stranded gauge");
            prop_assert_eq!(tracked, serving + queued + stranded);
        }
    }
}
