//! Deterministic structured generators: chains, fork-join, diamonds.
//!
//! The paper's third evaluation graph is *"a simple chain graph with 50
//! tasks"*; fork-join and diamond shapes are used by the test-suites and
//! examples.

use crate::cost::CostParams;
use cellstream_graph::StreamGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A linear pipeline `T0 -> T1 -> … -> T{n-1}` with randomly drawn costs.
pub fn chain(name: &str, n: usize, costs: &CostParams, seed: u64) -> StreamGraph {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = StreamGraph::builder(name);
    let ids: Vec<_> =
        (0..n).map(|i| b.add_task(costs.draw_task(&mut rng, format!("T{i}")))).collect();
    for w in ids.windows(2) {
        b.add_edge(w[0], w[1], costs.draw_edge_bytes(&mut rng)).expect("chain edges are unique");
    }
    costs.attach_memory_traffic(&b.build().expect("chain is a DAG"))
}

/// Fork-join: one source fans out to `width` parallel workers which all
/// feed one sink. The classic shape of data-parallel stages inside a
/// stream (e.g. the per-subband filters of an audio encoder).
pub fn fork_join(name: &str, width: usize, costs: &CostParams, seed: u64) -> StreamGraph {
    assert!(width >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = StreamGraph::builder(name);
    let src = b.add_task(costs.draw_task(&mut rng, "fork".into()));
    let sink_spec = costs.draw_task(&mut rng, "join".into());
    let workers: Vec<_> =
        (0..width).map(|i| b.add_task(costs.draw_task(&mut rng, format!("W{i}")))).collect();
    let sink = b.add_task(sink_spec);
    for &w in &workers {
        b.add_edge(src, w, costs.draw_edge_bytes(&mut rng)).expect("unique");
        b.add_edge(w, sink, costs.draw_edge_bytes(&mut rng)).expect("unique");
    }
    costs.attach_memory_traffic(&b.build().expect("fork-join is a DAG"))
}

/// A stack of `depth` diamonds: each diamond is `a -> {b, c} -> d`, chained
/// `d_i -> a_{i+1}`. Stresses the buffer accounting, because every level
/// doubles the number of co-live data instances.
pub fn diamond(name: &str, depth: usize, costs: &CostParams, seed: u64) -> StreamGraph {
    assert!(depth >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = StreamGraph::builder(name);
    let mut prev_tail = None;
    for lvl in 0..depth {
        let a = b.add_task(costs.draw_task(&mut rng, format!("a{lvl}")));
        let left = b.add_task(costs.draw_task(&mut rng, format!("b{lvl}")));
        let right = b.add_task(costs.draw_task(&mut rng, format!("c{lvl}")));
        let d = b.add_task(costs.draw_task(&mut rng, format!("d{lvl}")));
        b.add_edge(a, left, costs.draw_edge_bytes(&mut rng)).expect("unique");
        b.add_edge(a, right, costs.draw_edge_bytes(&mut rng)).expect("unique");
        b.add_edge(left, d, costs.draw_edge_bytes(&mut rng)).expect("unique");
        b.add_edge(right, d, costs.draw_edge_bytes(&mut rng)).expect("unique");
        if let Some(tail) = prev_tail {
            b.add_edge(tail, a, costs.draw_edge_bytes(&mut rng)).expect("unique");
        }
        prev_tail = Some(d);
    }
    costs.attach_memory_traffic(&b.build().expect("diamond stack is a DAG"))
}

/// A tiny fixed three-task example matching the paper's Figure 3(a):
/// `T1 -> T2`, `T1 -> T3`, with `peek(T3) = 1`. Costs are `uniform_cost`
/// so doc-examples stay readable.
pub fn figure3() -> StreamGraph {
    use cellstream_graph::TaskSpec;
    let mut b = StreamGraph::builder("figure3");
    let t1 = b.add_task(TaskSpec::new("T1").uniform_cost(1e-6));
    let t2 = b.add_task(TaskSpec::new("T2").uniform_cost(1e-6));
    let t3 = b.add_task(TaskSpec::new("T3").uniform_cost(1e-6).peek(1));
    b.add_edge(t1, t2, 1024.0).expect("unique");
    b.add_edge(t1, t3, 1024.0).expect("unique");
    b.build().expect("figure 3 is a DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellstream_graph::algo;

    #[test]
    fn chain_shape() {
        let g = chain("c", 10, &CostParams::default(), 1);
        assert_eq!(g.n_tasks(), 10);
        assert_eq!(g.n_edges(), 9);
        assert_eq!(algo::critical_path_hops(&g), 9);
        assert_eq!(g.sources().count(), 1);
        assert_eq!(g.sinks().count(), 1);
    }

    #[test]
    fn single_task_chain() {
        let g = chain("c1", 1, &CostParams::default(), 1);
        assert_eq!(g.n_tasks(), 1);
        assert_eq!(g.n_edges(), 0);
        // a lone task both reads and writes memory
        let t = g.task(cellstream_graph::TaskId(0));
        assert!(t.read_bytes > 0.0 && t.write_bytes > 0.0);
    }

    #[test]
    fn fork_join_shape() {
        let g = fork_join("fj", 5, &CostParams::default(), 2);
        assert_eq!(g.n_tasks(), 7);
        assert_eq!(g.n_edges(), 10);
        assert_eq!(algo::critical_path_hops(&g), 2);
        let fork = g.find("fork").unwrap();
        assert_eq!(g.successors(fork).count(), 5);
    }

    #[test]
    fn diamond_shape() {
        let g = diamond("d", 3, &CostParams::default(), 3);
        assert_eq!(g.n_tasks(), 12);
        assert_eq!(g.n_edges(), 4 * 3 + 2);
        assert_eq!(g.sources().count(), 1);
        assert_eq!(g.sinks().count(), 1);
    }

    #[test]
    fn figure3_matches_paper() {
        let g = figure3();
        assert_eq!(g.n_tasks(), 3);
        let t3 = g.find("T3").unwrap();
        assert_eq!(g.task(t3).peek, 1);
        let t1 = g.find("T1").unwrap();
        assert_eq!(g.successors(t1).count(), 2);
    }

    #[test]
    fn deterministic() {
        let a = diamond("d", 4, &CostParams::default(), 77);
        let b = diamond("d", 4, &CostParams::default(), 77);
        assert_eq!(a, b);
    }
}
