//! Streaming attribute distributions for generated tasks and edges.

use cellstream_graph::{StreamGraph, TaskSpec};
use rand::rngs::StdRng;
use rand::Rng;

/// Distributions from which task costs, peeks and payloads are drawn.
///
/// The defaults are calibrated (see EXPERIMENTS.md) so that the paper's
/// CCR sweep interacts with all four resource classes of the Cell model
/// at once — compute, interface bandwidth, local-store capacity and DMA
/// slots — which is the regime the paper's §6.4 figures live in:
///
/// * `wPPE` is log-uniform in `[w_min, w_max]`;
/// * with probability `p_vector` a task is *vector-friendly*: its SPE
///   affinity (`wPPE/wSPE`) is uniform in `vector_affinity`; otherwise it
///   is *control-heavy* with affinity in `control_affinity` (< 1 ⇒ slower
///   on SPEs), reproducing the unrelated-machine mix of §2.1;
/// * `peek` is 0/1/2 with probabilities `p_peek` (Figure 5 shows peeks up
///   to 2); `stateful` with probability `p_stateful`;
/// * edge payloads are log-uniform in `[data_min, data_max]` bytes — CCR
///   rescaling multiplies them afterwards;
/// * stream sources `read` one payload-sized datum from main memory per
///   instance and sinks `write` one, so the stream enters and leaves the
///   Cell through the memory interface as on real hardware.
#[derive(Debug, Clone)]
pub struct CostParams {
    /// Lower bound of `wPPE` (seconds).
    pub w_min: f64,
    /// Upper bound of `wPPE` (seconds).
    pub w_max: f64,
    /// Probability a task is vector-friendly.
    pub p_vector: f64,
    /// SPE affinity range for vector-friendly tasks (values > 1).
    pub vector_affinity: (f64, f64),
    /// SPE affinity range for control-heavy tasks (values ≤ 1).
    pub control_affinity: (f64, f64),
    /// Probabilities of peek = 0, 1, 2 (must sum to 1).
    pub p_peek: [f64; 3],
    /// Probability a task is stateful.
    pub p_stateful: f64,
    /// Edge payload bounds in bytes (log-uniform).
    pub data_min: f64,
    /// Upper payload bound in bytes.
    pub data_max: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            // Sub-microsecond task costs: fine-grained stream filters, as
            // in the paper ("one instance consists only of a few bytes").
            // Jointly with the CCR convention this puts per-edge payloads
            // at a few kB once a graph is rescaled to CCR 0.775, so local
            // stores hold ~4 tasks each — the §6.3 regime where memory is
            // "one of the most significant factors".
            w_min: 0.12e-6,
            w_max: 1.2e-6,
            p_vector: 0.7,
            vector_affinity: (1.8, 3.5),
            control_affinity: (0.5, 0.95),
            p_peek: [0.6, 0.3, 0.1],
            p_stateful: 0.2,
            // A wide (16:1) payload spread: CCR rescaling preserves the
            // spread while setting the mean, and the spread is what lets
            // the MILP cherry-pick small-buffer tasks for the SPEs — the
            // knapsack quality gap behind Figure 7.
            data_min: 2.0 * 1024.0,
            data_max: 32.0 * 1024.0,
        }
    }
}

impl CostParams {
    /// Draw one task specification.
    pub fn draw_task(&self, rng: &mut StdRng, name: String) -> TaskSpec {
        let w_ppe = log_uniform(rng, self.w_min, self.w_max);
        let affinity = if rng.gen_bool(self.p_vector) {
            rng.gen_range(self.vector_affinity.0..=self.vector_affinity.1)
        } else {
            rng.gen_range(self.control_affinity.0..=self.control_affinity.1)
        };
        let w_spe = w_ppe / affinity;
        let r: f64 = rng.gen();
        let peek = if r < self.p_peek[0] {
            0
        } else if r < self.p_peek[0] + self.p_peek[1] {
            1
        } else {
            2
        };
        let mut spec = TaskSpec::new(name).ppe_cost(w_ppe).spe_cost(w_spe).peek(peek);
        if rng.gen_bool(self.p_stateful) {
            spec = spec.stateful();
        }
        spec
    }

    /// Draw one edge payload in bytes.
    pub fn draw_edge_bytes(&self, rng: &mut StdRng) -> f64 {
        log_uniform(rng, self.data_min, self.data_max).round()
    }

    /// Post-pass: give every source task a main-memory `read` and every
    /// sink a `write` equal to the mean payload of its adjacent edges (the
    /// stream has to come from and go to somewhere).
    pub fn attach_memory_traffic(&self, g: &StreamGraph) -> StreamGraph {
        let mean_payload = |edges: &[cellstream_graph::EdgeId]| -> f64 {
            if edges.is_empty() {
                (self.data_min + self.data_max) / 2.0
            } else {
                edges.iter().map(|&e| g.edge(e).data_bytes).sum::<f64>() / edges.len() as f64
            }
        };
        let mut b = StreamGraph::builder(g.name().to_string());
        for t in g.task_ids() {
            let task = g.task(t);
            let mut spec = TaskSpec {
                name: task.name.clone(),
                w_ppe: task.w_ppe,
                w_spe: task.w_spe,
                peek: task.peek,
                read_bytes: task.read_bytes,
                write_bytes: task.write_bytes,
                stateful: task.stateful,
            };
            if g.in_edges(t).is_empty() {
                spec.read_bytes = mean_payload(g.out_edges(t)).round();
            }
            if g.out_edges(t).is_empty() {
                spec.write_bytes = mean_payload(g.in_edges(t)).round();
            }
            b.add_task(spec);
        }
        for e in g.edges() {
            b.add_edge(e.src, e.dst, e.data_bytes).expect("copy of valid graph");
        }
        b.build().expect("copy of valid graph")
    }
}

fn log_uniform(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    assert!(lo > 0.0 && hi >= lo);
    let (a, b) = (lo.ln(), hi.ln());
    (rng.gen_range(a..=b)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn drawn_tasks_within_distributions() {
        let p = CostParams::default();
        let mut rng = StdRng::seed_from_u64(5);
        let mut saw_vector = false;
        let mut saw_control = false;
        for i in 0..400 {
            let t = p.draw_task(&mut rng, format!("t{i}"));
            assert!(t.w_ppe >= p.w_min * 0.999 && t.w_ppe <= p.w_max * 1.001);
            let aff = t.w_ppe / t.w_spe;
            if aff > 1.0 {
                saw_vector = true;
                assert!(aff <= p.vector_affinity.1 * 1.001);
            } else {
                saw_control = true;
                assert!(aff >= p.control_affinity.0 * 0.999);
            }
            assert!(t.peek <= 2);
        }
        assert!(saw_vector && saw_control, "both affinity classes should appear");
    }

    #[test]
    fn edge_bytes_in_range() {
        let p = CostParams::default();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..200 {
            let d = p.draw_edge_bytes(&mut rng);
            assert!(d >= p.data_min - 1.0 && d <= p.data_max + 1.0);
        }
    }

    #[test]
    fn memory_traffic_on_boundaries_only() {
        let g = crate::chain("c", 4, &CostParams::default(), 9);
        // chain() already attaches traffic: source reads, sink writes
        let src = g.sources().next().unwrap();
        let sink = g.sinks().next().unwrap();
        assert!(g.task(src).read_bytes > 0.0);
        assert!(g.task(sink).write_bytes > 0.0);
        for t in g.task_ids() {
            if t != src && t != sink {
                assert_eq!(g.task(t).read_bytes, 0.0);
                assert_eq!(g.task(t).write_bytes, 0.0);
            }
        }
    }
}
