//! Random streaming-task-graph generation.
//!
//! The paper evaluates on *"three random task graphs, obtained with the
//! DagGen generator"* (F. Suter, §6.2 [19]) plus a 50-task chain, each in
//! six communication-to-computation (CCR) variants. DagGen itself is a C
//! program; this crate reimplements its layer-based construction with the
//! same parameter vocabulary:
//!
//! * `n` — number of tasks;
//! * `fat` — graph width: mean layer width is `max(1, fat · √n)`;
//! * `regular` — regularity of layer widths (1.0 ⇒ all layers equal);
//! * `density` — probability of each possible edge between consecutive
//!   layers (beyond the spanning edge every non-source task receives);
//! * `jump` — maximum number of layers an edge may skip.
//!
//! On top of the topology, [`CostParams`] draws the streaming attributes:
//! unrelated PPE/SPE costs (a mix of *vector-friendly* tasks that run
//! faster on SPEs and *control-heavy* tasks that run faster on the PPE),
//! peek depths, stateful flags, edge payloads and the main-memory traffic
//! of sources/sinks. All randomness is `StdRng` under an explicit seed —
//! the same seed always yields the same graph.
//!
//! [`paper`] freezes the three evaluation graphs (seeds chosen once,
//! recorded in DESIGN.md) and derives their six CCR variants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod paper;
pub mod shapes;

pub use cost::CostParams;
pub use shapes::{chain, diamond, fork_join};

use cellstream_graph::{GraphError, StreamGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the DagGen-style layered generator.
#[derive(Debug, Clone)]
pub struct DagGenParams {
    /// Number of tasks.
    pub n: usize,
    /// Width factor: mean layer width is `max(1, fat · √n)`.
    pub fat: f64,
    /// Regularity of layer widths in `[0, 1]` (1 ⇒ uniform widths).
    pub regular: f64,
    /// Extra-edge probability between consecutive layers, in `[0, 1]`.
    pub density: f64,
    /// Maximum number of layers an edge may skip (1 ⇒ consecutive only).
    pub jump: usize,
    /// Cost/attribute distributions.
    pub costs: CostParams,
}

impl Default for DagGenParams {
    fn default() -> Self {
        DagGenParams {
            n: 50,
            fat: 0.5,
            regular: 0.6,
            density: 0.4,
            jump: 2,
            costs: CostParams::default(),
        }
    }
}

/// Generate a random streaming DAG. Deterministic in `(params, seed)`.
///
/// Structure guarantees: every non-source task has at least one
/// predecessor in an earlier layer (data flows forward from the sources),
/// and the graph is **weakly connected** — independent components are
/// stitched together with zero-byte control edges, because disconnected
/// sub-pipelines drift apart in any real execution and make "the
/// throughput of the application" ill-defined (the paper's graphs are
/// connected).
pub fn generate(name: &str, params: &DagGenParams, seed: u64) -> Result<StreamGraph, GraphError> {
    assert!(params.n >= 1, "need at least one task");
    assert!((0.0..=1.0).contains(&params.regular), "regular must be in [0,1]");
    assert!((0.0..=1.0).contains(&params.density), "density must be in [0,1]");
    assert!(params.jump >= 1, "jump must be >= 1");
    let mut rng = StdRng::seed_from_u64(seed);

    // ---- layer widths ----------------------------------------------------
    let mean_width = (params.fat * (params.n as f64).sqrt()).round().max(1.0) as usize;
    let spread = ((1.0 - params.regular) * mean_width as f64).round() as isize;
    let mut layers: Vec<usize> = Vec::new();
    let mut used = 0usize;
    while used < params.n {
        let jitter: isize = if spread > 0 { rng.gen_range(-spread..=spread) } else { 0 };
        let w = ((mean_width as isize + jitter).max(1) as usize).min(params.n - used);
        layers.push(w);
        used += w;
    }

    // ---- tasks -----------------------------------------------------------
    let mut b = StreamGraph::builder(name);
    let mut layer_members: Vec<Vec<cellstream_graph::TaskId>> = Vec::with_capacity(layers.len());
    let mut counter = 0usize;
    for &w in &layers {
        let mut members = Vec::with_capacity(w);
        for _ in 0..w {
            let spec = params.costs.draw_task(&mut rng, format!("T{counter}"));
            members.push(b.add_task(spec));
            counter += 1;
        }
        layer_members.push(members);
    }

    // ---- edges -----------------------------------------------------------
    // spanning edge: every task in layer i>0 gets one parent from layer i-1
    for li in 1..layer_members.len() {
        let parents = layer_members[li - 1].clone();
        for &t in &layer_members[li].clone() {
            let p = parents[rng.gen_range(0..parents.len())];
            let bytes = params.costs.draw_edge_bytes(&mut rng);
            b.add_edge(p, t, bytes)?;
        }
    }
    // density edges between consecutive layers, jump edges further out
    for li in 0..layer_members.len() {
        for dist in 1..=params.jump {
            if li + dist >= layer_members.len() {
                break;
            }
            // consecutive layers use full density; skipping edges get a
            // geometrically decaying probability, as in DagGen
            let p_edge = params.density / (1 << (dist - 1)) as f64;
            let (src_layer, dst_layer) =
                (layer_members[li].clone(), layer_members[li + dist].clone());
            for &s in &src_layer {
                for &d in &dst_layer {
                    if rng.gen_bool(p_edge.clamp(0.0, 1.0)) {
                        let bytes = params.costs.draw_edge_bytes(&mut rng);
                        // ignore duplicates from the spanning phase
                        let _ = b.add_edge(s, d, bytes);
                    }
                }
            }
        }
    }

    // ---- stitch weakly-connected components -------------------------------
    // Union-find over the edges added so far; any secondary component gets
    // a zero-byte control edge from the primary component's first source.
    let g = b.build()?;
    let mut parent: Vec<usize> = (0..params.n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    for e in g.edges() {
        let (a, z) = (find(&mut parent, e.src.index()), find(&mut parent, e.dst.index()));
        if a != z {
            parent[a] = z;
        }
    }
    let mut b = StreamGraph::builder(g.name().to_string());
    for t in g.tasks() {
        b.add_task(cellstream_graph::TaskSpec {
            name: t.name.clone(),
            w_ppe: t.w_ppe,
            w_spe: t.w_spe,
            peek: t.peek,
            read_bytes: t.read_bytes,
            write_bytes: t.write_bytes,
            stateful: t.stateful,
        });
    }
    for e in g.edges() {
        b.add_edge(e.src, e.dst, e.data_bytes)?;
    }
    let anchor = g.sources().next().expect("non-empty graph has a source");
    let anchor_root = find(&mut parent, anchor.index());
    let mut roots_seen = std::collections::BTreeSet::new();
    for t in g.task_ids() {
        let root = find(&mut parent, t.index());
        if root != anchor_root && roots_seen.insert(root) {
            // earliest task of the stray component (sources come first in
            // layer order), synchronised by a zero-byte control edge
            let member = g
                .task_ids()
                .find(|&x| find(&mut parent, x.index()) == root && g.in_edges(x).is_empty())
                .unwrap_or(t);
            b.add_edge(anchor, member, 0.0)?;
        }
    }
    let g = b.build()?;
    Ok(params.costs.attach_memory_traffic(&g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellstream_graph::algo;
    use proptest::prelude::*;

    #[test]
    fn deterministic_under_seed() {
        let p = DagGenParams::default();
        let a = generate("a", &p, 42).unwrap();
        let b = generate("a", &p, 42).unwrap();
        assert_eq!(a, b);
        let c = generate("a", &p, 43).unwrap();
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn respects_task_count() {
        for n in [1, 2, 7, 50, 94] {
            let p = DagGenParams { n, ..Default::default() };
            let g = generate("g", &p, 1).unwrap();
            assert_eq!(g.n_tasks(), n);
        }
    }

    #[test]
    fn forward_connectivity() {
        let p = DagGenParams { n: 60, fat: 0.8, ..Default::default() };
        let g = generate("g", &p, 7).unwrap();
        // every non-source has a predecessor; there is at least one source
        let n_sources = g.sources().count();
        assert!(n_sources >= 1);
        for t in g.task_ids() {
            if g.predecessors(t).count() == 0 {
                // must be in the first layer: depth 0
                assert_eq!(algo::depths(&g)[t.index()], 0);
            }
        }
    }

    #[test]
    fn chainlike_when_fat_tiny() {
        let p = DagGenParams {
            n: 20,
            fat: 0.01,
            regular: 1.0,
            density: 0.0,
            jump: 1,
            ..Default::default()
        };
        let g = generate("thin", &p, 3).unwrap();
        // width-1 layers, only spanning edges: a pure chain
        assert_eq!(g.n_edges(), 19);
        assert_eq!(algo::critical_path_hops(&g), 19);
    }

    #[test]
    fn wide_when_fat_large() {
        let p = DagGenParams { n: 64, fat: 2.0, regular: 1.0, ..Default::default() };
        let g = generate("wide", &p, 3).unwrap();
        // mean width 16 -> about 4 layers
        assert!(algo::critical_path_hops(&g) <= 8, "got {}", algo::critical_path_hops(&g));
    }

    #[test]
    fn jump_edges_skip_layers() {
        let p = DagGenParams { n: 40, fat: 0.8, density: 0.9, jump: 3, ..Default::default() };
        let g = generate("jumpy", &p, 11).unwrap();
        let d = algo::depths(&g);
        let has_skip = g.edges().iter().any(|e| d[e.dst.index()] > d[e.src.index()] + 1);
        assert!(has_skip, "expected at least one layer-skipping edge");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_generated_graphs_are_valid_dags(
            n in 2usize..80,
            fat in 0.1f64..2.0,
            regular in 0.0f64..1.0,
            density in 0.0f64..1.0,
            jump in 1usize..4,
            seed in any::<u64>(),
        ) {
            let p = DagGenParams { n, fat, regular, density, jump, costs: CostParams::default() };
            let g = generate("prop", &p, seed).unwrap();
            prop_assert_eq!(g.n_tasks(), n);
            // builder already guarantees acyclicity; check topo covers all
            prop_assert_eq!(g.topo_order().len(), n);
            // stitched: one weakly-connected component
            prop_assert_eq!(algo::n_components(&g), 1);
            // costs positive
            for t in g.tasks() {
                prop_assert!(t.w_ppe > 0.0 && t.w_spe > 0.0);
            }
            // payloads non-negative
            for e in g.edges() {
                prop_assert!(e.data_bytes >= 0.0);
            }
        }
    }
}
