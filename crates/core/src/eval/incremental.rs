//! Incremental (delta) evaluation of mappings — the engine behind every
//! search heuristic in the workspace.
//!
//! [`evaluate`](crate::eval::evaluate) is the paper's §3.2 polynomial
//! verifier run from scratch: it revalidates the mapping, rebuilds the
//! [`BufferPlan`], and rescans every task and edge — O(V + E) per call,
//! plus six fresh allocations. That is fine for a one-off verdict at the
//! [`Plan`](crate::scheduler::Plan) boundary, but a local-search round
//! probes K·n single-task moves (and O(K²) swaps), and annealing probes
//! thousands of neighbours: rebuilding the world per probe caps the graph
//! sizes the heuristics can touch.
//!
//! [`EvalState`] keeps the verifier's per-PE occupation accumulators
//! *live* instead:
//!
//! * the immutable per-graph data (buffer plan, per-task costs and
//!   traffic, adjacency) is computed **once** at construction;
//! * [`apply`](EvalState::apply) updates only the accumulator entries a
//!   move actually touches — O(degree(task)) work, zero allocation in
//!   steady state (the undo log reuses its buffers);
//! * [`undo`](EvalState::undo) restores the exact previous values from
//!   the log (bitwise, not by re-subtracting), so a probe leaves the
//!   state untouched;
//! * [`score_move`](EvalState::score_move) = apply → verdict → undo.
//!
//! The period and feasibility verdicts come from the same formulas as the
//! full evaluator, read off the live accumulators with an O(n_PEs) scan
//! (n ≤ 9 on real Cell configurations). Committed moves accumulate the
//! usual floating-point drift of add/subtract sequences; callers that
//! publish a final period re-derive it with one full `evaluate` (see the
//! search heuristics), and the property suite pins the drift below 1e-9
//! relative.

use crate::avail::Availability;
use crate::eval::{throughput_of, Bottleneck, MappingReport, Violation};
use crate::mapping::{Mapping, MappingError};
use crate::steady::buffers::BufferPlan;
use cellstream_graph::{StreamGraph, TaskId};
use cellstream_platform::{CellSpec, PeId, PeKind};

/// A candidate change to the current mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Move {
    /// Rebind one task to another PE (a no-op if it is already there).
    Relocate {
        /// The task to move.
        task: TaskId,
        /// Its new PE.
        to: PeId,
    },
    /// Exchange the PEs of two tasks (the swap neighbourhood).
    Swap {
        /// First task.
        a: TaskId,
        /// Second task.
        b: TaskId,
    },
}

// Accumulator tags for the undo log.
const F_COMPUTE: u8 = 0;
const F_IN: u8 = 1;
const F_OUT: u8 = 2;
const F_MEM: u8 = 3;
const U_DMA_IN: u8 = 0;
const U_DMA_PPE: u8 = 1;
const U_SEATED: u8 = 2;

/// Saved pre-move values of every accumulator entry a move touched.
/// Restored in reverse order, so repeated writes to the same entry undo
/// exactly (no re-subtraction, no drift inside an apply/undo pair).
#[derive(Debug, Default, Clone)]
struct UndoFrame {
    assigns: Vec<(usize, PeId)>,
    floats: Vec<(u8, u32, f64)>,
    ints: Vec<(u8, u32, u32)>,
}

impl UndoFrame {
    fn clear(&mut self) {
        self.assigns.clear();
        self.floats.clear();
        self.ints.clear();
    }
}

/// Live evaluation state of one mapping on one platform: the §3.2
/// verifier's per-PE occupation table, maintained under moves instead of
/// recomputed. See the module docs for the contract.
///
/// Undo depth is **one**: [`apply`](Self::apply) commits any previously
/// applied move (its log is discarded) and starts a fresh log, so
/// [`undo`](Self::undo) reverts only the most recent `apply`. That is
/// exactly the propose/accept/reject shape every search heuristic needs.
///
/// ```
/// use cellstream_core::eval::incremental::{EvalState, Move};
/// use cellstream_core::{evaluate, Mapping};
/// use cellstream_daggen::{chain, CostParams};
/// use cellstream_platform::{CellSpec, PeId};
/// use cellstream_graph::TaskId;
///
/// let g = chain("pipe", 6, &CostParams::default(), 1);
/// let spec = CellSpec::ps3();
/// let start = Mapping::all_on(&g, PeId(0));
/// let mut state = EvalState::new(&g, &spec, &start).unwrap();
///
/// // probe a move without disturbing the state
/// let probe = state.score_move(Move::Relocate { task: TaskId(0), to: spec.pe(1) });
/// assert_eq!(state.mapping(), start);
///
/// // commit it and cross-check against the full evaluator
/// state.apply(Move::Relocate { task: TaskId(0), to: spec.pe(1) });
/// let full = evaluate(&g, &spec, &state.mapping()).unwrap();
/// assert!((state.period() - full.period).abs() < 1e-12);
/// assert_eq!(probe.is_finite(), full.is_feasible());
/// ```
#[derive(Debug, Clone)]
pub struct EvalState<'a> {
    g: &'a StreamGraph,
    spec: &'a CellSpec,
    // ---- immutable per-graph data, computed once --------------------------
    bw: f64,
    ls_budget: f64,
    dma_in_limit: u32,
    dma_ppe_limit: u32,
    /// PEs with index < n_ppe are PPEs, the rest SPEs (the platform's
    /// indexing convention, see `CellSpec::kind_of`).
    n_ppe: usize,
    cost_ppe: Vec<f64>,
    cost_spe: Vec<f64>,
    read_bytes: Vec<f64>,
    write_bytes: Vec<f64>,
    /// Per-task local-store buffer bytes from the [`BufferPlan`].
    task_buf: Vec<f64>,
    /// The availability overlay this state plans against (inert when
    /// fully healthy; kept for reports and invariant cross-checks).
    avail: Availability,
    /// Per-PE compute slowdown (`1 / factor`; `1.0` for dead PEs — see
    /// [`Availability::slowdown`]). Cached so the relocate hot path
    /// multiplies a flat table instead of recomputing divisions.
    slowdown: Vec<f64>,
    /// Per-PE dead flag: seated tasks there are a capacity violation.
    dead: Vec<bool>,
    // ---- live accumulators ------------------------------------------------
    assignment: Vec<PeId>,
    compute: Vec<f64>,
    in_bytes: Vec<f64>,
    out_bytes: Vec<f64>,
    memory_bytes: Vec<f64>,
    dma_in: Vec<u32>,
    dma_ppe: Vec<u32>,
    /// Per-PE seated-task counts (feeds the dead-PE feasibility check
    /// in O(1) and the eviction loop's victim scan).
    seated: Vec<u32>,
    // ---- undo -------------------------------------------------------------
    frame: UndoFrame,
    has_frame: bool,
}

impl<'a> EvalState<'a> {
    /// Build the state for `mapping`. Validates the mapping once (the
    /// only validation the engine ever runs — moves cannot make a valid
    /// assignment invalid) and precomputes the buffer plan and per-task
    /// cost tables.
    pub fn new(
        g: &'a StreamGraph,
        spec: &'a CellSpec,
        mapping: &Mapping,
    ) -> Result<Self, MappingError> {
        Self::new_with(g, spec, &Availability::full(spec), mapping)
    }

    /// [`new`](Self::new) against *live* capacity: compute occupations
    /// are scaled by each PE's [`Availability::slowdown`], and a task
    /// seated on a dead PE makes the state infeasible (routing the
    /// eviction machinery toward evacuating it). With a fully healthy
    /// overlay this is exactly `new`.
    pub fn new_with(
        g: &'a StreamGraph,
        spec: &'a CellSpec,
        avail: &Availability,
        mapping: &Mapping,
    ) -> Result<Self, MappingError> {
        mapping.validate(g, spec)?;
        assert_eq!(avail.n_pes(), spec.n_pes(), "availability overlay must cover every PE");
        let plan = BufferPlan::new(g);
        let n = spec.n_pes();
        let mut cost_ppe = Vec::with_capacity(g.n_tasks());
        let mut cost_spe = Vec::with_capacity(g.n_tasks());
        let mut read_bytes = Vec::with_capacity(g.n_tasks());
        let mut write_bytes = Vec::with_capacity(g.n_tasks());
        for t in g.tasks() {
            cost_ppe.push(t.cost_on(PeKind::Ppe));
            cost_spe.push(t.cost_on(PeKind::Spe));
            read_bytes.push(t.read_bytes);
            write_bytes.push(t.write_bytes);
        }
        let mut s = EvalState {
            g,
            spec,
            bw: spec.interface_bw().as_bytes_per_s(),
            ls_budget: spec.local_store_budget() as f64,
            dma_in_limit: spec.dma_in_limit(),
            dma_ppe_limit: spec.dma_ppe_limit(),
            n_ppe: spec.n_ppe(),
            cost_ppe,
            cost_spe,
            read_bytes,
            write_bytes,
            task_buf: plan.task_bytes,
            avail: avail.clone(),
            slowdown: spec.pes().map(|pe| avail.slowdown(pe)).collect(),
            dead: spec.pes().map(|pe| avail.is_dead(pe)).collect(),
            assignment: mapping.assignment().to_vec(),
            compute: vec![0.0; n],
            in_bytes: vec![0.0; n],
            out_bytes: vec![0.0; n],
            memory_bytes: vec![0.0; n],
            dma_in: vec![0; n],
            dma_ppe: vec![0; n],
            seated: vec![0; n],
            frame: UndoFrame::default(),
            has_frame: false,
        };
        s.recompute();
        Ok(s)
    }

    /// Re-seat the state on another mapping of the **same** graph and
    /// platform, reusing every precomputed table and buffer (for
    /// multi-start loops). O(V + E), allocation-free.
    pub fn reset(&mut self, mapping: &Mapping) -> Result<(), MappingError> {
        mapping.validate(self.g, self.spec)?;
        self.assignment.clear();
        self.assignment.extend_from_slice(mapping.assignment());
        self.recompute();
        Ok(())
    }

    /// Rebuild the accumulators from the current assignment (the same
    /// loops as the full evaluator, minus the plan construction).
    fn recompute(&mut self) {
        for v in
            [&mut self.compute, &mut self.in_bytes, &mut self.out_bytes, &mut self.memory_bytes]
        {
            v.iter_mut().for_each(|x| *x = 0.0);
        }
        self.dma_in.iter_mut().for_each(|x| *x = 0);
        self.dma_ppe.iter_mut().for_each(|x| *x = 0);
        self.seated.iter_mut().for_each(|x| *x = 0);
        for k in 0..self.assignment.len() {
            let i = self.assignment[k].index();
            let spe = i >= self.n_ppe;
            let base = if spe { self.cost_spe[k] } else { self.cost_ppe[k] };
            self.compute[i] += base * self.slowdown[i];
            self.in_bytes[i] += self.read_bytes[k];
            self.out_bytes[i] += self.write_bytes[k];
            self.seated[i] += 1;
            if spe {
                self.memory_bytes[i] += self.task_buf[k];
            }
        }
        for e in self.g.edges() {
            let src = self.assignment[e.src.index()];
            let dst = self.assignment[e.dst.index()];
            if src != dst {
                self.out_bytes[src.index()] += e.data_bytes;
                self.in_bytes[dst.index()] += e.data_bytes;
                if dst.index() >= self.n_ppe {
                    self.dma_in[dst.index()] += 1;
                }
                if src.index() >= self.n_ppe && dst.index() < self.n_ppe {
                    self.dma_ppe[src.index()] += 1;
                }
            }
        }
        self.frame.clear();
        self.has_frame = false;
    }

    /// Re-seat the state from raw per-task seats (task id order) of the
    /// **same** graph and platform — [`reset`](Self::reset) without a
    /// [`Mapping`] in hand, for callers that keep no `Mapping` on the
    /// hot path. O(V + E), allocation-free. Panics when the iterator
    /// does not yield exactly one in-range PE per task: raw seats and
    /// states travel together, like mappings and graphs.
    // check: no-alloc
    pub fn reseat(&mut self, seats: impl IntoIterator<Item = PeId>) {
        let n_pes = self.compute.len();
        let mut k = 0;
        for pe in seats {
            assert!(k < self.assignment.len(), "reseat: more seats than tasks");
            assert!(pe.index() < n_pes, "{pe} out of range");
            self.assignment[k] = pe;
            k += 1;
        }
        assert_eq!(k, self.assignment.len(), "reseat covers every task");
        self.recompute();
    }

    /// Recompute the accumulators from the current assignment, shedding
    /// the floating-point drift committed moves accumulate (each
    /// apply/undo pair restores exactly, but *committed* deltas are
    /// add/subtract sequences). Equivalent to rebuilding the state from
    /// [`mapping`](Self::mapping) — O(V + E), allocation-free, clears
    /// the undo log.
    // check: no-alloc
    pub fn rebase(&mut self) {
        self.recompute();
    }

    /// The graph this state evaluates against.
    pub fn graph(&self) -> &'a StreamGraph {
        self.g
    }

    /// The platform this state evaluates against.
    pub fn spec(&self) -> &'a CellSpec {
        self.spec
    }

    /// Current PE of a task.
    pub fn pe_of(&self, t: TaskId) -> PeId {
        self.assignment[t.index()]
    }

    /// The current assignment, task id order (the borrow-only view of
    /// [`mapping`](Self::mapping) for allocation-free readers).
    pub fn assignment(&self) -> &[PeId] {
        &self.assignment
    }

    /// One task's local-store buffer footprint (bytes) from the
    /// precomputed [`BufferPlan`] — what the task occupies when seated
    /// on an SPE. O(1), allocation-free.
    pub fn task_buffer_bytes(&self, t: TaskId) -> f64 {
        self.task_buf[t.index()]
    }

    /// The lowest-id SPE currently violating a §3.2 constraint
    /// ((1i)–(1k)), or `None` when feasible — the allocation-free
    /// counterpart of scanning [`report`](Self::report)'s violation
    /// list, for eviction loops. O(n_SPEs).
    pub fn first_violated_spe(&self) -> Option<PeId> {
        for i in self.n_ppe..self.compute.len() {
            if self.memory_bytes[i] > self.ls_budget + 1e-9
                || self.dma_in[i] > self.dma_in_limit
                || self.dma_ppe[i] > self.dma_ppe_limit
                || (self.dead[i] && self.seated[i] > 0)
            {
                return Some(PeId(i));
            }
        }
        None
    }

    /// `true` when the availability overlay marks this PE dead.
    pub fn is_dead(&self, pe: PeId) -> bool {
        self.dead[pe.index()]
    }

    /// Tasks currently seated on one PE. O(1).
    pub fn seated_on(&self, pe: PeId) -> u32 {
        self.seated[pe.index()]
    }

    /// The availability overlay this state plans against.
    pub fn availability(&self) -> &Availability {
        &self.avail
    }

    /// The current assignment as a validated [`Mapping`] (clones the
    /// assignment vector — call at boundaries, not in inner loops).
    pub fn mapping(&self) -> Mapping {
        Mapping::new(self.g, self.spec, self.assignment.clone())
            .expect("EvalState assignments stay structurally valid")
    }

    /// Steady-state period of the current mapping: the §3.2 maximum over
    /// per-PE compute and interface occupations. O(n_PEs).
    pub fn period(&self) -> f64 {
        let mut p = 0.0f64;
        for i in 0..self.compute.len() {
            p = p
                .max(self.compute[i])
                .max(self.in_bytes[i] / self.bw)
                .max(self.out_bytes[i] / self.bw);
        }
        p
    }

    /// One PE's occupation: `max(compute, in/bw, out/bw)` — the §3.2
    /// per-PE term whose maximum over PEs is the period. O(1). Search
    /// heuristics use it to break period plateaus toward better load
    /// balance (two co-bottlenecked PEs stall pure steepest descent).
    pub fn occupancy(&self, pe: PeId) -> f64 {
        let i = pe.index();
        self.compute[i].max(self.in_bytes[i] / self.bw).max(self.out_bytes[i] / self.bw)
    }

    /// The resource that sets the period (same scan order and tie-break
    /// as the full evaluator: first PE, compute before in before out).
    pub fn bottleneck(&self) -> Bottleneck {
        let mut period = 0.0f64;
        let mut bottleneck = Bottleneck::Compute(PeId(0));
        for i in 0..self.compute.len() {
            if self.compute[i] > period {
                period = self.compute[i];
                bottleneck = Bottleneck::Compute(PeId(i));
            }
            if self.in_bytes[i] / self.bw > period {
                period = self.in_bytes[i] / self.bw;
                bottleneck = Bottleneck::IncomingBw(PeId(i));
            }
            if self.out_bytes[i] / self.bw > period {
                period = self.out_bytes[i] / self.bw;
                bottleneck = Bottleneck::OutgoingBw(PeId(i));
            }
        }
        bottleneck
    }

    /// `true` iff constraints (1i)–(1k) all hold right now *and* no
    /// task is seated on a dead PE. O(n_PEs).
    pub fn is_feasible(&self) -> bool {
        for i in 0..self.compute.len() {
            if self.dead[i] && self.seated[i] > 0 {
                return false;
            }
        }
        for i in self.n_ppe..self.compute.len() {
            if self.memory_bytes[i] > self.ls_budget + 1e-9
                || self.dma_in[i] > self.dma_in_limit
                || self.dma_ppe[i] > self.dma_ppe_limit
            {
                return false;
            }
        }
        true
    }

    /// The search objective: the period when feasible, `+∞` otherwise.
    pub fn score(&self) -> f64 {
        if self.is_feasible() {
            self.period()
        } else {
            f64::INFINITY
        }
    }

    /// Score a move without disturbing the state: apply, read the
    /// verdict, undo (exact restore). O(degree + n_PEs), zero allocation
    /// once the undo log has warmed up.
    ///
    /// Discards any pending undo log — a move applied before this call
    /// can no longer be undone (it was committed).
    pub fn score_move(&mut self, mv: Move) -> f64 {
        self.apply(mv);
        let s = self.score();
        self.undo();
        s
    }

    /// Apply a move, committing any previously applied one (single-level
    /// undo — see the type docs). Panics on out-of-range task or PE ids:
    /// moves and states travel together, like mappings and graphs.
    // check: no-alloc
    pub fn apply(&mut self, mv: Move) {
        self.frame.clear();
        self.has_frame = true;
        match mv {
            Move::Relocate { task, to } => self.relocate(task, to),
            Move::Swap { a, b } => {
                let (pa, pb) = (self.assignment[a.index()], self.assignment[b.index()]);
                self.relocate(a, pb);
                self.relocate(b, pa);
            }
        }
    }

    /// Revert the most recent [`apply`](Self::apply), restoring every
    /// touched accumulator entry to its exact previous value. Returns
    /// `false` (and does nothing) when there is nothing to undo.
    // check: no-alloc
    pub fn undo(&mut self) -> bool {
        if !self.has_frame {
            return false;
        }
        for &(tag, pe, old) in self.frame.floats.iter().rev() {
            let v = match tag {
                F_COMPUTE => &mut self.compute,
                F_IN => &mut self.in_bytes,
                F_OUT => &mut self.out_bytes,
                _ => &mut self.memory_bytes,
            };
            v[pe as usize] = old;
        }
        for &(tag, pe, old) in self.frame.ints.iter().rev() {
            let v = match tag {
                U_DMA_IN => &mut self.dma_in,
                U_DMA_PPE => &mut self.dma_ppe,
                _ => &mut self.seated,
            };
            v[pe as usize] = old;
        }
        for &(k, pe) in self.frame.assigns.iter().rev() {
            self.assignment[k] = pe;
        }
        self.frame.clear();
        self.has_frame = false;
        true
    }

    /// Extract a full [`MappingReport`] for the current mapping — the
    /// [`Plan`](crate::scheduler::Plan) boundary. Allocates (clones the
    /// per-PE tables); not for inner loops.
    pub fn report(&self) -> MappingReport {
        let period = self.period();
        let mut violations = Vec::new();
        // dead-PE seats first, id order — mirrors `evaluate_with` so
        // `assert_matches_full` can compare violation lists exactly
        for pe in self.spec.pes() {
            let i = pe.index();
            if self.dead[i] && self.seated[i] > 0 {
                violations.push(Violation::DeadPe { pe, tasks: self.seated[i] as usize });
            }
        }
        for pe in self.spec.spes() {
            let i = pe.index();
            if self.memory_bytes[i] > self.ls_budget + 1e-9 {
                violations.push(Violation::LocalStore {
                    pe,
                    used: self.memory_bytes[i],
                    budget: self.ls_budget,
                });
            }
            if self.dma_in[i] > self.dma_in_limit {
                violations.push(Violation::DmaIn {
                    pe,
                    used: self.dma_in[i],
                    limit: self.dma_in_limit,
                });
            }
            if self.dma_ppe[i] > self.dma_ppe_limit {
                violations.push(Violation::DmaPpe {
                    pe,
                    used: self.dma_ppe[i],
                    limit: self.dma_ppe_limit,
                });
            }
        }
        MappingReport {
            period,
            throughput: throughput_of(period),
            compute_load: self.compute.clone(),
            in_bytes: self.in_bytes.clone(),
            out_bytes: self.out_bytes.clone(),
            memory_bytes: self.memory_bytes.clone(),
            dma_in: self.dma_in.clone(),
            dma_ppe: self.dma_ppe.clone(),
            bottleneck: self.bottleneck(),
            violations,
        }
    }

    // ---- delta plumbing ---------------------------------------------------

    fn addf(&mut self, tag: u8, pe: usize, delta: f64) {
        let v = match tag {
            F_COMPUTE => &mut self.compute,
            F_IN => &mut self.in_bytes,
            F_OUT => &mut self.out_bytes,
            _ => &mut self.memory_bytes,
        };
        let old = v[pe];
        v[pe] = old + delta;
        self.frame.floats.push((tag, pe as u32, old));
    }

    fn addu(&mut self, tag: u8, pe: usize, delta: i32) {
        let v = match tag {
            U_DMA_IN => &mut self.dma_in,
            U_DMA_PPE => &mut self.dma_ppe,
            _ => &mut self.seated,
        };
        let old = v[pe];
        v[pe] = (old as i64 + delta as i64) as u32;
        self.frame.ints.push((tag, pe as u32, old));
    }

    /// Move `t` to `to`, logging every touched entry. O(degree(t)).
    fn relocate(&mut self, t: TaskId, to: PeId) {
        let k = t.index();
        let from = self.assignment[k];
        if from == to {
            return;
        }
        let (fi, ti) = (from.index(), to.index());
        assert!(ti < self.compute.len(), "{to} out of range");
        self.frame.assigns.push((k, from));
        self.assignment[k] = to;

        let from_spe = fi >= self.n_ppe;
        let to_spe = ti >= self.n_ppe;

        // task-attached terms: compute, memory traffic, local-store buffers
        let base_from = if from_spe { self.cost_spe[k] } else { self.cost_ppe[k] };
        let base_to = if to_spe { self.cost_spe[k] } else { self.cost_ppe[k] };
        self.addf(F_COMPUTE, fi, -base_from * self.slowdown[fi]);
        self.addf(F_COMPUTE, ti, base_to * self.slowdown[ti]);
        self.addu(U_SEATED, fi, -1);
        self.addu(U_SEATED, ti, 1);
        if self.read_bytes[k] != 0.0 {
            self.addf(F_IN, fi, -self.read_bytes[k]);
            self.addf(F_IN, ti, self.read_bytes[k]);
        }
        if self.write_bytes[k] != 0.0 {
            self.addf(F_OUT, fi, -self.write_bytes[k]);
            self.addf(F_OUT, ti, self.write_bytes[k]);
        }
        if from_spe {
            self.addf(F_MEM, fi, -self.task_buf[k]);
        }
        if to_spe {
            self.addf(F_MEM, ti, self.task_buf[k]);
        }

        // incident edges: retract the old cut contributions, add the new
        let g = self.g;
        for &e in g.in_edges(t) {
            let edge = g.edge(e);
            let ps = self.assignment[edge.src.index()];
            let (si, d) = (ps.index(), edge.data_bytes);
            let src_spe = si >= self.n_ppe;
            if ps != from {
                self.addf(F_OUT, si, -d);
                self.addf(F_IN, fi, -d);
                if from_spe {
                    self.addu(U_DMA_IN, fi, -1);
                }
                if src_spe && !from_spe {
                    self.addu(U_DMA_PPE, si, -1);
                }
            }
            if ps != to {
                self.addf(F_OUT, si, d);
                self.addf(F_IN, ti, d);
                if to_spe {
                    self.addu(U_DMA_IN, ti, 1);
                }
                if src_spe && !to_spe {
                    self.addu(U_DMA_PPE, si, 1);
                }
            }
        }
        for &e in g.out_edges(t) {
            let edge = g.edge(e);
            let pd = self.assignment[edge.dst.index()];
            let (di, d) = (pd.index(), edge.data_bytes);
            let dst_spe = di >= self.n_ppe;
            if pd != from {
                self.addf(F_OUT, fi, -d);
                self.addf(F_IN, di, -d);
                if dst_spe {
                    self.addu(U_DMA_IN, di, -1);
                }
                if from_spe && !dst_spe {
                    self.addu(U_DMA_PPE, fi, -1);
                }
            }
            if pd != to {
                self.addf(F_OUT, ti, d);
                self.addf(F_IN, di, d);
                if dst_spe {
                    self.addu(U_DMA_IN, di, 1);
                }
                if to_spe && !dst_spe {
                    self.addu(U_DMA_PPE, ti, 1);
                }
            }
        }
    }
}

#[cfg(any(test, feature = "debug_invariants"))]
impl EvalState<'_> {
    /// Deep audit (`debug_invariants` feature): the accumulators must
    /// agree with a from-scratch [`evaluate`](crate::eval::evaluate) of
    /// the current mapping. Panics with `ctx` in the message on any
    /// divergence. O(V + E) and allocating — strictly a debug/test
    /// tool, called from hot-path boundaries only under the feature.
    pub fn check_invariants(&self, ctx: &str) {
        assert_matches_full(self, ctx);
    }
}

/// Contract check shared by the unit tests here, the property suite in
/// `crate::tests`, and [`EvalState::check_invariants`]: the live state
/// must agree with a from-scratch `evaluate()` of its current mapping —
/// period and loads within 1e-9 relative (committed deltas accumulate
/// IEEE drift), the verdicts, bottleneck, DMA counters and violation
/// list exactly.
#[cfg(any(test, feature = "debug_invariants"))]
pub(crate) fn assert_matches_full(state: &EvalState<'_>, ctx: &str) {
    let full =
        crate::eval::evaluate_with(state.graph(), state.spec(), &state.avail, &state.mapping())
            .unwrap();
    let rep = state.report();
    let tol = 1e-9 * full.period.abs().max(1e-12);
    assert!(
        (rep.period - full.period).abs() <= tol,
        "{ctx}: period {} vs {}",
        rep.period,
        full.period
    );
    assert_eq!(rep.is_feasible(), full.is_feasible(), "{ctx}: feasibility");
    assert_eq!(rep.bottleneck, full.bottleneck, "{ctx}: bottleneck");
    assert_eq!(rep.dma_in, full.dma_in, "{ctx}: dma_in");
    assert_eq!(rep.dma_ppe, full.dma_ppe, "{ctx}: dma_ppe");
    for i in 0..full.compute_load.len() {
        assert!((rep.compute_load[i] - full.compute_load[i]).abs() <= tol, "{ctx}: compute[{i}]");
        assert!((rep.in_bytes[i] - full.in_bytes[i]).abs() <= 1e-6, "{ctx}: in[{i}]");
        assert!((rep.out_bytes[i] - full.out_bytes[i]).abs() <= 1e-6, "{ctx}: out[{i}]");
        assert!((rep.memory_bytes[i] - full.memory_bytes[i]).abs() <= 1e-6, "{ctx}: mem[{i}]");
    }
    assert_eq!(rep.violations, full.violations, "{ctx}: violations");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use cellstream_daggen::{chain, fork_join, CostParams};
    use cellstream_platform::CellSpecBuilder;

    #[test]
    fn fresh_state_matches_full_evaluator() {
        let g = fork_join("fj", 4, &CostParams::default(), 7);
        let spec = CellSpec::ps3();
        for m in [Mapping::all_on(&g, PeId(0)), Mapping::all_on(&g, PeId(3))] {
            let state = EvalState::new(&g, &spec, &m).unwrap();
            assert_matches_full(&state, "fresh");
        }
    }

    #[test]
    fn relocations_track_the_full_evaluator() {
        let g = chain("c", 10, &CostParams::default(), 5);
        let spec = CellSpec::ps3();
        let mut state = EvalState::new(&g, &spec, &Mapping::all_on(&g, PeId(0))).unwrap();
        // deterministic walk over every (task, pe) pair
        for k in 0..g.n_tasks() {
            let to = spec.pe((k * 3 + 1) % spec.n_pes());
            state.apply(Move::Relocate { task: TaskId(k), to });
            assert_matches_full(&state, &format!("after moving T{k}"));
        }
    }

    #[test]
    fn swaps_track_the_full_evaluator() {
        let g = fork_join("fj", 3, &CostParams::default(), 2);
        let spec = CellSpec::with_spes(3);
        let m = Mapping::new(&g, &spec, (0..g.n_tasks()).map(|k| PeId(k % spec.n_pes())).collect())
            .unwrap();
        let mut state = EvalState::new(&g, &spec, &m).unwrap();
        for a in 0..g.n_tasks() {
            let b = (a + 2) % g.n_tasks();
            if a == b {
                continue;
            }
            state.apply(Move::Swap { a: TaskId(a), b: TaskId(b) });
            assert_matches_full(&state, &format!("after swapping T{a}/T{b}"));
        }
    }

    #[test]
    fn undo_restores_exactly() {
        let g = chain("c", 8, &CostParams::default(), 9);
        let spec = CellSpec::with_spes(4);
        let m = Mapping::new(
            &g,
            &spec,
            (0..g.n_tasks()).map(|k| PeId((k * 2) % spec.n_pes())).collect(),
        )
        .unwrap();
        let mut state = EvalState::new(&g, &spec, &m).unwrap();
        let before = state.clone();
        for k in 0..g.n_tasks() {
            state.apply(Move::Relocate { task: TaskId(k), to: PeId((k + 1) % spec.n_pes()) });
            assert!(state.undo());
            // bitwise identical, not merely close
            assert_eq!(state.compute, before.compute);
            assert_eq!(state.in_bytes, before.in_bytes);
            assert_eq!(state.out_bytes, before.out_bytes);
            assert_eq!(state.memory_bytes, before.memory_bytes);
            assert_eq!(state.dma_in, before.dma_in);
            assert_eq!(state.dma_ppe, before.dma_ppe);
            assert_eq!(state.seated, before.seated);
            assert_eq!(state.assignment, before.assignment);
        }
        assert!(!state.undo(), "nothing left to undo");
    }

    #[test]
    fn score_move_is_a_pure_probe() {
        let g = fork_join("fj", 4, &CostParams::default(), 3);
        let spec = CellSpec::ps3();
        let mut state = EvalState::new(&g, &spec, &Mapping::all_on(&g, PeId(0))).unwrap();
        let p0 = state.period();
        for k in 0..g.n_tasks() {
            for pe in 0..spec.n_pes() {
                let s = state.score_move(Move::Relocate { task: TaskId(k), to: PeId(pe) });
                // the probe agrees with a fresh full evaluation of the move
                let cand = state.mapping().with_move(TaskId(k), PeId(pe));
                let full = evaluate(&g, &spec, &cand).unwrap();
                if full.is_feasible() {
                    assert!((s - full.period).abs() <= 1e-9 * full.period, "T{k}->PE{pe}");
                } else {
                    assert!(s.is_infinite());
                }
            }
        }
        assert_eq!(state.period(), p0, "probing must not disturb the state");
    }

    #[test]
    fn feasibility_flips_with_local_store() {
        // same construction as eval::tests::local_store_violation_detected
        let spec = CellSpecBuilder::default()
            .spes(1)
            .local_store(cellstream_platform::ByteSize::kib(128))
            .code_size(cellstream_platform::ByteSize::kib(64))
            .build()
            .unwrap();
        let mut b = StreamGraph::builder("p");
        let a = b.add_task(cellstream_graph::TaskSpec::new("a").uniform_cost(1e-6));
        let z = b.add_task(cellstream_graph::TaskSpec::new("z").uniform_cost(1e-6));
        b.add_edge(a, z, 64.0 * 1024.0).unwrap();
        let g = b.build().unwrap();
        let mut state = EvalState::new(&g, &spec, &Mapping::all_on(&g, PeId(0))).unwrap();
        assert!(state.is_feasible());
        state.apply(Move::Relocate { task: TaskId(0), to: PeId(1) });
        state.apply(Move::Relocate { task: TaskId(1), to: PeId(1) });
        assert!(!state.is_feasible(), "both tasks on the tiny SPE must overflow");
        assert_matches_full(&state, "overflowed");
        assert!(state.score().is_infinite());
    }

    #[test]
    fn reseat_matches_reset_and_panics_on_bad_seats() {
        let g = chain("c", 6, &CostParams::default(), 4);
        let spec = CellSpec::with_spes(2);
        let mut state = EvalState::new(&g, &spec, &Mapping::all_on(&g, PeId(0))).unwrap();
        let seats = [PeId(1), PeId(2), PeId(0), PeId(1), PeId(2), PeId(0)];
        state.reseat(seats.iter().copied());
        assert_eq!(state.assignment(), &seats);
        assert_matches_full(&state, "after reseat");
        assert!(!state.undo(), "reseat clears the undo log");
        let mut short = state.clone();
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            short.reseat(seats.iter().copied().take(3));
        }))
        .is_err());
        let mut wrong = state.clone();
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            wrong.reseat(std::iter::repeat_n(PeId(99), 6));
        }))
        .is_err());
    }

    #[test]
    fn first_violated_spe_agrees_with_the_report() {
        // same overflow construction as feasibility_flips_with_local_store
        let spec = CellSpecBuilder::default()
            .spes(2)
            .local_store(cellstream_platform::ByteSize::kib(128))
            .code_size(cellstream_platform::ByteSize::kib(64))
            .build()
            .unwrap();
        let mut b = StreamGraph::builder("p");
        let a = b.add_task(cellstream_graph::TaskSpec::new("a").uniform_cost(1e-6));
        let z = b.add_task(cellstream_graph::TaskSpec::new("z").uniform_cost(1e-6));
        b.add_edge(a, z, 64.0 * 1024.0).unwrap();
        let g = b.build().unwrap();
        let mut state = EvalState::new(&g, &spec, &Mapping::all_on(&g, PeId(0))).unwrap();
        assert_eq!(state.first_violated_spe(), None);
        state.apply(Move::Relocate { task: TaskId(0), to: PeId(2) });
        state.apply(Move::Relocate { task: TaskId(1), to: PeId(2) });
        assert!(!state.is_feasible());
        let pe = state.first_violated_spe().expect("overflowed SPE is reported");
        let report = state.report();
        let first = match report.violations.first().expect("report sees it too") {
            Violation::LocalStore { pe, .. }
            | Violation::DmaIn { pe, .. }
            | Violation::DmaPpe { pe, .. }
            | Violation::DeadPe { pe, .. } => *pe,
        };
        assert_eq!(pe, first, "same PE the report names first");
        // and the buffer accessor matches the plan the state was built from
        let plan = BufferPlan::new(&g);
        for t in g.task_ids() {
            assert_eq!(state.task_buffer_bytes(t), plan.task_bytes[t.index()]);
        }
    }

    #[test]
    fn dead_pe_seats_are_infeasible_and_undo_restores() {
        let g = chain("c", 5, &CostParams::default(), 3);
        let spec = CellSpec::ps3();
        let mut avail = Availability::full(&spec);
        avail.fail(PeId(3));
        let m = Mapping::all_on(&g, PeId(0));
        let mut state = EvalState::new_with(&g, &spec, &avail, &m).unwrap();
        assert!(state.is_feasible(), "nothing seated on the dead PE yet");
        assert!(state.is_dead(PeId(3)));
        assert_eq!(state.seated_on(PeId(0)), g.n_tasks() as u32);
        assert_matches_full(&state, "healthy seats, dead PE idle");

        state.apply(Move::Relocate { task: TaskId(1), to: PeId(3) });
        assert!(!state.is_feasible(), "a seat on a dead PE violates capacity");
        assert_eq!(state.first_violated_spe(), Some(PeId(3)));
        assert_eq!(state.seated_on(PeId(3)), 1);
        assert!(state.score().is_infinite());
        assert_matches_full(&state, "seated on dead PE");
        let dead = state
            .report()
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DeadPe { pe: PeId(3), tasks: 1 }));
        assert!(dead, "report names the dead PE");

        assert!(state.undo());
        assert!(state.is_feasible());
        assert_eq!(state.seated_on(PeId(3)), 0);
        assert_matches_full(&state, "after undo");
    }

    #[test]
    fn degraded_pe_scales_compute_and_tracks_full_evaluator() {
        let g = fork_join("fj", 4, &CostParams::default(), 7);
        let spec = CellSpec::ps3();
        let mut avail = Availability::full(&spec);
        avail.set_factor(PeId(2), 0.5);
        let m = Mapping::all_on(&g, PeId(0));
        let mut state = EvalState::new_with(&g, &spec, &avail, &m).unwrap();
        assert_matches_full(&state, "fresh degraded");
        for k in 0..g.n_tasks() {
            let to = spec.pe((k * 5 + 2) % spec.n_pes());
            state.apply(Move::Relocate { task: TaskId(k), to });
            assert_matches_full(&state, &format!("degraded, after moving T{k}"));
        }
        // half-speed PE doubles the compute occupation it accumulates
        let healthy = EvalState::new(&g, &spec, &state.mapping()).unwrap();
        let i = PeId(2).index();
        assert!(
            (state.compute[i] - 2.0 * healthy.compute[i]).abs() <= 1e-9 * healthy.compute[i].abs(),
            "slowdown 2 doubles compute on PE2"
        );
    }

    #[test]
    fn reset_reseats_without_reallocating_tables() {
        let g = chain("c", 6, &CostParams::default(), 4);
        let spec = CellSpec::with_spes(2);
        let mut state = EvalState::new(&g, &spec, &Mapping::all_on(&g, PeId(0))).unwrap();
        state.apply(Move::Relocate { task: TaskId(2), to: PeId(1) });
        let other = Mapping::new(&g, &spec, vec![PeId(1); 6]).unwrap();
        state.reset(&other).unwrap();
        assert_eq!(state.mapping(), other);
        assert_matches_full(&state, "after reset");
        assert!(!state.undo(), "reset clears the undo log");
        // and reset validates
        let wrong = Mapping::all_on(&chain("c2", 3, &CostParams::default(), 1), PeId(0));
        assert!(state.reset(&wrong).is_err());
    }
}
