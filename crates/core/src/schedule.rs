//! Periodic steady-state schedule construction (paper §3.1, Figure 3(b)).
//!
//! Given a feasible mapping with period `T`, the schedule is fully
//! determined: instance `i` of task `Tk` is processed during period
//! `firstPeriod(Tk) + i`, i.e. in the window
//! `[(firstPeriod(Tk) + i)·T, (firstPeriod(Tk) + i + 1)·T)`, and within a
//! period every PE runs its tasks back-to-back in topological order.
//! Communications are *not* individually scheduled — the bounded-multiport
//! model lets every transfer of a period proceed concurrently as long as
//! per-interface average bandwidth suffices (§3.1: "we do not need to
//! precisely schedule the communications inside a period").

use crate::eval::MappingReport;
use crate::mapping::Mapping;
use crate::steady::first_period::first_periods;
use cellstream_graph::{StreamGraph, TaskId};
use cellstream_platform::{CellSpec, PeId};

/// One task's slot inside the period of one PE.
#[derive(Debug, Clone, PartialEq)]
pub struct Slot {
    /// The task.
    pub task: TaskId,
    /// Host PE.
    pub pe: PeId,
    /// Start offset within the period (seconds).
    pub offset: f64,
    /// Processing time on the host PE (seconds).
    pub duration: f64,
}

/// A complete periodic schedule.
#[derive(Debug, Clone)]
pub struct PeriodicSchedule {
    /// Steady-state period `T` in seconds.
    pub period: f64,
    /// Per-task slot, indexed by task id.
    pub slots: Vec<Slot>,
    /// `firstPeriod` per task.
    pub first_period: Vec<u64>,
    /// Number of warm-up periods before every task is active
    /// (`max firstPeriod + 1`).
    pub warmup_periods: u64,
}

impl PeriodicSchedule {
    /// Build the schedule implied by `mapping` (with `report` supplying
    /// the period and loads — pass the output of [`crate::eval::evaluate`]).
    pub fn build(
        g: &StreamGraph,
        spec: &CellSpec,
        mapping: &Mapping,
        report: &MappingReport,
    ) -> PeriodicSchedule {
        let fp = first_periods(g);
        let period = report.period;
        let mut next_offset = vec![0.0f64; spec.n_pes()];
        let mut slots: Vec<Option<Slot>> = vec![None; g.n_tasks()];
        // topological order => a PE's intra-period order respects local deps
        for &t in g.topo_order() {
            let pe = mapping.pe_of(t);
            let duration = g.task(t).cost_on(spec.kind_of(pe));
            slots[t.index()] =
                Some(Slot { task: t, pe, offset: next_offset[pe.index()], duration });
            next_offset[pe.index()] += duration;
        }
        let warmup = fp.iter().copied().max().unwrap_or(0) + 1;
        PeriodicSchedule {
            period,
            slots: slots.into_iter().map(|s| s.expect("every task scheduled")).collect(),
            first_period: fp,
            warmup_periods: warmup,
        }
    }

    /// Absolute start time of instance `i` of a task.
    pub fn instance_start(&self, t: TaskId, instance: u64) -> f64 {
        let slot = &self.slots[t.index()];
        (self.first_period[t.index()] + instance) as f64 * self.period + slot.offset
    }

    /// Absolute completion time of instance `i` of a task.
    pub fn instance_end(&self, t: TaskId, instance: u64) -> f64 {
        self.instance_start(t, instance) + self.slots[t.index()].duration
    }

    /// Time at which the last of `n` instances leaves the pipeline
    /// (maximum completion over sink tasks), in the idealised model.
    pub fn makespan(&self, g: &StreamGraph, n_instances: u64) -> f64 {
        assert!(n_instances > 0);
        g.sinks().map(|t| self.instance_end(t, n_instances - 1)).fold(0.0, f64::max)
    }

    /// Utilisation of a PE: busy fraction of the period.
    pub fn utilisation(&self, pe: PeId) -> f64 {
        let busy: f64 = self.slots.iter().filter(|s| s.pe == pe).map(|s| s.duration).sum();
        busy / self.period
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use cellstream_daggen::{chain, CostParams};
    use cellstream_platform::CellSpec;

    fn setup() -> (cellstream_graph::StreamGraph, CellSpec, Mapping, PeriodicSchedule) {
        let g = chain("c", 4, &CostParams::default(), 5);
        let spec = CellSpec::with_spes(2);
        let m = Mapping::new(&g, &spec, vec![PeId(0), PeId(1), PeId(1), PeId(2)]).unwrap();
        let report = evaluate(&g, &spec, &m).unwrap();
        let sched = PeriodicSchedule::build(&g, &spec, &m, &report);
        (g, spec, m, sched)
    }

    #[test]
    fn slots_pack_back_to_back_per_pe() {
        let (g, spec, m, sched) = setup();
        for pe in spec.pes() {
            let mut slots: Vec<_> = sched.slots.iter().filter(|s| s.pe == pe).collect();
            slots.sort_by(|a, b| a.offset.total_cmp(&b.offset));
            let mut cursor = 0.0;
            for s in slots {
                assert!((s.offset - cursor).abs() < 1e-12, "gap before {:?}", s.task);
                cursor += s.duration;
            }
            // total busy time fits in the period
            assert!(cursor <= sched.period + 1e-12);
        }
        let _ = (g, m);
    }

    #[test]
    fn instance_times_step_by_period() {
        let (_, _, _, sched) = setup();
        let t = TaskId(2);
        let d = sched.instance_start(t, 5) - sched.instance_start(t, 4);
        assert!((d - sched.period).abs() < 1e-12);
    }

    #[test]
    fn dependencies_respected_across_periods() {
        // instance i of a consumer starts at least one full period after
        // the producing instance completes (communication period).
        let (g, _, _, sched) = setup();
        for e in g.edges() {
            let peek = g.task(e.dst).peek as u64;
            for i in 0..3 {
                let consumer_start = sched.instance_start(e.dst, i);
                // needs instances i..=i+peek of the producer
                let latest_needed = sched.instance_end(e.src, i + peek);
                assert!(
                    consumer_start >= latest_needed - 1e-12,
                    "edge {} instance {i}: consumer starts {consumer_start}, needs {latest_needed}",
                    e
                );
            }
        }
    }

    #[test]
    fn warmup_covers_deepest_task() {
        let (g, _, _, sched) = setup();
        let max_fp = *sched.first_period.iter().max().unwrap();
        assert_eq!(sched.warmup_periods, max_fp + 1);
        let _ = g;
    }

    #[test]
    fn makespan_grows_linearly_in_steady_state() {
        let (g, _, _, sched) = setup();
        let m1 = sched.makespan(&g, 1000);
        let m2 = sched.makespan(&g, 2000);
        assert!(((m2 - m1) - 1000.0 * sched.period).abs() < 1e-9);
    }

    #[test]
    fn utilisation_at_most_one() {
        let (_, spec, _, sched) = setup();
        for pe in spec.pes() {
            let u = sched.utilisation(pe);
            assert!((0.0..=1.0 + 1e-12).contains(&u), "{pe}: {u}");
        }
    }
}
