//! `firstPeriod` computation (paper §4.2).
//!
//! In the periodic steady-state schedule, the first instance of task `Tk`
//! is processed in period `firstPeriod(Tk)`:
//!
//! ```text
//! firstPeriod(Tk) = 0                                    if Tk has no predecessor
//!                 = max_{D_{j,k}} firstPeriod(Tj) + peek_k + 2   otherwise
//! ```
//!
//! Rationale (quoting the paper): *"All predecessors of an instance of
//! task Tk are processed after max(firstPeriod(Tj)) + 1 periods. We have
//! also to wait for peek_k additional periods if some following instances
//! are needed, plus one period for the communication."*
//!
//! > **Fidelity note.** The paper's worked example (Figure 3: a task `T3`
//! > with `peek = 1` whose predecessor has `firstPeriod = 0`) states
//! > `firstPeriod(T3) = 4`, but the printed recurrence evaluates to
//! > `0 + 1 + 2 = 3`. We implement the recurrence *exactly as printed* —
//! > it is the formula the buffer sizes (and therefore constraint (1i))
//! > are built on; the off-by-one in the prose example does not affect
//! > any reported result because every quantity downstream only uses
//! > *differences* of `firstPeriod` along edges, which the recurrence
//! > defines consistently.
//!
//! `firstPeriod` is **mapping-independent**: the paper deliberately
//! charges one communication period on every edge even between co-mapped
//! tasks ("we let this optimization for future work"). That is what makes
//! the buffer sizes constants of the graph, and constraint (1i) linear.
//! The co-mapping optimisation the paper defers is implemented as an
//! opt-in ablation in `cellstream-bench` (see DESIGN.md).

use cellstream_graph::StreamGraph;

/// Compute `firstPeriod` for every task, indexed by task id.
///
/// ```
/// use cellstream_daggen::shapes::figure3;
/// use cellstream_core::steady::first_periods;
///
/// let g = figure3(); // T1 -> T2, T1 -> T3 with peek(T3) = 1
/// let fp = first_periods(&g);
/// assert_eq!(fp, vec![0, 2, 3]); // recurrence as printed in the paper
/// ```
pub fn first_periods(g: &StreamGraph) -> Vec<u64> {
    let mut fp = vec![0u64; g.n_tasks()];
    for &t in g.topo_order() {
        let preds_max = g.predecessors(t).map(|p| fp[p.index()]).max();
        fp[t.index()] = match preds_max {
            None => 0,
            Some(m) => m + g.task(t).peek as u64 + 2,
        };
    }
    fp
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellstream_daggen::{chain, CostParams};
    use cellstream_graph::{StreamGraph, TaskSpec};

    #[test]
    fn sources_start_at_zero() {
        let g = chain("c", 5, &CostParams::default(), 3);
        let fp = first_periods(&g);
        assert_eq!(fp[0], 0);
    }

    #[test]
    fn chain_without_peek_steps_by_two() {
        let mut b = StreamGraph::builder("c");
        let ids: Vec<_> = (0..4).map(|i| b.add_task(TaskSpec::new(format!("t{i}")))).collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1], 8.0).unwrap();
        }
        let g = b.build().unwrap();
        assert_eq!(first_periods(&g), vec![0, 2, 4, 6]);
    }

    #[test]
    fn peek_adds_extra_periods() {
        let mut b = StreamGraph::builder("c");
        let a = b.add_task(TaskSpec::new("a"));
        let z = b.add_task(TaskSpec::new("z").peek(3));
        b.add_edge(a, z, 8.0).unwrap();
        let g = b.build().unwrap();
        assert_eq!(first_periods(&g), vec![0, 5]); // 0 + 3 + 2
    }

    #[test]
    fn join_takes_slowest_branch() {
        // a -> b -> d and a -> d: d must wait for b's output
        let mut b = StreamGraph::builder("j");
        let a = b.add_task(TaskSpec::new("a"));
        let mid = b.add_task(TaskSpec::new("b"));
        let d = b.add_task(TaskSpec::new("d"));
        b.add_edge(a, mid, 1.0).unwrap();
        b.add_edge(mid, d, 1.0).unwrap();
        b.add_edge(a, d, 1.0).unwrap();
        let g = b.build().unwrap();
        let fp = first_periods(&g);
        assert_eq!(fp, vec![0, 2, 4]); // max(0, 2) + 0 + 2
    }

    #[test]
    fn strictly_increasing_along_edges() {
        let g = cellstream_daggen::paper::graph2();
        let fp = first_periods(&g);
        for e in g.edges() {
            assert!(
                fp[e.dst.index()] >= fp[e.src.index()] + 2,
                "firstPeriod must grow by at least 2 along every edge"
            );
        }
    }

    #[test]
    fn disconnected_components_independent() {
        let mut b = StreamGraph::builder("two");
        let a = b.add_task(TaskSpec::new("a"));
        let z = b.add_task(TaskSpec::new("z"));
        let c = b.add_task(TaskSpec::new("c"));
        b.add_edge(a, z, 1.0).unwrap();
        let _ = c;
        let g = b.build().unwrap();
        assert_eq!(first_periods(&g), vec![0, 2, 0]);
    }
}
