//! Steady-state machinery: `firstPeriod` indices and buffer sizing
//! (paper §3.1 and §4.2).

pub mod buffers;
pub mod first_period;

pub use buffers::{buffer_bytes, task_buffer_bytes, BufferPlan};
pub use first_period::first_periods;
