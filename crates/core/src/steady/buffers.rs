//! Local-store buffer sizing (paper §4.2).
//!
//! Because PEs are not synchronised on the same instance, each edge
//! `D_{k,l}` must buffer every instance produced but not yet consumed in
//! steady state:
//!
//! ```text
//! buff(k,l) = data(k,l) · (firstPeriod(Tl) − firstPeriod(Tk))   bytes
//! ```
//!
//! A PE processing task `Tk` allocates buffers for **all** incoming data
//! `D_{j,k}` *and* all outgoing data `D_{k,l}` — "both buffers have to be
//! allocated into the SPE's memory even if one of the neighbor tasks is
//! mapped on the same SPE" (the co-mapping optimisation is future work in
//! the paper; `dedup_co_mapped` implements it for the ablation bench).

use crate::steady::first_period::first_periods;
use cellstream_graph::{EdgeId, StreamGraph, TaskId};

/// Precomputed buffer plan for a graph: per-edge buffer bytes and per-task
/// totals. Mapping-independent (see [`first_periods`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BufferPlan {
    /// `firstPeriod` per task.
    pub first_period: Vec<u64>,
    /// Buffer size in bytes per edge.
    pub edge_bytes: Vec<f64>,
    /// Total buffer bytes a PE must reserve to host each task
    /// (sum over the task's incoming and outgoing edges).
    pub task_bytes: Vec<f64>,
    /// Number of instance slots per edge
    /// (`firstPeriod(dst) − firstPeriod(src)`).
    pub edge_slots: Vec<u64>,
}

impl BufferPlan {
    /// Build the plan for a graph.
    pub fn new(g: &StreamGraph) -> Self {
        let first_period = first_periods(g);
        let mut edge_bytes = Vec::with_capacity(g.n_edges());
        let mut edge_slots = Vec::with_capacity(g.n_edges());
        for e in g.edges() {
            let span = first_period[e.dst.index()] - first_period[e.src.index()];
            edge_slots.push(span);
            edge_bytes.push(e.data_bytes * span as f64);
        }
        let mut task_bytes = vec![0.0; g.n_tasks()];
        for (ei, e) in g.edges().iter().enumerate() {
            task_bytes[e.src.index()] += edge_bytes[ei];
            task_bytes[e.dst.index()] += edge_bytes[ei];
        }
        BufferPlan { first_period, edge_bytes, task_bytes, edge_slots }
    }

    /// Buffer bytes for one edge.
    pub fn for_edge(&self, e: EdgeId) -> f64 {
        self.edge_bytes[e.index()]
    }

    /// Buffer bytes a host PE reserves for one task.
    pub fn for_task(&self, t: TaskId) -> f64 {
        self.task_bytes[t.index()]
    }

    /// Local-store bytes needed on a PE hosting exactly the given tasks,
    /// under the paper's simple scheme (no co-mapping dedup).
    pub fn for_tasks<'a>(&self, tasks: impl Iterator<Item = &'a TaskId>) -> f64 {
        tasks.map(|t| self.task_bytes[t.index()]).sum()
    }

    /// Local-store bytes for a set of tasks **with** the paper's
    /// future-work optimisation: an edge between two co-hosted tasks is
    /// counted once instead of twice. Used by the ablation bench.
    pub fn for_tasks_dedup(&self, g: &StreamGraph, tasks: &[TaskId]) -> f64 {
        let mut on_pe = vec![false; g.n_tasks()];
        for t in tasks {
            on_pe[t.index()] = true;
        }
        let mut total = 0.0;
        for (ei, e) in g.edges().iter().enumerate() {
            let src_here = on_pe[e.src.index()];
            let dst_here = on_pe[e.dst.index()];
            match (src_here, dst_here) {
                (true, true) => total += self.edge_bytes[ei], // shared once
                (true, false) | (false, true) => total += self.edge_bytes[ei],
                (false, false) => {}
            }
        }
        total
    }
}

/// Convenience: buffer bytes of a single edge.
pub fn buffer_bytes(g: &StreamGraph, e: EdgeId) -> f64 {
    BufferPlan::new(g).for_edge(e)
}

/// Convenience: buffer bytes a host reserves for a single task.
pub fn task_buffer_bytes(g: &StreamGraph, t: TaskId) -> f64 {
    BufferPlan::new(g).for_task(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellstream_graph::{StreamGraph, TaskSpec};

    fn two_chain(data: f64, peek: u32) -> StreamGraph {
        let mut b = StreamGraph::builder("c");
        let a = b.add_task(TaskSpec::new("a"));
        let z = b.add_task(TaskSpec::new("z").peek(peek));
        b.add_edge(a, z, data).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn buffer_is_data_times_period_span() {
        let g = two_chain(100.0, 0);
        let plan = BufferPlan::new(&g);
        // firstPeriod: [0, 2] -> span 2 -> 200 bytes
        assert_eq!(plan.edge_slots, vec![2]);
        assert_eq!(plan.for_edge(cellstream_graph::EdgeId(0)), 200.0);
    }

    #[test]
    fn peek_inflates_buffers() {
        let g = two_chain(100.0, 2);
        let plan = BufferPlan::new(&g);
        // firstPeriod: [0, 4] -> 400 bytes
        assert_eq!(plan.for_edge(cellstream_graph::EdgeId(0)), 400.0);
    }

    #[test]
    fn task_bytes_count_both_directions() {
        // a -> m -> z: m pays for both its in and out buffers
        let mut b = StreamGraph::builder("c");
        let a = b.add_task(TaskSpec::new("a"));
        let m = b.add_task(TaskSpec::new("m"));
        let z = b.add_task(TaskSpec::new("z"));
        b.add_edge(a, m, 10.0).unwrap();
        b.add_edge(m, z, 20.0).unwrap();
        let g = b.build().unwrap();
        let plan = BufferPlan::new(&g);
        // fp = [0,2,4]; buff(a,m) = 20, buff(m,z) = 40
        assert_eq!(plan.for_task(cellstream_graph::TaskId(1)), 60.0);
        assert_eq!(plan.for_task(cellstream_graph::TaskId(0)), 20.0);
        assert_eq!(plan.for_task(cellstream_graph::TaskId(2)), 40.0);
    }

    #[test]
    fn dedup_counts_co_mapped_edges_once() {
        let mut b = StreamGraph::builder("c");
        let a = b.add_task(TaskSpec::new("a"));
        let m = b.add_task(TaskSpec::new("m"));
        b.add_edge(a, m, 10.0).unwrap();
        let g = b.build().unwrap();
        let plan = BufferPlan::new(&g);
        let both = [cellstream_graph::TaskId(0), cellstream_graph::TaskId(1)];
        // simple scheme: 20 (a's out) + 20 (m's in) = 40
        assert_eq!(plan.for_tasks(both.iter()), 40.0);
        // dedup: the same physical buffer serves both = 20
        assert_eq!(plan.for_tasks_dedup(&g, &both), 20.0);
    }

    #[test]
    fn dedup_equals_simple_when_no_co_mapping() {
        let g = cellstream_daggen::paper::graph1();
        let plan = BufferPlan::new(&g);
        for t in g.task_ids().take(10) {
            let single = [t];
            assert!(
                (plan.for_tasks(single.iter()) - plan.for_tasks_dedup(&g, &single)).abs() < 1e-9
            );
        }
    }

    #[test]
    fn plan_totals_conserve_edge_bytes() {
        let g = cellstream_daggen::paper::graph1();
        let plan = BufferPlan::new(&g);
        let from_tasks: f64 = plan.task_bytes.iter().sum();
        let from_edges: f64 = plan.edge_bytes.iter().sum();
        assert!((from_tasks - 2.0 * from_edges).abs() < 1e-6); // each edge counted twice
    }
}
