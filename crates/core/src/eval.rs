//! Throughput evaluation of an arbitrary mapping.
//!
//! This is the polynomial-time verifier from the paper's NP-completeness
//! proof (§3.2): *"we simply have to make sure that the occupation time of
//! each resource (processing element or communication interface) for
//! processing one instance is not larger than 1/B"* — plus the feasibility
//! constraints (1i)–(1k) on local stores and DMA queues.
//!
//! The period of a mapping is
//!
//! ```text
//! T = max over PEs of { compute load,  incoming bytes / bw,  outgoing bytes / bw }
//! ```
//!
//! where memory reads/writes count on the interfaces of the PE that issues
//! them (§2.1: "memory accesses have to be counted as communications").

use crate::mapping::Mapping;
use crate::steady::buffers::BufferPlan;
use cellstream_graph::StreamGraph;
use cellstream_platform::{CellSpec, PeId, PeKind};
use std::fmt;

pub mod incremental;

/// A violated feasibility constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// Constraint (1i): buffers exceed `LS − code` on an SPE.
    LocalStore {
        /// The overloaded SPE.
        pe: PeId,
        /// Bytes of buffers required.
        used: f64,
        /// Bytes available.
        budget: f64,
    },
    /// Constraint (1j): more than 16 concurrent incoming DMAs on an SPE.
    DmaIn {
        /// The overloaded SPE.
        pe: PeId,
        /// Concurrent incoming transfers required.
        used: u32,
        /// The hardware queue depth.
        limit: u32,
    },
    /// Constraint (1k): more than 8 concurrent SPE→PPE proxy transfers.
    DmaPpe {
        /// The overloaded SPE.
        pe: PeId,
        /// Concurrent proxy transfers required.
        used: u32,
        /// The proxy queue depth.
        limit: u32,
    },
    /// A task is seated on a PE the [`Availability`] overlay marks
    /// dead — live capacity is zero there, so the mapping cannot run.
    DeadPe {
        /// The dead PE.
        pe: PeId,
        /// Tasks seated on it.
        tasks: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::LocalStore { pe, used, budget } => {
                write!(f, "{pe}: buffers need {used:.0} B of {budget:.0} B local store")
            }
            Violation::DmaIn { pe, used, limit } => {
                write!(f, "{pe}: {used} incoming DMA transfers (limit {limit})")
            }
            Violation::DmaPpe { pe, used, limit } => {
                write!(f, "{pe}: {used} SPE→PPE proxy transfers (limit {limit})")
            }
            Violation::DeadPe { pe, tasks } => {
                write!(f, "{pe}: {tasks} task(s) seated on a dead PE")
            }
        }
    }
}

/// Which resource class determines the period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// A PE's compute load.
    Compute(PeId),
    /// A PE's incoming interface.
    IncomingBw(PeId),
    /// A PE's outgoing interface.
    OutgoingBw(PeId),
}

/// Full evaluation of a mapping.
#[derive(Debug, Clone)]
pub struct MappingReport {
    /// Steady-state period `T` (seconds per instance).
    pub period: f64,
    /// Throughput `ρ = 1/T` (instances per second).
    pub throughput: f64,
    /// Per-PE compute seconds per instance.
    pub compute_load: Vec<f64>,
    /// Per-PE incoming bytes per instance (edges + memory reads).
    pub in_bytes: Vec<f64>,
    /// Per-PE outgoing bytes per instance (edges + memory writes).
    pub out_bytes: Vec<f64>,
    /// Per-SPE local-store buffer bytes (indexed by PE id; PPEs stay 0).
    pub memory_bytes: Vec<f64>,
    /// Per-SPE concurrent incoming DMA count.
    pub dma_in: Vec<u32>,
    /// Per-SPE concurrent SPE→PPE proxy transfer count.
    pub dma_ppe: Vec<u32>,
    /// The resource that sets the period.
    pub bottleneck: Bottleneck,
    /// All (1i)–(1k) violations; empty iff the mapping is feasible.
    pub violations: Vec<Violation>,
}

impl MappingReport {
    /// `true` iff constraints (1i)–(1k) all hold.
    pub fn is_feasible(&self) -> bool {
        self.violations.is_empty()
    }

    /// Speed-up of this mapping relative to a reference period (usually
    /// the PPE-only period, as in §6.4.2).
    pub fn speedup_vs(&self, reference_period: f64) -> f64 {
        reference_period / self.period
    }
}

/// Throughput `ρ = 1/T`, guarded against the degenerate `T = 0`: a
/// zero-period report (reachable through zero-work graphs, which the
/// builder accepts, and hand-built reports) yields `0.0` instead of
/// `inf`, so speed-up ratios and figure columns stay finite.
pub(crate) fn throughput_of(period: f64) -> f64 {
    if period > 0.0 {
        1.0 / period
    } else {
        0.0
    }
}

/// Evaluate `mapping` on `spec`. Returns `Err` only for structurally
/// invalid mappings (wrong length / unknown PE); infeasible-but-valid
/// mappings come back as a report with `violations`.
pub fn evaluate(
    g: &StreamGraph,
    spec: &CellSpec,
    mapping: &Mapping,
) -> Result<MappingReport, crate::mapping::MappingError> {
    evaluate_with(g, spec, &crate::avail::Availability::full(spec), mapping)
}

/// [`evaluate`] against *live* capacity: compute loads are scaled by
/// each PE's [`Availability::slowdown`](crate::Availability::slowdown),
/// and any task seated on a dead PE is reported as a
/// [`Violation::DeadPe`]. With a fully healthy overlay this is exactly
/// `evaluate` (slowdown `1.0` is an exact multiplicative identity).
pub fn evaluate_with(
    g: &StreamGraph,
    spec: &CellSpec,
    avail: &crate::avail::Availability,
    mapping: &Mapping,
) -> Result<MappingReport, crate::mapping::MappingError> {
    // revalidate (mappings can be deserialised from anywhere) — in place,
    // without cloning the assignment vector
    mapping.validate(g, spec)?;
    assert_eq!(avail.n_pes(), spec.n_pes(), "availability overlay must cover every PE");

    let n = spec.n_pes();
    let bw = spec.interface_bw().as_bytes_per_s();
    let plan = BufferPlan::new(g);

    let mut compute_load = vec![0.0; n];
    let mut in_bytes = vec![0.0; n];
    let mut out_bytes = vec![0.0; n];
    let mut memory_bytes = vec![0.0; n];
    let mut dma_in = vec![0u32; n];
    let mut dma_ppe = vec![0u32; n];
    let mut seated = vec![0usize; n];

    for t in g.task_ids() {
        let pe = mapping.pe_of(t);
        let task = g.task(t);
        compute_load[pe.index()] += task.cost_on(spec.kind_of(pe)) * avail.slowdown(pe);
        in_bytes[pe.index()] += task.read_bytes;
        out_bytes[pe.index()] += task.write_bytes;
        seated[pe.index()] += 1;
        if spec.is_spe(pe) {
            memory_bytes[pe.index()] += plan.for_task(t);
        }
    }
    for e in g.edges() {
        let src = mapping.pe_of(e.src);
        let dst = mapping.pe_of(e.dst);
        if src != dst {
            out_bytes[src.index()] += e.data_bytes;
            in_bytes[dst.index()] += e.data_bytes;
            if spec.is_spe(dst) {
                dma_in[dst.index()] += 1;
            }
            if spec.is_spe(src) && spec.kind_of(dst) == PeKind::Ppe {
                dma_ppe[src.index()] += 1;
            }
        }
    }

    // period = max resource occupation
    let mut period = 0.0f64;
    let mut bottleneck = Bottleneck::Compute(PeId(0));
    for pe in spec.pes() {
        let i = pe.index();
        if compute_load[i] > period {
            period = compute_load[i];
            bottleneck = Bottleneck::Compute(pe);
        }
        if in_bytes[i] / bw > period {
            period = in_bytes[i] / bw;
            bottleneck = Bottleneck::IncomingBw(pe);
        }
        if out_bytes[i] / bw > period {
            period = out_bytes[i] / bw;
            bottleneck = Bottleneck::OutgoingBw(pe);
        }
    }

    let mut violations = Vec::new();
    for pe in spec.pes() {
        if avail.is_dead(pe) && seated[pe.index()] > 0 {
            violations.push(Violation::DeadPe { pe, tasks: seated[pe.index()] });
        }
    }
    let budget = spec.local_store_budget() as f64;
    for pe in spec.spes() {
        let i = pe.index();
        if memory_bytes[i] > budget + 1e-9 {
            violations.push(Violation::LocalStore { pe, used: memory_bytes[i], budget });
        }
        if dma_in[i] > spec.dma_in_limit() {
            violations.push(Violation::DmaIn { pe, used: dma_in[i], limit: spec.dma_in_limit() });
        }
        if dma_ppe[i] > spec.dma_ppe_limit() {
            violations.push(Violation::DmaPpe {
                pe,
                used: dma_ppe[i],
                limit: spec.dma_ppe_limit(),
            });
        }
    }

    Ok(MappingReport {
        period,
        throughput: throughput_of(period),
        compute_load,
        in_bytes,
        out_bytes,
        memory_bytes,
        dma_in,
        dma_ppe,
        bottleneck,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellstream_graph::{StreamGraph, TaskSpec};
    use cellstream_platform::CellSpecBuilder;

    fn spec2() -> CellSpec {
        CellSpec::with_spes(2)
    }

    /// a -> z with controllable everything.
    fn pair(data: f64, read: f64, write: f64) -> StreamGraph {
        let mut b = StreamGraph::builder("p");
        let a = b.add_task(TaskSpec::new("a").ppe_cost(4e-6).spe_cost(2e-6).reads(read));
        let z = b.add_task(TaskSpec::new("z").ppe_cost(6e-6).spe_cost(1e-6).writes(write));
        b.add_edge(a, z, data).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn ppe_only_period_is_total_ppe_work() {
        let g = pair(1000.0, 0.0, 0.0);
        let m = Mapping::all_on(&g, PeId(0));
        let r = evaluate(&g, &spec2(), &m).unwrap();
        assert!((r.period - 10e-6).abs() < 1e-12);
        assert!(r.is_feasible());
        assert_eq!(r.bottleneck, Bottleneck::Compute(PeId(0)));
        // co-mapped edge: no interface traffic, no DMA
        assert_eq!(r.in_bytes[0], 0.0);
        assert_eq!(r.dma_in, vec![0, 0, 0]);
    }

    #[test]
    fn split_mapping_balances_compute_and_pays_comm() {
        let g = pair(1000.0, 0.0, 0.0);
        let spec = spec2();
        let m = Mapping::new(&g, &spec, vec![PeId(1), PeId(2)]).unwrap();
        let r = evaluate(&g, &spec, &m).unwrap();
        // SPE costs: 2us and 1us; comm 1000B / 25GB/s = 40ns
        assert!((r.compute_load[1] - 2e-6).abs() < 1e-12);
        assert!((r.compute_load[2] - 1e-6).abs() < 1e-12);
        assert!((r.out_bytes[1] - 1000.0).abs() < 1e-9);
        assert!((r.in_bytes[2] - 1000.0).abs() < 1e-9);
        assert!((r.period - 2e-6).abs() < 1e-12);
        assert_eq!(r.dma_in[2], 1);
        assert_eq!(r.dma_ppe, vec![0, 0, 0]); // no SPE->PPE edge
    }

    #[test]
    fn memory_traffic_counts_on_interfaces() {
        // enormous read volume makes the incoming interface the bottleneck
        let g = pair(0.0, 2.5e6, 0.0); // 2.5MB read / 25GB/s = 100us >> compute
        let spec = spec2();
        let m = Mapping::new(&g, &spec, vec![PeId(1), PeId(2)]).unwrap();
        let r = evaluate(&g, &spec, &m).unwrap();
        assert!((r.period - 1e-4).abs() < 1e-9);
        assert_eq!(r.bottleneck, Bottleneck::IncomingBw(PeId(1)));
    }

    #[test]
    fn local_store_violation_detected() {
        // 64 kB payload, firstPeriod span 2 -> 128 kB buffer; in+out on the
        // middle task of a 3-chain would be > LS-code for a small store
        let spec = CellSpecBuilder::default()
            .spes(1)
            .local_store(cellstream_platform::ByteSize::kib(128))
            .code_size(cellstream_platform::ByteSize::kib(64))
            .build()
            .unwrap();
        let g = pair(64.0 * 1024.0, 0.0, 0.0);
        let m = Mapping::new(&g, &spec, vec![PeId(1), PeId(1)]).unwrap();
        let r = evaluate(&g, &spec, &m).unwrap();
        assert!(!r.is_feasible());
        assert!(matches!(r.violations[0], Violation::LocalStore { pe: PeId(1), .. }));
        // on the PPE the same tasks are fine (main memory is unbounded)
        let m = Mapping::all_on(&g, PeId(0));
        assert!(evaluate(&g, &spec, &m).unwrap().is_feasible());
    }

    #[test]
    fn dma_in_violation_detected() {
        // 17 producers on the PPE feeding one consumer on an SPE
        let mut b = StreamGraph::builder("fan");
        let producers: Vec<_> =
            (0..17).map(|i| b.add_task(TaskSpec::new(format!("p{i}")))).collect();
        let sink = b.add_task(TaskSpec::new("sink"));
        for &p in &producers {
            b.add_edge(p, sink, 8.0).unwrap();
        }
        let g = b.build().unwrap();
        let spec = spec2();
        let mut assign = vec![PeId(0); 17];
        assign.push(PeId(1));
        let m = Mapping::new(&g, &spec, assign).unwrap();
        let r = evaluate(&g, &spec, &m).unwrap();
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DmaIn { pe: PeId(1), used: 17, .. })));
    }

    #[test]
    fn dma_ppe_violation_detected() {
        // 9 tasks on one SPE all feeding PPE-mapped consumers
        let mut b = StreamGraph::builder("fanout");
        let producers: Vec<_> =
            (0..9).map(|i| b.add_task(TaskSpec::new(format!("p{i}")))).collect();
        let consumers: Vec<_> =
            (0..9).map(|i| b.add_task(TaskSpec::new(format!("c{i}")))).collect();
        for (p, c) in producers.iter().zip(&consumers) {
            b.add_edge(*p, *c, 8.0).unwrap();
        }
        let g = b.build().unwrap();
        let spec = spec2();
        let mut assign = vec![PeId(1); 9];
        assign.extend(vec![PeId(0); 9]);
        let m = Mapping::new(&g, &spec, assign).unwrap();
        let r = evaluate(&g, &spec, &m).unwrap();
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DmaPpe { pe: PeId(1), used: 9, .. })));
        // SPE->SPE needs no proxy queue: move consumers to SPE 2
        let assign2: Vec<_> = (0..18).map(|i| if i < 9 { PeId(1) } else { PeId(2) }).collect();
        let m2 = Mapping::new(&g, &spec, assign2).unwrap();
        let r2 = evaluate(&g, &spec, &m2).unwrap();
        assert!(r2.dma_ppe.iter().all(|&c| c == 0));
        assert_eq!(r2.dma_in[2], 9);
    }

    #[test]
    fn speedup_is_relative_to_reference() {
        let g = pair(100.0, 0.0, 0.0);
        let spec = spec2();
        let ppe = evaluate(&g, &spec, &Mapping::all_on(&g, PeId(0))).unwrap();
        let split =
            evaluate(&g, &spec, &Mapping::new(&g, &spec, vec![PeId(1), PeId(2)]).unwrap()).unwrap();
        let s = split.speedup_vs(ppe.period);
        assert!((s - 5.0).abs() < 1e-9, "10us / 2us = 5, got {s}");
    }

    #[test]
    fn throughput_guard_keeps_zero_period_finite() {
        // regression: `1.0 / period` used to return `inf` for a
        // zero-period report, poisoning every downstream speed-up ratio
        assert_eq!(throughput_of(0.0), 0.0);
        assert_eq!(throughput_of(-1.0), 0.0);
        assert!((throughput_of(2.0) - 0.5).abs() < 1e-15);
        // builder-validated graphs always have positive costs, so real
        // reports stay on the normal path
        let g = pair(100.0, 0.0, 0.0);
        let r = evaluate(&g, &spec2(), &Mapping::all_on(&g, PeId(0))).unwrap();
        assert!(r.throughput.is_finite() && r.throughput > 0.0);
        assert!((r.throughput * r.period - 1.0).abs() < 1e-12);
    }

    #[test]
    fn availability_scales_compute_and_flags_dead_seats() {
        use crate::avail::Availability;
        let g = pair(1000.0, 0.0, 0.0);
        let spec = spec2();
        let m = Mapping::new(&g, &spec, vec![PeId(1), PeId(2)]).unwrap();

        // inert overlay reproduces evaluate() exactly
        let full = Availability::full(&spec);
        let base = evaluate(&g, &spec, &m).unwrap();
        let with = evaluate_with(&g, &spec, &full, &m).unwrap();
        assert_eq!(with.period, base.period);
        assert_eq!(with.compute_load, base.compute_load);
        assert_eq!(with.violations.len(), base.violations.len());

        // a half-speed SPE doubles its compute occupation
        let mut slow = Availability::full(&spec);
        slow.set_factor(PeId(1), 0.5);
        let r = evaluate_with(&g, &spec, &slow, &m).unwrap();
        assert!((r.compute_load[1] - 4e-6).abs() < 1e-12, "2us at half speed");
        assert!((r.period - 4e-6).abs() < 1e-12);
        assert!(r.is_feasible(), "degraded is slow, not broken");

        // a dead SPE with a seated task is a capacity violation
        let mut dead = Availability::full(&spec);
        dead.fail(PeId(2));
        let r = evaluate_with(&g, &spec, &dead, &m).unwrap();
        assert!(!r.is_feasible());
        assert!(matches!(r.violations[0], Violation::DeadPe { pe: PeId(2), tasks: 1 }));
        // evacuating the dead PE restores feasibility
        let m2 = Mapping::new(&g, &spec, vec![PeId(1), PeId(0)]).unwrap();
        assert!(evaluate_with(&g, &spec, &dead, &m2).unwrap().is_feasible());
    }

    #[test]
    fn unrelated_costs_used_per_kind() {
        let g = pair(0.0, 0.0, 0.0);
        let spec = spec2();
        // task a: 4us PPE / 2us SPE
        let on_ppe = evaluate(&g, &spec, &Mapping::all_on(&g, PeId(0))).unwrap();
        let on_spe = evaluate(&g, &spec, &Mapping::all_on(&g, PeId(1))).unwrap();
        assert!((on_ppe.compute_load[0] - 10e-6).abs() < 1e-12);
        assert!((on_spe.compute_load[1] - 3e-6).abs() < 1e-12);
    }
}
