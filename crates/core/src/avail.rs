//! Live platform availability: a per-PE health overlay on a
//! [`CellSpec`].
//!
//! The paper plans against a fixed, healthy platform; a serving Cell
//! blade is neither. An [`Availability`] records, per processing
//! element, a *health factor* in `[0, 1]`: `1.0` is nominal, `0.0` is
//! dead (an SPE taken offline, a thermally parked core), and anything
//! in between is a degraded PE whose compute runs proportionally
//! slower. The overlay is deliberately thin — the [`CellSpec`] stays
//! immutable and continues to describe the *nominal* machine, so
//! buffer budgets, DMA limits and the §4.2 migration cost model (EIB
//! bandwidth) are unchanged; only *compute capacity* and *placement
//! eligibility* react to health:
//!
//! * a degraded PE multiplies every task cost by `1 / factor`
//!   (`slowdown`), so the period and the repair planner see the live
//!   capacity;
//! * a dead PE must host nothing — any task seated there is a
//!   capacity violation ([`Violation::DeadPe`](crate::eval::Violation)),
//!   which routes the existing eviction machinery toward evacuating
//!   it.
//!
//! Failing a PPE is rejected at the serving layer: the PPE runs the
//! control thread and is the eviction target of last resort, so a
//! platform without a live PPE cannot replan at all (the same reason
//! [`CellSpec`](cellstream_platform::CellSpec) refuses to build with
//! zero PPEs).

use cellstream_platform::{CellSpec, PeId};
use std::fmt;

/// Per-PE health factors overlaying one [`CellSpec`]. See the module
/// docs.
#[derive(Debug, Clone, PartialEq)]
pub struct Availability {
    /// Health factor per PE id: `1.0` nominal, `0.0` dead, in between
    /// degraded. Length equals `spec.n_pes()`.
    factors: Vec<f64>,
}

impl Availability {
    /// Every PE healthy — the nominal platform the paper assumes.
    pub fn full(spec: &CellSpec) -> Availability {
        Availability { factors: vec![1.0; spec.n_pes()] }
    }

    /// Every PE healthy, by PE count (for callers without a spec).
    pub fn full_n(n_pes: usize) -> Availability {
        Availability { factors: vec![1.0; n_pes] }
    }

    /// Number of PEs the overlay covers.
    pub fn n_pes(&self) -> usize {
        self.factors.len()
    }

    /// `true` when every PE is at factor `1.0` (the overlay is inert).
    pub fn all_healthy(&self) -> bool {
        self.factors.iter().all(|&f| f == 1.0)
    }

    /// Health factor of one PE. Panics on out-of-range ids.
    pub fn factor(&self, pe: PeId) -> f64 {
        self.factors[pe.index()]
    }

    /// `true` when the PE is dead (factor `0.0`).
    pub fn is_dead(&self, pe: PeId) -> bool {
        self.factors[pe.index()] == 0.0
    }

    /// Compute slowdown multiplier of one PE: `1 / factor` for live
    /// PEs. A dead PE reports `1.0` — its tasks are accounted at
    /// nominal cost and flagged through the dead-PE capacity violation
    /// instead, which keeps every accumulator finite (no `inf − inf`
    /// hazards in incremental updates).
    pub fn slowdown(&self, pe: PeId) -> f64 {
        let f = self.factors[pe.index()];
        if f > 0.0 {
            1.0 / f
        } else {
            1.0
        }
    }

    /// Mark a PE dead. Panics on out-of-range ids.
    pub fn fail(&mut self, pe: PeId) {
        self.factors[pe.index()] = 0.0;
    }

    /// Restore a PE to nominal health.
    pub fn restore(&mut self, pe: PeId) {
        self.factors[pe.index()] = 1.0;
    }

    /// Set a PE's health factor. Panics unless `0.0 <= factor <= 1.0`
    /// and the id is in range.
    pub fn set_factor(&mut self, pe: PeId, factor: f64) {
        assert!(
            (0.0..=1.0).contains(&factor),
            "health factor must be in [0, 1], got {factor} for {pe}"
        );
        self.factors[pe.index()] = factor;
    }

    /// Ids of the dead PEs, ascending.
    pub fn dead_pes(&self) -> impl Iterator<Item = PeId> + '_ {
        self.factors.iter().enumerate().filter(|(_, &f)| f == 0.0).map(|(i, _)| PeId(i))
    }

    /// Number of dead PEs.
    pub fn n_dead(&self) -> usize {
        self.factors.iter().filter(|&&f| f == 0.0).count()
    }
}

serde::impl_json_struct!(Availability { factors });

impl fmt::Display for Availability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.all_healthy() {
            return write!(f, "all {} PEs healthy", self.factors.len());
        }
        let impaired: Vec<String> = self
            .factors
            .iter()
            .enumerate()
            .filter(|(_, &h)| h != 1.0)
            .map(|(i, &h)| {
                if h == 0.0 {
                    format!("PE{i} dead")
                } else {
                    format!("PE{i} at {:.0}%", h * 100.0)
                }
            })
            .collect();
        write!(f, "{}", impaired.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_overlay_is_inert() {
        let spec = CellSpec::ps3();
        let a = Availability::full(&spec);
        assert_eq!(a.n_pes(), spec.n_pes());
        assert!(a.all_healthy());
        assert_eq!(a.n_dead(), 0);
        for pe in spec.pes() {
            assert_eq!(a.factor(pe), 1.0);
            assert_eq!(a.slowdown(pe), 1.0);
            assert!(!a.is_dead(pe));
        }
        assert_eq!(format!("{a}"), "all 7 PEs healthy");
    }

    #[test]
    fn fail_restore_degrade_round_trip() {
        let mut a = Availability::full(&CellSpec::ps3());
        a.fail(PeId(3));
        assert!(a.is_dead(PeId(3)));
        assert_eq!(a.n_dead(), 1);
        assert_eq!(a.dead_pes().collect::<Vec<_>>(), vec![PeId(3)]);
        assert_eq!(a.slowdown(PeId(3)), 1.0, "dead PEs stay finite");
        assert!(!a.all_healthy());

        a.set_factor(PeId(2), 0.5);
        assert_eq!(a.slowdown(PeId(2)), 2.0);
        assert!(!a.is_dead(PeId(2)));
        assert_eq!(format!("{a}"), "PE2 at 50%, PE3 dead");

        a.restore(PeId(3));
        a.restore(PeId(2));
        assert!(a.all_healthy());
    }

    #[test]
    #[should_panic(expected = "health factor")]
    fn out_of_range_factor_is_rejected() {
        Availability::full(&CellSpec::ps3()).set_factor(PeId(1), 1.5);
    }

    #[test]
    fn availability_round_trips_through_json() {
        let mut a = Availability::full(&CellSpec::ps3());
        a.fail(PeId(4));
        a.set_factor(PeId(1), 0.25);
        let json = serde_json::to_string(&a).unwrap();
        let back: Availability = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
    }
}
