//! Migration cost between two mappings — the price of *changing* a plan.
//!
//! The paper computes one mapping offline and never revisits it; an
//! online serving layer replans whenever an application arrives,
//! departs, or changes rate. Adopting a new mapping is not free: every
//! task that changes host must have its state and in-flight stream
//! buffers copied across the EIB while the steady state drains and
//! refills. [`MappingDelta`] quantifies that price by diffing two
//! mappings — possibly of **different** workload versions, so tasks are
//! matched by their composed *name* (`"app/task"`, stable across
//! `Workload` recompositions) rather than by positional [`TaskId`].
//!
//! The cost model: a moved task `T_k` must transfer its local-store
//! working set — the buffers of all its incident edges,
//! `buff(k) = Σ_{(j,k)} buff(j,k) + Σ_{(k,l)} buff(k,l)` (paper §4.2,
//! the same figure that counts against the 256 kB local store) — from
//! the old host to the new one. Tasks entering the workload have no
//! state to move and tasks leaving discard theirs, so only *moved*
//! survivors pay. [`MappingDelta::migration_time`] converts the total
//! byte count into seconds over the EIB, the bus every PE-to-PE copy
//! crosses.

use crate::mapping::Mapping;
use crate::steady::buffers::BufferPlan;
use cellstream_graph::{StreamGraph, TaskId};
use cellstream_platform::{CellSpec, PeId};
use std::collections::HashMap;
use std::fmt;

/// One surviving task that changes host.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskMove {
    /// Composed task name (`"app/task"` for workload graphs).
    pub task: String,
    /// Task id in the **new** graph.
    pub new_id: TaskId,
    /// Old host.
    pub from: PeId,
    /// New host.
    pub to: PeId,
    /// Bytes of state + stream buffers that cross the EIB for this move
    /// (the task's §4.2 buffer working set, sized on the new graph).
    pub bytes: f64,
}

/// The difference between two mappings, task-name matched so it stays
/// meaningful across workload admissions and retirements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MappingDelta {
    /// Surviving tasks whose host changed, in new-graph id order.
    pub moved: Vec<TaskMove>,
    /// Tasks only present in the new mapping (admitted applications):
    /// placed fresh, no migration cost.
    pub placed: Vec<String>,
    /// Tasks only present in the old mapping (retired applications):
    /// their state is discarded, no migration cost.
    pub dropped: Vec<String>,
    /// Total migration traffic: `Σ` over moved tasks of their buffer
    /// working set, in bytes.
    pub migration_bytes: f64,
}

impl MappingDelta {
    /// Diff `old` (a mapping of `old_g`) against `new` (a mapping of
    /// `new_g`). The graphs may be different versions of a mutating
    /// workload; tasks are matched by name.
    pub fn between(
        old_g: &StreamGraph,
        old_m: &Mapping,
        new_g: &StreamGraph,
        new_m: &Mapping,
    ) -> MappingDelta {
        Self::diff(old_g, old_m, new_g, new_m, false)
    }

    /// Diff two mappings that live on **different platform instances**
    /// (the cluster-migration case): every name-matched survivor pays
    /// its buffer working set, even when its [`PeId`] happens to
    /// coincide on both nodes — the state still crosses a network link,
    /// not the EIB. Price the result with
    /// [`transfer_time`](Self::transfer_time) instead of
    /// [`migration_time`](Self::migration_time).
    pub fn between_nodes(
        old_g: &StreamGraph,
        old_m: &Mapping,
        new_g: &StreamGraph,
        new_m: &Mapping,
    ) -> MappingDelta {
        Self::diff(old_g, old_m, new_g, new_m, true)
    }

    fn diff(
        old_g: &StreamGraph,
        old_m: &Mapping,
        new_g: &StreamGraph,
        new_m: &Mapping,
        cross_node: bool,
    ) -> MappingDelta {
        assert_eq!(old_m.assignment().len(), old_g.n_tasks(), "old mapping/graph mismatch");
        assert_eq!(new_m.assignment().len(), new_g.n_tasks(), "new mapping/graph mismatch");
        let old_by_name: HashMap<&str, TaskId> =
            old_g.tasks().iter().enumerate().map(|(i, t)| (t.name.as_str(), TaskId(i))).collect();
        let plan = BufferPlan::new(new_g);

        let mut delta = MappingDelta::default();
        let mut survived = vec![false; old_g.n_tasks()];
        for (i, task) in new_g.tasks().iter().enumerate() {
            let new_id = TaskId(i);
            match old_by_name.get(task.name.as_str()) {
                Some(&old_id) => {
                    survived[old_id.index()] = true;
                    let (from, to) = (old_m.pe_of(old_id), new_m.pe_of(new_id));
                    if cross_node || from != to {
                        let bytes = plan.for_task(new_id);
                        delta.migration_bytes += bytes;
                        delta.moved.push(TaskMove {
                            task: task.name.clone(),
                            new_id,
                            from,
                            to,
                            bytes,
                        });
                    }
                }
                None => delta.placed.push(task.name.clone()),
            }
        }
        for (i, s) in survived.iter().enumerate() {
            if !s {
                delta.dropped.push(old_g.tasks()[i].name.clone());
            }
        }
        delta
    }

    /// The no-change delta (same graph, same mapping).
    pub fn is_empty(&self) -> bool {
        self.moved.is_empty() && self.placed.is_empty() && self.dropped.is_empty()
    }

    /// Number of surviving tasks that change host.
    pub fn n_moved(&self) -> usize {
        self.moved.len()
    }

    /// Seconds the migration traffic occupies the EIB:
    /// `migration_bytes / eib_bw`. The one-off cost a replanner weighs
    /// against the per-round period gain of the new mapping.
    pub fn migration_time(&self, spec: &CellSpec) -> f64 {
        if self.migration_bytes == 0.0 {
            return 0.0;
        }
        self.migration_bytes / spec.eib_bw().as_bytes_per_s()
    }

    /// Seconds the migration traffic occupies a generic link of
    /// `bytes_per_s` bandwidth with `latency` seconds of setup cost —
    /// the cluster-layer analogue of [`migration_time`](Self::migration_time)
    /// for state that crosses a **network** link between nodes rather
    /// than the EIB. An empty delta costs nothing, latency included.
    pub fn transfer_time(&self, bytes_per_s: f64, latency: f64) -> f64 {
        if self.migration_bytes == 0.0 {
            return 0.0;
        }
        latency + self.migration_bytes / bytes_per_s
    }
}

impl fmt::Display for MappingDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} moved ({:.1} KiB), {} placed, {} dropped",
            self.moved.len(),
            self.migration_bytes / 1024.0,
            self.placed.len(),
            self.dropped.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellstream_graph::{StreamGraph, TaskSpec, Workload};
    use cellstream_platform::CellSpec;

    fn two_stage(name: &str, bytes: f64) -> StreamGraph {
        let mut b = StreamGraph::builder(name);
        let s = b.add_task(TaskSpec::new("s").uniform_cost(1e-6));
        let t = b.add_task(TaskSpec::new("t").uniform_cost(1e-6));
        b.add_edge(s, t, bytes).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn identical_mappings_have_empty_delta() {
        let g = two_stage("a", 256.0);
        let spec = CellSpec::ps3();
        let m = Mapping::all_on(&g, PeId(0));
        let d = MappingDelta::between(&g, &m, &g, &m);
        assert!(d.is_empty());
        assert_eq!(d.migration_bytes, 0.0);
        assert_eq!(d.migration_time(&spec), 0.0);
    }

    #[test]
    fn moves_carry_the_buffer_working_set() {
        let g = two_stage("a", 256.0);
        let spec = CellSpec::ps3();
        let old = Mapping::all_on(&g, PeId(0));
        let new = Mapping::new(&g, &spec, vec![PeId(1), PeId(0)]).unwrap();
        let d = MappingDelta::between(&g, &old, &g, &new);
        assert_eq!(d.n_moved(), 1);
        assert_eq!(d.moved[0].task, "s");
        assert_eq!((d.moved[0].from, d.moved[0].to), (PeId(0), PeId(1)));
        // the moved task's working set is its edge buffer (cross-PE edge:
        // firstPeriod span ≥ 1 slot of 256 bytes)
        let plan = BufferPlan::new(&g);
        assert_eq!(d.migration_bytes, plan.for_task(TaskId(0)));
        assert!(d.migration_bytes >= 256.0);
        assert!(d.migration_time(&spec) > 0.0);
        assert!(
            (d.migration_time(&spec) - d.migration_bytes / spec.eib_bw().as_bytes_per_s()).abs()
                < 1e-18
        );
    }

    #[test]
    fn cross_version_diff_matches_by_name() {
        // workload {a} -> workload {a, b}: a's surviving task moves,
        // b's tasks are placed fresh
        let a = two_stage("a", 128.0);
        let b = two_stage("b", 64.0);
        let spec = CellSpec::ps3();
        let old_w = Workload::compose("w", &[&a]).unwrap();
        let mut new_w = old_w.clone();
        new_w.add(&b, 1.0).unwrap();

        let old_m = Mapping::all_on(old_w.graph(), PeId(0));
        // in the new composition: a/s stays on PE0, a/t moves to PE2,
        // b/* placed on PE1
        let new_m =
            Mapping::new(new_w.graph(), &spec, vec![PeId(0), PeId(2), PeId(1), PeId(1)]).unwrap();
        let d = MappingDelta::between(old_w.graph(), &old_m, new_w.graph(), &new_m);
        assert_eq!(d.n_moved(), 1);
        assert_eq!(d.moved[0].task, "a/t");
        assert_eq!(d.placed, vec!["b/s".to_owned(), "b/t".to_owned()]);
        assert!(d.dropped.is_empty());

        // and the reverse direction (retirement) drops b's tasks
        let back = MappingDelta::between(new_w.graph(), &new_m, old_w.graph(), &old_m);
        assert_eq!(back.dropped, vec!["b/s".to_owned(), "b/t".to_owned()]);
        assert_eq!(back.n_moved(), 1, "a/t moves back");
        assert!(back.placed.is_empty());
    }

    #[test]
    fn renamed_app_still_name_matches() {
        // the serving layer uniquifies duplicate admissions via
        // `StreamGraph::renamed("a#1")`; diffs across later workload
        // versions must keep matching the renamed tasks by name
        let a = two_stage("a", 128.0);
        let dup = a.renamed("a#1");
        let mut old_w = Workload::compose("w", &[&a]).unwrap();
        old_w.add(&dup, 1.0).unwrap();
        let old_m = Mapping::all_on(old_w.graph(), PeId(0));

        // retire the original; the renamed copy survives in place
        let mut new_w = old_w.clone();
        let id = new_w.app_id("a").unwrap();
        new_w.retire(id).unwrap();
        let new_m = Mapping::all_on(new_w.graph(), PeId(0));

        let d = MappingDelta::between(old_w.graph(), &old_m, new_w.graph(), &new_m);
        assert!(d.placed.is_empty(), "a#1 tasks name-match, not placed fresh: {d}");
        assert!(d.moved.is_empty(), "renamed survivors stayed put: {d}");
        assert_eq!(d.dropped, vec!["a/s".to_owned(), "a/t".to_owned()]);
        assert_eq!(d.migration_bytes, 0.0);
    }

    #[test]
    fn zero_byte_working_set_migrates_for_free() {
        // a zero-byte edge is legal and yields an empty working set:
        // the move is recorded but costs nothing on EIB or network
        let g = two_stage("a", 0.0);
        let spec = CellSpec::ps3();
        let old = Mapping::all_on(&g, PeId(0));
        let new = Mapping::new(&g, &spec, vec![PeId(1), PeId(0)]).unwrap();
        let d = MappingDelta::between(&g, &old, &g, &new);
        assert_eq!(d.n_moved(), 1);
        assert_eq!(d.moved[0].bytes, 0.0);
        assert_eq!(d.migration_bytes, 0.0);
        assert_eq!(d.migration_time(&spec), 0.0);
        assert_eq!(d.transfer_time(1e9, 50e-6), 0.0, "no bytes, no latency either");
    }

    #[test]
    fn cross_node_diff_charges_unmoved_survivors() {
        // same PeId on both nodes, but the state still crosses the
        // network: between_nodes must price every survivor
        let g = two_stage("a", 256.0);
        let m = Mapping::all_on(&g, PeId(0));
        let same = MappingDelta::between(&g, &m, &g, &m);
        assert_eq!(same.migration_bytes, 0.0, "EIB diff sees no movement");

        let cross = MappingDelta::between_nodes(&g, &m, &g, &m);
        assert_eq!(cross.n_moved(), 2, "every survivor pays across nodes");
        let plan = BufferPlan::new(&g);
        let want = plan.for_task(TaskId(0)) + plan.for_task(TaskId(1));
        assert_eq!(cross.migration_bytes, want);

        // transfer_time = latency + bytes/bw once there is traffic
        let (bw, lat) = (1e9, 50e-6);
        let t = cross.transfer_time(bw, lat);
        assert!((t - (lat + want / bw)).abs() < 1e-15, "{t}");
    }

    #[test]
    fn display_is_compact() {
        let g = two_stage("a", 256.0);
        let spec = CellSpec::ps3();
        let old = Mapping::all_on(&g, PeId(0));
        let new = Mapping::new(&g, &spec, vec![PeId(1), PeId(0)]).unwrap();
        let d = MappingDelta::between(&g, &old, &g, &new);
        let s = d.to_string();
        assert!(s.contains("1 moved"), "{s}");
    }

    use cellstream_platform::PeId;
}
