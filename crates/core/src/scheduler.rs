//! The unified scheduler abstraction.
//!
//! The paper's evaluation (§6) is a head-to-head between the optimal
//! MILP mapping and the greedy heuristics, yet historically every
//! algorithm in this workspace had a different shape: `solve()` returned
//! a rich [`SolveOutcome`](crate::SolveOutcome), the heuristics returned
//! bare [`Mapping`]s, and `brute` lived on its own. This module gives
//! them one interface:
//!
//! * [`Scheduler`] — anything that can turn a graph + platform into a
//!   [`Plan`];
//! * [`Plan`] — a mapping plus its full [`MappingReport`], per-algorithm
//!   [`PlanStats`], and the wall-clock time spent planning;
//! * [`PlanContext`] — cross-algorithm inputs: warm-start seeds, a
//!   wall-clock budget hint, and the MILP configuration.
//!
//! Core implements the trait for the MILP driver ([`MilpScheduler`]),
//! the exhaustive optimum ([`BruteScheduler`]) and the PPE-only baseline
//! ([`PpeOnlyScheduler`]); the `cellstream-heuristics` crate implements
//! it for the five heuristics and provides the string-keyed registry
//! (`scheduler_by_name`) plus the parallel `Portfolio` runner.

use crate::eval::{evaluate, MappingReport};
use crate::mapping::{Mapping, MappingError};
use crate::solve::{solve, SolveOptions};
use cellstream_graph::{StreamGraph, Workload};
use cellstream_milp::bb::MipStatus;
use cellstream_milp::model::SolveError;
use cellstream_platform::{CellSpec, PeId};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cooperative-cancellation flag.
///
/// Cloning shares the flag: every scheduler running under the same
/// [`PlanContext`] (all portfolio members, the B&B's LP pivot loops)
/// sees one [`cancel`](Self::cancel) call. Iterative schedulers check it
/// between search steps and return their best-so-far result — which is
/// how an online serving layer aborts a background re-solve the moment a
/// new event arrives instead of waiting out the budget.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raise the flag. Idempotent; there is no way to lower it again —
    /// start a new token for the next run.
    pub fn cancel(&self) {
        // check:allow(atomic-ordering): lone cancellation flag, no data
        // published alongside it
        self.0.store(true, Ordering::Relaxed);
    }

    /// `true` once [`cancel`](Self::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        // check:allow(atomic-ordering): lone cancellation flag, no data
        // published alongside it
        self.0.load(Ordering::Relaxed)
    }

    /// The raw shared flag, for layers below `core` (the MILP's
    /// `MipOptions::stop` / `LpOptions::stop` take the bare atomic so
    /// the solver crate does not depend on this type).
    pub fn flag(&self) -> Arc<AtomicBool> {
        self.0.clone()
    }
}

/// Inputs shared by every [`Scheduler`].
#[derive(Debug, Clone, Default)]
pub struct PlanContext {
    /// Warm-start mappings (heuristic outputs, previous plans). Seed-aware
    /// schedulers fold them in; others may ignore them.
    pub seeds: Vec<Mapping>,
    /// Wall-clock budget hint. Iterative schedulers (MILP, annealing)
    /// stop early when it runs out; constructive ones ignore it.
    pub budget: Option<Duration>,
    /// Cooperative cancellation: iterative schedulers poll this between
    /// search steps / B&B nodes and return early with their best-so-far
    /// answer once it fires. Cloned contexts share the flag.
    pub cancel: CancelToken,
    /// MILP configuration used by [`MilpScheduler`].
    pub solve: SolveOptions,
}

impl PlanContext {
    /// Context with a wall-clock budget.
    pub fn with_budget(budget: Duration) -> Self {
        PlanContext { budget: Some(budget), ..PlanContext::default() }
    }

    /// Add a warm-start seed.
    pub fn seed(mut self, m: Mapping) -> Self {
        self.seeds.push(m);
        self
    }

    /// The MILP time limit implied by this context: the configured limit,
    /// clamped to the remaining budget when one is set.
    pub fn milp_time_limit(&self) -> Duration {
        match self.budget {
            Some(b) => self.solve.mip.time_limit.min(b),
            None => self.solve.mip.time_limit,
        }
    }
}

/// Algorithm-specific statistics attached to a [`Plan`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlanStats {
    /// A constructive heuristic: no iteration counters to report.
    Heuristic,
    /// An iterative search (local search, annealing, multi-start).
    Search {
        /// Algorithm-specific effort measure: annealing steps, multi-start
        /// restarts, search rounds; 0 when untracked.
        iterations: u64,
    },
    /// The branch-and-bound MILP driver.
    Milp {
        /// Proven lower bound on the optimal period (seconds).
        period_bound: f64,
        /// Achieved relative gap.
        gap: f64,
        /// Final solver status.
        status: MipStatus,
        /// Branch-and-bound nodes explored.
        nodes: u64,
        /// Total simplex iterations.
        lp_iterations: u64,
        /// Fraction of child LPs whose dual-simplex warm start held
        /// (`1.0` when the search never branched).
        warm_start_rate: f64,
    },
    /// Exhaustive enumeration.
    Exhaustive {
        /// Number of assignments enumerated.
        enumerated: u64,
    },
}

/// The unified result of planning a mapping: what [`Scheduler::plan`]
/// returns for every algorithm, subsuming the old
/// `SolveOutcome`-vs-bare-`Mapping` split.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Name of the scheduler that produced this plan.
    pub scheduler: String,
    /// The mapping.
    pub mapping: Mapping,
    /// Full evaluation of the mapping (period, loads, violations).
    pub report: MappingReport,
    /// Algorithm-specific statistics.
    pub stats: PlanStats,
    /// Wall-clock planning time.
    pub wall: Duration,
}

impl Plan {
    /// Evaluate `mapping` and wrap it as a plan. Fails on structurally
    /// invalid mappings; infeasible-but-valid mappings are returned as
    /// plans whose report carries the violations.
    pub fn from_mapping(
        scheduler: impl Into<String>,
        g: &StreamGraph,
        spec: &CellSpec,
        mapping: Mapping,
        stats: PlanStats,
        wall: Duration,
    ) -> Result<Plan, PlanError> {
        let report = evaluate(g, spec, &mapping)?;
        Ok(Plan { scheduler: scheduler.into(), mapping, report, stats, wall })
    }

    /// Steady-state period `T` (seconds per instance).
    pub fn period(&self) -> f64 {
        self.report.period
    }

    /// Throughput `ρ = 1/T` (instances per second).
    pub fn throughput(&self) -> f64 {
        self.report.throughput
    }

    /// `true` iff constraints (1i)–(1k) all hold.
    pub fn is_feasible(&self) -> bool {
        self.report.is_feasible()
    }

    /// Split this plan's aggregate report into per-application reports
    /// when the planned graph was a composed [`Workload`]. The plan must
    /// have been computed on `w.graph()` (same task count) — panics on a
    /// mismatched workload, like any cross-graph mix-up.
    pub fn per_app(&self, w: &Workload, spec: &CellSpec) -> Vec<crate::workload::AppReport> {
        assert_eq!(
            self.mapping.assignment().len(),
            w.graph().n_tasks(),
            "plan and workload disagree on task count"
        );
        crate::workload::per_app_reports(w, spec, &self.mapping, &self.report)
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: period {:.3} us ({}feasible, {:.1} ms)",
            self.scheduler,
            self.report.period * 1e6,
            if self.is_feasible() { "" } else { "in" },
            self.wall.as_secs_f64() * 1e3,
        )
    }
}

/// Errors from [`Scheduler::plan`].
#[derive(Debug, Clone)]
pub enum PlanError {
    /// The scheduler found no feasible mapping.
    Infeasible(String),
    /// A structurally invalid mapping was produced or supplied.
    Mapping(MappingError),
    /// The MILP solver failed.
    Solver(SolveError),
    /// The scheduler cannot handle this instance (e.g. brute force on a
    /// graph too large to enumerate), or an unknown scheduler name.
    Unsupported(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Infeasible(msg) => write!(f, "no feasible mapping: {msg}"),
            PlanError::Mapping(e) => write!(f, "invalid mapping: {e}"),
            PlanError::Solver(e) => write!(f, "MILP solver error: {e}"),
            PlanError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::Mapping(e) => Some(e),
            PlanError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MappingError> for PlanError {
    fn from(e: MappingError) -> Self {
        PlanError::Mapping(e)
    }
}

impl From<SolveError> for PlanError {
    fn from(e: SolveError) -> Self {
        PlanError::Solver(e)
    }
}

/// A mapping algorithm with a uniform interface.
///
/// `Send + Sync` so portfolios can run members on parallel threads.
pub trait Scheduler: Send + Sync {
    /// Stable, registry-friendly name (e.g. `"milp"`, `"greedy_mem"`).
    fn name(&self) -> &str;

    /// Compute a mapping plan for `g` on `spec`.
    fn plan(&self, g: &StreamGraph, spec: &CellSpec, ctx: &PlanContext) -> Result<Plan, PlanError>;

    /// Plan a composed multi-application [`Workload`]: the composed graph
    /// is a plain [`StreamGraph`] whose period is the maximum weighted
    /// per-application period, so *every* scheduler co-schedules it
    /// unchanged. Split the result per application with
    /// [`Plan::per_app`] or [`crate::workload::evaluate_workload`].
    fn plan_workload(
        &self,
        w: &Workload,
        spec: &CellSpec,
        ctx: &PlanContext,
    ) -> Result<Plan, PlanError> {
        self.plan(w.graph(), spec, ctx)
    }

    /// `true` for schedulers that profit from running *after* fast
    /// constructive members, with their mappings as warm starts. A
    /// portfolio runs such members in its second wave, seeded with every
    /// feasible first-wave mapping and clamped to the remaining budget.
    fn wants_warm_starts(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------------
// Core-provided schedulers
// ---------------------------------------------------------------------------

/// The optimal-mapping MILP driver of paper §5 as a [`Scheduler`].
///
/// Uses `ctx.solve` for the formulation and branch-and-bound parameters,
/// folds `ctx.seeds` into the warm starts, and clamps the time limit to
/// `ctx.budget` when one is set.
#[derive(Debug, Clone, Default)]
pub struct MilpScheduler;

impl Scheduler for MilpScheduler {
    fn name(&self) -> &str {
        "milp"
    }

    fn wants_warm_starts(&self) -> bool {
        true
    }

    fn plan(&self, g: &StreamGraph, spec: &CellSpec, ctx: &PlanContext) -> Result<Plan, PlanError> {
        let mut opts = ctx.solve.clone();
        opts.seeds.extend(ctx.seeds.iter().cloned());
        opts.mip.time_limit = ctx.milp_time_limit();
        // fill-if-none, like every other scheduler's cancel plumbing:
        // an explicit caller-provided stop flag wins over the context
        if opts.mip.stop.is_none() {
            opts.mip.stop = Some(ctx.cancel.flag());
        }
        let outcome = solve(g, spec, &opts)?;
        let warm_start_rate = outcome.warm_start_rate();
        let report = evaluate(g, spec, &outcome.mapping)?;
        Ok(Plan {
            scheduler: self.name().to_owned(),
            mapping: outcome.mapping,
            report,
            stats: PlanStats::Milp {
                period_bound: outcome.period_bound,
                gap: outcome.gap,
                status: outcome.status,
                nodes: outcome.nodes,
                lp_iterations: outcome.lp_iterations,
                warm_start_rate,
            },
            wall: outcome.wall,
        })
    }
}

/// Exhaustive enumeration ([`crate::brute::optimal_mapping`]) as a
/// [`Scheduler`]. Refuses instances beyond the `n^K ≤ 10^7` guard with
/// [`PlanError::Unsupported`] instead of panicking.
#[derive(Debug, Clone, Default)]
pub struct BruteScheduler;

impl Scheduler for BruteScheduler {
    fn name(&self) -> &str {
        "brute"
    }

    fn plan(
        &self,
        g: &StreamGraph,
        spec: &CellSpec,
        _ctx: &PlanContext,
    ) -> Result<Plan, PlanError> {
        if !crate::brute::can_enumerate(g, spec) {
            return Err(PlanError::Unsupported(format!(
                "brute force would enumerate {:.0} mappings (limit {:.0}); use the MILP scheduler",
                crate::brute::combos(g, spec),
                crate::brute::MAX_COMBOS
            )));
        }
        let started = Instant::now();
        let (mapping, _) = crate::brute::optimal_mapping(g, spec)
            .ok_or_else(|| PlanError::Infeasible("no feasible mapping exists".to_owned()))?;
        Plan::from_mapping(
            self.name(),
            g,
            spec,
            mapping,
            PlanStats::Exhaustive { enumerated: crate::brute::combos(g, spec) as u64 },
            started.elapsed(),
        )
    }
}

/// The PPE-only baseline of §6.4.2 as a [`Scheduler`]: always feasible,
/// useful as the speed-up denominator and as a portfolio safety net.
#[derive(Debug, Clone, Default)]
pub struct PpeOnlyScheduler;

impl Scheduler for PpeOnlyScheduler {
    fn name(&self) -> &str {
        "ppe_only"
    }

    fn plan(
        &self,
        g: &StreamGraph,
        spec: &CellSpec,
        _ctx: &PlanContext,
    ) -> Result<Plan, PlanError> {
        let started = Instant::now();
        let mapping = Mapping::all_on(g, PeId(0));
        Plan::from_mapping(self.name(), g, spec, mapping, PlanStats::Heuristic, started.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellstream_daggen::{chain, CostParams};

    #[test]
    fn milp_scheduler_matches_solve() {
        let g = chain("c", 5, &CostParams::default(), 3);
        let spec = CellSpec::with_spes(2);
        let plan = MilpScheduler.plan(&g, &spec, &PlanContext::default()).unwrap();
        let outcome = solve(&g, &spec, &SolveOptions::default()).unwrap();
        assert!(plan.is_feasible());
        assert!((plan.period() - outcome.period).abs() < 1e-12);
        assert!(matches!(plan.stats, PlanStats::Milp { .. }));
        assert_eq!(plan.scheduler, "milp");
    }

    #[test]
    fn brute_scheduler_is_optimal_on_tiny_instances() {
        let g = chain("c", 4, &CostParams::default(), 9);
        let spec = CellSpec::with_spes(2);
        let brute = BruteScheduler.plan(&g, &spec, &PlanContext::default()).unwrap();
        let milp = MilpScheduler
            .plan(
                &g,
                &spec,
                &PlanContext {
                    solve: SolveOptions {
                        mip: cellstream_milp::bb::MipOptions {
                            rel_gap: 0.0,
                            abs_gap: 1e-9,
                            ..Default::default()
                        },
                        ..Default::default()
                    },
                    ..Default::default()
                },
            )
            .unwrap();
        assert!((brute.period() - milp.period()).abs() <= 1e-9 + 1e-6 * brute.period());
    }

    #[test]
    fn brute_scheduler_refuses_huge_instances() {
        let g = chain("c", 30, &CostParams::default(), 1);
        let err = BruteScheduler.plan(&g, &CellSpec::qs22(), &PlanContext::default()).unwrap_err();
        assert!(matches!(err, PlanError::Unsupported(_)), "{err}");
    }

    #[test]
    fn ppe_only_scheduler_is_always_feasible() {
        let g = chain("c", 6, &CostParams::default(), 5);
        let plan = PpeOnlyScheduler.plan(&g, &CellSpec::ps3(), &PlanContext::default()).unwrap();
        assert!(plan.is_feasible());
        assert_eq!(plan.mapping, Mapping::all_on(&g, PeId(0)));
    }

    #[test]
    fn context_budget_clamps_milp_time_limit() {
        let ctx = PlanContext::with_budget(Duration::from_secs(2));
        assert_eq!(ctx.milp_time_limit(), Duration::from_secs(2));
        let ctx = PlanContext::default();
        assert_eq!(ctx.milp_time_limit(), SolveOptions::default().mip.time_limit);
    }

    #[test]
    fn plan_error_displays_and_sources() {
        let e = PlanError::Infeasible("x".into());
        assert!(e.to_string().contains("no feasible mapping"));
        let e: PlanError = MappingError::WrongLength { expected: 2, got: 1 }.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
