//! Textual rendering of periodic schedules, in the spirit of the paper's
//! Figure 3(b): one lane per processing element, one column per time
//! quantum, repeated over a window of periods.

use crate::schedule::PeriodicSchedule;
use cellstream_graph::StreamGraph;
use cellstream_platform::CellSpec;
use std::fmt::Write as _;

/// Render `periods` consecutive steady-state periods as an ASCII Gantt
/// chart with `cols_per_period` columns per period. Each cell shows the
/// task occupying the PE at that instant (`·` = idle). Task labels are
/// single characters cycling through `0-9a-z`.
pub fn gantt(
    g: &StreamGraph,
    spec: &CellSpec,
    sched: &PeriodicSchedule,
    periods: usize,
    cols_per_period: usize,
) -> String {
    assert!(periods >= 1 && cols_per_period >= 1);
    let label = |k: usize| -> char {
        const ALPHABET: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
        ALPHABET[k % ALPHABET.len()] as char
    };
    let mut out = String::new();
    let dt = sched.period / cols_per_period as f64;
    let _ = writeln!(
        out,
        "period T = {:.3} us, {} period(s), one column = {:.3} us",
        sched.period * 1e6,
        periods,
        dt * 1e6
    );
    // legend
    let _ = write!(out, "legend:");
    for t in g.task_ids() {
        let _ = write!(out, " {}={}", label(t.index()), g.task(t).name);
    }
    let _ = writeln!(out);

    for pe in spec.pes() {
        let _ = write!(out, "{:>6} |", pe.to_string());
        for p in 0..periods {
            for c in 0..cols_per_period {
                let instant = (c as f64 + 0.5) * dt;
                let mut cell = '·';
                for slot in sched.slots.iter().filter(|s| s.pe == pe) {
                    if instant >= slot.offset && instant < slot.offset + slot.duration {
                        cell = label(slot.task.index());
                        break;
                    }
                }
                let _ = write!(out, "{cell}");
            }
            if p + 1 < periods {
                let _ = write!(out, "|");
            }
        }
        let _ = writeln!(out, "|");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::mapping::Mapping;
    use cellstream_daggen::{chain, CostParams};
    use cellstream_platform::PeId;

    #[test]
    fn gantt_renders_all_pes_and_legend() {
        let g = chain("c", 3, &CostParams::default(), 1);
        let spec = CellSpec::with_spes(2);
        let m = Mapping::new(&g, &spec, vec![PeId(0), PeId(1), PeId(2)]).unwrap();
        let report = evaluate(&g, &spec, &m).unwrap();
        let sched = PeriodicSchedule::build(&g, &spec, &m, &report);
        let art = gantt(&g, &spec, &sched, 2, 20);
        assert!(art.contains("PE0 |"));
        assert!(art.contains("PE1 |"));
        assert!(art.contains("PE2 |"));
        assert!(art.contains("legend: 0=T0 1=T1 2=T2"));
        // two periods => a separator bar inside each lane
        let lane = art.lines().find(|l| l.contains("PE0 |")).unwrap();
        assert_eq!(lane.matches('|').count(), 3, "{lane}");
    }

    #[test]
    fn busy_pe_shows_its_task() {
        // a memory-traffic-free task fully occupies its compute-bound period
        let mut b = cellstream_graph::StreamGraph::builder("one");
        b.add_task(cellstream_graph::TaskSpec::new("T0").uniform_cost(1e-6));
        let g = b.build().unwrap();
        let spec = CellSpec::with_spes(0);
        let m = Mapping::all_on(&g, PeId(0));
        let report = evaluate(&g, &spec, &m).unwrap();
        let sched = PeriodicSchedule::build(&g, &spec, &m, &report);
        let art = gantt(&g, &spec, &sched, 1, 10);
        // single task fully occupies its period: no idle dots on PE0
        let lane = art.lines().find(|l| l.contains("PE0")).unwrap();
        assert!(!lane.contains('·'), "{lane}");
        assert!(lane.contains("0000000000"), "{lane}");
    }

    #[test]
    fn idle_pe_is_dots() {
        let g = chain("c", 1, &CostParams::default(), 2);
        let spec = CellSpec::with_spes(1);
        let m = Mapping::all_on(&g, PeId(0));
        let report = evaluate(&g, &spec, &m).unwrap();
        let sched = PeriodicSchedule::build(&g, &spec, &m, &report);
        let art = gantt(&g, &spec, &sched, 1, 8);
        let lane = art.lines().find(|l| l.contains("PE1")).unwrap();
        assert!(lane.contains("········"), "{lane}");
    }
}
