//! Task → processing-element mappings (paper §3.1).
//!
//! The paper restricts itself to *single-assignment* mappings: all
//! instances of a task run on the same PE. (General, replicated mappings
//! are possible in steady-state scheduling [4] but need complex flow
//! control and larger buffers — unaffordable with 256 kB local stores.)

use cellstream_graph::{StreamGraph, TaskId};
use cellstream_platform::{CellSpec, PeId};
use std::fmt;

/// Errors constructing a mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// Assignment vector length does not match the task count.
    WrongLength {
        /// Expected number of tasks.
        expected: usize,
        /// Provided vector length.
        got: usize,
    },
    /// A task is assigned to a PE outside the platform.
    UnknownPe(TaskId, PeId),
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::WrongLength { expected, got } => {
                write!(f, "mapping covers {got} tasks, graph has {expected}")
            }
            MappingError::UnknownPe(t, pe) => write!(f, "{t} mapped to non-existent {pe}"),
        }
    }
}

impl std::error::Error for MappingError {}

/// A single-assignment mapping: `assignment[k]` is the PE processing every
/// instance of task `k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    assignment: Vec<PeId>,
}

serde::impl_json_struct!(Mapping { assignment });

impl Mapping {
    /// Build from an explicit assignment vector, validated against the
    /// graph and platform.
    pub fn new(
        g: &StreamGraph,
        spec: &CellSpec,
        assignment: Vec<PeId>,
    ) -> Result<Self, MappingError> {
        let m = Mapping { assignment };
        m.validate(g, spec)?;
        Ok(m)
    }

    /// Check this mapping against a graph and platform without cloning the
    /// assignment: length must match the task count, every PE must exist.
    /// This is what `evaluate` and `EvalState::new` run on deserialised
    /// mappings — allocation-free, O(K).
    pub fn validate(&self, g: &StreamGraph, spec: &CellSpec) -> Result<(), MappingError> {
        if self.assignment.len() != g.n_tasks() {
            return Err(MappingError::WrongLength {
                expected: g.n_tasks(),
                got: self.assignment.len(),
            });
        }
        for (k, &pe) in self.assignment.iter().enumerate() {
            if pe.index() >= spec.n_pes() {
                return Err(MappingError::UnknownPe(TaskId(k), pe));
            }
        }
        Ok(())
    }

    /// Everything on one PE (the PPE-only baseline of §6.4.2 when `pe` is
    /// the PPE).
    pub fn all_on(g: &StreamGraph, pe: PeId) -> Self {
        Mapping { assignment: vec![pe; g.n_tasks()] }
    }

    /// The PE of a task.
    pub fn pe_of(&self, t: TaskId) -> PeId {
        self.assignment[t.index()]
    }

    /// The raw assignment slice.
    pub fn assignment(&self) -> &[PeId] {
        &self.assignment
    }

    /// Tasks mapped on `pe`, in id order.
    pub fn tasks_on(&self, pe: PeId) -> impl Iterator<Item = TaskId> + '_ {
        self.assignment.iter().enumerate().filter(move |&(_, &p)| p == pe).map(|(k, _)| TaskId(k))
    }

    /// Number of tasks mapped on `pe`.
    pub fn count_on(&self, pe: PeId) -> usize {
        self.assignment.iter().filter(|&&p| p == pe).count()
    }

    /// `true` if the edge crosses between two different PEs (and hence
    /// costs bandwidth and a DMA slot).
    pub fn is_cut(&self, g: &StreamGraph, e: cellstream_graph::EdgeId) -> bool {
        let edge = g.edge(e);
        self.pe_of(edge.src) != self.pe_of(edge.dst)
    }

    /// Number of cut edges.
    pub fn n_cut_edges(&self, g: &StreamGraph) -> usize {
        g.edge_ids().filter(|&e| self.is_cut(g, e)).count()
    }

    /// Rebind one task (used by local-search heuristics). Panics on
    /// out-of-range task ids — mappings and graphs travel together.
    pub fn with_move(&self, t: TaskId, pe: PeId) -> Self {
        let mut next = self.clone();
        next.assignment[t.index()] = pe;
        next
    }

    /// Set of PEs actually used.
    pub fn pes_used(&self) -> Vec<PeId> {
        let mut pes: Vec<PeId> = self.assignment.clone();
        pes.sort_unstable();
        pes.dedup();
        pes
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (k, pe) in self.assignment.iter().enumerate() {
            if k > 0 {
                write!(f, " ")?;
            }
            write!(f, "T{k}→{pe}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellstream_daggen::{chain, CostParams};

    #[test]
    fn validation_rejects_bad_lengths_and_pes() {
        let g = chain("c", 3, &CostParams::default(), 1);
        let spec = CellSpec::with_spes(2);
        assert!(matches!(
            Mapping::new(&g, &spec, vec![PeId(0)]),
            Err(MappingError::WrongLength { expected: 3, got: 1 })
        ));
        assert!(matches!(
            Mapping::new(&g, &spec, vec![PeId(0), PeId(9), PeId(0)]),
            Err(MappingError::UnknownPe(TaskId(1), PeId(9)))
        ));
        assert!(Mapping::new(&g, &spec, vec![PeId(0), PeId(2), PeId(1)]).is_ok());
    }

    #[test]
    fn tasks_on_and_counts() {
        let g = chain("c", 4, &CostParams::default(), 1);
        let spec = CellSpec::with_spes(2);
        let m = Mapping::new(&g, &spec, vec![PeId(0), PeId(1), PeId(1), PeId(2)]).unwrap();
        assert_eq!(m.count_on(PeId(1)), 2);
        assert_eq!(m.tasks_on(PeId(1)).collect::<Vec<_>>(), vec![TaskId(1), TaskId(2)]);
        assert_eq!(m.pes_used(), vec![PeId(0), PeId(1), PeId(2)]);
    }

    #[test]
    fn cut_edges_counted() {
        let g = chain("c", 4, &CostParams::default(), 1);
        let spec = CellSpec::with_spes(2);
        let m = Mapping::new(&g, &spec, vec![PeId(0), PeId(0), PeId(1), PeId(1)]).unwrap();
        assert_eq!(m.n_cut_edges(&g), 1);
        let all = Mapping::all_on(&g, PeId(0));
        assert_eq!(all.n_cut_edges(&g), 0);
    }

    #[test]
    fn with_move_is_pure() {
        let g = chain("c", 3, &CostParams::default(), 1);
        let m = Mapping::all_on(&g, PeId(0));
        let m2 = m.with_move(TaskId(1), PeId(2));
        assert_eq!(m.pe_of(TaskId(1)), PeId(0));
        assert_eq!(m2.pe_of(TaskId(1)), PeId(2));
    }

    #[test]
    fn serde_round_trip() {
        let g = chain("c", 3, &CostParams::default(), 1);
        let spec = CellSpec::ps3();
        let m = Mapping::new(&g, &spec, vec![PeId(0), PeId(3), PeId(6)]).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let back: Mapping = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
