//! Exhaustive optimal mapping for tiny instances.
//!
//! Enumerates all `n^K` assignments and keeps the feasible one with the
//! smallest period. Exponential — guarded to `n^K ≤ 10^7` — and used by
//! the test-suite to certify the MILP solver and the §3.2 reduction.

use crate::eval::evaluate;
use crate::eval::incremental::{EvalState, Move};
use crate::mapping::Mapping;
use cellstream_graph::{StreamGraph, TaskId};
use cellstream_platform::{CellSpec, PeId};

/// Largest assignment count [`optimal_mapping`] is willing to enumerate.
pub const MAX_COMBOS: f64 = 1e7;

/// Number of assignments `n^K` exhaustive search would enumerate.
pub fn combos(g: &StreamGraph, spec: &CellSpec) -> f64 {
    (spec.n_pes() as f64).powi(g.n_tasks() as i32)
}

/// `true` when the instance is small enough for [`optimal_mapping`].
pub fn can_enumerate(g: &StreamGraph, spec: &CellSpec) -> bool {
    combos(g, spec) <= MAX_COMBOS
}

/// The best feasible mapping and its period, or `None` when no feasible
/// mapping exists (cannot happen on platforms with a PPE, which has no
/// local-store or DMA limits).
pub fn optimal_mapping(g: &StreamGraph, spec: &CellSpec) -> Option<(Mapping, f64)> {
    let n = spec.n_pes();
    let k = g.n_tasks();
    let combos = combos(g, spec);
    assert!(
        combos <= MAX_COMBOS,
        "brute force would enumerate {combos:.0} mappings; use the MILP solver"
    );

    // Walk the n^K odometer with the incremental evaluator: consecutive
    // assignments differ in one incremented digit plus a reset suffix, an
    // amortised O(1) relocations per step instead of a full O(V+E) rescan.
    let mut state = EvalState::new(g, spec, &Mapping::all_on(g, PeId(0)))
        .expect("the all-PPE start is structurally valid");
    let mut best: Option<(Mapping, f64)> = None;
    let mut assignment = vec![0usize; k];
    loop {
        if state.is_feasible() {
            let period = state.period();
            if best.as_ref().is_none_or(|(_, p)| period < *p) {
                // the incremental verdict carries accumulated float drift:
                // use it only as a cheap screen, and let the full evaluator
                // make the final call so the stored optimum is exact
                let mapping = state.mapping();
                let report = evaluate(g, spec, &mapping).expect("valid mapping");
                if report.is_feasible() && best.as_ref().is_none_or(|(_, p)| report.period < *p) {
                    best = Some((mapping, report.period));
                }
            }
        }
        // odometer increment, mirrored onto the eval state
        let mut pos = 0;
        loop {
            if pos == k {
                return best;
            }
            assignment[pos] += 1;
            if assignment[pos] < n {
                state.apply(Move::Relocate { task: TaskId(pos), to: PeId(assignment[pos]) });
                break;
            }
            assignment[pos] = 0;
            state.apply(Move::Relocate { task: TaskId(pos), to: PeId(0) });
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellstream_daggen::{chain, CostParams};
    use cellstream_platform::CellSpec;

    #[test]
    fn single_task_goes_to_fastest_pe() {
        use cellstream_graph::{StreamGraph, TaskSpec};
        let mut b = StreamGraph::builder("one");
        b.add_task(TaskSpec::new("t").ppe_cost(4e-6).spe_cost(1e-6));
        let g = b.build().unwrap();
        let spec = CellSpec::with_spes(2);
        let (m, period) = optimal_mapping(&g, &spec).unwrap();
        assert!(spec.is_spe(m.pe_of(cellstream_graph::TaskId(0))));
        assert!((period - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn brute_force_beats_or_matches_ppe_only() {
        let g = chain("c", 5, &CostParams::default(), 11);
        let spec = CellSpec::with_spes(2);
        let (_, period) = optimal_mapping(&g, &spec).unwrap();
        let ppe = crate::solve::ppe_only_outcome(&g, &spec);
        assert!(period <= ppe.period + 1e-15);
    }

    #[test]
    #[should_panic(expected = "brute force")]
    fn refuses_huge_instances() {
        let g = chain("c", 30, &CostParams::default(), 1);
        let _ = optimal_mapping(&g, &CellSpec::qs22());
    }
}
