//! Steady-state scheduling of streaming task graphs on the Cell processor:
//! the core contribution of Gallet, Jacquelin & Marchal (RR-LIP-2009-29 /
//! IPDPS 2010), reimplemented as a library.
//!
//! Pipeline:
//!
//! 1. describe the application as a [`StreamGraph`](cellstream_graph::StreamGraph)
//!    and the platform as a [`CellSpec`](cellstream_platform::CellSpec);
//! 2. obtain a [`Mapping`] (every task pinned to one processing element) —
//!    either from the optimal MILP solver ([`solve::solve`], paper §5) or
//!    from any heuristic;
//! 3. [`eval::evaluate`] the mapping: period `T`, throughput `ρ = 1/T`,
//!    per-resource loads and constraint violations (this is the
//!    polynomial-time verifier used in the paper's NP-completeness proof);
//! 4. materialise a [`schedule::PeriodicSchedule`] for execution by the
//!    simulator (`cellstream-sim`) or the threaded runtime
//!    (`cellstream-rt`).
//!
//! The steady-state machinery of §3.1/§4 lives in [`steady`]:
//! `firstPeriod` indices and local-store buffer sizing. The §3.2
//! NP-completeness reduction is executable in [`reduction`], and
//! [`brute`] provides the exhaustive optimum for cross-validation on
//! small instances.
//!
//! # Example
//!
//! ```
//! use cellstream_core::{eval, Mapping};
//! use cellstream_daggen::{chain, CostParams};
//! use cellstream_platform::CellSpec;
//!
//! let g = chain("pipe", 6, &CostParams::default(), 1);
//! let spec = CellSpec::ps3();
//! // map everything on the PPE: always feasible, throughput = 1/Σ wPPE-ish
//! let ppe_only = Mapping::all_on(&g, spec.pe(0));
//! let report = eval::evaluate(&g, &spec, &ppe_only).unwrap();
//! assert!(report.is_feasible());
//! assert!(report.period >= g.total_ppe_work());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod avail;
pub mod brute;
pub mod delta;
pub mod display;
pub mod eval;
pub mod formulation;
pub mod mapping;
pub mod reduction;
pub mod schedule;
pub mod scheduler;
pub mod solve;
pub mod steady;
pub mod workload;

pub use avail::Availability;
pub use delta::{MappingDelta, TaskMove};
pub use eval::incremental::{EvalState, Move};
pub use eval::{evaluate, evaluate_with, MappingReport, Violation};
pub use formulation::{FormKind, Formulation, FormulationConfig};
pub use mapping::{Mapping, MappingError};
pub use scheduler::{
    BruteScheduler, MilpScheduler, Plan, PlanContext, PlanError, PlanStats, PpeOnlyScheduler,
    Scheduler,
};
pub use solve::{solve, SolveOptions, SolveOutcome};
pub use workload::{evaluate_workload, evaluate_workload_with, AppReport, WorkloadReport};

#[cfg(test)]
mod tests;
