//! Optimal-mapping driver (paper §5 + the CPLEX workflow of §6).
//!
//! Replicates the paper's solve pipeline: build Linear Program (1), hand
//! it to the MILP solver with a 5 % relative gap, and read the mapping
//! out of the α variables. Two practical additions (both spirit-faithful,
//! both used implicitly by CPLEX too): heuristic warm-start incumbents
//! and a rounding completion that converts every fractional node
//! relaxation into a candidate mapping.

use crate::eval::evaluate;
use crate::formulation::{Formulation, FormulationConfig};
use crate::mapping::Mapping;
use cellstream_graph::StreamGraph;
use cellstream_milp::bb::{solve_mip, MipOptions, MipStatus};
use cellstream_milp::model::SolveError;
use cellstream_platform::{CellSpec, PeId};
use std::time::{Duration, Instant};

/// Options for [`solve`].
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Encoding of Linear Program (1).
    pub formulation: FormulationConfig,
    /// MILP search parameters; the default replicates the paper's 5 % gap
    /// and keeps solve times in the "around 20 seconds" regime of §6.
    pub mip: MipOptions,
    /// Extra warm-start mappings (e.g. heuristic outputs). The PPE-only
    /// mapping is always seeded — it is feasible for every instance, so
    /// the solver always returns a mapping.
    pub seeds: Vec<Mapping>,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            formulation: FormulationConfig::default(),
            mip: MipOptions {
                rel_gap: 0.05,
                time_limit: Duration::from_secs(60),
                max_nodes: 4_000,
                ..MipOptions::default()
            },
            seeds: Vec::new(),
        }
    }
}

/// Result of an optimal-mapping solve.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The best mapping found.
    pub mapping: Mapping,
    /// Its exact period in seconds (recomputed by [`evaluate`], not read
    /// from the LP, so it is consistent with every other reported number).
    pub period: f64,
    /// `1 / period`.
    pub throughput: f64,
    /// Proven lower bound on the optimal period (seconds).
    pub period_bound: f64,
    /// Achieved relative gap.
    pub gap: f64,
    /// MILP status.
    pub status: MipStatus,
    /// Branch-and-bound nodes explored.
    pub nodes: u64,
    /// Total simplex iterations.
    pub lp_iterations: u64,
    /// Dual-simplex warm starts attempted from parent bases.
    pub warm_starts: u64,
    /// Warm starts that held (no fallback to a from-scratch solve).
    pub warm_start_hits: u64,
    /// Wall-clock solve time.
    pub wall: Duration,
}

impl SolveOutcome {
    /// Fraction of attempted warm starts that held (`1.0` when none
    /// were attempted).
    pub fn warm_start_rate(&self) -> f64 {
        if self.warm_starts == 0 {
            1.0
        } else {
            self.warm_start_hits as f64 / self.warm_starts as f64
        }
    }
}

/// Compute a throughput-optimal mapping of `g` onto `spec` (within the
/// configured gap).
pub fn solve(
    g: &StreamGraph,
    spec: &CellSpec,
    opts: &SolveOptions,
) -> Result<SolveOutcome, SolveError> {
    let started = Instant::now();
    let form = Formulation::build(g, spec, &opts.formulation);

    // ---- seeds ------------------------------------------------------------
    let mut seed_vectors = Vec::new();
    let ppe_only = Mapping::all_on(g, spec.pe(0));
    for m in std::iter::once(&ppe_only).chain(opts.seeds.iter()) {
        if let Ok(report) = evaluate(g, spec, m) {
            if report.is_feasible() {
                seed_vectors.push(form.encode(spec, m, report.period));
            }
        }
    }

    // ---- rounding completion ----------------------------------------------
    let completion = |x: &[f64]| -> Option<(f64, Vec<f64>)> {
        let assignment = form.decode(x);
        let m = Mapping::new(g, spec, assignment).ok()?;
        let report = evaluate(g, spec, &m).ok()?;
        if !report.is_feasible() {
            return None;
        }
        let full = form.encode(spec, &m, report.period);
        Some((report.period / form.time_scale(), full))
    };

    let res = solve_mip(&form.model, &opts.mip, &seed_vectors, Some(&completion))?;

    let (_, x) =
        res.incumbent.as_ref().expect("PPE-only seed guarantees an incumbent for every instance");
    let mapping = Mapping::new(g, spec, form.decode(x)).expect("decoded mapping is valid");
    let report = evaluate(g, spec, &mapping).expect("decoded mapping is valid");
    // With the DMA rows ablated away the evaluator may legitimately flag
    // (1j)/(1k) on the returned mapping — that is the ablation's point.
    debug_assert!(
        !opts.formulation.dma_constraints || report.is_feasible(),
        "incumbent must satisfy (1i)-(1k): {:?}",
        report.violations
    );

    Ok(SolveOutcome {
        period: report.period,
        throughput: report.throughput,
        period_bound: res.best_bound.max(0.0) * form.time_scale(),
        gap: res.gap,
        status: res.status,
        nodes: res.nodes,
        lp_iterations: res.lp_iterations,
        warm_starts: res.warm_starts,
        warm_start_hits: res.warm_start_hits,
        wall: started.elapsed(),
        mapping,
    })
}

/// Convenience: solve with the paper-default options and a set of seeds.
pub fn solve_with_seeds(
    g: &StreamGraph,
    spec: &CellSpec,
    seeds: Vec<Mapping>,
) -> Result<SolveOutcome, SolveError> {
    solve(g, spec, &SolveOptions { seeds, ..SolveOptions::default() })
}

/// The PPE-only reference outcome used as the speed-up denominator in
/// §6.4.2 (no MILP involved).
pub fn ppe_only_outcome(g: &StreamGraph, spec: &CellSpec) -> SolveOutcome {
    let mapping = Mapping::all_on(g, PeId(0));
    let report = evaluate(g, spec, &mapping).expect("PPE-only is always valid");
    SolveOutcome {
        period: report.period,
        throughput: report.throughput,
        period_bound: report.period,
        gap: 0.0,
        status: MipStatus::Optimal,
        nodes: 0,
        lp_iterations: 0,
        warm_starts: 0,
        warm_start_hits: 0,
        wall: Duration::ZERO,
        mapping,
    }
}
