//! The NP-completeness reduction of paper §3.2, as executable code.
//!
//! `Cell-Mapping` is NP-complete by reduction from Minimum Multiprocessor
//! Scheduling on two machines: given tasks with per-machine lengths
//! `l(k, 1)`, `l(k, 2)` and a bound `B'`, build a Cell instance with one
//! PPE (machine 1), one SPE (machine 2), a chain application with
//! `wPPE(Tk) = l(k,1)`, `wSPE(Tk) = l(k,2)` and **zero-byte** data
//! (`data = 0`), and ask for throughput `≥ 1/B'`.
//!
//! The test-suite certifies both directions of the proof on random
//! instances: the optimal Cell period equals the optimal two-machine
//! makespan.

use cellstream_graph::{GraphError, StreamGraph, TaskSpec};
use cellstream_platform::{CellSpec, CellSpecBuilder};

/// An instance of Minimum Multiprocessor Scheduling restricted to two
/// machines (unrelated speeds): `lengths[k] = [l(k, machine1), l(k, machine2)]`.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoMachineInstance {
    /// Per-task lengths on each machine.
    pub lengths: Vec<[f64; 2]>,
}

impl TwoMachineInstance {
    /// Optimal makespan by exhaustive enumeration (2^n subsets).
    /// Only for test-sized instances.
    pub fn optimal_makespan(&self) -> f64 {
        let n = self.lengths.len();
        assert!(n <= 24, "exhaustive makespan only for small instances");
        let mut best = f64::INFINITY;
        for mask in 0u32..(1 << n) {
            let mut m1 = 0.0;
            let mut m2 = 0.0;
            for (k, l) in self.lengths.iter().enumerate() {
                if mask & (1 << k) != 0 {
                    m1 += l[0];
                } else {
                    m2 += l[1];
                }
            }
            best = best.min(m1.max(m2));
        }
        best
    }
}

/// Build the Cell-Mapping instance `I2` of the proof: a chain application
/// with zero-size data on a 1-PPE + 1-SPE platform.
pub fn reduce(instance: &TwoMachineInstance) -> Result<(StreamGraph, CellSpec), GraphError> {
    let mut b = StreamGraph::builder("reduction");
    let ids: Vec<_> = instance
        .lengths
        .iter()
        .enumerate()
        .map(|(k, l)| {
            b.add_task(TaskSpec::new(format!("T{}", k + 1)).ppe_cost(l[0]).spe_cost(l[1]))
        })
        .collect();
    for w in ids.windows(2) {
        b.add_edge(w[0], w[1], 0.0)?; // "communication costs are neglected"
    }
    let g = b.build()?;
    let spec = CellSpecBuilder::default().ppes(1).spes(1).build().expect("1+1 platform is valid");
    Ok((g, spec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::optimal_mapping;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn reduction_builds_chain_with_zero_data() {
        let inst = TwoMachineInstance { lengths: vec![[1.0, 2.0], [3.0, 1.0], [2.0, 2.0]] };
        let (g, spec) = reduce(&inst).unwrap();
        assert_eq!(g.n_tasks(), 3);
        assert_eq!(g.n_edges(), 2);
        assert!(g.edges().iter().all(|e| e.data_bytes == 0.0));
        assert_eq!(spec.n_pes(), 2);
    }

    #[test]
    fn optimal_cell_period_equals_optimal_makespan() {
        // The heart of Theorem 1: solutions transfer both ways, so the
        // optima agree.
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..10 {
            let n = rng.gen_range(2..=8);
            let inst = TwoMachineInstance {
                lengths: (0..n)
                    .map(|_| [rng.gen_range(0.5..5.0), rng.gen_range(0.5..5.0)])
                    .collect(),
            };
            let makespan = inst.optimal_makespan();
            let (g, spec) = reduce(&inst).unwrap();
            let (_, period) = optimal_mapping(&g, &spec).expect("always feasible");
            assert!(
                (period - makespan).abs() < 1e-9,
                "trial {trial}: period {period} vs makespan {makespan}"
            );
        }
    }

    #[test]
    fn milp_certifies_the_reduction_too() {
        // Same equality through the MILP path (exact gap).
        let inst =
            TwoMachineInstance { lengths: vec![[2.0, 1.0], [1.0, 3.0], [2.5, 2.5], [0.5, 4.0]] };
        let makespan = inst.optimal_makespan();
        let (g, spec) = reduce(&inst).unwrap();
        let opts = crate::solve::SolveOptions {
            mip: cellstream_milp::bb::MipOptions { rel_gap: 0.0, ..Default::default() },
            ..Default::default()
        };
        let out = crate::solve::solve(&g, &spec, &opts).unwrap();
        assert!(
            (out.period - makespan).abs() < 1e-9,
            "MILP {} vs makespan {}",
            out.period,
            makespan
        );
    }
}
