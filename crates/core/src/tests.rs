//! Cross-module tests: formulation correctness against the evaluator and
//! the exhaustive optimum.

use crate::eval::evaluate;
use crate::formulation::{FormKind, Formulation, FormulationConfig};
use crate::mapping::Mapping;
use crate::solve::{ppe_only_outcome, solve, SolveOptions};
use cellstream_daggen::{chain, fork_join, CostParams, DagGenParams};
use cellstream_milp::bb::MipOptions;
use cellstream_platform::{CellSpec, PeId};
use proptest::prelude::*;

fn exact_opts(kind: FormKind) -> SolveOptions {
    SolveOptions {
        formulation: FormulationConfig { kind, dma_constraints: true },
        mip: MipOptions { rel_gap: 0.0, abs_gap: 1e-9, ..Default::default() },
        ..Default::default()
    }
}

fn tiny_graph(seed: u64, n: usize) -> cellstream_graph::StreamGraph {
    let costs = CostParams::default();
    cellstream_daggen::generate(
        "tiny",
        &DagGenParams { n, fat: 0.7, regular: 0.5, density: 0.5, jump: 2, costs },
        seed,
    )
    .unwrap()
}

#[test]
fn milp_matches_brute_force_on_tiny_instances() {
    for seed in [1, 2, 3] {
        let g = tiny_graph(seed, 5);
        let spec = CellSpec::with_spes(2);
        let (_, brute_period) = crate::brute::optimal_mapping(&g, &spec).unwrap();
        let out = solve(&g, &spec, &exact_opts(FormKind::Compact)).unwrap();
        assert!(
            (out.period - brute_period).abs() <= 1e-9 + 1e-6 * brute_period,
            "seed {seed}: milp {} vs brute {}",
            out.period,
            brute_period
        );
    }
}

#[test]
fn paper_and_compact_formulations_agree() {
    for seed in [4, 5] {
        let g = tiny_graph(seed, 5);
        let spec = CellSpec::with_spes(2);
        let paper = solve(&g, &spec, &exact_opts(FormKind::Paper)).unwrap();
        let compact = solve(&g, &spec, &exact_opts(FormKind::Compact)).unwrap();
        assert!(
            (paper.period - compact.period).abs() <= 1e-9 + 1e-6 * compact.period,
            "seed {seed}: paper {} vs compact {}",
            paper.period,
            compact.period
        );
    }
}

#[test]
fn encode_produces_feasible_vectors() {
    // The encoding of a feasible mapping must satisfy every constraint of
    // both formulations — this pins the formulation to the evaluator.
    let g = tiny_graph(7, 6);
    let spec = CellSpec::with_spes(3);
    let mappings = [
        Mapping::all_on(&g, PeId(0)),
        Mapping::new(&g, &spec, vec![PeId(0), PeId(1), PeId(2), PeId(3), PeId(1), PeId(0)])
            .unwrap(),
    ];
    for kind in [FormKind::Paper, FormKind::Compact] {
        let form =
            Formulation::build(&g, &spec, &FormulationConfig { kind, dma_constraints: true });
        for m in &mappings {
            let report = evaluate(&g, &spec, m).unwrap();
            if !report.is_feasible() {
                continue;
            }
            let x = form.encode(&spec, m, report.period);
            let viol = form.model.max_violation(&x);
            assert!(viol <= 1e-6, "{kind:?}: encoded mapping violates by {viol}");
        }
    }
}

#[test]
fn decode_inverts_encode() {
    let g = tiny_graph(8, 6);
    let spec = CellSpec::with_spes(3);
    let m = Mapping::new(&g, &spec, vec![PeId(1), PeId(2), PeId(0), PeId(3), PeId(3), PeId(1)])
        .unwrap();
    let report = evaluate(&g, &spec, &m).unwrap();
    for kind in [FormKind::Paper, FormKind::Compact] {
        let form =
            Formulation::build(&g, &spec, &FormulationConfig { kind, dma_constraints: true });
        let x = form.encode(&spec, &m, report.period.max(1e-9));
        let decoded = form.decode(&x);
        assert_eq!(decoded, m.assignment().to_vec(), "{kind:?}");
    }
}

#[test]
fn solver_never_loses_to_its_seeds() {
    let g = tiny_graph(9, 8);
    let spec = CellSpec::with_spes(2);
    // A deliberately decent seed: alternate PEs down the topo order.
    let order = g.topo_order().to_vec();
    let mut assignment = vec![PeId(0); g.n_tasks()];
    for (rank, t) in order.iter().enumerate() {
        assignment[t.index()] = spec.pe(rank % spec.n_pes());
    }
    let seed_mapping = Mapping::new(&g, &spec, assignment).unwrap();
    let seed_report = evaluate(&g, &spec, &seed_mapping).unwrap();
    let out = solve(
        &g,
        &spec,
        &SolveOptions { seeds: vec![seed_mapping], ..exact_opts(FormKind::Compact) },
    )
    .unwrap();
    if seed_report.is_feasible() {
        assert!(out.period <= seed_report.period + 1e-12);
    }
    let ppe = ppe_only_outcome(&g, &spec);
    assert!(out.period <= ppe.period + 1e-12, "never worse than PPE-only");
}

#[test]
fn gap_mode_matches_paper_contract() {
    use cellstream_milp::bb::MipStatus;
    let g = tiny_graph(10, 10);
    let spec = CellSpec::with_spes(4);
    let out = solve(&g, &spec, &SolveOptions::default()).unwrap(); // 5 % gap
                                                                   // The bound is always valid...
    assert!(out.period_bound <= out.period + 1e-12);
    // ...and when the solver *claims* the gap was closed, the incumbent
    // must actually be within 5% of the proven bound. (On node/time-limit
    // stops the gap may stay open — CPLEX behaves the same without its
    // stopping rule firing.)
    if matches!(out.status, MipStatus::Optimal | MipStatus::GapReached) {
        assert!(out.gap <= 0.05 + 1e-9, "gap {} exceeds the 5% stop", out.gap);
        assert!(out.period <= out.period_bound / (1.0 - 0.05) + 1e-9);
    }
}

#[test]
fn chain_on_two_pes_splits_once() {
    // A uniform chain with negligible data on 1 PPE + 1 identical-speed SPE
    // should split into two contiguous halves (any extra cut only adds comm).
    use cellstream_graph::{StreamGraph, TaskSpec};
    let mut b = StreamGraph::builder("even");
    let ids: Vec<_> =
        (0..6).map(|i| b.add_task(TaskSpec::new(format!("t{i}")).uniform_cost(1e-6))).collect();
    for w in ids.windows(2) {
        b.add_edge(w[0], w[1], 64.0).unwrap();
    }
    let g = b.build().unwrap();
    let spec = CellSpec::with_spes(1);
    let out = solve(&g, &spec, &exact_opts(FormKind::Compact)).unwrap();
    // perfect balance: 3 us per side
    assert!((out.period - 3e-6).abs() < 1e-8, "period {}", out.period);
}

#[test]
fn infeasible_spe_tasks_stay_on_ppe() {
    // One task whose buffers exceed the local store: the MILP must keep it
    // on the PPE even though the SPE is faster.
    use cellstream_graph::{StreamGraph, TaskSpec};
    let mut b = StreamGraph::builder("fat");
    let a = b.add_task(TaskSpec::new("a").ppe_cost(1e-6).spe_cost(1e-7));
    let z = b.add_task(TaskSpec::new("z").ppe_cost(1e-6).spe_cost(1e-7));
    b.add_edge(a, z, 300.0 * 1024.0).unwrap(); // buffer 600 kB > 192 kB budget
    let g = b.build().unwrap();
    let spec = CellSpec::with_spes(2);
    let out = solve(&g, &spec, &exact_opts(FormKind::Compact)).unwrap();
    assert_eq!(out.mapping.pe_of(cellstream_graph::TaskId(0)), PeId(0));
    assert_eq!(out.mapping.pe_of(cellstream_graph::TaskId(1)), PeId(0));
}

#[test]
fn dma_constraints_bind_when_enabled() {
    // 20 PPE-pinned producers feed one SPE-friendly consumer; without (1j)
    // the consumer would go to an SPE with 20 incoming DMAs (> 16).
    use cellstream_graph::{StreamGraph, TaskSpec};
    let mut b = StreamGraph::builder("fan");
    // producers are far faster on the PPE, consumer far faster on SPE
    let producers: Vec<_> = (0..20)
        .map(|i| b.add_task(TaskSpec::new(format!("p{i}")).ppe_cost(1e-7).spe_cost(5e-5)))
        .collect();
    let sink = b.add_task(TaskSpec::new("sink").ppe_cost(8e-5).spe_cost(1e-6));
    for &p in &producers {
        b.add_edge(p, sink, 16.0).unwrap();
    }
    let g = b.build().unwrap();
    let spec = CellSpec::with_spes(1);

    let with_dma = solve(&g, &spec, &exact_opts(FormKind::Compact)).unwrap();
    let report = evaluate(&g, &spec, &with_dma.mapping).unwrap();
    assert!(report.is_feasible());
    // respecting (1j) forces the consumer to stay on the PPE
    assert_eq!(with_dma.mapping.pe_of(sink), PeId(0));

    let mut no_dma = exact_opts(FormKind::Compact);
    no_dma.formulation.dma_constraints = false;
    let out2 = solve(&g, &spec, &no_dma).unwrap();
    // without (1j) the solver exploits the SPE and gets a shorter period
    assert!(out2.period < with_dma.period - 1e-9, "{} vs {}", out2.period, with_dma.period);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn prop_milp_never_worse_than_brute(seed in 0u64..1000) {
        let g = tiny_graph(seed, 4);
        let spec = CellSpec::with_spes(2);
        let (_, brute) = crate::brute::optimal_mapping(&g, &spec).unwrap();
        let out = solve(&g, &spec, &exact_opts(FormKind::Compact)).unwrap();
        prop_assert!((out.period - brute).abs() <= 1e-9 + 1e-6 * brute,
            "milp {} brute {}", out.period, brute);
    }

    #[test]
    fn prop_period_bound_is_valid(seed in 0u64..1000) {
        let g = tiny_graph(seed, 7);
        let spec = CellSpec::with_spes(3);
        let out = solve(&g, &spec, &SolveOptions::default()).unwrap();
        let report = evaluate(&g, &spec, &out.mapping).unwrap();
        prop_assert!(report.is_feasible());
        prop_assert!((report.period - out.period).abs() < 1e-12);
        prop_assert!(out.period_bound <= out.period + 1e-12);
    }

    #[test]
    fn prop_fork_join_balances(width in 2usize..6, seed in 0u64..100) {
        let g = fork_join("fj", width, &CostParams::default(), seed);
        let spec = CellSpec::ps3();
        let out = solve(&g, &spec, &SolveOptions::default()).unwrap();
        let ppe = ppe_only_outcome(&g, &spec);
        prop_assert!(out.period <= ppe.period + 1e-12);
    }

    #[test]
    fn prop_more_spes_never_hurt(seed in 0u64..50) {
        let g = chain("c", 8, &CostParams::default(), seed);
        let out2 = solve(&g, &CellSpec::with_spes(2), &SolveOptions {
            mip: MipOptions { rel_gap: 0.0, abs_gap: 1e-9, ..Default::default() },
            ..Default::default()
        }).unwrap();
        let out4 = solve(&g, &CellSpec::with_spes(4), &SolveOptions {
            mip: MipOptions { rel_gap: 0.0, abs_gap: 1e-9, ..Default::default() },
            ..Default::default()
        }).unwrap();
        // any mapping on 2 SPEs is valid on 4 SPEs, so the optimum can only improve
        prop_assert!(out4.period <= out2.period + 1e-9,
            "4 SPEs {} vs 2 SPEs {}", out4.period, out2.period);
    }
}

// ---------------------------------------------------------------------------
// Incremental-vs-full evaluator equivalence (the delta engine's contract)
// ---------------------------------------------------------------------------

use crate::eval::incremental::assert_matches_full as assert_state_matches_full;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prop_incremental_matches_full_after_every_step(
        seed in 0u64..5000,
        n in 4usize..16,
        spes in 1usize..4,
        ops in collection::vec((any::<u32>(), any::<u32>(), 0u32..100), 1..50),
    ) {
        use crate::{EvalState, Move};
        use cellstream_graph::TaskId;

        let g = tiny_graph(seed, n);
        let spec = CellSpec::with_spes(spes);
        let mut state = EvalState::new(&g, &spec, &Mapping::all_on(&g, PeId(0))).unwrap();
        let mut can_undo = false;
        for (i, &(x, y, kind)) in ops.iter().enumerate() {
            let t = TaskId(x as usize % g.n_tasks());
            let pe = PeId(y as usize % spec.n_pes());
            let ctx = format!("seed {seed}, op {i}");
            if kind < 15 {
                // undo when possible (apply/score_move below consume it)
                let undone = state.undo();
                prop_assert_eq!(undone, can_undo, "{}: undo availability", ctx);
                can_undo = false;
            } else if kind < 40 {
                let u = TaskId(y as usize % g.n_tasks());
                prop_assume!(u != t);
                state.apply(Move::Swap { a: t, b: u });
                can_undo = true;
            } else if kind < 60 {
                // a probe must leave the state bitwise untouched
                let before = state.period();
                let probe = state.score_move(Move::Relocate { task: t, to: pe });
                prop_assert_eq!(state.period(), before, "{}: probe disturbed state", ctx);
                // ... and agree with a fresh evaluation of the probed mapping
                let full = evaluate(&g, &spec, &state.mapping().with_move(t, pe)).unwrap();
                if full.is_feasible() {
                    prop_assert!((probe - full.period).abs() <= 1e-9 * full.period,
                        "{}: probe {} vs full {}", ctx, probe, full.period);
                } else {
                    prop_assert!(probe.is_infinite(), "{}: infeasible probe must be inf", ctx);
                }
                can_undo = false; // score_move consumed the undo log
            } else {
                state.apply(Move::Relocate { task: t, to: pe });
                can_undo = true;
            }
            assert_state_matches_full(&state, &ctx);
        }
    }

    #[test]
    fn prop_incremental_score_equals_search_objective(
        seed in 0u64..2000,
        n in 3usize..10,
    ) {
        use crate::{EvalState, Move};
        use cellstream_graph::TaskId;

        // every single-move score from a greedy-ish start matches the
        // full evaluator's verdict (the local-search inner loop contract)
        let g = tiny_graph(seed, n);
        let spec = CellSpec::with_spes(2);
        let mut state = EvalState::new(&g, &spec, &Mapping::all_on(&g, PeId(0))).unwrap();
        for k in 0..g.n_tasks() {
            for pe in 0..spec.n_pes() {
                let s = state.score_move(Move::Relocate { task: TaskId(k), to: PeId(pe) });
                let full = evaluate(&g, &spec, &state.mapping().with_move(TaskId(k), PeId(pe)))
                    .unwrap();
                if full.is_feasible() {
                    prop_assert!((s - full.period).abs() <= 1e-9 * full.period);
                } else {
                    prop_assert!(s.is_infinite());
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Multi-application workloads on the incremental engine
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A composed workload is a plain graph to the delta engine: applying
    /// random move sequences on the composition tracks the full evaluator
    /// exactly, so local search and annealing probe co-scheduled
    /// applications at full incremental speed with zero special-casing.
    #[test]
    fn prop_incremental_tracks_composed_workloads(
        seed_a in 0u64..500,
        seed_b in 500u64..1000,
        moves in proptest::collection::vec((0usize..64, 0usize..9), 1..40),
    ) {
        use crate::eval::incremental::assert_matches_full as assert_state_matches_full;
        use crate::{EvalState, Move};
        use cellstream_graph::{TaskId, Workload};

        let a = tiny_graph(seed_a, 5);
        let mut bgraph = tiny_graph(seed_b, 4);
        // distinct app names are required; daggen reuses "tiny"
        {
            let mut builder = cellstream_graph::StreamGraph::builder("tiny2");
            let mut ids = Vec::new();
            for t in bgraph.tasks() {
                ids.push(builder.add_task(t.to_spec()));
            }
            for e in bgraph.edges() {
                builder.add_edge(ids[e.src.index()], ids[e.dst.index()], e.data_bytes).unwrap();
            }
            bgraph = builder.build().unwrap();
        }
        let mut wb = Workload::builder("pair");
        wb.push(&a, 1.0).unwrap();
        wb.push(&bgraph, 2.0).unwrap();
        let w = wb.build().unwrap();
        let spec = CellSpec::ps3();
        let g = w.graph();
        let mut state = EvalState::new(g, &spec, &Mapping::all_on(g, PeId(0))).unwrap();
        for (i, &(t, pe)) in moves.iter().enumerate() {
            let t = TaskId(t % g.n_tasks());
            let pe = PeId(pe % spec.n_pes());
            state.apply(Move::Relocate { task: t, to: pe });
            assert_state_matches_full(&state, &format!("workload move {i}"));
        }
        // the per-app split stays consistent with the live aggregate
        let report = state.report();
        let m = state.mapping();
        let split = crate::workload::per_app_reports(&w, &spec, &m, &report);
        prop_assert_eq!(split.len(), 2);
        for ar in &split {
            prop_assert!((ar.weighted_period - report.period).abs() <= 1e-18_f64.max(1e-12 * report.period));
        }
    }
}
