//! The mixed linear program of paper §5 (Linear Program (1)).
//!
//! Two interchangeable encodings are provided:
//!
//! * [`FormKind::Paper`] — the formulation **verbatim**: binaries
//!   `α[k][i]` (task→PE) and `β[k,l][i][j]` (edge→PE-pair) with
//!   constraints (1a)–(1k) exactly as printed. Faithful but large:
//!   `O(|E|·n²)` binaries.
//! * [`FormKind::Compact`] — an equivalent encoding that replaces β by
//!   continuous *cut indicators* per (edge, PE): `γ ≥ α_dst − α_src`
//!   (edge enters the PE) and `ε ≥ α_src + Σ_{PPE j} α_dst,j − 1` (edge
//!   leaves an SPE toward a PPE, for constraint (1k)). The *outgoing*
//!   indicator needs no variable of its own thanks to the exact identity
//!   `max(0, α_src − α_dst) = γ + α_src − α_dst`, which substitutes the
//!   outgoing-bandwidth rows (1h) directly in terms of γ and α. For any
//!   *integral* α the optimal cut indicators coincide with the β-sums of
//!   the paper's encoding, so both MILPs have the same integral optima
//!   (`tests::formulations_agree`); the compact one is `O(|E|·n)` and is
//!   the default for the ≥50-task evaluation graphs.
//!
//! Two printing conventions of the paper are normalised here (flagged in
//! DESIGN.md): constraints (1g)/(1h) are read with the evident summation
//! `Σ_k` over the `read_k`/`write_k` terms, and every row is scaled to
//! unit magnitude (times by `1/T₀` with `T₀ = Σ wPPE`, bytes by
//! `1/(bw·T₀)`, local store by `1/(LS−code)`, DMA counts by the queue
//! depth) so the tableau is well conditioned.

use crate::mapping::Mapping;
use crate::steady::buffers::BufferPlan;
use cellstream_graph::{StreamGraph, TaskId};
use cellstream_milp::model::{Cmp, Model, VarId, VarKind};
use cellstream_platform::{CellSpec, PeId, PeKind};

/// Which encoding of Linear Program (1) to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FormKind {
    /// The paper's β-formulation, verbatim.
    Paper,
    /// The equivalent compact cut-indicator formulation (default).
    #[default]
    Compact,
}

/// Toggles for ablation studies (DESIGN.md §5): both default to the
/// paper's behaviour.
#[derive(Debug, Clone, Copy)]
pub struct FormulationConfig {
    /// Which encoding to emit.
    pub kind: FormKind,
    /// Include the DMA-queue constraints (1j)/(1k). Disabling them is the
    /// `ablation_dma` experiment.
    pub dma_constraints: bool,
}

impl Default for FormulationConfig {
    fn default() -> Self {
        FormulationConfig { kind: FormKind::default(), dma_constraints: true }
    }
}

/// A built formulation: the model plus the variable layout needed to
/// encode/decode mappings.
pub struct Formulation {
    /// The MILP.
    pub model: Model,
    kind: FormKind,
    n_tasks: usize,
    n_pes: usize,
    /// `alpha[k*n + i]`
    alpha: Vec<VarId>,
    /// period variable (scaled by `1/t0`)
    t_var: VarId,
    /// time scale: seconds = scaled · t0
    t0: f64,
    /// edge list copied out of the graph (src, dst, data)
    edges: Vec<(usize, usize, f64)>,
    /// β (paper) or γ/δ/ε (compact) variable ids, in builder order
    aux: AuxVars,
}

enum AuxVars {
    /// `beta[e][i*n + j]`
    Paper(Vec<Vec<VarId>>),
    /// `(gamma[e][i], eps[e][spe_index])`
    Compact(Vec<Vec<VarId>>, Vec<Vec<VarId>>),
}

impl Formulation {
    /// Build Linear Program (1) for `(g, spec)`.
    pub fn build(g: &StreamGraph, spec: &CellSpec, config: &FormulationConfig) -> Formulation {
        let n = spec.n_pes();
        let k_tasks = g.n_tasks();
        // Normalisation scale for the period variable. A zero-work graph
        // (legal since the builder accepts zero costs) would make every
        // scaled coefficient 0/0 = NaN and poison the simplex; scale by
        // 1 second instead — the LP is already in seconds then.
        let t0 = {
            let w = g.total_ppe_work();
            if w > 0.0 {
                w
            } else {
                1.0
            }
        };
        let bw = spec.interface_bw().as_bytes_per_s();
        let plan = BufferPlan::new(g);
        let ls_budget = spec.local_store_budget() as f64;
        let mut model = Model::new(format!("{}-{:?}", g.name(), config.kind));

        // ---- variables ----------------------------------------------------
        // (1a): α, β binary; T rational
        let t_var = model.add_var("T", 0.0, f64::INFINITY, 1.0, VarKind::Continuous);
        let mut alpha = Vec::with_capacity(k_tasks * n);
        for k in 0..k_tasks {
            for i in 0..n {
                alpha.push(model.add_var(format!("a[{k},{i}]"), 0.0, 1.0, 0.0, VarKind::Binary));
            }
        }
        let a = |k: usize, i: usize| alpha[k * n + i];
        let edges: Vec<(usize, usize, f64)> =
            g.edges().iter().map(|e| (e.src.index(), e.dst.index(), e.data_bytes)).collect();

        let aux = match config.kind {
            FormKind::Paper => {
                let mut beta = Vec::with_capacity(edges.len());
                for (ei, _) in edges.iter().enumerate() {
                    let mut b_e = Vec::with_capacity(n * n);
                    for i in 0..n {
                        for j in 0..n {
                            b_e.push(model.add_var(
                                format!("b[{ei},{i},{j}]"),
                                0.0,
                                1.0,
                                0.0,
                                VarKind::Binary,
                            ));
                        }
                    }
                    beta.push(b_e);
                }
                AuxVars::Paper(beta)
            }
            FormKind::Compact => {
                let mut gamma = Vec::with_capacity(edges.len());
                let mut eps = Vec::with_capacity(edges.len());
                for (ei, _) in edges.iter().enumerate() {
                    gamma.push(
                        (0..n)
                            .map(|i| {
                                model.add_var(
                                    format!("g[{ei},{i}]"),
                                    0.0,
                                    // γ caps at 1 even fractionally
                                    1.0,
                                    0.0,
                                    VarKind::Continuous,
                                )
                            })
                            .collect::<Vec<_>>(),
                    );
                    eps.push(
                        spec.spes()
                            .map(|pe| {
                                model.add_var(
                                    format!("e[{ei},{}]", pe.index()),
                                    0.0,
                                    1.0,
                                    0.0,
                                    VarKind::Continuous,
                                )
                            })
                            .collect::<Vec<_>>(),
                    );
                }
                AuxVars::Compact(gamma, eps)
            }
        };

        // ---- (1b): each task on exactly one PE ----------------------------
        for k in 0..k_tasks {
            let terms: Vec<_> = (0..n).map(|i| (a(k, i), 1.0)).collect();
            model.add_con(terms, Cmp::Eq, 1.0);
        }

        // ---- encoding-specific coupling ------------------------------------
        match &aux {
            AuxVars::Paper(beta) => {
                for (ei, &(k, l, _)) in edges.iter().enumerate() {
                    // (1c): ∀j  Σ_i β_{i,j} ≥ α^l_j
                    for j in 0..n {
                        let mut terms: Vec<_> =
                            (0..n).map(|i| (beta[ei][i * n + j], 1.0)).collect();
                        terms.push((a(l, j), -1.0));
                        model.add_con(terms, Cmp::Ge, 0.0);
                    }
                    // (1d): ∀i  Σ_j β_{i,j} ≤ α^k_i
                    for i in 0..n {
                        let mut terms: Vec<_> =
                            (0..n).map(|j| (beta[ei][i * n + j], 1.0)).collect();
                        terms.push((a(k, i), -1.0));
                        model.add_con(terms, Cmp::Le, 0.0);
                    }
                }
            }
            AuxVars::Compact(gamma, eps) => {
                for (ei, &(k, l, _)) in edges.iter().enumerate() {
                    #[allow(clippy::needless_range_loop)] // i indexes alphas and gammas alike
                    for i in 0..n {
                        // γ ≥ α^l_i − α^k_i : edge enters PE i. The
                        // outgoing indicator is γ + α^k_i − α^l_i (exact
                        // identity), so no δ variable or row is needed.
                        model.add_con(
                            vec![(gamma[ei][i], 1.0), (a(l, i), -1.0), (a(k, i), 1.0)],
                            Cmp::Ge,
                            0.0,
                        );
                    }
                    if config.dma_constraints {
                        // ε ≥ α^k_spe + Σ_{PPE j} α^l_j − 1
                        for (si, pe) in spec.spes().enumerate() {
                            let mut terms = vec![(eps[ei][si], 1.0), (a(k, pe.index()), -1.0)];
                            for j in spec.ppes() {
                                terms.push((a(l, j.index()), -1.0));
                            }
                            model.add_con(terms, Cmp::Ge, -1.0);
                        }
                    }
                }
            }
        }

        // ---- (1e)/(1f): compute loads --------------------------------------
        for pe in spec.pes() {
            let i = pe.index();
            let mut terms: Vec<_> = (0..k_tasks)
                .map(|k| (a(k, i), g.task(TaskId(k)).cost_on(spec.kind_of(pe)) / t0))
                .collect();
            terms.push((t_var, -1.0));
            model.add_con(terms, Cmp::Le, 0.0);
        }

        // ---- (1g)/(1h): interface bandwidth --------------------------------
        for pe in spec.pes() {
            let i = pe.index();
            // incoming: memory reads + crossing edges in
            let mut in_terms: Vec<(VarId, f64)> = (0..k_tasks)
                .filter(|&k| g.task(TaskId(k)).read_bytes > 0.0)
                .map(|k| (a(k, i), g.task(TaskId(k)).read_bytes / (bw * t0)))
                .collect();
            let mut out_terms: Vec<(VarId, f64)> = (0..k_tasks)
                .filter(|&k| g.task(TaskId(k)).write_bytes > 0.0)
                .map(|k| (a(k, i), g.task(TaskId(k)).write_bytes / (bw * t0)))
                .collect();
            for (ei, &(_, _, data)) in edges.iter().enumerate() {
                if data <= 0.0 {
                    continue;
                }
                let c = data / (bw * t0);
                match &aux {
                    AuxVars::Paper(beta) => {
                        for j in 0..n {
                            if j != i {
                                in_terms.push((beta[ei][j * n + i], c));
                                out_terms.push((beta[ei][i * n + j], c));
                            }
                        }
                    }
                    AuxVars::Compact(gamma, _) => {
                        in_terms.push((gamma[ei][i], c));
                        // outgoing = γ + α_src − α_dst (identity)
                        let (k, l, _) = edges[ei];
                        out_terms.push((gamma[ei][i], c));
                        out_terms.push((a(k, i), c));
                        out_terms.push((a(l, i), -c));
                    }
                }
            }
            in_terms.push((t_var, -1.0));
            out_terms.push((t_var, -1.0));
            model.add_con(in_terms, Cmp::Le, 0.0);
            model.add_con(out_terms, Cmp::Le, 0.0);
        }

        // ---- (1i): local stores --------------------------------------------
        for pe in spec.spes() {
            let i = pe.index();
            let terms: Vec<_> = (0..k_tasks)
                .filter(|&k| plan.for_task(TaskId(k)) > 0.0)
                .map(|k| (a(k, i), plan.for_task(TaskId(k)) / ls_budget))
                .collect();
            if !terms.is_empty() {
                model.add_con(terms, Cmp::Le, 1.0);
            }
        }

        // ---- (1j)/(1k): DMA queues -----------------------------------------
        if config.dma_constraints {
            let in_limit = spec.dma_in_limit() as f64;
            let ppe_limit = spec.dma_ppe_limit() as f64;
            match &aux {
                AuxVars::Paper(beta) => {
                    // (1j): ∀ SPE j, Σ_{i≠j} Σ_e β_{i,j} ≤ 16
                    for pe in spec.spes() {
                        let j = pe.index();
                        let mut terms = Vec::new();
                        for b_e in beta {
                            for i in 0..n {
                                if i != j {
                                    terms.push((b_e[i * n + j], 1.0 / in_limit));
                                }
                            }
                        }
                        model.add_con(terms, Cmp::Le, 1.0);
                    }
                    // (1k): ∀ SPE i, Σ_{PPE j} Σ_e β_{i,j} ≤ 8
                    for pe in spec.spes() {
                        let i = pe.index();
                        let mut terms = Vec::new();
                        for b_e in beta {
                            for j in spec.ppes() {
                                terms.push((b_e[i * n + j.index()], 1.0 / ppe_limit));
                            }
                        }
                        model.add_con(terms, Cmp::Le, 1.0);
                    }
                }
                AuxVars::Compact(gamma, eps) => {
                    for (si, pe) in spec.spes().enumerate() {
                        let j = pe.index();
                        let in_terms: Vec<_> =
                            gamma.iter().map(|g_e| (g_e[j], 1.0 / in_limit)).collect();
                        model.add_con(in_terms, Cmp::Le, 1.0);
                        let ppe_terms: Vec<_> =
                            eps.iter().map(|e_e| (e_e[si], 1.0 / ppe_limit)).collect();
                        model.add_con(ppe_terms, Cmp::Le, 1.0);
                    }
                }
            }
        }

        Formulation {
            model,
            kind: config.kind,
            n_tasks: k_tasks,
            n_pes: n,
            alpha,
            t_var,
            t0,
            edges,
            aux,
        }
    }

    /// The constraint matrix of the formulation as compressed sparse
    /// columns, built straight from the model's sparse row triplets —
    /// the exact storage the revised simplex pivots on, with no
    /// densification step in between. Available for both [`FormKind`]s;
    /// useful for inspecting formulation sparsity (see `tab_lp`).
    pub fn sparse_columns(&self) -> cellstream_milp::ColMatrix {
        self.model.columns()
    }

    /// `(rows, columns, nonzeros)` of the constraint matrix.
    pub fn sparsity(&self) -> (usize, usize, usize) {
        let cols = self.sparse_columns();
        (cols.nrows(), cols.ncols(), cols.nnz())
    }

    /// The time scale: a scaled period of `x` means `x · t0` seconds.
    pub fn time_scale(&self) -> f64 {
        self.t0
    }

    /// Variable id of the (scaled) period.
    pub fn t_var(&self) -> VarId {
        self.t_var
    }

    /// Variable id of `α[k][i]`.
    pub fn alpha(&self, k: TaskId, i: PeId) -> VarId {
        self.alpha[k.index() * self.n_pes + i.index()]
    }

    /// Decode a solution vector into a mapping: each task goes to its
    /// argmax `α` (for integral solutions this is exact; for fractional
    /// ones it is the natural rounding).
    pub fn decode(&self, x: &[f64]) -> Vec<PeId> {
        (0..self.n_tasks)
            .map(|k| {
                let mut best = 0usize;
                let mut best_v = f64::NEG_INFINITY;
                for i in 0..self.n_pes {
                    let v = x[self.alpha[k * self.n_pes + i].index()];
                    if v > best_v {
                        best_v = v;
                        best = i;
                    }
                }
                PeId(best)
            })
            .collect()
    }

    /// Encode a mapping (plus its exact period in seconds) as a full
    /// solution vector — β/γ/δ/ε consistent with α — for incumbent
    /// seeding. The caller provides the period so the vector is feasible
    /// w.r.t. the (1e)–(1h) rows.
    pub fn encode(&self, spec: &CellSpec, mapping: &Mapping, period_seconds: f64) -> Vec<f64> {
        let mut x = vec![0.0; self.model.n_vars()];
        x[self.t_var.index()] = period_seconds / self.t0;
        for k in 0..self.n_tasks {
            let pe = mapping.pe_of(TaskId(k));
            x[self.alpha[k * self.n_pes + pe.index()].index()] = 1.0;
        }
        match &self.aux {
            AuxVars::Paper(beta) => {
                for (ei, &(k, l, _)) in self.edges.iter().enumerate() {
                    let i = mapping.pe_of(TaskId(k)).index();
                    let j = mapping.pe_of(TaskId(l)).index();
                    x[beta[ei][i * self.n_pes + j].index()] = 1.0;
                }
            }
            AuxVars::Compact(gamma, eps) => {
                for (ei, &(k, l, _)) in self.edges.iter().enumerate() {
                    let src = mapping.pe_of(TaskId(k));
                    let dst = mapping.pe_of(TaskId(l));
                    if src != dst {
                        x[gamma[ei][dst.index()].index()] = 1.0;
                        if spec.is_spe(src) && spec.kind_of(dst) == PeKind::Ppe {
                            let si = src.index() - spec.n_ppe();
                            x[eps[ei][si].index()] = 1.0;
                        }
                    }
                }
            }
        }
        x
    }

    /// The encoding used.
    pub fn kind(&self) -> FormKind {
        self.kind
    }
}
