//! Evaluation of multi-application workloads.
//!
//! A composed [`Workload`] is scheduled as one graph (see
//! `cellstream_graph::workload` for the composition semantics): the
//! shared round has period `T`, and application `A_i` with weight `w_i`
//! runs at per-instance period `T_i = T / w_i` and throughput
//! `ρ_i = w_i / T`. This module splits the aggregate
//! [`MappingReport`] back into per-application numbers, so callers can
//! assert model-vs-simulation agreement **per application** and report
//! the objective `max_i w_i · T_i` (which equals `T` by construction —
//! minimising the composed period is exactly minimising the maximum
//! weighted per-application period).

use crate::avail::Availability;
use crate::eval::{evaluate_with, throughput_of, MappingReport};
use crate::mapping::{Mapping, MappingError};
use cellstream_graph::{AppId, Workload};
use cellstream_platform::CellSpec;
use std::fmt;

/// One application's share of a workload evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct AppReport {
    /// Application name.
    pub app: String,
    /// Its throughput weight `w_i` (instances per composed round).
    pub weight: f64,
    /// Per-instance steady-state period `T_i = T / w_i` (seconds).
    pub period: f64,
    /// Per-instance throughput `ρ_i = w_i / T` (instances per second):
    /// the **guarantee** the co-schedule promises under full contention
    /// (every application running at the synchronised round rate).
    pub throughput: f64,
    /// The **predicted** steady-state throughput on a work-conserving
    /// machine (instances per second): the weighted max-min fair rate
    /// under the per-resource occupation constraints
    /// `Σ_i f_i · occ_i(r) ≤ 1`, computed by progressive filling.
    /// Applications coupled to the composed bottleneck get exactly the
    /// guarantee; applications whose binding resources are private rise
    /// to their isolated bound. This is what the ideal simulator
    /// measures (its task scheduler favours laggards, which realises
    /// max-min fairness) — per-app model-vs-sim agreement is asserted
    /// against this number.
    pub fair_throughput: f64,
    /// Weighted period `w_i · T_i` — the objective term; equals the
    /// composed period for every application.
    pub weighted_period: f64,
    /// The application's **isolated** per-instance period under this
    /// mapping: the §3.2 occupation maximum restricted to its own tasks
    /// and edges, divided by its weight. This is the best the
    /// application could do on this placement if every co-resident
    /// application idled, so `isolated_period ≤ period` always. The
    /// simulated per-app throughput lands in
    /// `[throughput, 1 / isolated_period]`: apps coupled to the composed
    /// bottleneck (sharing a binding resource) run at the round
    /// guarantee, apps with private bottlenecks reclaim the slack up to
    /// the isolated bound.
    pub isolated_period: f64,
    /// Compute seconds per composed round this application loads onto
    /// the machine under the evaluated mapping (Σ over its tasks of the
    /// cost on the assigned PE kind).
    pub compute_seconds: f64,
}

impl fmt::Display for AppReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: period {:.3} us, throughput {:.0}/s (weight {})",
            self.app,
            self.period * 1e6,
            self.throughput,
            self.weight
        )
    }
}

/// Full evaluation of a mapping of a composed workload: the aggregate
/// shared-PE report plus the per-application split.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// The §3.2 verifier's verdict on the composed graph.
    pub aggregate: MappingReport,
    /// Per-application periods/throughputs, indexed by [`AppId`].
    pub per_app: Vec<AppReport>,
}

impl WorkloadReport {
    /// `true` iff constraints (1i)–(1k) all hold on the composed mapping.
    pub fn is_feasible(&self) -> bool {
        self.aggregate.is_feasible()
    }

    /// The co-scheduling objective: `max_i w_i · T_i`, the maximum
    /// weighted per-application period (= the composed round period).
    pub fn max_weighted_period(&self) -> f64 {
        self.per_app.iter().map(|a| a.weighted_period).fold(0.0, f64::max)
    }

    /// Per-application report by id.
    pub fn app(&self, a: AppId) -> &AppReport {
        &self.per_app[a.index()]
    }
}

/// Split an aggregate report of `w`'s composed graph into per-application
/// reports. `mapping` supplies the PE kinds for the per-application
/// compute attribution.
pub fn per_app_reports(
    w: &Workload,
    spec: &CellSpec,
    mapping: &Mapping,
    aggregate: &MappingReport,
) -> Vec<AppReport> {
    per_app_reports_with(w, spec, &Availability::full(spec), mapping, aggregate)
}

/// [`per_app_reports`] against *live* capacity: each application's
/// compute occupation is scaled by the seating PE's
/// [`Availability::slowdown`], matching [`evaluate_with`]. With a fully
/// healthy overlay this is exactly `per_app_reports`.
pub fn per_app_reports_with(
    w: &Workload,
    spec: &CellSpec,
    avail: &Availability,
    mapping: &Mapping,
    aggregate: &MappingReport,
) -> Vec<AppReport> {
    let t = aggregate.period;
    let g = w.graph();
    let bw = spec.interface_bw().as_bytes_per_s();
    let n_pes = spec.n_pes();
    let n_apps = w.n_apps();

    // Per-app occupation of every resource (seconds of compute, and
    // seconds of each interface direction) per composed round — the
    // same occupations the §3.2 verifier sums, split by owner.
    let n_res = 3 * n_pes;
    let mut occ = vec![vec![0.0f64; n_res]; n_apps];
    for (i, info) in w.apps().iter().enumerate() {
        let row = &mut occ[i];
        for tid in w.tasks_of(AppId(i)) {
            let seat = mapping.pe_of(tid);
            let pe = seat.index();
            let task = g.task(tid);
            row[pe] += task.cost_on(spec.kind_of(seat)) * avail.slowdown(seat);
            row[n_pes + pe] += task.read_bytes / bw;
            row[2 * n_pes + pe] += task.write_bytes / bw;
        }
        for ei in info.edges.clone() {
            let e = &g.edges()[ei];
            let (src, dst) = (mapping.pe_of(e.src), mapping.pe_of(e.dst));
            if src != dst {
                row[2 * n_pes + src.index()] += e.data_bytes / bw;
                row[n_pes + dst.index()] += e.data_bytes / bw;
            }
        }
    }

    let fair = max_min_round_rates(&occ);

    w.apps()
        .iter()
        .enumerate()
        .map(|(i, info)| {
            let iso = occ[i].iter().cloned().fold(0.0f64, f64::max);
            let compute_seconds = occ[i][..n_pes].iter().sum();
            let fair_throughput = if fair[i].is_finite() { fair[i] * info.weight } else { 0.0 };
            AppReport {
                app: info.name.clone(),
                weight: info.weight,
                period: t / info.weight,
                throughput: throughput_of(t) * info.weight,
                fair_throughput,
                weighted_period: t,
                isolated_period: iso / info.weight,
                compute_seconds,
            }
        })
        .collect()
}

/// Max-min fair round rates under `Σ_i f_i · occ[i][r] ≤ 1` for every
/// resource `r`, by progressive filling: all rates rise together until a
/// resource saturates, the applications using it freeze, repeat.
/// Applications constrained by no resource (zero occupation everywhere)
/// come back as `+∞` — callers map that to the degenerate-zero-work
/// convention.
// `r` walks a *column* across every application's row, which the
// needless_range_loop lint cannot express as an iterator chain.
#[allow(clippy::needless_range_loop)]
fn max_min_round_rates(occ: &[Vec<f64>]) -> Vec<f64> {
    let n_apps = occ.len();
    let n_res = occ.first().map_or(0, Vec::len);
    let mut rate = vec![0.0f64; n_apps];
    let mut frozen = vec![false; n_apps];
    loop {
        // largest uniform increment the active set can still absorb
        let mut delta = f64::INFINITY;
        for r in 0..n_res {
            let active: f64 = (0..n_apps).filter(|&i| !frozen[i]).map(|i| occ[i][r]).sum();
            if active <= 0.0 {
                continue;
            }
            let used: f64 = (0..n_apps).map(|i| rate[i] * occ[i][r]).sum();
            delta = delta.min(((1.0 - used) / active).max(0.0));
        }
        if !delta.is_finite() {
            // nothing constrains the remaining applications
            for i in 0..n_apps {
                if !frozen[i] {
                    rate[i] = f64::INFINITY;
                }
            }
            return rate;
        }
        for i in 0..n_apps {
            if !frozen[i] {
                rate[i] += delta;
            }
        }
        // freeze every active application touching a saturated resource
        let mut any_frozen = false;
        for r in 0..n_res {
            let used: f64 = (0..n_apps).map(|i| rate[i] * occ[i][r]).sum();
            if used >= 1.0 - 1e-12 {
                for i in 0..n_apps {
                    if !frozen[i] && occ[i][r] > 0.0 {
                        frozen[i] = true;
                        any_frozen = true;
                    }
                }
            }
        }
        if frozen.iter().all(|&f| f) {
            return rate;
        }
        if !any_frozen {
            // numerically stuck (should not happen); freeze everything
            // rather than loop forever
            return rate;
        }
    }
}

/// Evaluate a mapping of the composed workload graph: the aggregate
/// verifier verdict plus the per-application split. Errors only on
/// structurally invalid mappings, exactly like [`evaluate`].
pub fn evaluate_workload(
    w: &Workload,
    spec: &CellSpec,
    mapping: &Mapping,
) -> Result<WorkloadReport, MappingError> {
    evaluate_workload_with(w, spec, &Availability::full(spec), mapping)
}

/// [`evaluate_workload`] against *live* capacity: the aggregate verdict
/// comes from [`evaluate_with`] (degraded PEs slow their tasks, seats on
/// dead PEs are capacity violations) and the per-application compute
/// attribution is scaled the same way. With a fully healthy overlay this
/// is exactly `evaluate_workload`.
pub fn evaluate_workload_with(
    w: &Workload,
    spec: &CellSpec,
    avail: &Availability,
    mapping: &Mapping,
) -> Result<WorkloadReport, MappingError> {
    let aggregate = evaluate_with(w.graph(), spec, avail, mapping)?;
    let per_app = per_app_reports_with(w, spec, avail, mapping, &aggregate);
    Ok(WorkloadReport { aggregate, per_app })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellstream_graph::{StreamGraph, TaskSpec};
    use cellstream_platform::{CellSpec, PeId};

    fn app(name: &str, n: usize, cost: f64) -> StreamGraph {
        let mut b = StreamGraph::builder(name);
        let ts: Vec<_> = (0..n)
            .map(|i| b.add_task(TaskSpec::new(format!("t{i}")).ppe_cost(cost).spe_cost(cost / 2.0)))
            .collect();
        for p in ts.windows(2) {
            b.add_edge(p[0], p[1], 128.0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn per_app_periods_divide_the_round_by_weight() {
        let a = app("a", 3, 2e-6);
        let b = app("b", 2, 2e-6);
        let mut wb = Workload::builder("w");
        wb.push(&a, 1.0).unwrap();
        wb.push(&b, 2.0).unwrap();
        let w = wb.build().unwrap();
        let spec = CellSpec::with_spes(2);
        let m = Mapping::all_on(w.graph(), PeId(0));
        let r = evaluate_workload(&w, &spec, &m).unwrap();
        // PPE-only round: 3*2us + 2*(2us*2) = 14us
        assert!((r.aggregate.period - 14e-6).abs() < 1e-15);
        assert!((r.app(AppId(0)).period - 14e-6).abs() < 1e-15);
        assert!((r.app(AppId(1)).period - 7e-6).abs() < 1e-15);
        // weighted periods all equal the round: the objective is the round
        for ar in &r.per_app {
            assert!((ar.weighted_period - r.aggregate.period).abs() < 1e-18);
        }
        assert!((r.max_weighted_period() - r.aggregate.period).abs() < 1e-18);
        // throughputs are weight-scaled inverses
        assert!((r.app(AppId(1)).throughput - 2.0 / 14e-6).abs() < 1.0);
        assert!(r.is_feasible());
    }

    #[test]
    fn compute_attribution_follows_the_mapping() {
        let a = app("a", 2, 4e-6);
        let b = app("b", 2, 4e-6);
        let w = Workload::compose("w", &[&a, &b]).unwrap();
        let spec = CellSpec::with_spes(2);
        // app a on the PPE (4us each), app b on SPE1 (2us each)
        let m = Mapping::new(w.graph(), &spec, vec![PeId(0), PeId(0), PeId(1), PeId(1)]).unwrap();
        let r = evaluate_workload(&w, &spec, &m).unwrap();
        assert!((r.app(AppId(0)).compute_seconds - 8e-6).abs() < 1e-15);
        assert!((r.app(AppId(1)).compute_seconds - 4e-6).abs() < 1e-15);
    }

    #[test]
    fn isolated_period_bounds_the_shared_round() {
        let a = app("a", 2, 4e-6);
        let b = app("b", 2, 4e-6);
        let w = Workload::compose("w", &[&a, &b]).unwrap();
        let spec = CellSpec::with_spes(2);
        // both apps share the PPE: round = 16us, each alone = 8us
        let shared = Mapping::all_on(w.graph(), PeId(0));
        let r = evaluate_workload(&w, &spec, &shared).unwrap();
        for ar in &r.per_app {
            assert!((ar.isolated_period - 8e-6).abs() < 1e-15, "{}", ar.isolated_period);
            assert!(ar.isolated_period <= ar.period);
        }
        // disjoint PEs: each app's isolated bound equals its own period
        // contribution, still <= the composed round (the max of the two)
        let split =
            Mapping::new(w.graph(), &spec, vec![PeId(0), PeId(0), PeId(1), PeId(1)]).unwrap();
        let r = evaluate_workload(&w, &spec, &split).unwrap();
        assert!((r.app(AppId(0)).isolated_period - 8e-6).abs() < 1e-15);
        assert!((r.app(AppId(1)).isolated_period - 4e-6).abs() < 1e-15);
        assert!((r.aggregate.period - 8e-6).abs() < 1e-15);
    }

    #[test]
    fn workload_report_surfaces_violations() {
        use cellstream_platform::{ByteSize, CellSpecBuilder};
        let spec = CellSpecBuilder::default()
            .spes(1)
            .local_store(ByteSize::kib(128))
            .code_size(ByteSize::kib(64))
            .build()
            .unwrap();
        let mut g = StreamGraph::builder("fat");
        let s = g.add_task(TaskSpec::new("s").uniform_cost(1e-6));
        let t = g.add_task(TaskSpec::new("t").uniform_cost(1e-6));
        g.add_edge(s, t, 64.0 * 1024.0).unwrap();
        let g = g.build().unwrap();
        let w = Workload::compose("w", &[&g]).unwrap();
        let m = Mapping::all_on(w.graph(), PeId(1));
        let r = evaluate_workload(&w, &spec, &m).unwrap();
        assert!(!r.is_feasible());
    }
}
