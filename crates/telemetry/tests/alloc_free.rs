//! Counting-allocator suite: every telemetry **record path is
//! allocation-free** — the guarantee that lets metrics live inside
//! `Service::process_batch` and the pipeline planner thread. Counter
//! adds, gauge stores, histogram records and flight-recorder appends
//! must hit the global allocator **zero** times after construction.
//!
//! Lives in `tests/` (a separate crate) because the library forbids
//! `unsafe`, and wrapping the global allocator needs it. The lexical
//! twin of this suite is the `// check: no-alloc` lint scope in
//! `cellstream-check`, which covers the same functions.

use cellstream_telemetry::{Counter, FlightEvent, FlightRecorder, Gauge, Histogram};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Passes through to [`System`], counting every allocation the **armed
/// thread** makes (arming is thread-local so the libtest harness's own
/// threads cannot pollute the count).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // const-init Cell<bool>: no lazy initialisation and no destructor,
    // so reading it inside the allocator never allocates or re-enters
    static ARMED: Cell<bool> = const { Cell::new(false) };
}

fn armed() -> bool {
    ARMED.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocations the closure performed on this thread.
fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.with(|a| a.set(true));
    f();
    ARMED.with(|a| a.set(false));
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn metric_record_paths_do_not_allocate() {
    let counter = Counter::new();
    let gauge = Gauge::new();
    let hist = Histogram::new();

    let allocs = count_allocs(|| {
        for i in 0..10_000u64 {
            counter.inc();
            counter.add(i);
            gauge.set(i as f64);
            gauge.set_usize(i as usize);
            hist.record(i * 37);
            hist.record_duration(Duration::from_nanos(i));
        }
    });
    assert_eq!(allocs, 0, "metric record paths hit the allocator {allocs} times");
    assert_eq!(counter.get(), 10_000 + 9_999 * 10_000 / 2);
    assert_eq!(hist.snapshot().count, 20_000);
}

#[test]
fn flight_recorder_record_does_not_allocate() {
    let recorder = FlightRecorder::with_capacity(256);

    let allocs = count_allocs(|| {
        for i in 0..10_000u64 {
            recorder.record(FlightEvent {
                kind: "admit",
                verdict: "applied",
                replan_ns: i,
                migration_bytes: i as f64,
                shed: 1,
                stranded: 2,
                queued: 3,
                mask_delta: -1,
                ..FlightEvent::default()
            });
        }
    });
    assert_eq!(allocs, 0, "flight-recorder record hit the allocator {allocs} times");
    assert_eq!(recorder.recorded(), 10_000);
    assert_eq!(recorder.dropped(), 10_000 - 256);
}
