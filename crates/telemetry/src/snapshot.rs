//! Exposition snapshots: a point-in-time bag of labelled samples,
//! rendered as Prometheus-style text or JSON.
//!
//! A [`Snapshot`] is built by whoever owns the metrics (the `Service`,
//! the `Coordinator`), so this module knows nothing about the serving
//! stack — it only knows names, labels and values. Histograms are
//! exposed in the Prometheus *summary* shape (`quantile="0.5"` /
//! `"0.9"` / `"0.99"` plus `_sum`, `_count` and `_max`), which keeps
//! the text format compact while preserving the tail.
//!
//! Fleet views come from [`Snapshot::merge`]: the cluster coordinator
//! takes every node's snapshot, stamps it with a `node` label, and
//! appends it to its own fleet-level rows; the conservation tests
//! compare the coordinator's own bookkeeping against the per-node sums
//! with [`Snapshot::sum_gauge`].

use crate::metrics::HistogramSnapshot;

/// One sample's value.
#[derive(Clone, Debug)]
pub enum SnapValue {
    /// Monotone total.
    Counter(u64),
    /// Last-write-wins reading.
    Gauge(f64),
    /// Frozen distribution (boxed: a `HistogramSnapshot` carries its
    /// full bucket array, far larger than the scalar variants).
    Histogram(Box<HistogramSnapshot>),
}

/// One named, labelled sample.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Metric name (`cellstream_serve_replan_ns`, ...).
    pub name: String,
    /// Label pairs, e.g. `("app", "audio")` or `("node", "3")`.
    pub labels: Vec<(String, String)>,
    /// The reading.
    pub value: SnapValue,
}

/// A point-in-time set of samples with exposition renderers.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Every sample, in push order.
    pub samples: Vec<Sample>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Snapshot {
        Snapshot::default()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples were pushed.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn push(&mut self, name: &str, labels: &[(&str, &str)], value: SnapValue) {
        self.samples.push(Sample {
            name: name.to_owned(),
            labels: labels.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect(),
            value,
        });
    }

    /// Add a counter sample.
    pub fn push_counter(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        self.push(name, labels, SnapValue::Counter(v));
    }

    /// Add a gauge sample.
    pub fn push_gauge(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.push(name, labels, SnapValue::Gauge(v));
    }

    /// Add a histogram sample.
    pub fn push_histogram(&mut self, name: &str, labels: &[(&str, &str)], h: HistogramSnapshot) {
        self.push(name, labels, SnapValue::Histogram(Box::new(h)));
    }

    /// First counter with this name, any labels.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.samples.iter().find_map(|s| match (&s.value, s.name == name) {
            (SnapValue::Counter(v), true) => Some(*v),
            _ => None,
        })
    }

    /// First gauge with this name, any labels.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.samples.iter().find_map(|s| match (&s.value, s.name == name) {
            (SnapValue::Gauge(v), true) => Some(*v),
            _ => None,
        })
    }

    /// First gauge with this name carrying every given label pair.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples.iter().find_map(|s| {
            let labelled =
                labels.iter().all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v));
            match (&s.value, s.name == name && labelled) {
                (SnapValue::Gauge(g), true) => Some(*g),
                _ => None,
            }
        })
    }

    /// Sum of every gauge with this name across all label sets.
    pub fn sum_gauge(&self, name: &str) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| match &s.value {
                SnapValue::Gauge(v) => *v,
                SnapValue::Counter(v) => *v as f64,
                SnapValue::Histogram(_) => 0.0,
            })
            .sum()
    }

    /// Sum of every counter with this name across all label sets.
    pub fn sum_counter(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| match &s.value {
                SnapValue::Counter(v) => *v,
                _ => 0,
            })
            .sum()
    }

    /// Append every sample of `other`, stamped with an extra label
    /// (e.g. `("node", "3")`) — the fleet-merge primitive.
    pub fn merge(&mut self, other: Snapshot, key: &str, value: &str) {
        for mut s in other.samples {
            if !s.labels.iter().any(|(k, _)| k == key) {
                s.labels.push((key.to_owned(), value.to_owned()));
            }
            self.samples.push(s);
        }
    }

    /// Prometheus-style text exposition.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            match &s.value {
                SnapValue::Counter(v) => {
                    out.push_str(&format!("{}{} {v}\n", s.name, label_str(&s.labels, &[])));
                }
                SnapValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        s.name,
                        label_str(&s.labels, &[]),
                        prom_num(*v)
                    ));
                }
                SnapValue::Histogram(h) => {
                    for q in ["0.5", "0.9", "0.99"] {
                        let p: f64 = 100.0 * q.parse::<f64>().unwrap_or(0.5);
                        out.push_str(&format!(
                            "{}{} {}\n",
                            s.name,
                            label_str(&s.labels, &[("quantile", q)]),
                            h.quantile(p)
                        ));
                    }
                    let plain = label_str(&s.labels, &[]);
                    out.push_str(&format!("{}_sum{plain} {}\n", s.name, h.sum));
                    out.push_str(&format!("{}_count{plain} {}\n", s.name, h.count));
                    out.push_str(&format!("{}_max{plain} {}\n", s.name, h.max));
                }
            }
        }
        out
    }

    /// JSON exposition (non-finite gauges render as `null`).
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .samples
            .iter()
            .map(|s| {
                let labels: Vec<String> = s
                    .labels
                    .iter()
                    .map(|(k, v)| format!("\"{}\": \"{}\"", escape(k), escape(v)))
                    .collect();
                let head = format!(
                    "\"name\": \"{}\", \"labels\": {{{}}}",
                    escape(&s.name),
                    labels.join(", ")
                );
                match &s.value {
                    SnapValue::Counter(v) => {
                        format!("    {{{head}, \"type\": \"counter\", \"value\": {v}}}")
                    }
                    SnapValue::Gauge(v) => {
                        format!("    {{{head}, \"type\": \"gauge\", \"value\": {}}}", json_num(*v))
                    }
                    SnapValue::Histogram(h) => {
                        let buckets: Vec<String> = h
                            .nonzero_buckets()
                            .map(|(floor, count)| format!("[{floor}, {count}]"))
                            .collect();
                        format!(
                            "    {{{head}, \"type\": \"histogram\", \"count\": {}, \"sum\": {}, \
                             \"max\": {}, \"p50\": {}, \"p99\": {}, \"buckets\": [{}]}}",
                            h.count,
                            h.sum,
                            h.max,
                            h.quantile(50.0),
                            h.quantile(99.0),
                            buckets.join(", "),
                        )
                    }
                }
            })
            .collect();
        format!("{{\n  \"samples\": [\n{}\n  ]\n}}\n", rows.join(",\n"))
    }
}

/// Render labels (plus extras) as `{k="v",...}`, or empty when none.
fn label_str(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    let mut pairs: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape(v))).collect();
    pairs.extend(extra.iter().map(|(k, v)| format!("{k}=\"{}\"", escape(v))));
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Escape `"` and `\` for label values and JSON strings.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Prometheus number rendering (`+Inf` is legal there).
fn prom_num(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}

/// JSON number rendering (`null` for non-finite readings).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}
