//! Atomic metric cells: counters, gauges, and log₂-scale histograms.
//!
//! Every record path is lock-free (a single `fetch_add`/`store`) and
//! allocation-free — the `// check: no-alloc` tags below are enforced
//! lexically by `cellstream-check` and at runtime by the
//! counting-allocator suite. Readers take `Acquire` loads; writers that
//! use `Relaxed` justify it inline: the cells are independent monotone
//! accumulators, so no cross-cell ordering is required for a snapshot
//! to be meaningful (it may be torn by at most the events in flight).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter (usable in `static` position).
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    // check: no-alloc
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    // check: no-alloc
    pub fn add(&self, n: u64) {
        // check:allow(atomic-ordering): independent monotone cell — readers only need totals
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }
}

/// A last-write-wins gauge holding an `f64` (stored as bits).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge reading `0.0` (usable in `static` position).
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Set the gauge.
    // check: no-alloc
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Release);
    }

    /// Set the gauge from an integer (exact up to 2⁵³).
    // check: no-alloc
    pub fn set_usize(&self, v: usize) {
        self.set(v as f64);
    }

    /// Current reading.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Acquire))
    }
}

/// Bucket count: values 0–3 get exact buckets, every octave
/// `[2^k, 2^(k+1))` for `k = 2..=63` is split into 4 linear
/// sub-buckets — 252 cells, quantile error bounded by a quarter octave.
pub const HISTOGRAM_BUCKETS: usize = 252;

/// Bucket index for a recorded value.
fn bucket_index(v: u64) -> usize {
    if v < 4 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize; // >= 2
        let sub = ((v >> (exp - 2)) & 3) as usize;
        4 * (exp - 1) + sub
    }
}

/// Inclusive lower bound of bucket `i`.
fn bucket_floor(i: usize) -> u64 {
    if i < 4 {
        i as u64
    } else {
        let exp = i / 4 + 1;
        (((i % 4) as u64) << (exp - 2)) | (1u64 << exp)
    }
}

/// Exclusive upper bound of bucket `i`.
fn bucket_ceil(i: usize) -> u64 {
    if i + 1 >= HISTOGRAM_BUCKETS {
        u64::MAX
    } else {
        bucket_floor(i + 1)
    }
}

/// A fixed-bucket log₂-scale histogram of `u64` samples (typically
/// nanoseconds or event counts). `record()` is a handful of relaxed
/// atomic read-modify-writes — lock-free, allocation-free, and safe to
/// call from any thread.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram (usable in `static` position).
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    // check: no-alloc
    pub fn record(&self, v: u64) {
        // check:allow(atomic-ordering): independent monotone cells — a snapshot may be torn by in-flight events only
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        // check:allow(atomic-ordering): same — count/sum lag a concurrent snapshot by at most the events in flight
        self.count.fetch_add(1, Ordering::Relaxed);
        // check:allow(atomic-ordering): same monotone-cell argument
        self.sum.fetch_add(v, Ordering::Relaxed);
        // check:allow(atomic-ordering): same monotone-cell argument
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a wall-clock duration in nanoseconds.
    // check: no-alloc
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Acquire)
    }

    /// A point-in-time copy of every cell.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, cell) in buckets.iter_mut().zip(&self.buckets) {
            *out = cell.load(Ordering::Acquire);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Acquire),
            sum: self.sum.load(Ordering::Acquire),
            max: self.max.load(Ordering::Acquire),
        }
    }
}

/// A frozen [`Histogram`]: quantiles, mean and max come from here.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    buckets: [u64; HISTOGRAM_BUCKETS],
    /// Samples recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value (exact).
    pub max: u64,
}

impl HistogramSnapshot {
    /// The `p`-th percentile (`p` in 0..=100), nearest-rank with linear
    /// interpolation inside the landing bucket. Returns 0 when empty.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0).clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if rank < seen + c {
                let lo = bucket_floor(i);
                let hi = bucket_ceil(i).min(self.max.max(lo + 1));
                let frac = (rank - seen) as f64 / c as f64;
                return lo + ((hi - lo) as f64 * frac) as u64;
            }
            seen += c;
        }
        self.max
    }

    /// [`Self::quantile`] as a [`Duration`] (samples were nanoseconds).
    pub fn quantile_duration(&self, p: f64) -> Duration {
        Duration::from_nanos(self.quantile(p))
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(inclusive_floor, count)` pairs, in
    /// ascending value order — the exposition shape.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (bucket_floor(i), c))
    }
}

/// Nearest-rank percentile over an **already sorted** slice of
/// durations (`p` in 0..=100) — the one shared quantile helper for code
/// that still holds exact samples. Returns zero on an empty slice.
pub fn percentile_sorted(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((p / 100.0).clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}
