//! Unit tests: bucket geometry, quantile accuracy, recorder window
//! semantics, exposition shape.

use crate::{percentile_sorted, Counter, FlightEvent, FlightRecorder, Gauge, Histogram, Snapshot};
use std::time::Duration;

#[test]
fn counter_and_gauge_round_trip() {
    let c = Counter::new();
    c.inc();
    c.add(41);
    assert_eq!(c.get(), 42);
    let g = Gauge::new();
    assert_eq!(g.get(), 0.0);
    g.set(2.5);
    assert_eq!(g.get(), 2.5);
    g.set_usize(7);
    assert_eq!(g.get(), 7.0);
}

#[test]
fn histogram_buckets_are_exact_below_four_and_quarter_octave_above() {
    let h = Histogram::new();
    for v in [0u64, 1, 2, 3] {
        h.record(v);
    }
    let s = h.snapshot();
    assert_eq!(s.count, 4);
    assert_eq!(s.sum, 6);
    assert_eq!(s.max, 3);
    // a single large value lands in a bucket whose floor is within 25%
    let h = Histogram::new();
    h.record(1000);
    let s = h.snapshot();
    let q = s.quantile(50.0);
    assert!(q <= 1000 && q as f64 >= 1000.0 * 0.75, "q={q}");
}

#[test]
fn histogram_quantiles_track_a_uniform_ramp() {
    let h = Histogram::new();
    for v in 1..=10_000u64 {
        h.record(v);
    }
    let s = h.snapshot();
    for (p, want) in [(50.0, 5_000.0), (90.0, 9_000.0), (99.0, 9_900.0)] {
        let got = s.quantile(p) as f64;
        let err = (got - want).abs() / want;
        assert!(err < 0.15, "p{p}: got {got}, want {want}, err {err:.3}");
    }
    assert_eq!(s.max, 10_000);
    assert!((s.mean() - 5_000.5).abs() < 1.0);
}

#[test]
fn histogram_records_durations_as_nanos() {
    let h = Histogram::new();
    h.record_duration(Duration::from_micros(10));
    let s = h.snapshot();
    assert_eq!(s.count, 1);
    assert_eq!(s.max, 10_000);
}

#[test]
fn percentile_sorted_nearest_rank() {
    let v: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
    assert_eq!(percentile_sorted(&v, 0.0), Duration::from_millis(1));
    assert_eq!(percentile_sorted(&v, 100.0), Duration::from_millis(100));
    assert_eq!(percentile_sorted(&v, 50.0), Duration::from_millis(51));
    assert_eq!(percentile_sorted(&[], 50.0), Duration::ZERO);
}

#[test]
fn recorder_keeps_the_newest_window_and_counts_drops() {
    let r = FlightRecorder::with_capacity(4);
    for i in 0..10u64 {
        r.record(FlightEvent { replan_ns: i, kind: "admit", ..FlightEvent::default() });
    }
    assert_eq!(r.recorded(), 10);
    assert_eq!(r.dropped(), 6);
    let drained = r.drain();
    assert_eq!(drained.len(), 4);
    let replans: Vec<u64> = drained.iter().map(|e| e.replan_ns).collect();
    assert_eq!(replans, vec![6, 7, 8, 9], "oldest → newest of the retained window");
    assert_eq!(drained[0].seq, 6);
    assert_eq!(r.recorded(), 0, "drain resets the sequence");
}

#[test]
fn recorder_under_capacity_drains_everything_in_order() {
    let r = FlightRecorder::default();
    assert_eq!(r.capacity(), 1024);
    for i in 0..5u64 {
        r.record(FlightEvent { migration_bytes: i as f64, ..FlightEvent::default() });
    }
    let drained = r.drain();
    assert_eq!(drained.len(), 5);
    assert_eq!(r.dropped(), 0);
    let total: f64 = drained.iter().map(|e| e.migration_bytes).sum();
    assert_eq!(total, 10.0);
}

#[test]
fn snapshot_getters_sums_and_merge() {
    let mut node0 = Snapshot::new();
    node0.push_gauge("serving", &[], 3.0);
    node0.push_counter("events_total", &[], 7);
    let mut node1 = Snapshot::new();
    node1.push_gauge("serving", &[], 2.0);
    node1.push_counter("events_total", &[], 5);

    let mut fleet = Snapshot::new();
    fleet.push_gauge("fleet_serving", &[], 5.0);
    fleet.merge(node0, "node", "0");
    fleet.merge(node1, "node", "1");

    assert_eq!(fleet.sum_gauge("serving"), 5.0);
    assert_eq!(fleet.sum_counter("events_total"), 12);
    assert_eq!(fleet.gauge("fleet_serving"), Some(5.0));
    assert_eq!(fleet.gauge_with("serving", &[("node", "1")]), Some(2.0));
    assert_eq!(fleet.gauge_with("serving", &[("node", "9")]), None);
}

#[test]
fn prometheus_and_json_expositions_render() {
    let h = Histogram::new();
    for v in [10u64, 20, 30] {
        h.record(v);
    }
    let mut snap = Snapshot::new();
    snap.push_counter("cellstream_events_total", &[("app", "audio")], 3);
    snap.push_gauge("cellstream_period", &[], f64::INFINITY);
    snap.push_histogram("cellstream_replan_ns", &[], h.snapshot());

    let text = snap.to_prometheus();
    assert!(text.contains("cellstream_events_total{app=\"audio\"} 3"), "{text}");
    assert!(text.contains("cellstream_period +Inf"), "{text}");
    assert!(text.contains("cellstream_replan_ns{quantile=\"0.99\"}"), "{text}");
    assert!(text.contains("cellstream_replan_ns_count 3"), "{text}");

    let json = snap.to_json();
    assert!(json.contains("\"type\": \"counter\""), "{json}");
    assert!(json.contains("\"value\": null"), "non-finite gauge must be null: {json}");
    assert!(json.contains("\"buckets\": ["), "{json}");
}
