//! The flight recorder: a bounded ring of structured replan events.
//!
//! Built on the single-writer publish discipline of the model-checked
//! `rt::ring` design — the writer reads its own head counter with
//! `Relaxed` (nobody else advances it) and publishes with `Release`;
//! readers acquire the head before touching slots. The slots themselves
//! are mutexes rather than `UnsafeCell`s, exactly like `rt::ring`'s
//! `MutexSlot`, which keeps the crate `unsafe`-free: the lock is
//! uncontended in the single-writer steady state, and a poisoned slot
//! (a panicking reader mid-copy) degrades to taking the inner value —
//! the record path can never panic or allocate.
//!
//! The ring **overwrites oldest** when full: after a fault storm the
//! recorder holds the last `capacity` events and an exact count of how
//! many were dropped, which is the right trade-off for a black box —
//! the interesting events are the most recent ones.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One structured scheduler event, fixed-size so recording never
/// allocates. Label and verdict are `&'static str` — every caller's
/// event vocabulary is static (`"admit"`, `"pe failed"`, ...).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FlightEvent {
    /// Monotone sequence number, assigned by the recorder.
    pub seq: u64,
    /// Event-kind label (`"admit"`, `"retire"`, `"pe failed"`, ...).
    pub kind: &'static str,
    /// Verdict label (`"applied"`, `"queued"`, `"rejected"`, ...).
    pub verdict: &'static str,
    /// Replan wall time for this event, in nanoseconds.
    pub replan_ns: u64,
    /// Migration traffic this event caused, in bytes.
    pub migration_bytes: f64,
    /// Applications shed (newly stranded) by this event.
    pub shed: u32,
    /// Stranded-ledger size (cluster) or shed-ledger size (single
    /// node) *after* this event.
    pub stranded: u32,
    /// Retry-queue depth after this event.
    pub queued: u32,
    /// Availability-mask change: `-1` a processor failed, `+1` one
    /// returned, `0` no change.
    pub mask_delta: i32,
}

/// A bounded, overwrite-oldest ring of [`FlightEvent`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Mutex<FlightEvent>>,
    head: AtomicU64,
}

impl Default for FlightRecorder {
    /// 1024 slots — comfortably more than any bench storm produces.
    fn default() -> FlightRecorder {
        FlightRecorder::with_capacity(1024)
    }
}

impl FlightRecorder {
    /// A recorder retaining the last `cap` events (`cap` ≥ 1).
    pub fn with_capacity(cap: usize) -> FlightRecorder {
        let cap = cap.max(1);
        let mut slots = Vec::with_capacity(cap);
        slots.resize_with(cap, || Mutex::new(FlightEvent::default()));
        FlightRecorder { slots, head: AtomicU64::new(0) }
    }

    /// How many events the ring retains.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Append one event, overwriting the oldest when full. Single
    /// writer; the slot lock is uncontended unless a drain is racing,
    /// and the path neither allocates nor panics.
    // check: no-alloc
    pub fn record(&self, ev: FlightEvent) {
        // check:allow(atomic-ordering): single writer reads its own head counter
        let i = self.head.load(Ordering::Relaxed);
        let idx = (i % self.slots.len() as u64) as usize;
        let mut slot = match self.slots[idx].lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        *slot = FlightEvent { seq: i, ..ev };
        drop(slot);
        self.head.store(i + 1, Ordering::Release);
    }

    /// Events recorded since construction (or the last drain).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events that fell off the ring (recorded minus retained).
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Take the retained window, oldest → newest, and reset the
    /// sequence counter. Call from a quiesced scheduler (after a storm,
    /// between batches) — a racing writer may tear the newest slot.
    pub fn drain(&self) -> Vec<FlightEvent> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - start) as usize);
        for i in start..head {
            let idx = (i % cap) as usize;
            let slot = match self.slots[idx].lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            out.push(*slot);
        }
        self.head.store(0, Ordering::Release);
        out
    }
}
