//! Observability primitives for the serving stack: lock-free metrics,
//! a bounded replan flight recorder, and exposition snapshots.
//!
//! Three layers, deliberately dependency-free (like `cellstream-check`)
//! so every crate in the workspace can instrument itself without a
//! dependency cycle:
//!
//! * [`Counter`], [`Gauge`] and [`Histogram`] — atomic metric cells
//!   whose record paths are **lock-free and allocation-free** (tagged
//!   `// check: no-alloc` and pinned by the counting-allocator suite in
//!   `tests/alloc_free.rs`), so they can live inside
//!   `Service::process_batch` and the pipeline planner thread. The
//!   histogram uses fixed log₂-scale buckets refined by four linear
//!   sub-buckets per octave: quantile estimates are within ~12% of the
//!   true value with zero allocation on the record path.
//! * [`FlightRecorder`] — a span-style bounded ring of structured
//!   [`FlightEvent`]s (event label, verdict, replan duration, migration
//!   bytes, shed/stranded counts, availability-mask changes). It reuses
//!   the single-writer publish discipline of the model-checked
//!   `rt::ring` (own-counter `Relaxed` read, `Release` publish) with
//!   mutexed slots so the crate stays `unsafe`-free. Drain it after a
//!   fault storm to reconstruct exactly what the scheduler did.
//! * [`Snapshot`] — point-in-time exposition with per-app and per-node
//!   labels, rendered as Prometheus-style text
//!   ([`Snapshot::to_prometheus`]) or JSON ([`Snapshot::to_json`]).
//!   `Cluster::snapshot()` merges per-node snapshots into one fleet
//!   view via [`Snapshot::merge`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod recorder;
mod snapshot;

pub use metrics::{percentile_sorted, Counter, Gauge, Histogram, HistogramSnapshot};
pub use recorder::{FlightEvent, FlightRecorder};
pub use snapshot::{Sample, SnapValue, Snapshot};

#[cfg(test)]
mod tests;
