//! Synthetic kernels: run *any* task graph on the threaded emulator by
//! turning each task's model cost into a calibrated busy-spin.
//!
//! This is how the paper's random DagGen applications were executed on
//! the real hardware — the graphs carry costs, not code. The scale
//! factor exists because model costs are sub-microsecond while busy-wait
//! timers on commodity OSes are only trustworthy above ~1 µs; scaling
//! every cost by the same factor preserves all ratios (and therefore all
//! scheduling behaviour) while keeping the emulation measurable.

use crate::kernels::{Kernel, KernelCtx, SpinKernel, Window};
use cellstream_graph::StreamGraph;
use cellstream_platform::PeKind;
use std::sync::Arc;

/// Build one kernel per task that spins for `scale × w(task, host)`.
///
/// The host kind must be decided per task up front (kernels are pinned
/// to the mapping's PE kind): pass the mapping-derived kind for each
/// task.
pub fn synthetic_kernels(
    g: &StreamGraph,
    host_kind: &[PeKind],
    scale: f64,
) -> Vec<Arc<dyn Kernel>> {
    assert_eq!(host_kind.len(), g.n_tasks(), "one host kind per task");
    assert!(scale > 0.0 && scale.is_finite());
    g.task_ids()
        .map(|t| {
            let w = g.task(t).cost_on(host_kind[t.index()]);
            Arc::new(SpinKernel::new(w * scale)) as Arc<dyn Kernel>
        })
        .collect()
}

/// Convenience: synthetic kernels for a concrete mapping.
pub fn synthetic_kernels_for_mapping(
    g: &StreamGraph,
    spec: &cellstream_platform::CellSpec,
    mapping: &cellstream_core::Mapping,
    scale: f64,
) -> Vec<Arc<dyn Kernel>> {
    let kinds: Vec<PeKind> = g.task_ids().map(|t| spec.kind_of(mapping.pe_of(t))).collect();
    synthetic_kernels(g, &kinds, scale)
}

/// A kernel that counts its invocations (wrap any kernel for tests).
pub struct CountingKernel<K> {
    inner: K,
    /// Number of `process` calls so far.
    pub calls: std::sync::atomic::AtomicU64,
}

impl<K> CountingKernel<K> {
    /// Wrap `inner`.
    pub fn new(inner: K) -> Self {
        CountingKernel { inner, calls: std::sync::atomic::AtomicU64::new(0) }
    }
}

impl<K: Kernel> Kernel for CountingKernel<K> {
    fn process(&self, ctx: &KernelCtx<'_>, inputs: &[Window<'_>], outputs: &mut [&mut [u8]]) {
        // check:allow(atomic-ordering): monotone statistics counter, read
        // only after the engine joins its threads
        self.calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.inner.process(ctx, inputs, outputs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, RtConfig};
    use cellstream_core::Mapping;
    use cellstream_daggen::{chain, CostParams};
    use cellstream_platform::{CellSpec, PeId};

    #[test]
    fn synthetic_kernels_cover_all_tasks() {
        let g = chain("s", 5, &CostParams::default(), 3);
        let kinds = vec![PeKind::Ppe; 5];
        let kernels = synthetic_kernels(&g, &kinds, 10.0);
        assert_eq!(kernels.len(), 5);
    }

    #[test]
    fn synthetic_run_executes_and_scales_with_cost() {
        // one heavy task (10ms total) must dominate wall time
        use cellstream_graph::{StreamGraph, TaskSpec};
        let mut b = StreamGraph::builder("heavy");
        let a = b.add_task(TaskSpec::new("a").uniform_cost(10e-6));
        let z = b.add_task(TaskSpec::new("z").uniform_cost(0.1e-6));
        b.add_edge(a, z, 64.0).unwrap();
        let g = b.build().unwrap();
        let spec = CellSpec::with_spes(1);
        let m = Mapping::new(&g, &spec, vec![PeId(0), PeId(1)]).unwrap();
        let kernels = synthetic_kernels_for_mapping(&g, &spec, &m, 100.0); // 1 ms/instance
        let n = 20;
        let stats =
            run(&g, &spec, &m, &kernels, &RtConfig { n_instances: n, ..Default::default() })
                .unwrap();
        assert!(stats.processed.iter().all(|&c| c == n));
        // 20 instances x 1ms >= 20 ms of busy work on the bottleneck PE
        assert!(stats.wall.as_secs_f64() >= 0.018, "wall {:?}", stats.wall);
    }

    #[test]
    fn counting_kernel_counts() {
        use std::sync::atomic::Ordering;
        let k = CountingKernel::new(SpinKernel::new(0.0));
        let ctx = KernelCtx { instance: 0, task_name: "t", peek: 0 };
        k.process(&ctx, &[], &mut []);
        k.process(&ctx, &[], &mut []);
        assert_eq!(k.calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    #[should_panic(expected = "one host kind per task")]
    fn kind_table_length_checked() {
        let g = chain("s", 3, &CostParams::default(), 1);
        let _ = synthetic_kernels(&g, &[PeKind::Ppe], 1.0);
    }
}
