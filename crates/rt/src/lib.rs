//! Threaded Cell runtime emulator.
//!
//! Where `cellstream-sim` *predicts* performance from the platform model,
//! this crate actually **executes** a mapped streaming application on real
//! OS threads — one thread per modelled processing element — with real
//! byte buffers and real back-pressure. It is the reproduction's
//! counterpart of the paper's §6.1 scheduling framework:
//!
//! * every PE thread runs the Figure 4 state machine: *select a runnable
//!   task → wait for resources → process → signal new data*, alternating
//!   with a communication phase (which, local-store emulation aside,
//!   reduces to ring-buffer bookkeeping in shared memory);
//! * every edge owns a lock-free single-producer/single-consumer ring of
//!   `firstPeriod(dst) − firstPeriod(src)` slots (§4.2 buffer sizing) —
//!   the *peek* window reads `peek+1` consecutive slots;
//! * each SPE's buffers are carved out of a [`LocalStore`] arena of
//!   `256 kB − code` bytes; a mapping whose buffers do not fit is
//!   rejected at initialisation, exactly like the real framework's static
//!   allocation pass;
//! * task bodies are [`Kernel`]s operating on byte slices — synthetic
//!   spinners for calibration, checksum kernels for integrity tests, and
//!   the DSP kernels of `cellstream-apps` for the demo applications.
//!
//! Wall-clock throughput of the emulator depends on the host machine, so
//! tests assert *behavioural* invariants (exactly-once processing, FIFO
//! per edge, peek-window contents, allocator limits) rather than absolute
//! rates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod kernels;
pub mod local_store;
pub mod ring;
pub mod synthetic;

pub use engine::{run, RtConfig, RtError, RunStats};
pub use kernels::{
    ChecksumKernel, ClosureKernel, Kernel, KernelCtx, SpinKernel, VerifyKernel, Window,
};
pub use local_store::{LocalStore, StoreError};
pub use ring::{AtomicCounter, EdgeRing, MutexSlot, RingSlot, SpscRing};
pub use synthetic::{synthetic_kernels, synthetic_kernels_for_mapping};

#[cfg(test)]
mod tests;
