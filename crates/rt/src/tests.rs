//! Behavioural invariants of the threaded runtime.

use crate::engine::{run, RtConfig, RtError};
use crate::kernels::{fnv1a, ChecksumKernel, ClosureKernel, Kernel, VerifyKernel, Window};
use cellstream_core::Mapping;
use cellstream_daggen::{chain, fork_join, CostParams};
use cellstream_graph::{StreamGraph, TaskSpec};
use cellstream_platform::{CellSpec, CellSpecBuilder, PeId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn checksum_kernels(n: usize) -> Vec<Arc<dyn Kernel>> {
    (0..n).map(|_| Arc::new(ChecksumKernel) as Arc<dyn Kernel>).collect()
}

fn spread_mapping(g: &StreamGraph, spec: &CellSpec) -> Mapping {
    let mut assignment = vec![PeId(0); g.n_tasks()];
    for (rank, t) in g.topo_order().iter().enumerate() {
        assignment[t.index()] = spec.pe(rank % spec.n_pes());
    }
    Mapping::new(g, spec, assignment).unwrap()
}

#[test]
fn every_task_processes_every_instance_exactly_once() {
    let g = chain("c", 6, &CostParams::default(), 3);
    let spec = CellSpec::with_spes(3);
    let m = spread_mapping(&g, &spec);
    let stats = run(
        &g,
        &spec,
        &m,
        &checksum_kernels(6),
        &RtConfig { n_instances: 500, ..Default::default() },
    )
    .unwrap();
    assert_eq!(stats.processed, vec![500; 6]);
    assert!(stats.throughput > 0.0);
}

#[test]
fn pipeline_is_a_deterministic_function_of_instance() {
    // source -> mid -> verify-sink; sink recomputes the expected double
    // checksum for every instance: any reorder or corruption breaks it.
    let mut b = StreamGraph::builder("verify");
    let src = b.add_task(TaskSpec::new("src").uniform_cost(1e-7));
    let mid = b.add_task(TaskSpec::new("mid").uniform_cost(1e-7));
    let sink = b.add_task(TaskSpec::new("sink").uniform_cost(1e-7));
    b.add_edge(src, mid, 64.0).unwrap();
    b.add_edge(mid, sink, 64.0).unwrap();
    let g = b.build().unwrap();

    let mismatches = Arc::new(AtomicU64::new(0));
    let expect = {
        move |instance: u64, inputs: &[Window<'_>]| -> bool {
            // src output for instance j: fnv(j) pattern over 64 bytes
            let src_out = |j: u64| -> Vec<u8> {
                let h = fnv1a(j.to_le_bytes()).to_le_bytes();
                (0..64).map(|i| h[i % 8]).collect()
            };
            // mid output: fnv(instance ++ src_out(instance..)) — peek 0
            let mid_out = |j: u64| -> Vec<u8> {
                let mut acc = j.to_le_bytes().to_vec();
                acc.extend_from_slice(&src_out(j));
                let h = fnv1a(acc).to_le_bytes();
                (0..64).map(|i| h[i % 8]).collect()
            };
            inputs.len() == 1
                && inputs[0].instances.len() == 1
                && inputs[0].instances[0] == mid_out(instance).as_slice()
        }
    };
    let kernels: Vec<Arc<dyn Kernel>> = vec![
        Arc::new(ChecksumKernel),
        Arc::new(ChecksumKernel),
        Arc::new(VerifyKernel { mismatches: mismatches.clone(), expect: Box::new(expect) }),
    ];
    let spec = CellSpec::with_spes(2);
    let m = Mapping::new(&g, &spec, vec![PeId(0), PeId(1), PeId(2)]).unwrap();
    let stats = run(&g, &spec, &m, &kernels, &RtConfig { n_instances: 2000, ..Default::default() })
        .unwrap();
    assert_eq!(stats.processed, vec![2000; 3]);
    assert_eq!(mismatches.load(Ordering::Acquire), 0, "pipeline corrupted data");
}

#[test]
fn peek_windows_expose_future_instances() {
    // consumer peeks 2 ahead; kernel checks window contents are the
    // source outputs for instances i, i+1, i+2 (clamped at stream end)
    let mut b = StreamGraph::builder("peeky");
    let src = b.add_task(TaskSpec::new("src").uniform_cost(1e-7));
    let snk = b.add_task(TaskSpec::new("snk").uniform_cost(1e-7).peek(2));
    b.add_edge(src, snk, 16.0).unwrap();
    let g = b.build().unwrap();

    let n: u64 = 300;
    let errors = Arc::new(AtomicU64::new(0));
    let errors2 = errors.clone();
    let check =
        ClosureKernel(move |ctx: &KernelCtx<'_>, inputs: &[Window<'_>], _out: &mut [&mut [u8]]| {
            let i = ctx.instance;
            let expect_len = ((i + 2).min(n - 1) - i + 1) as usize;
            if inputs[0].instances.len() != expect_len {
                errors2.fetch_add(1, Ordering::Relaxed);
                return;
            }
            for (off, slice) in inputs[0].instances.iter().enumerate() {
                let h = fnv1a((i + off as u64).to_le_bytes()).to_le_bytes();
                let expected: Vec<u8> = (0..16).map(|b| h[b % 8]).collect();
                if *slice != expected.as_slice() {
                    errors2.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
    use crate::kernels::KernelCtx;
    let kernels: Vec<Arc<dyn Kernel>> = vec![Arc::new(ChecksumKernel), Arc::new(check)];
    let spec = CellSpec::with_spes(1);
    let m = Mapping::new(&g, &spec, vec![PeId(0), PeId(1)]).unwrap();
    let stats =
        run(&g, &spec, &m, &kernels, &RtConfig { n_instances: n, ..Default::default() }).unwrap();
    assert_eq!(stats.processed, vec![n; 2]);
    assert_eq!(errors.load(Ordering::Acquire), 0, "peek windows wrong");
}

#[test]
fn local_store_overflow_rejected_at_init() {
    let spec = CellSpecBuilder::default()
        .spes(1)
        .local_store(cellstream_platform::ByteSize::kib(80))
        .code_size(cellstream_platform::ByteSize::kib(64))
        .build()
        .unwrap();
    // 10 kB payload, span 2 -> 20 kB per buffer; middle task holds 40 kB;
    // chain of 4 on one SPE: 6 buffers = 120 kB > 16 kB budget
    let mut b = StreamGraph::builder("fat");
    let ids: Vec<_> =
        (0..4).map(|i| b.add_task(TaskSpec::new(format!("t{i}")).uniform_cost(1e-7))).collect();
    for w in ids.windows(2) {
        b.add_edge(w[0], w[1], 10.0 * 1024.0).unwrap();
    }
    let g = b.build().unwrap();
    let m = Mapping::all_on(&g, PeId(1));
    let err = run(&g, &spec, &m, &checksum_kernels(4), &RtConfig::default()).unwrap_err();
    assert!(matches!(err, RtError::Allocation(PeId(1), _)), "{err:?}");
    // the same graph runs fine on the PPE (main memory is unconstrained)
    let ok = run(
        &g,
        &spec,
        &Mapping::all_on(&g, PeId(0)),
        &checksum_kernels(4),
        &RtConfig { n_instances: 50, ..Default::default() },
    );
    assert!(ok.is_ok());
}

#[test]
fn store_accounting_reported() {
    let spec = CellSpec::with_spes(2);
    // The edge-byte draw is seed-dependent and the split mapping must fit
    // both local stores: pick the first seed the verifier accepts instead
    // of hard-coding one (seed 5's buffers overflow SPE 1).
    let (g, m) = (0..64u64)
        .find_map(|seed| {
            let g = chain("c", 3, &CostParams::default(), seed);
            let m = Mapping::new(&g, &spec, vec![PeId(1), PeId(1), PeId(2)]).unwrap();
            cellstream_core::evaluate(&g, &spec, &m)
                .ok()
                .filter(|r| r.is_feasible())
                .map(|_| (g, m))
        })
        .expect("some seed's buffers fit the split mapping");
    let stats = run(
        &g,
        &spec,
        &m,
        &checksum_kernels(3),
        &RtConfig { n_instances: 20, ..Default::default() },
    )
    .unwrap();
    assert_eq!(stats.store_used[0], 0, "PPE reserves nothing");
    assert!(stats.store_used[1] > 0);
    assert!(stats.store_used[1] <= spec.local_store_budget());
}

#[test]
fn fork_join_runs_to_completion_on_many_threads() {
    let g = fork_join("fj", 6, &CostParams::default(), 9);
    let spec = CellSpec::qs22();
    // memory-aware spreading: the wide join task needs the PPE
    let m = cellstream_heuristics::greedy_cpu(&g, &spec);
    let stats = run(
        &g,
        &spec,
        &m,
        &checksum_kernels(g.n_tasks()),
        &RtConfig { n_instances: 400, ..Default::default() },
    )
    .unwrap();
    assert!(stats.processed.iter().all(|&c| c == 400));
}

#[test]
fn kernel_table_must_cover_all_tasks() {
    let g = chain("c", 3, &CostParams::default(), 1);
    let spec = CellSpec::ps3();
    let m = Mapping::all_on(&g, PeId(0));
    let err = run(&g, &spec, &m, &checksum_kernels(2), &RtConfig::default()).unwrap_err();
    assert!(matches!(err, RtError::MissingKernel(_)));
}

#[test]
fn zero_byte_edges_work() {
    // the NP-reduction graphs have data = 0: rings of 0-byte slots
    let mut b = StreamGraph::builder("zero");
    let a = b.add_task(TaskSpec::new("a").uniform_cost(1e-7));
    let z = b.add_task(TaskSpec::new("z").uniform_cost(1e-7));
    b.add_edge(a, z, 0.0).unwrap();
    let g = b.build().unwrap();
    let spec = CellSpec::with_spes(1);
    let m = Mapping::new(&g, &spec, vec![PeId(0), PeId(1)]).unwrap();
    let stats = run(
        &g,
        &spec,
        &m,
        &checksum_kernels(2),
        &RtConfig { n_instances: 100, ..Default::default() },
    )
    .unwrap();
    assert_eq!(stats.processed, vec![100, 100]);
}
