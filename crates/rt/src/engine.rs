//! The multithreaded execution engine: one OS thread per processing
//! element, each running the paper's Figure 4 scheduler loop.

use crate::kernels::{Kernel, KernelCtx, Window};
use crate::local_store::{LocalStore, StoreError};
use crate::ring::EdgeRing;
use cellstream_core::steady::buffers::BufferPlan;
use cellstream_core::Mapping;
use cellstream_graph::{StreamGraph, TaskId};
use cellstream_platform::{CellSpec, PeId};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Engine options.
#[derive(Debug, Clone)]
pub struct RtConfig {
    /// Stream length to execute.
    pub n_instances: u64,
    /// How long an idle PE thread parks before re-polling (it is also
    /// woken eagerly whenever any data is produced or released).
    pub park_timeout: Duration,
}

impl Default for RtConfig {
    fn default() -> Self {
        RtConfig { n_instances: 1000, park_timeout: Duration::from_micros(200) }
    }
}

/// Errors at engine initialisation.
#[derive(Debug, Clone, PartialEq)]
pub enum RtError {
    /// A mapping whose buffers do not fit the local store of an SPE —
    /// the static allocation pass of the real framework fails the same way.
    Allocation(PeId, StoreError),
    /// Structural mapping problem.
    Mapping(String),
    /// Kernel table does not cover every task.
    MissingKernel(TaskId),
}

impl std::fmt::Display for RtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtError::Allocation(pe, e) => write!(f, "{pe}: {e}"),
            RtError::Mapping(m) => write!(f, "{m}"),
            RtError::MissingKernel(t) => write!(f, "no kernel for {t}"),
        }
    }
}

impl std::error::Error for RtError {}

/// Wall-clock statistics of a run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Total wall time.
    pub wall: Duration,
    /// Instances per wall-second at the sinks.
    pub throughput: f64,
    /// Instances processed per task (always `n_instances` on success).
    pub processed: Vec<u64>,
    /// Local-store bytes reserved per PE (0 for PPEs).
    pub store_used: Vec<u64>,
}

/// Execute `g` under `mapping` with one thread per PE.
///
/// `kernels[k]` is the body of task `k`. Blocks until all tasks have
/// processed `config.n_instances` instances.
pub fn run(
    g: &StreamGraph,
    spec: &CellSpec,
    mapping: &Mapping,
    kernels: &[Arc<dyn Kernel>],
    config: &RtConfig,
) -> Result<RunStats, RtError> {
    Mapping::new(g, spec, mapping.assignment().to_vec())
        .map_err(|e| RtError::Mapping(e.to_string()))?;
    if kernels.len() != g.n_tasks() {
        return Err(RtError::MissingKernel(TaskId(kernels.len().min(g.n_tasks()))));
    }
    let n = config.n_instances;
    assert!(n > 0, "run at least one instance");

    // ---- static allocation pass (the paper's initialisation phase) -------
    let plan = BufferPlan::new(g);
    let mut store_used = vec![0u64; spec.n_pes()];
    for pe in spec.spes() {
        let mut store = LocalStore::new(spec.local_store_budget());
        for t in g.task_ids() {
            if mapping.pe_of(t) != pe {
                continue;
            }
            // both in and out buffers are charged to the host (§4.2)
            for &e in g.in_edges(t).iter().chain(g.out_edges(t)) {
                let bytes = plan.for_edge(e).ceil() as u64;
                store
                    .reserve(format!("{}/{}", g.task(t).name, e), bytes)
                    .map_err(|err| RtError::Allocation(pe, err))?;
            }
        }
        store_used[pe.index()] = store.used();
    }

    // ---- shared state ------------------------------------------------------
    let rings: Vec<EdgeRing> = g
        .edges()
        .iter()
        .enumerate()
        .map(|(ei, e)| EdgeRing::new(plan.edge_slots[ei].max(1), e.data_bytes.ceil() as usize))
        .collect();
    let processed: Vec<AtomicU64> = (0..g.n_tasks()).map(|_| AtomicU64::new(0)).collect();
    let progress = (Mutex::new(0u64), Condvar::new());

    let pe_tasks: Vec<Vec<usize>> = {
        let mut v = vec![Vec::new(); spec.n_pes()];
        for &t in g.topo_order() {
            v[mapping.pe_of(t).index()].push(t.index());
        }
        v
    };
    let fp = &plan.first_period;

    let started = Instant::now();
    std::thread::scope(|scope| {
        for pe in spec.pes() {
            let my_tasks = pe_tasks[pe.index()].clone();
            if my_tasks.is_empty() {
                continue;
            }
            let rings = &rings;
            let processed = &processed;
            let progress = &progress;
            let kernels = &kernels;
            let g2 = g;
            scope.spawn(move || {
                pe_loop(g2, &my_tasks, rings, processed, progress, kernels, fp, n, config);
            });
        }
    });
    let wall = started.elapsed();

    let done: Vec<u64> = processed.iter().map(|c| c.load(Ordering::Acquire)).collect();
    Ok(RunStats { wall, throughput: n as f64 / wall.as_secs_f64(), processed: done, store_used })
}

/// The Figure 4 state machine, one instance per iteration:
/// *select a runnable task → process → signal*. The communication phase
/// of the emulator is the ring bookkeeping itself; when nothing is
/// runnable the thread parks on the progress condvar.
#[allow(clippy::too_many_arguments)]
fn pe_loop(
    g: &StreamGraph,
    my_tasks: &[usize],
    rings: &[EdgeRing],
    processed: &[AtomicU64],
    progress: &(Mutex<u64>, Condvar),
    kernels: &[Arc<dyn Kernel>],
    fp: &[u64],
    n: u64,
    config: &RtConfig,
) {
    let mut next: Vec<u64> = vec![0; g.n_tasks()];
    loop {
        // -------- computation phase: select a runnable task ---------------
        let mut candidate: Option<(u64, usize, usize)> = None; // (slot, rank, task)
        let mut all_done = true;
        for (rank, &k) in my_tasks.iter().enumerate() {
            let i = next[k];
            if i >= n {
                continue;
            }
            all_done = false;
            if task_ready(g, k, i, n, rings) {
                let key = (fp[k] + i, rank, k);
                if candidate.is_none_or(|c| (key.0, key.1) < (c.0, c.1)) {
                    candidate = Some(key);
                }
            }
        }
        if all_done {
            return;
        }

        match candidate {
            Some((_, _, k)) => {
                let i = next[k];
                process_instance(g, k, i, n, rings, kernels);
                next[k] = i + 1;
                processed[k].fetch_add(1, Ordering::AcqRel);
                // signal new data
                let (lock, cv) = progress;
                let mut epoch = lock.lock();
                *epoch += 1;
                cv.notify_all();
            }
            None => {
                // -------- communication phase / wait for resources --------
                let (lock, cv) = progress;
                let mut epoch = lock.lock();
                // re-check under the lock to avoid missed wakeups
                let ready_now =
                    my_tasks.iter().any(|&k| next[k] < n && task_ready(g, k, next[k], n, rings));
                if !ready_now {
                    let _ = cv.wait_for(&mut epoch, config.park_timeout);
                }
            }
        }
    }
}

fn task_ready(g: &StreamGraph, k: usize, i: u64, n: u64, rings: &[EdgeRing]) -> bool {
    let peek = g.task(TaskId(k)).peek as u64;
    let last_needed = (i + peek).min(n - 1);
    for &e in g.in_edges(TaskId(k)) {
        if !rings[e.index()].window_ready(last_needed) {
            return false;
        }
    }
    for &e in g.out_edges(TaskId(k)) {
        if !rings[e.index()].can_produce() {
            return false;
        }
    }
    true
}

fn process_instance(
    g: &StreamGraph,
    k: usize,
    i: u64,
    n: u64,
    rings: &[EdgeRing],
    kernels: &[Arc<dyn Kernel>],
) {
    let task = g.task(TaskId(k));
    let peek = task.peek as u64;
    let last_needed = (i + peek).min(n - 1);
    let in_edges = g.in_edges(TaskId(k));
    let out_edges = g.out_edges(TaskId(k));

    // Collect input windows; the nested closure dance keeps all ring
    // guards alive across the kernel call without unsafe.
    let mut input_data: Vec<Vec<Vec<u8>>> = Vec::with_capacity(in_edges.len());
    for &e in in_edges {
        let ring = &rings[e.index()];
        let window = ring.with_window(i, last_needed, |slices| {
            slices.iter().map(|s| s.to_vec()).collect::<Vec<_>>()
        });
        input_data.push(window);
    }
    let windows: Vec<Window<'_>> = input_data
        .iter()
        .map(|w| Window { instances: w.iter().map(|v| v.as_slice()).collect() })
        .collect();

    // Produce outputs in place.
    let mut out_bufs: Vec<Vec<u8>> =
        out_edges.iter().map(|&e| vec![0u8; g.edge(e).data_bytes.ceil() as usize]).collect();
    {
        let mut out_slices: Vec<&mut [u8]> =
            out_bufs.iter_mut().map(|v| v.as_mut_slice()).collect();
        let ctx = KernelCtx { instance: i, task_name: &task.name, peek: task.peek };
        kernels[k].process(&ctx, &windows, &mut out_slices);
    }
    for (&e, buf) in out_edges.iter().zip(&out_bufs) {
        rings[e.index()].produce(|slot| slot.copy_from_slice(buf));
    }
    // release the oldest input instance on every in-edge
    for &e in in_edges {
        rings[e.index()].release(i);
    }
}
