//! SPE local-store accounting.
//!
//! The real framework statically allocates every stream buffer in the
//! 256 kB local store at initialisation. The emulator reproduces that
//! pass: a [`LocalStore`] is a bump allocator over a fixed budget whose
//! allocations must all succeed before any thread starts. (The bytes
//! themselves live in host memory; the *accounting* is what the paper's
//! constraint (1i) is about.)

use std::fmt;

/// Errors from the local-store allocator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The requested allocation does not fit in the remaining budget.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes still free.
        free: u64,
        /// Total budget (`LS − code`).
        budget: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::OutOfMemory { requested, free, budget } => write!(
                f,
                "local store exhausted: requested {requested} B, {free} B free of {budget} B"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// A bump allocator over one SPE's buffer budget.
#[derive(Debug)]
pub struct LocalStore {
    budget: u64,
    used: u64,
    allocations: Vec<(String, u64)>,
}

impl LocalStore {
    /// A store with `budget` bytes available for buffers (`LS − code`).
    pub fn new(budget: u64) -> Self {
        LocalStore { budget, used: 0, allocations: Vec::new() }
    }

    /// Reserve `bytes` for `label`. Fails without side effects when the
    /// budget would be exceeded.
    pub fn reserve(&mut self, label: impl Into<String>, bytes: u64) -> Result<(), StoreError> {
        let free = self.budget - self.used;
        if bytes > free {
            return Err(StoreError::OutOfMemory { requested: bytes, free, budget: self.budget });
        }
        self.used += bytes;
        self.allocations.push((label.into(), bytes));
        Ok(())
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still free.
    pub fn free(&self) -> u64 {
        self.budget - self.used
    }

    /// Total budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// The allocation table (label, bytes), in allocation order.
    pub fn allocations(&self) -> &[(String, u64)] {
        &self.allocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_account() {
        let mut ls = LocalStore::new(1000);
        ls.reserve("a", 400).unwrap();
        ls.reserve("b", 600).unwrap();
        assert_eq!(ls.used(), 1000);
        assert_eq!(ls.free(), 0);
        assert_eq!(ls.allocations().len(), 2);
    }

    #[test]
    fn overflow_rejected_without_side_effects() {
        let mut ls = LocalStore::new(1000);
        ls.reserve("a", 900).unwrap();
        let err = ls.reserve("b", 200).unwrap_err();
        assert_eq!(err, StoreError::OutOfMemory { requested: 200, free: 100, budget: 1000 });
        assert_eq!(ls.used(), 900, "failed reserve must not consume budget");
        ls.reserve("c", 100).unwrap();
    }

    #[test]
    fn zero_sized_reserve_ok() {
        let mut ls = LocalStore::new(10);
        ls.reserve("empty", 0).unwrap();
        assert_eq!(ls.free(), 10);
    }
}
