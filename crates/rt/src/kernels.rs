//! Task bodies for the runtime emulator.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Invocation context passed to every kernel call.
#[derive(Debug, Clone, Copy)]
pub struct KernelCtx<'a> {
    /// The stream instance being processed.
    pub instance: u64,
    /// Name of the task (for diagnostics).
    pub task_name: &'a str,
    /// The task's peek depth (how many future instances each input
    /// window carries beyond the current one).
    pub peek: u32,
}

/// One input edge's peek window: `instances[0]` is the current instance's
/// datum, `instances[p]` the datum `p` instances ahead.
pub struct Window<'a> {
    /// Byte slices, one per visible instance, oldest first.
    pub instances: Vec<&'a [u8]>,
}

/// A task body: transforms the input windows into the output payloads.
///
/// Kernels must be `Send + Sync` (each is called from its host PE's
/// thread; a kernel shared by several tasks may be called concurrently).
pub trait Kernel: Send + Sync {
    /// Process one instance.
    fn process(&self, ctx: &KernelCtx<'_>, inputs: &[Window<'_>], outputs: &mut [&mut [u8]]);
}

/// Busy-spins for a fixed duration — the synthetic workload used to
/// emulate a task with a given `w` cost.
pub struct SpinKernel {
    /// How long one instance takes.
    pub duration: Duration,
}

impl SpinKernel {
    /// Spin for `seconds` per instance.
    pub fn new(seconds: f64) -> Self {
        SpinKernel { duration: Duration::from_secs_f64(seconds.max(0.0)) }
    }
}

impl Kernel for SpinKernel {
    fn process(&self, _ctx: &KernelCtx<'_>, _inputs: &[Window<'_>], outputs: &mut [&mut [u8]]) {
        let start = Instant::now();
        while start.elapsed() < self.duration {
            std::hint::spin_loop();
        }
        // touch outputs so downstream checksums see deterministic bytes
        for out in outputs.iter_mut() {
            if let Some(b) = out.first_mut() {
                *b = b.wrapping_add(1);
            }
        }
    }
}

/// FNV-1a over all visible input bytes plus the instance number, written
/// as a repeating 8-byte pattern to every output. Sources (no inputs)
/// hash just the instance number, so the whole pipeline is a
/// deterministic function of the instance index — which the test-suite
/// exploits to verify FIFO order and peek-window integrity end to end.
pub struct ChecksumKernel;

/// The hash `ChecksumKernel` computes; exposed so tests can predict
/// pipeline outputs.
pub fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl Kernel for ChecksumKernel {
    fn process(&self, ctx: &KernelCtx<'_>, inputs: &[Window<'_>], outputs: &mut [&mut [u8]]) {
        let mut acc = ctx.instance.to_le_bytes().to_vec();
        for w in inputs {
            for slice in &w.instances {
                acc.extend_from_slice(slice);
            }
        }
        let h = fnv1a(acc).to_le_bytes();
        for out in outputs.iter_mut() {
            for (i, b) in out.iter_mut().enumerate() {
                *b = h[i % 8];
            }
        }
    }
}

/// A kernel from a closure.
pub struct ClosureKernel<F>(pub F);

impl<F> Kernel for ClosureKernel<F>
where
    F: Fn(&KernelCtx<'_>, &[Window<'_>], &mut [&mut [u8]]) + Send + Sync,
{
    fn process(&self, ctx: &KernelCtx<'_>, inputs: &[Window<'_>], outputs: &mut [&mut [u8]]) {
        (self.0)(ctx, inputs, outputs)
    }
}

/// A validating sink: recomputes the expected checksum of its inputs and
/// counts mismatches into a shared counter (wall-clock-independent
/// integrity signal for tests).
pub struct VerifyKernel {
    /// Incremented on every instance whose inputs disagree with `expect`.
    pub mismatches: Arc<AtomicU64>,
    /// Expected first-byte of each input window slice, as a function of
    /// the instance index carried by the window slot.
    pub expect: VerifyPredicate,
}

/// Predicate deciding whether an instance's input windows are correct.
pub type VerifyPredicate = Box<dyn Fn(u64, &[Window<'_>]) -> bool + Send + Sync>;

impl Kernel for VerifyKernel {
    fn process(&self, ctx: &KernelCtx<'_>, inputs: &[Window<'_>], outputs: &mut [&mut [u8]]) {
        if !(self.expect)(ctx.instance, inputs) {
            // check:allow(atomic-ordering): monotone statistics counter,
            // read only after the engine joins its threads
            self.mismatches.fetch_add(1, Ordering::Relaxed);
        }
        let _ = outputs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a([]), 0xcbf29ce484222325);
        assert_ne!(fnv1a([1]), fnv1a([2]));
        assert_eq!(fnv1a([1, 2, 3]), fnv1a([1, 2, 3]));
    }

    #[test]
    fn checksum_kernel_writes_deterministic_pattern() {
        let k = ChecksumKernel;
        let ctx = KernelCtx { instance: 5, task_name: "t", peek: 0 };
        let mut out1 = vec![0u8; 16];
        let mut out2 = vec![0u8; 16];
        {
            let mut outs: Vec<&mut [u8]> = vec![&mut out1];
            k.process(&ctx, &[], &mut outs);
        }
        {
            let mut outs: Vec<&mut [u8]> = vec![&mut out2];
            k.process(&ctx, &[], &mut outs);
        }
        assert_eq!(out1, out2);
        assert_eq!(&out1[0..8], &out1[8..16], "8-byte pattern repeats");
    }

    #[test]
    fn checksum_depends_on_instance_and_inputs() {
        let k = ChecksumKernel;
        let mut out_a = vec![0u8; 8];
        let mut out_b = vec![0u8; 8];
        let data = vec![9u8; 4];
        let w = Window { instances: vec![data.as_slice()] };
        {
            let mut outs: Vec<&mut [u8]> = vec![&mut out_a];
            k.process(&KernelCtx { instance: 1, task_name: "t", peek: 0 }, &[w], &mut outs);
        }
        let w2 = Window { instances: vec![data.as_slice()] };
        {
            let mut outs: Vec<&mut [u8]> = vec![&mut out_b];
            k.process(&KernelCtx { instance: 2, task_name: "t", peek: 0 }, &[w2], &mut outs);
        }
        assert_ne!(out_a, out_b);
    }

    #[test]
    fn spin_kernel_takes_time() {
        let k = SpinKernel::new(2e-3);
        let ctx = KernelCtx { instance: 0, task_name: "spin", peek: 0 };
        let start = Instant::now();
        k.process(&ctx, &[], &mut []);
        assert!(start.elapsed() >= Duration::from_millis(2));
    }
}
