//! Single-producer / single-consumer instance rings with peek windows.
//!
//! One ring per edge, `firstPeriod(dst) − firstPeriod(src)` slots of
//! `data_bytes` each (§4.2). The producer thread writes instance `i` into
//! slot `i mod S`; the consumer of a task with peek `p` reads slots
//! `i ..= i+p` at once and releases slot `i` afterwards. Slot reuse is
//! prevented by the produced/consumed counters, so each `Mutex` is
//! uncontended in steady state — it exists to keep the crate free of
//! `unsafe`.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-capacity SPSC ring of byte slots.
#[derive(Debug)]
pub struct EdgeRing {
    slots: Vec<Mutex<Vec<u8>>>,
    produced: AtomicU64,
    consumed: AtomicU64,
    capacity: u64,
}

impl EdgeRing {
    /// A ring of `capacity` slots of `slot_bytes` bytes each.
    pub fn new(capacity: u64, slot_bytes: usize) -> Self {
        assert!(capacity >= 1, "a ring needs at least one slot");
        EdgeRing {
            slots: (0..capacity).map(|_| Mutex::new(vec![0u8; slot_bytes])).collect(),
            produced: AtomicU64::new(0),
            consumed: AtomicU64::new(0),
            capacity,
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Instances produced so far.
    pub fn produced(&self) -> u64 {
        self.produced.load(Ordering::Acquire)
    }

    /// Instances consumed (released) so far.
    pub fn consumed(&self) -> u64 {
        self.consumed.load(Ordering::Acquire)
    }

    /// `true` when the producer may write the next instance.
    pub fn can_produce(&self) -> bool {
        self.produced() - self.consumed() < self.capacity
    }

    /// Write the next instance through `fill` and publish it.
    /// Caller must be the unique producer and must have checked
    /// [`can_produce`](Self::can_produce).
    pub fn produce(&self, fill: impl FnOnce(&mut [u8])) {
        let i = self.produced.load(Ordering::Relaxed);
        assert!(
            i - self.consumed() < self.capacity,
            "produce() without a free slot — back-pressure violated"
        );
        {
            let mut slot = self.slots[(i % self.capacity) as usize].lock();
            fill(&mut slot);
        }
        self.produced.store(i + 1, Ordering::Release);
    }

    /// `true` when instances `i ..= i_last` are all available to read.
    pub fn window_ready(&self, i_last: u64) -> bool {
        self.produced() > i_last
    }

    /// Read instances `first ..= last` (the peek window) through `read`.
    /// The slices appear in instance order.
    pub fn with_window<R>(&self, first: u64, last: u64, read: impl FnOnce(&[&[u8]]) -> R) -> R {
        assert!(last >= first);
        assert!(last - first < self.capacity, "peek window larger than the ring");
        assert!(self.window_ready(last), "window not ready");
        assert!(first >= self.consumed(), "window already released");
        let guards: Vec<_> =
            (first..=last).map(|i| self.slots[(i % self.capacity) as usize].lock()).collect();
        let slices: Vec<&[u8]> = guards.iter().map(|g| g.as_slice()).collect();
        read(&slices)
    }

    /// Release instance `i` (and everything before it), freeing its slot
    /// for the producer. Caller must be the unique consumer.
    pub fn release(&self, i: u64) {
        debug_assert!(i >= self.consumed.load(Ordering::Relaxed));
        self.consumed.store(i + 1, Ordering::Release);
    }
}

/// A bounded single-producer / single-consumer queue of owned items —
/// [`EdgeRing`]'s counter discipline generalised from byte slots to any
/// `T`. The serving layer threads admission/retire/reweight events
/// through one of these between the intake thread and the planner
/// thread; a full ring is the backpressure signal ([`try_push`] hands
/// the item back instead of blocking or dropping).
///
/// The produced/consumed [`AtomicU64`]s carry the synchronisation; slot
/// reuse is impossible while the counters disagree, so each per-slot
/// `Mutex` is uncontended in steady state — it exists, as in
/// [`EdgeRing`], to keep the crate free of `unsafe`. The SPSC contract
/// (one pushing thread, one popping thread) is the caller's to uphold;
/// breaking it cannot corrupt memory, only fairness.
///
/// [`try_push`]: Self::try_push
#[derive(Debug)]
pub struct SpscRing<T> {
    slots: Vec<Mutex<Option<T>>>,
    produced: AtomicU64,
    consumed: AtomicU64,
    capacity: u64,
}

impl<T> SpscRing<T> {
    /// A ring holding up to `capacity` items.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 1, "a ring needs at least one slot");
        SpscRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            produced: AtomicU64::new(0),
            consumed: AtomicU64::new(0),
            capacity: capacity as u64,
        }
    }

    /// Maximum number of items the ring holds.
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Items currently queued (pushed, not yet popped).
    pub fn len(&self) -> usize {
        (self.produced.load(Ordering::Acquire) - self.consumed.load(Ordering::Acquire)) as usize
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when a push would be refused.
    pub fn is_full(&self) -> bool {
        self.len() == self.capacity as usize
    }

    /// Items pushed over the ring's lifetime.
    pub fn pushed(&self) -> u64 {
        self.produced.load(Ordering::Acquire)
    }

    /// Push from the producer side. On a full ring the item comes back
    /// as `Err` — the backpressure signal; the producer decides whether
    /// to spin, yield or shed load.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let i = self.produced.load(Ordering::Relaxed);
        if i - self.consumed.load(Ordering::Acquire) == self.capacity {
            return Err(item);
        }
        *self.slots[(i % self.capacity) as usize].lock() = Some(item);
        self.produced.store(i + 1, Ordering::Release);
        Ok(())
    }

    /// Pop from the consumer side; `None` when the ring is empty.
    pub fn try_pop(&self) -> Option<T> {
        let c = self.consumed.load(Ordering::Relaxed);
        if self.produced.load(Ordering::Acquire) == c {
            return None;
        }
        let item = self.slots[(c % self.capacity) as usize].lock().take();
        self.consumed.store(c + 1, Ordering::Release);
        debug_assert!(item.is_some(), "published slot holds an item");
        item
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produce_consume_round_trip() {
        let ring = EdgeRing::new(3, 8);
        assert!(ring.can_produce());
        ring.produce(|s| s.copy_from_slice(&7u64.to_le_bytes()));
        assert_eq!(ring.produced(), 1);
        assert!(ring.window_ready(0));
        let v = ring.with_window(0, 0, |w| u64::from_le_bytes(w[0].try_into().unwrap()));
        assert_eq!(v, 7);
        ring.release(0);
        assert_eq!(ring.consumed(), 1);
    }

    #[test]
    fn backpressure_blocks_producer() {
        let ring = EdgeRing::new(2, 4);
        ring.produce(|_| {});
        ring.produce(|_| {});
        assert!(!ring.can_produce(), "ring is full");
        ring.release(0);
        assert!(ring.can_produce(), "released slot is reusable");
    }

    #[test]
    fn peek_window_sees_consecutive_instances() {
        let ring = EdgeRing::new(4, 8);
        for i in 0u64..3 {
            ring.produce(|s| s.copy_from_slice(&i.to_le_bytes()));
        }
        assert!(ring.window_ready(2));
        ring.with_window(0, 2, |w| {
            for (k, slice) in w.iter().enumerate() {
                assert_eq!(u64::from_le_bytes((*slice).try_into().unwrap()), k as u64);
            }
        });
    }

    #[test]
    #[should_panic(expected = "back-pressure violated")]
    fn producing_into_full_ring_panics() {
        let ring = EdgeRing::new(1, 1);
        ring.produce(|_| {});
        ring.produce(|_| {});
    }

    #[test]
    #[should_panic(expected = "window not ready")]
    fn early_window_panics() {
        let ring = EdgeRing::new(2, 1);
        ring.with_window(0, 0, |_| ());
    }

    #[test]
    fn spsc_ring_full_and_empty_boundaries() {
        let ring: SpscRing<u32> = SpscRing::with_capacity(2);
        assert!(ring.is_empty());
        assert_eq!(ring.try_pop(), None, "empty ring pops nothing");
        assert_eq!(ring.try_push(1), Ok(()));
        assert_eq!(ring.try_push(2), Ok(()));
        assert!(ring.is_full());
        assert_eq!(ring.try_push(3), Err(3), "full ring hands the item back");
        assert_eq!(ring.try_pop(), Some(1), "FIFO");
        assert_eq!(ring.try_push(3), Ok(()), "freed slot is reusable");
        assert_eq!(ring.try_pop(), Some(2));
        assert_eq!(ring.try_pop(), Some(3));
        assert_eq!(ring.try_pop(), None);
        assert_eq!(ring.len(), 0);
        assert_eq!(ring.pushed(), 3);
    }

    #[test]
    fn spsc_ring_stress_no_lost_or_reordered_items() {
        // a tiny ring forced through many wrap-arounds by two real
        // threads: every item arrives exactly once, in push order, and
        // backpressure refusals never drop anything
        let ring: SpscRing<u64> = SpscRing::with_capacity(3);
        let n = 50_000u64;
        let refusals = AtomicU64::new(0);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let mut next = 0u64;
                while next < n {
                    match ring.try_push(next) {
                        Ok(()) => next += 1,
                        Err(back) => {
                            assert_eq!(back, next, "refused push returns the same item");
                            refusals.fetch_add(1, Ordering::Relaxed);
                            std::hint::spin_loop();
                        }
                    }
                }
            });
            scope.spawn(|| {
                let mut expect = 0u64;
                while expect < n {
                    match ring.try_pop() {
                        Some(v) => {
                            assert_eq!(v, expect, "FIFO order violated");
                            expect += 1;
                        }
                        None => std::hint::spin_loop(),
                    }
                }
            });
        });
        assert!(ring.is_empty());
        assert_eq!(ring.pushed(), n);
        assert!(
            refusals.load(Ordering::Relaxed) > 0,
            "a 3-slot ring under 50k pushes must backpressure at least once"
        );
    }

    #[test]
    fn threaded_smoke() {
        // a real producer/consumer pair pushing 10k instances through a
        // 3-slot ring
        let ring = EdgeRing::new(3, 8);
        let n = 10_000u64;
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let mut i = 0u64;
                while i < n {
                    if ring.can_produce() {
                        ring.produce(|s| s.copy_from_slice(&i.to_le_bytes()));
                        i += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            });
            scope.spawn(|| {
                for i in 0..n {
                    while !ring.window_ready(i) {
                        std::hint::spin_loop();
                    }
                    let v =
                        ring.with_window(i, i, |w| u64::from_le_bytes(w[0].try_into().unwrap()));
                    assert_eq!(v, i, "FIFO order violated");
                    ring.release(i);
                }
            });
        });
        assert_eq!(ring.produced(), n);
        assert_eq!(ring.consumed(), n);
    }
}
