//! Single-producer / single-consumer instance rings with peek windows.
//!
//! One ring per edge, `firstPeriod(dst) − firstPeriod(src)` slots of
//! `data_bytes` each (§4.2). The producer thread writes instance `i` into
//! slot `i mod S`; the consumer of a task with peek `p` reads slots
//! `i ..= i+p` at once and releases slot `i` afterwards. Slot reuse is
//! prevented by the produced/consumed counters, so each `Mutex` is
//! uncontended in steady state — it exists to keep the crate free of
//! `unsafe`.
//!
//! # Memory-ordering contract
//!
//! Both rings hand items across threads through exactly two
//! Release→Acquire pairs, documented here once because the model checker
//! in `cellstream-check` verifies precisely these (see DESIGN.md,
//! "Correctness tooling"):
//!
//! * **Publish pair** — the producer's `produced.store(i + 1, Release)`
//!   synchronises-with the consumer's `produced.load(Acquire)`. The slot
//!   write program-order-precedes the Release store, so any consumer
//!   that observes the incremented count also observes the slot
//!   contents: no *lost publish* (reading a slot before its item
//!   landed).
//! * **Recycle pair** — the consumer's `consumed.store(i + 1, Release)`
//!   synchronises-with the producer's `consumed.load(Acquire)`. The slot
//!   read/take program-order-precedes the Release store, so any producer
//!   that observes the freed count may safely overwrite the slot: no
//!   *slot reuse* (clobbering an item the consumer has not taken).
//!
//! Each side loads **its own** counter with `Relaxed`: the loading
//! thread is that counter's only writer, so it always observes its own
//! latest store and no cross-thread ordering is needed.
//!
//! The counters are generic over [`AtomicCounter`] (and `SpscRing`'s
//! slots over [`RingSlot`]) so `cellstream-check` can substitute a
//! simulated weakly-ordered memory and exhaustively enumerate
//! interleavings of this exact source; normal builds monomorphise to
//! [`AtomicU64`]/[`MutexSlot`] with zero overhead.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// The counter operations the rings need, abstracted so a model checker
/// can substitute a simulated weakly-ordered implementation for the
/// real [`AtomicU64`]. Implementations must make `load` observe the
/// implementation's memory model; the rings only ever use
/// `Relaxed`/`Acquire` loads and `Release` stores.
pub trait AtomicCounter {
    /// Read the counter with the given ordering.
    fn load(&self, order: Ordering) -> u64;
    /// Write the counter with the given ordering.
    fn store(&self, value: u64, order: Ordering);
}

impl AtomicCounter for AtomicU64 {
    #[inline(always)]
    fn load(&self, order: Ordering) -> u64 {
        AtomicU64::load(self, order)
    }

    #[inline(always)]
    fn store(&self, value: u64, order: Ordering) {
        AtomicU64::store(self, value, order)
    }
}

/// One owned-item slot of a [`SpscRing`], abstracted so a model checker
/// can route slot traffic through simulated memory. The shipping
/// implementation is [`MutexSlot`].
pub trait RingSlot<T> {
    /// Store `item` in the slot (the producer side of the publish pair).
    fn put(&self, item: T);
    /// Take the slot's item, leaving it empty (the consumer side).
    fn take(&self) -> Option<T>;
}

/// The default [`RingSlot`]: a mutex-guarded `Option<T>`. The counters
/// already exclude concurrent access to one slot, so the lock is
/// uncontended in steady state — it exists to keep the crate free of
/// `unsafe`.
#[derive(Debug)]
pub struct MutexSlot<T>(Mutex<Option<T>>);

impl<T> MutexSlot<T> {
    /// A fresh, empty slot.
    pub fn empty() -> Self {
        MutexSlot(Mutex::new(None))
    }
}

impl<T> RingSlot<T> for MutexSlot<T> {
    #[inline]
    fn put(&self, item: T) {
        *self.0.lock() = Some(item);
    }

    #[inline]
    fn take(&self) -> Option<T> {
        self.0.lock().take()
    }
}

/// A fixed-capacity SPSC ring of byte slots.
#[derive(Debug)]
pub struct EdgeRing<C = AtomicU64> {
    slots: Vec<Mutex<Vec<u8>>>,
    produced: C,
    consumed: C,
    capacity: u64,
}

impl EdgeRing {
    /// A ring of `capacity` slots of `slot_bytes` bytes each.
    pub fn new(capacity: u64, slot_bytes: usize) -> Self {
        assert!(capacity >= 1, "a ring needs at least one slot");
        EdgeRing {
            slots: (0..capacity).map(|_| Mutex::new(vec![0u8; slot_bytes])).collect(),
            produced: AtomicU64::new(0),
            consumed: AtomicU64::new(0),
            capacity,
        }
    }
}

impl<C: AtomicCounter> EdgeRing<C> {
    /// Number of slots.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Instances produced so far.
    pub fn produced(&self) -> u64 {
        // publish pair (consumer side): see the module docs
        self.produced.load(Ordering::Acquire)
    }

    /// Instances consumed (released) so far.
    pub fn consumed(&self) -> u64 {
        // recycle pair (producer side): see the module docs
        self.consumed.load(Ordering::Acquire)
    }

    /// `true` when the producer may write the next instance.
    pub fn can_produce(&self) -> bool {
        self.produced() - self.consumed() < self.capacity
    }

    /// Write the next instance through `fill` and publish it.
    /// Caller must be the unique producer and must have checked
    /// [`can_produce`](Self::can_produce).
    // check: no-alloc
    pub fn produce(&self, fill: impl FnOnce(&mut [u8])) {
        // own counter, sole writer — no ordering needed
        // check:allow(atomic-ordering): producer reads its own counter
        let i = self.produced.load(Ordering::Relaxed);
        assert!(
            i - self.consumed() < self.capacity,
            "produce() without a free slot — back-pressure violated"
        );
        {
            let mut slot = self.slots[(i % self.capacity) as usize].lock();
            fill(&mut slot);
        }
        // publish pair (producer side): the Release orders the slot
        // write above before the visible count
        self.produced.store(i + 1, Ordering::Release);
    }

    /// `true` when instances `i ..= i_last` are all available to read.
    pub fn window_ready(&self, i_last: u64) -> bool {
        self.produced() > i_last
    }

    /// Read instances `first ..= last` (the peek window) through `read`.
    /// The slices appear in instance order.
    pub fn with_window<R>(&self, first: u64, last: u64, read: impl FnOnce(&[&[u8]]) -> R) -> R {
        assert!(last >= first);
        assert!(last - first < self.capacity, "peek window larger than the ring");
        assert!(self.window_ready(last), "window not ready");
        assert!(first >= self.consumed(), "window already released");
        let guards: Vec<_> =
            (first..=last).map(|i| self.slots[(i % self.capacity) as usize].lock()).collect();
        let slices: Vec<&[u8]> = guards.iter().map(|g| g.as_slice()).collect();
        read(&slices)
    }

    /// Release instance `i` (and everything before it), freeing its slot
    /// for the producer. Caller must be the unique consumer.
    // check: no-alloc
    pub fn release(&self, i: u64) {
        // own counter, sole writer — no ordering needed
        // check:allow(atomic-ordering): consumer reads its own counter
        let c = self.consumed.load(Ordering::Relaxed);
        assert!(i >= c, "release({i}) of an instance already released (consumed = {c})");
        // recycle pair (consumer side): the Release orders the window
        // reads (all program-order earlier) before the freed count
        self.consumed.store(i + 1, Ordering::Release);
    }
}

/// A bounded single-producer / single-consumer queue of owned items —
/// [`EdgeRing`]'s counter discipline generalised from byte slots to any
/// `T`. The serving layer threads admission/retire/reweight events
/// through one of these between the intake thread and the planner
/// thread; a full ring is the backpressure signal ([`try_push`] hands
/// the item back instead of blocking or dropping).
///
/// The produced/consumed counters carry the synchronisation (see the
/// module docs for the two Release→Acquire pairs); slot reuse is
/// impossible while the counters disagree, so each per-slot
/// [`MutexSlot`] is uncontended in steady state — it exists, as in
/// [`EdgeRing`], to keep the crate free of `unsafe`. The SPSC contract
/// (one pushing thread, one popping thread) is the caller's to uphold;
/// breaking it cannot corrupt memory, only fairness.
///
/// The `C`/`S` parameters exist for `cellstream-check`'s interleaving
/// model checker, which runs **this** code against simulated memory;
/// every normal build uses the defaults.
///
/// [`try_push`]: Self::try_push
#[derive(Debug)]
pub struct SpscRing<T, C = AtomicU64, S = MutexSlot<T>> {
    slots: Vec<S>,
    produced: C,
    consumed: C,
    capacity: u64,
    _items: std::marker::PhantomData<fn() -> T>,
}

impl<T> SpscRing<T> {
    /// A ring holding up to `capacity` items.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 1, "a ring needs at least one slot");
        SpscRing::from_parts(
            (0..capacity).map(|_| MutexSlot::empty()).collect(),
            AtomicU64::new(0),
            AtomicU64::new(0),
        )
    }
}

impl<T, C: AtomicCounter, S: RingSlot<T>> SpscRing<T, C, S> {
    /// Assemble a ring from caller-built slots and counters (both
    /// counters must read 0). This is the model checker's entry point —
    /// it injects simulated slots/counters here; normal code uses
    /// [`SpscRing::with_capacity`].
    pub fn from_parts(slots: Vec<S>, produced: C, consumed: C) -> Self {
        assert!(!slots.is_empty(), "a ring needs at least one slot");
        let capacity = slots.len() as u64;
        SpscRing { slots, produced, consumed, capacity, _items: std::marker::PhantomData }
    }

    /// Maximum number of items the ring holds.
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Items currently queued (pushed, not yet popped).
    pub fn len(&self) -> usize {
        (self.produced.load(Ordering::Acquire) - self.consumed.load(Ordering::Acquire)) as usize
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when a push would be refused.
    pub fn is_full(&self) -> bool {
        self.len() == self.capacity as usize
    }

    /// Items pushed over the ring's lifetime.
    pub fn pushed(&self) -> u64 {
        self.produced.load(Ordering::Acquire)
    }

    /// Push from the producer side. On a full ring the item comes back
    /// as `Err` — the backpressure signal; the producer decides whether
    /// to spin, yield or shed load.
    // check: no-alloc
    pub fn try_push(&self, item: T) -> Result<(), T> {
        // own counter, sole writer — no ordering needed
        // check:allow(atomic-ordering): producer reads its own counter
        let i = self.produced.load(Ordering::Relaxed);
        // recycle pair (producer side): the Acquire makes the consumer's
        // slot take visible before we trust the freed count
        if i - self.consumed.load(Ordering::Acquire) == self.capacity {
            return Err(item);
        }
        self.slots[(i % self.capacity) as usize].put(item);
        // publish pair (producer side): the Release orders the put above
        // before the visible count
        self.produced.store(i + 1, Ordering::Release);
        Ok(())
    }

    /// Pop from the consumer side; `None` when the ring is empty.
    // check: no-alloc
    pub fn try_pop(&self) -> Option<T> {
        // own counter, sole writer — no ordering needed
        // check:allow(atomic-ordering): consumer reads its own counter
        let c = self.consumed.load(Ordering::Relaxed);
        // publish pair (consumer side): the Acquire makes the producer's
        // put visible before we trust the published count
        if self.produced.load(Ordering::Acquire) == c {
            return None;
        }
        let item = self.slots[(c % self.capacity) as usize].take();
        // recycle pair (consumer side): the Release orders the take
        // above before the freed count
        self.consumed.store(c + 1, Ordering::Release);
        debug_assert!(item.is_some(), "published slot holds an item");
        item
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produce_consume_round_trip() {
        let ring = EdgeRing::new(3, 8);
        assert!(ring.can_produce());
        ring.produce(|s| s.copy_from_slice(&7u64.to_le_bytes()));
        assert_eq!(ring.produced(), 1);
        assert!(ring.window_ready(0));
        let v = ring.with_window(0, 0, |w| u64::from_le_bytes(w[0].try_into().unwrap()));
        assert_eq!(v, 7);
        ring.release(0);
        assert_eq!(ring.consumed(), 1);
    }

    #[test]
    fn backpressure_blocks_producer() {
        let ring = EdgeRing::new(2, 4);
        ring.produce(|_| {});
        ring.produce(|_| {});
        assert!(!ring.can_produce(), "ring is full");
        ring.release(0);
        assert!(ring.can_produce(), "released slot is reusable");
    }

    #[test]
    fn peek_window_sees_consecutive_instances() {
        let ring = EdgeRing::new(4, 8);
        for i in 0u64..3 {
            ring.produce(|s| s.copy_from_slice(&i.to_le_bytes()));
        }
        assert!(ring.window_ready(2));
        ring.with_window(0, 2, |w| {
            for (k, slice) in w.iter().enumerate() {
                assert_eq!(u64::from_le_bytes((*slice).try_into().unwrap()), k as u64);
            }
        });
    }

    #[test]
    #[should_panic(expected = "back-pressure violated")]
    fn producing_into_full_ring_panics() {
        let ring = EdgeRing::new(1, 1);
        ring.produce(|_| {});
        ring.produce(|_| {});
    }

    #[test]
    #[should_panic(expected = "window not ready")]
    fn early_window_panics() {
        let ring = EdgeRing::new(2, 1);
        ring.with_window(0, 0, |_| ());
    }

    #[test]
    #[should_panic(expected = "already released")]
    fn double_release_panics() {
        let ring = EdgeRing::new(2, 1);
        ring.produce(|_| {});
        ring.release(0);
        ring.release(0);
    }

    #[test]
    fn capacity_one_edge_ring_ping_pong() {
        // the degenerate ring: every produce fills it, every release
        // empties it, and the single slot is rewritten in place each
        // cycle — the wrap point is every instance
        let ring = EdgeRing::new(1, 8);
        for i in 0u64..5 {
            assert!(ring.can_produce(), "instance {i}: empty ring accepts");
            ring.produce(|s| s.copy_from_slice(&i.to_le_bytes()));
            assert!(!ring.can_produce(), "instance {i}: full after one produce");
            assert!(ring.window_ready(i));
            let v = ring.with_window(i, i, |w| u64::from_le_bytes(w[0].try_into().unwrap()));
            assert_eq!(v, i, "instance {i} read back from the reused slot");
            ring.release(i);
            assert!(ring.can_produce(), "instance {i}: empty again after release");
        }
        assert_eq!(ring.produced(), 5);
        assert_eq!(ring.consumed(), 5);
    }

    #[test]
    fn peek_window_at_wrap_point() {
        // a window of two instances that straddles the slot-index wrap:
        // instances 2 and 3 of a 3-slot ring live in slots 2 and 0
        let ring = EdgeRing::new(3, 8);
        for i in 0u64..3 {
            ring.produce(|s| s.copy_from_slice(&i.to_le_bytes()));
        }
        ring.release(0); // frees slot 0 for instance 3
        ring.produce(|s| s.copy_from_slice(&3u64.to_le_bytes()));
        ring.with_window(2, 3, |w| {
            assert_eq!(u64::from_le_bytes(w[0].try_into().unwrap()), 2, "slot 2");
            assert_eq!(u64::from_le_bytes(w[1].try_into().unwrap()), 3, "slot 0, wrapped");
        });
    }

    #[test]
    fn spsc_ring_full_and_empty_boundaries() {
        let ring: SpscRing<u32> = SpscRing::with_capacity(2);
        assert!(ring.is_empty());
        assert_eq!(ring.try_pop(), None, "empty ring pops nothing");
        assert_eq!(ring.try_push(1), Ok(()));
        assert_eq!(ring.try_push(2), Ok(()));
        assert!(ring.is_full());
        assert_eq!(ring.try_push(3), Err(3), "full ring hands the item back");
        assert_eq!(ring.try_pop(), Some(1), "FIFO");
        assert_eq!(ring.try_push(3), Ok(()), "freed slot is reusable");
        assert_eq!(ring.try_pop(), Some(2));
        assert_eq!(ring.try_pop(), Some(3));
        assert_eq!(ring.try_pop(), None);
        assert_eq!(ring.len(), 0);
        assert_eq!(ring.pushed(), 3);
    }

    #[test]
    fn capacity_one_spsc_ring_ping_pong() {
        // full↔empty every operation: the strictest backpressure cycle
        let ring: SpscRing<u64> = SpscRing::with_capacity(1);
        for i in 0u64..5 {
            assert!(ring.is_empty(), "item {i}: starts empty");
            assert_eq!(ring.try_push(i), Ok(()));
            assert!(ring.is_full(), "item {i}: one push fills capacity 1");
            assert_eq!(ring.try_push(99), Err(99), "item {i}: full ring refuses");
            assert_eq!(ring.try_pop(), Some(i), "item {i}: pops in order");
            assert_eq!(ring.try_pop(), None, "item {i}: empty again");
        }
        assert_eq!(ring.pushed(), 5);
    }

    #[test]
    fn spsc_ring_stress_no_lost_or_reordered_items() {
        // a tiny ring forced through many wrap-arounds by two real
        // threads: every item arrives exactly once, in push order, and
        // backpressure refusals never drop anything
        let ring: SpscRing<u64> = SpscRing::with_capacity(3);
        let n = 50_000u64;
        let refusals = AtomicU64::new(0);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let mut next = 0u64;
                while next < n {
                    match ring.try_push(next) {
                        Ok(()) => next += 1,
                        Err(back) => {
                            assert_eq!(back, next, "refused push returns the same item");
                            refusals.fetch_add(1, Ordering::Relaxed);
                            std::hint::spin_loop();
                        }
                    }
                }
            });
            scope.spawn(|| {
                let mut expect = 0u64;
                while expect < n {
                    match ring.try_pop() {
                        Some(v) => {
                            assert_eq!(v, expect, "FIFO order violated");
                            expect += 1;
                        }
                        None => std::hint::spin_loop(),
                    }
                }
            });
        });
        assert!(ring.is_empty());
        assert_eq!(ring.pushed(), n);
        assert!(
            refusals.load(Ordering::Relaxed) > 0,
            "a 3-slot ring under 50k pushes must backpressure at least once"
        );
    }

    #[test]
    fn threaded_smoke() {
        // a real producer/consumer pair pushing 10k instances through a
        // 3-slot ring
        let ring = EdgeRing::new(3, 8);
        let n = 10_000u64;
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let mut i = 0u64;
                while i < n {
                    if ring.can_produce() {
                        ring.produce(|s| s.copy_from_slice(&i.to_le_bytes()));
                        i += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            });
            scope.spawn(|| {
                for i in 0..n {
                    while !ring.window_ready(i) {
                        std::hint::spin_loop();
                    }
                    let v =
                        ring.with_window(i, i, |w| u64::from_le_bytes(w[0].try_into().unwrap()));
                    assert_eq!(v, i, "FIFO order violated");
                    ring.release(i);
                }
            });
        });
        assert_eq!(ring.produced(), n);
        assert_eq!(ring.consumed(), n);
    }
}
