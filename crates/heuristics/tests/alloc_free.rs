//! Counting-allocator suite: the **steady-state repair replan path is
//! allocation-free** (the hot-path guarantee the serving layer builds
//! on). A churn round — carry the incumbent's seats over, drop one
//! application's seats, `repair_in_place` — touches only buffers that
//! already exist: the `EvalState` accumulators, its undo frame, and the
//! caller's partial-assignment scratch. After a warm-up that grows every
//! scratch buffer to its steady capacity, repeated churn rounds must hit
//! the global allocator **zero** times.
//!
//! Lives in `tests/` (a separate crate) because the library forbids
//! `unsafe`, and wrapping the global allocator needs it.

use cellstream_core::EvalState;
use cellstream_graph::{AppInfo, StreamGraph, TaskSpec, Workload};
use cellstream_heuristics::{repair, repair_in_place, LocalSearchOptions};
use cellstream_platform::{CellSpec, PeId};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Passes through to [`System`], counting every allocation the **armed
/// thread** makes. Arming is thread-local: the libtest harness keeps
/// service threads of its own alive during the measurement, and their
/// incidental allocations must not pollute the count. Deallocations are
/// free to happen (dropping a buffer is not a hot-path cost); `alloc`,
/// `alloc_zeroed` and growth `realloc`s count.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // const-init Cell<bool>: no lazy initialisation and no destructor,
    // so reading it inside the allocator never allocates or re-enters
    static ARMED: Cell<bool> = const { Cell::new(false) };
}

fn armed() -> bool {
    ARMED.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocations the closure performed on this thread.
fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.with(|a| a.set(true));
    f();
    ARMED.with(|a| a.set(false));
    ALLOCS.load(Ordering::SeqCst)
}

fn pipeline(name: &str, n: usize) -> StreamGraph {
    let mut b = StreamGraph::builder(name);
    let mut prev = None;
    for i in 0..n {
        let t = b.add_task(TaskSpec::new(format!("t{i}")).ppe_cost(3e-6).spe_cost(1e-6));
        if let Some(p) = prev {
            b.add_edge(p, t, 2048.0).unwrap();
        }
        prev = Some(t);
    }
    b.build().unwrap()
}

/// One churn round's partial: every task keeps its incumbent seat
/// except application `k`, whose tasks must be re-placed — the shape
/// every admit/retire/reweight replan hands the repair planner.
fn churn(state: &EvalState<'_>, apps: &[AppInfo], partial: &mut [Option<PeId>], k: usize) {
    for (slot, &pe) in partial.iter_mut().zip(state.assignment()) {
        *slot = Some(pe);
    }
    for i in apps[k].tasks.clone() {
        partial[i] = None;
    }
}

#[test]
fn steady_state_repair_replans_without_allocating() {
    let spec = CellSpec::qs22();
    let mut b = Workload::builder("mix");
    b.push(&pipeline("a", 4), 1.0).unwrap();
    b.push(&pipeline("b", 5), 2.0).unwrap();
    b.push(&pipeline("c", 3), 1.0).unwrap();
    let w = b.build().unwrap();
    let g = w.graph();
    let n_apps = w.apps().len();

    let opts = LocalSearchOptions { max_rounds: 4, ..LocalSearchOptions::default() };

    // from-scratch seed, then a long-lived state: the serving loop's
    // steady-state posture
    let mut partial: Vec<Option<PeId>> = vec![None; g.n_tasks()];
    let (seed, _) = repair(g, &spec, &partial, &opts);
    let mut state = EvalState::new(g, &spec, &seed).expect("seed is structurally valid");

    // warm-up: grow the undo frame and every scratch buffer to steady
    // capacity, visiting every churn shape the measured loop replays
    for round in 0..2 * n_apps {
        churn(&state, w.apps(), &mut partial, round % n_apps);
        repair_in_place(&mut state, &partial, &opts);
    }

    let allocs = count_allocs(|| {
        for round in 0..3 * n_apps {
            churn(&state, w.apps(), &mut partial, round % n_apps);
            let period = repair_in_place(&mut state, &partial, &opts);
            assert!(period.is_finite());
        }
    });
    assert_eq!(allocs, 0, "steady-state repair hit the allocator {allocs} times");
    assert!(state.is_feasible(), "churn rounds end feasible");
}
