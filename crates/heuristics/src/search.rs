//! Local search over mappings (extension heuristic, paper §7 future work).
//!
//! Steepest-descent on the **incremental** evaluator
//! ([`EvalState`](cellstream_core::EvalState)): repeatedly probe moving
//! any single task to any other PE (and, by default, swapping any two
//! tasks on different PEs), keep the best improving neighbour, stop at a
//! local optimum. Every probe is an O(degree) `score_move` — no mapping
//! clones, no re-validation, no buffer-plan rebuilds — which is what
//! makes the O(K²) swap neighbourhood affordable on paper-scale graphs
//! (graph 2's 94 tasks on a QS22) and lets a wall-clock budget buy
//! orders of magnitude more moves. Infeasible neighbours score `+∞` and
//! are never selected, so starting from a feasible mapping the result
//! stays feasible. Deterministic given a deterministic start.
//!
//! **Plateau descent.** The period is a *maximum* over per-PE
//! occupations, so two co-bottlenecked PEs stall pure steepest descent:
//! no single move lowers both, every neighbour ties. With
//! [`LocalSearchOptions::plateau`] (the default) the search also accepts
//! period-preserving moves that strictly reduce the load-balance
//! potential `Σ_PE occupancy²`, walking along the plateau until a strict
//! improvement opens up. Descent stays monotone in the lexicographic
//! objective (period, potential), so it still terminates and still never
//! worsens the start.

use cellstream_core::scheduler::CancelToken;
use cellstream_core::{evaluate, evaluate_with, Availability, EvalState, Mapping, Move};
use cellstream_graph::StreamGraph;
use cellstream_platform::CellSpec;
use std::time::{Duration, Instant};

/// Options for [`local_search`].
#[derive(Debug, Clone)]
pub struct LocalSearchOptions {
    /// Maximum improving rounds (each round scans all neighbours).
    pub max_rounds: usize,
    /// Also consider swapping pairs of tasks (O(K²) extra probes per
    /// round; the default since the incremental engine made them cheap).
    pub swaps: bool,
    /// Minimum relative improvement to accept a move.
    pub min_gain: f64,
    /// Wall-clock budget: stop after the first round that ends past it.
    /// `None` (the default) runs all `max_rounds`.
    pub budget: Option<Duration>,
    /// Cooperative cancellation, polled between neighbourhood scans of
    /// single tasks — raising it makes the search return its best
    /// mapping so far within one such step. `None` (the default) lets
    /// the scheduler layer fill in the [`PlanContext`] token; see
    /// [`cellstream_core::scheduler::PlanContext::cancel`].
    ///
    /// [`PlanContext`]: cellstream_core::scheduler::PlanContext
    pub cancel: Option<CancelToken>,
    /// Escape period plateaus by accepting equal-period moves that
    /// strictly reduce the `Σ occupancy²` balance potential (see the
    /// module docs). On by default; disable to reproduce pure steepest
    /// descent.
    pub plateau: bool,
    /// First-improvement sweeps instead of steepest descent: walk the
    /// tasks in id order and apply each task's best accepted move
    /// immediately, instead of rescanning the whole neighbourhood per
    /// applied move. `max_rounds` then counts sweeps. Reaches a local
    /// optimum of the same neighbourhood several times faster (many
    /// moves per scan) at slightly different — occasionally worse,
    /// occasionally better — final quality; the online serving layer's
    /// repair path uses it to bound replan latency. Off by default.
    pub sweep: bool,
}

impl Default for LocalSearchOptions {
    fn default() -> Self {
        LocalSearchOptions {
            max_rounds: 64,
            swaps: true,
            min_gain: 1e-9,
            budget: None,
            cancel: None,
            plateau: true,
            sweep: false,
        }
    }
}

/// The plateau tie-break potential: `Σ_PE occupancy²` (finite iff the
/// state is feasible is *not* implied — occupancies are always finite;
/// feasibility is handled by the primary score).
fn balance_potential(state: &EvalState<'_>, spec: &CellSpec) -> f64 {
    spec.pes().map(|pe| state.occupancy(pe) * state.occupancy(pe)).sum()
}

/// Refine `start` by steepest descent. Returns the refined mapping and
/// its period (re-derived with one full [`evaluate`] so the published
/// number is exactly the verifier's, free of incremental drift).
pub fn local_search(
    g: &StreamGraph,
    spec: &CellSpec,
    start: &Mapping,
    opts: &LocalSearchOptions,
) -> (Mapping, f64) {
    let mut state = match EvalState::new(g, spec, start) {
        Ok(s) => s,
        // structurally invalid start: nothing to refine
        Err(_) => return (start.clone(), f64::INFINITY),
    };
    refine_in_place(&mut state, opts);
    let refined = state.mapping();
    let exact = exact_period(g, spec, &refined);
    (refined, exact)
}

/// [`local_search`] on a caller-owned [`EvalState`]: descend from the
/// state's current seats, committing accepted moves into the state, and
/// return the incremental score reached (`+∞` only from an infeasible
/// state no move can fix). The hot-path entry point — no `EvalState`
/// construction, no `Mapping` clone, no final full [`evaluate`]: given a
/// warmed-up state this performs **zero heap allocations** (the
/// counting-allocator suite pins it). Callers that publish a period
/// re-derive it at their boundary; the incremental drift stays below
/// 1e-9 relative (see the `EvalState` docs).
pub fn refine_in_place(state: &mut EvalState<'_>, opts: &LocalSearchOptions) -> f64 {
    let g = state.graph();
    let spec = state.spec();
    let deadline = opts.budget.map(|b| Instant::now() + b);
    // poll through the Option: materialising a default token allocates
    let cancelled = || opts.cancel.as_ref().is_some_and(|c| c.is_cancelled());
    let mut current = state.score();
    let mut current_pot = balance_potential(state, spec);

    // probe = apply → (score, potential) → exact undo
    fn probe(state: &mut EvalState<'_>, spec: &CellSpec, mv: Move, plateau: bool) -> (f64, f64) {
        state.apply(mv);
        let s = state.score();
        let pot = if plateau { balance_potential(state, spec) } else { 0.0 };
        state.undo();
        (s, pot)
    }
    // lexicographic (period, potential): the primary comparison is
    // *exact* — with plateau off this reproduces classic steepest
    // descent move-for-move (ulp-level accumulator differences used to
    // pick winners, and a tolerance here silently rewrites those
    // trajectories); plateau ties are bitwise-equal periods, which
    // moves off non-critical PEs produce naturally
    fn dominates(p: f64, pot: f64, bp: f64, bpot: f64) -> bool {
        if p < bp {
            return true;
        }
        p == bp && pot < bpot * (1.0 - 1e-12)
    }

    // `(p, pot)` is acceptable from `(current, current_pot)`: a strict
    // period improvement, or (with `plateau`) an equal-period move that
    // strictly improves balance.
    let accepts = |p: f64, pot: f64, current: f64, current_pot: f64| -> bool {
        p < current * (1.0 - opts.min_gain)
            || (opts.plateau && p <= current * (1.0 + 1e-12) && pot < current_pot * (1.0 - 1e-9))
    };

    if opts.sweep {
        // first-improvement sweeps: apply each task's best accepted move
        // on the spot — many moves per O(K·n) pass, no full rescan per
        // applied move
        'sweeps: for _ in 0..opts.max_rounds {
            let mut changed = false;
            for t in g.task_ids() {
                if cancelled() {
                    break 'sweeps;
                }
                let from = state.pe_of(t);
                let mut best: Option<(Move, f64, f64)> = None;
                for to in spec.pes() {
                    if to == from {
                        continue;
                    }
                    let mv = Move::Relocate { task: t, to };
                    let (p, pot) = probe(state, spec, mv, opts.plateau);
                    if best.as_ref().is_none_or(|&(_, bp, bpot)| dominates(p, pot, bp, bpot)) {
                        best = Some((mv, p, pot));
                    }
                }
                if let Some((mv, p, pot)) = best {
                    if accepts(p, pot, current, current_pot) {
                        state.apply(mv);
                        (current, current_pot) = (p.min(current), pot);
                        changed = true;
                    }
                }
            }
            // swaps only when a whole relocation sweep came up dry
            if !changed && opts.swaps {
                for a in g.task_ids() {
                    if cancelled() {
                        break 'sweeps;
                    }
                    for b in g.task_ids().skip(a.index() + 1) {
                        if state.pe_of(a) == state.pe_of(b) {
                            continue;
                        }
                        let mv = Move::Swap { a, b };
                        let (p, pot) = probe(state, spec, mv, opts.plateau);
                        if accepts(p, pot, current, current_pot) {
                            state.apply(mv);
                            (current, current_pot) = (p.min(current), pot);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break; // local optimum of the full neighbourhood
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                break;
            }
        }
    } else {
        'rounds: for _ in 0..opts.max_rounds {
            let mut best: Option<(Move, f64, f64)> = None;

            // single-task moves
            for t in g.task_ids() {
                if cancelled() {
                    break 'rounds;
                }
                let from = state.pe_of(t);
                for to in spec.pes() {
                    if to == from {
                        continue;
                    }
                    let mv = Move::Relocate { task: t, to };
                    let (p, pot) = probe(state, spec, mv, opts.plateau);
                    if best.as_ref().is_none_or(|&(_, bp, bpot)| dominates(p, pot, bp, bpot)) {
                        best = Some((mv, p, pot));
                    }
                }
            }

            // pairwise swaps: steepest descent scans the full
            // neighbourhood every round — relocation-first staging lives
            // in sweep mode only (skipping the swap scan mid-descent
            // measurably degrades the classic search's final quality)
            if opts.swaps {
                for a in g.task_ids() {
                    if cancelled() {
                        break 'rounds;
                    }
                    for b in g.task_ids().skip(a.index() + 1) {
                        if state.pe_of(a) == state.pe_of(b) {
                            continue;
                        }
                        let mv = Move::Swap { a, b };
                        let (p, pot) = probe(state, spec, mv, opts.plateau);
                        if best.as_ref().is_none_or(|&(_, bp, bpot)| dominates(p, pot, bp, bpot)) {
                            best = Some((mv, p, pot));
                        }
                    }
                }
            }

            match best {
                Some((mv, p, pot)) if accepts(p, pot, current, current_pot) => {
                    state.apply(mv);
                    (current, current_pot) = (p.min(current), pot);
                }
                _ => break, // local optimum (in period *and* balance)
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                break;
            }
        }
    }
    state.score()
}

/// The full verifier's verdict on a mapping: feasible period or `+∞`.
pub(crate) fn exact_period(g: &StreamGraph, spec: &CellSpec, m: &Mapping) -> f64 {
    match evaluate(g, spec, m) {
        Ok(r) if r.is_feasible() => r.period,
        _ => f64::INFINITY,
    }
}

/// [`exact_period`] against live capacity: degraded PEs slow their
/// tasks and any seat on a dead PE reads as infeasible (`+∞`).
pub(crate) fn exact_period_with(
    g: &StreamGraph,
    spec: &CellSpec,
    avail: &Availability,
    m: &Mapping,
) -> f64 {
    match evaluate_with(g, spec, avail, m) {
        Ok(r) if r.is_feasible() => r.period,
        _ => f64::INFINITY,
    }
}

/// Run local search from several starts (e.g. both greedies and PPE-only)
/// and keep the best. The usual entry point for "the best heuristic
/// answer without the MILP". A budget in `opts` applies per start.
pub fn multi_start(
    g: &StreamGraph,
    spec: &CellSpec,
    starts: &[Mapping],
    opts: &LocalSearchOptions,
) -> (Mapping, f64) {
    assert!(!starts.is_empty(), "need at least one start");
    starts
        .iter()
        .map(|s| local_search(g, spec, s, opts))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("at least one start")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellstream_daggen::{chain, CostParams};
    use cellstream_platform::PeId;

    #[test]
    fn search_never_worsens() {
        let g = chain("c", 8, &CostParams::default(), 21);
        let spec = CellSpec::with_spes(3);
        let start = Mapping::all_on(&g, PeId(0));
        let start_period = exact_period(&g, &spec, &start);
        let (refined, period) = local_search(&g, &spec, &start, &LocalSearchOptions::default());
        assert!(period <= start_period);
        assert!(exact_period(&g, &spec, &refined) == period);
    }

    #[test]
    fn search_improves_ppe_only_on_offloadable_work() {
        // chain with SPE-friendly tasks: moving anything off the PPE helps
        let g = chain("c", 6, &CostParams::default(), 4);
        let spec = CellSpec::with_spes(4);
        let start = Mapping::all_on(&g, PeId(0));
        let (_, period) = local_search(&g, &spec, &start, &LocalSearchOptions::default());
        let ppe_period = exact_period(&g, &spec, &start);
        assert!(
            period < ppe_period,
            "local search should offload something: {period} vs {ppe_period}"
        );
    }

    #[test]
    fn swaps_are_the_default_and_extend_the_neighbourhood() {
        assert!(LocalSearchOptions::default().swaps, "swaps are the default neighbourhood");
        let g = chain("c", 8, &CostParams::default(), 31);
        let spec = CellSpec::with_spes(2);
        let start = Mapping::all_on(&g, PeId(0));
        let (_, no_swap) = local_search(
            &g,
            &spec,
            &start,
            &LocalSearchOptions { swaps: false, ..Default::default() },
        );
        let (_, with_swap) = local_search(&g, &spec, &start, &LocalSearchOptions::default());
        assert!(with_swap <= no_swap + 1e-15);
    }

    #[test]
    fn multi_start_takes_the_best() {
        let g = chain("c", 7, &CostParams::default(), 17);
        let spec = CellSpec::with_spes(2);
        let starts = vec![
            Mapping::all_on(&g, PeId(0)),
            crate::greedy::greedy_cpu(&g, &spec),
            crate::greedy::greedy_mem(&g, &spec),
        ];
        let (_, best) = multi_start(&g, &spec, &starts, &LocalSearchOptions::default());
        for s in &starts {
            let (_, single) = local_search(&g, &spec, s, &LocalSearchOptions::default());
            assert!(best <= single + 1e-15);
        }
    }

    #[test]
    fn zero_rounds_returns_start() {
        let g = chain("c", 5, &CostParams::default(), 2);
        let spec = CellSpec::ps3();
        let start = Mapping::all_on(&g, PeId(0));
        let (m, _) = local_search(
            &g,
            &spec,
            &start,
            &LocalSearchOptions { max_rounds: 0, ..Default::default() },
        );
        assert_eq!(m, start);
    }

    #[test]
    fn zero_budget_stops_after_one_round() {
        let g = chain("c", 12, &CostParams::default(), 8);
        let spec = CellSpec::qs22();
        let start = Mapping::all_on(&g, PeId(0));
        let budgeted = LocalSearchOptions { budget: Some(Duration::ZERO), ..Default::default() };
        let (m, p) = local_search(&g, &spec, &start, &budgeted);
        // still does (at most) one full round, and never worsens
        assert!(p <= exact_period(&g, &spec, &start));
        assert_eq!(exact_period(&g, &spec, &m), p);
    }

    #[test]
    fn pre_cancelled_search_returns_the_start_within_one_step() {
        use cellstream_core::scheduler::CancelToken;
        // a graph big enough that one full round is ~10^4 probes: if the
        // cancel flag were only polled per round this would do real work
        let g = chain("c", 48, &CostParams::default(), 7);
        let spec = CellSpec::qs22();
        let start = Mapping::all_on(&g, PeId(0));
        let token = CancelToken::new();
        token.cancel();
        let opts = LocalSearchOptions { cancel: Some(token), ..Default::default() };
        let started = std::time::Instant::now();
        let (m, p) = local_search(&g, &spec, &start, &opts);
        // cancelled before the first single-task scan: no move applied
        assert_eq!(m, start);
        assert_eq!(p, exact_period(&g, &spec, &start));
        // and it returned within (much less than) one search round
        assert!(started.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn cancelling_mid_search_keeps_the_best_so_far() {
        use cellstream_core::scheduler::CancelToken;
        let g = chain("c", 20, &CostParams::default(), 13);
        let spec = CellSpec::qs22();
        let start = Mapping::all_on(&g, PeId(0));
        let token = CancelToken::new();
        let opts = LocalSearchOptions { cancel: Some(token.clone()), ..Default::default() };
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            token.cancel();
        });
        let (m, p) = local_search(&g, &spec, &start, &opts);
        canceller.join().unwrap();
        // whatever was reached is valid, feasible and never worse
        assert!(p <= exact_period(&g, &spec, &start));
        assert_eq!(exact_period(&g, &spec, &m), p);
    }

    #[test]
    fn refined_period_is_the_full_evaluators() {
        // the returned period must be bit-identical to a fresh evaluate()
        let g = chain("c", 20, &CostParams::default(), 77);
        let spec = CellSpec::qs22();
        let (m, p) =
            local_search(&g, &spec, &Mapping::all_on(&g, PeId(0)), &LocalSearchOptions::default());
        let r = evaluate(&g, &spec, &m).unwrap();
        assert!(r.is_feasible());
        assert_eq!(r.period, p);
    }
}
