//! Local search over mappings (extension heuristic, paper §7 future work).
//!
//! Steepest-descent on the exact evaluator: repeatedly try moving any
//! single task to any other PE (and optionally swapping two tasks), keep
//! the best improving neighbour, stop at a local optimum. Infeasible
//! neighbours are discarded, so starting from a feasible mapping the
//! result stays feasible. Deterministic given a deterministic start.

use cellstream_core::{evaluate, Mapping};
use cellstream_graph::StreamGraph;
use cellstream_platform::CellSpec;

/// Options for [`local_search`].
#[derive(Debug, Clone)]
pub struct LocalSearchOptions {
    /// Maximum improving rounds (each round scans all neighbours).
    pub max_rounds: usize,
    /// Also consider swapping pairs of tasks (O(K²·n) per round instead
    /// of O(K·n)).
    pub swaps: bool,
    /// Minimum relative improvement to accept a move.
    pub min_gain: f64,
}

impl Default for LocalSearchOptions {
    fn default() -> Self {
        LocalSearchOptions { max_rounds: 64, swaps: false, min_gain: 1e-9 }
    }
}

/// Refine `start` by steepest descent. Returns the refined mapping and
/// its period.
pub fn local_search(
    g: &StreamGraph,
    spec: &CellSpec,
    start: &Mapping,
    opts: &LocalSearchOptions,
) -> (Mapping, f64) {
    let mut current = start.clone();
    let mut current_period = period_or_inf(g, spec, &current);

    for _ in 0..opts.max_rounds {
        let mut best: Option<(Mapping, f64)> = None;

        // single-task moves
        for t in g.task_ids() {
            let from = current.pe_of(t);
            for to in spec.pes() {
                if to == from {
                    continue;
                }
                let cand = current.with_move(t, to);
                let p = period_or_inf(g, spec, &cand);
                if p < best.as_ref().map_or(current_period, |(_, bp)| *bp) {
                    best = Some((cand, p));
                }
            }
        }

        // pairwise swaps
        if opts.swaps {
            for a in g.task_ids() {
                for b in g.task_ids().skip(a.index() + 1) {
                    let (pa, pb) = (current.pe_of(a), current.pe_of(b));
                    if pa == pb {
                        continue;
                    }
                    let cand = current.with_move(a, pb).with_move(b, pa);
                    let p = period_or_inf(g, spec, &cand);
                    if p < best.as_ref().map_or(current_period, |(_, bp)| *bp) {
                        best = Some((cand, p));
                    }
                }
            }
        }

        match best {
            Some((cand, p)) if p < current_period * (1.0 - opts.min_gain) => {
                current = cand;
                current_period = p;
            }
            _ => break, // local optimum
        }
    }
    (current, current_period)
}

fn period_or_inf(g: &StreamGraph, spec: &CellSpec, m: &Mapping) -> f64 {
    match evaluate(g, spec, m) {
        Ok(r) if r.is_feasible() => r.period,
        _ => f64::INFINITY,
    }
}

/// Run local search from several starts (e.g. both greedies and PPE-only)
/// and keep the best. The usual entry point for "the best heuristic
/// answer without the MILP".
pub fn multi_start(
    g: &StreamGraph,
    spec: &CellSpec,
    starts: &[Mapping],
    opts: &LocalSearchOptions,
) -> (Mapping, f64) {
    assert!(!starts.is_empty(), "need at least one start");
    starts
        .iter()
        .map(|s| local_search(g, spec, s, opts))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("periods are comparable"))
        .expect("at least one start")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellstream_daggen::{chain, CostParams};
    use cellstream_platform::PeId;

    #[test]
    fn search_never_worsens() {
        let g = chain("c", 8, &CostParams::default(), 21);
        let spec = CellSpec::with_spes(3);
        let start = Mapping::all_on(&g, PeId(0));
        let start_period = period_or_inf(&g, &spec, &start);
        let (refined, period) = local_search(&g, &spec, &start, &LocalSearchOptions::default());
        assert!(period <= start_period);
        assert!(period_or_inf(&g, &spec, &refined) == period);
    }

    #[test]
    fn search_improves_ppe_only_on_offloadable_work() {
        // chain with SPE-friendly tasks: moving anything off the PPE helps
        let g = chain("c", 6, &CostParams::default(), 4);
        let spec = CellSpec::with_spes(4);
        let start = Mapping::all_on(&g, PeId(0));
        let (_, period) = local_search(&g, &spec, &start, &LocalSearchOptions::default());
        let ppe_period = period_or_inf(&g, &spec, &start);
        assert!(
            period < ppe_period,
            "local search should offload something: {period} vs {ppe_period}"
        );
    }

    #[test]
    fn swaps_extend_the_neighbourhood() {
        let g = chain("c", 8, &CostParams::default(), 31);
        let spec = CellSpec::with_spes(2);
        let start = Mapping::all_on(&g, PeId(0));
        let (_, no_swap) = local_search(&g, &spec, &start, &LocalSearchOptions::default());
        let (_, with_swap) = local_search(
            &g,
            &spec,
            &start,
            &LocalSearchOptions { swaps: true, ..Default::default() },
        );
        assert!(with_swap <= no_swap + 1e-15);
    }

    #[test]
    fn multi_start_takes_the_best() {
        let g = chain("c", 7, &CostParams::default(), 17);
        let spec = CellSpec::with_spes(2);
        let starts = vec![
            Mapping::all_on(&g, PeId(0)),
            crate::greedy::greedy_cpu(&g, &spec),
            crate::greedy::greedy_mem(&g, &spec),
        ];
        let (_, best) = multi_start(&g, &spec, &starts, &LocalSearchOptions::default());
        for s in &starts {
            let (_, single) = local_search(&g, &spec, s, &LocalSearchOptions::default());
            assert!(best <= single + 1e-15);
        }
    }

    #[test]
    fn zero_rounds_returns_start() {
        let g = chain("c", 5, &CostParams::default(), 2);
        let spec = CellSpec::ps3();
        let start = Mapping::all_on(&g, PeId(0));
        let (m, _) = local_search(
            &g,
            &spec,
            &start,
            &LocalSearchOptions { max_rounds: 0, ..Default::default() },
        );
        assert_eq!(m, start);
    }
}
