//! Simulated annealing over mappings — the heaviest of the extension
//! heuristics the paper's conclusion asks for ("design involved mapping
//! heuristics which approach the optimal throughput").
//!
//! Standard Metropolis scheme on the **incremental** evaluator
//! ([`EvalState`](cellstream_core::EvalState)): random single-task
//! moves are probed with an O(degree) `score_move`, accepted moves are
//! re-applied in place — no mapping clones, no full re-evaluations
//! inside the walk. Improvements are always accepted, regressions with
//! probability `exp(-Δ/temperature)`, geometric cooling. Infeasible
//! neighbours are rejected outright (the feasible region is connected
//! through the PPE, which accepts every task, so rejection cannot strand
//! the walk). Deterministic under a fixed seed.

use cellstream_core::scheduler::CancelToken;
use cellstream_core::{evaluate, EvalState, Mapping, Move};
use cellstream_graph::{StreamGraph, TaskId};
use cellstream_platform::CellSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Annealing parameters.
#[derive(Debug, Clone)]
pub struct AnnealingOptions {
    /// Monte-Carlo steps.
    pub steps: u32,
    /// Initial temperature as a fraction of the starting period
    /// (temperature is in period units).
    pub t0_fraction: f64,
    /// Geometric cooling factor applied every `steps/100` steps.
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
    /// Wall-clock budget: the walk stops early once it is exhausted
    /// (checked every 128 steps). `None` (the default) runs all `steps`.
    pub budget: Option<Duration>,
    /// Cooperative cancellation, polled every Monte-Carlo step: raising
    /// it ends the walk at once, returning the best mapping seen.
    /// `None` lets the scheduler layer fill in the `PlanContext` token.
    pub cancel: Option<CancelToken>,
}

impl Default for AnnealingOptions {
    fn default() -> Self {
        AnnealingOptions {
            steps: 4000,
            t0_fraction: 0.2,
            cooling: 0.93,
            seed: 0xA11EA1,
            budget: None,
            cancel: None,
        }
    }
}

/// Anneal from `start`; returns the best feasible mapping seen and its
/// period (re-derived with one full [`evaluate`], so the published
/// number is exactly the verifier's). If `start` is infeasible the walk
/// begins from PPE-only.
pub fn anneal(
    g: &StreamGraph,
    spec: &CellSpec,
    start: &Mapping,
    opts: &AnnealingOptions,
) -> (Mapping, f64) {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let ppe_only = Mapping::all_on(g, spec.pe(0));
    let mut state = match EvalState::new(g, spec, start) {
        Ok(s) => s,
        Err(_) => EvalState::new(g, spec, &ppe_only).expect("PPE-only is structurally valid"),
    };
    if !state.is_feasible() {
        state.reset(&ppe_only).expect("PPE-only is structurally valid");
        debug_assert!(state.is_feasible(), "PPE-only is always feasible");
    }
    let mut current_p = state.period();
    let (mut best, mut best_p) = (state.mapping(), current_p);

    let mut temperature = current_p * opts.t0_fraction;
    let cool_every = (opts.steps / 100).max(1);
    let deadline = opts.budget.map(|b| Instant::now() + b);
    let cancel = opts.cancel.clone().unwrap_or_default();

    for step in 0..opts.steps {
        if cancel.is_cancelled() {
            break;
        }
        if step % 128 == 0 && deadline.is_some_and(|d| Instant::now() >= d) {
            break;
        }
        // neighbour: move one random task to one random other PE
        let t = TaskId(rng.gen_range(0..g.n_tasks()));
        let mut to = spec.pe(rng.gen_range(0..spec.n_pes()));
        if to == state.pe_of(t) {
            to = spec.pe((to.index() + 1) % spec.n_pes());
            if to == state.pe_of(t) {
                continue; // single-PE platform
            }
        }
        let mv = Move::Relocate { task: t, to };
        let cand_p = state.score_move(mv);
        if !cand_p.is_finite() {
            continue; // infeasible neighbour
        }
        let delta = cand_p - current_p;
        let accept =
            delta <= 0.0 || (temperature > 0.0 && rng.gen::<f64>() < (-delta / temperature).exp());
        if accept {
            state.apply(mv);
            current_p = cand_p;
            if current_p < best_p {
                best = state.mapping();
                best_p = current_p;
            }
        }
        if step % cool_every == cool_every - 1 {
            temperature *= opts.cooling;
        }
    }
    // publish the exact verifier period of the best mapping seen
    let exact = evaluate(g, spec, &best).expect("best mapping is valid").period;
    (best, exact)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellstream_daggen::{chain, generate, CostParams, DagGenParams};
    use cellstream_platform::PeId;

    #[test]
    fn anneal_never_returns_worse_than_start() {
        let g = chain("a", 10, &CostParams::default(), 41);
        let spec = CellSpec::ps3();
        let start = Mapping::all_on(&g, PeId(0));
        let start_p = evaluate(&g, &spec, &start).unwrap().period;
        let (m, p) = anneal(&g, &spec, &start, &AnnealingOptions::default());
        assert!(p <= start_p + 1e-15);
        let check = evaluate(&g, &spec, &m).unwrap();
        assert!(check.is_feasible());
        assert!((check.period - p).abs() < 1e-15);
    }

    #[test]
    fn anneal_beats_plain_greedy_on_average() {
        // not a tautology: annealing explores; greedy commits. Averaged
        // over seeds it must win (or tie) on offloadable chains.
        let spec = CellSpec::qs22();
        let mut wins = 0;
        let mut ties = 0;
        for seed in 0..6u64 {
            let g = generate(
                "a",
                &DagGenParams {
                    n: 20,
                    fat: 0.5,
                    regular: 0.5,
                    density: 0.2,
                    jump: 2,
                    costs: CostParams::default(),
                },
                seed,
            )
            .unwrap();
            let greedy = crate::greedy_cpu(&g, &spec);
            let greedy_p = evaluate(&g, &spec, &greedy).unwrap().period;
            let (_, p) = anneal(&g, &spec, &greedy, &AnnealingOptions::default());
            if p < greedy_p - 1e-15 {
                wins += 1;
            } else if (p - greedy_p).abs() <= 1e-15 {
                ties += 1;
            }
        }
        assert!(wins + ties >= 5, "annealing should rarely lose: {wins} wins, {ties} ties");
        assert!(wins >= 2, "annealing should actually improve sometimes: {wins} wins");
    }

    #[test]
    fn deterministic_under_seed() {
        let g = chain("a", 8, &CostParams::default(), 13);
        let spec = CellSpec::with_spes(3);
        let start = Mapping::all_on(&g, PeId(0));
        let a = anneal(&g, &spec, &start, &AnnealingOptions::default());
        let b = anneal(&g, &spec, &start, &AnnealingOptions::default());
        assert_eq!(a.0, b.0);
        let c = anneal(&g, &spec, &start, &AnnealingOptions { seed: 9, ..Default::default() });
        // different seed may differ (not asserted equal)
        let _ = c;
    }

    #[test]
    fn infeasible_start_falls_back_to_ppe() {
        use cellstream_graph::{StreamGraph, TaskSpec};
        let mut b = StreamGraph::builder("fat");
        let a = b.add_task(TaskSpec::new("a").uniform_cost(1e-6));
        let z = b.add_task(TaskSpec::new("z").uniform_cost(1e-6));
        b.add_edge(a, z, 500.0 * 1024.0).unwrap(); // can never sit on an SPE
        let g = b.build().unwrap();
        let spec = CellSpec::with_spes(2);
        let bad = Mapping::all_on(&g, PeId(1)); // infeasible: SPE overflow
        let (m, _) =
            anneal(&g, &spec, &bad, &AnnealingOptions { steps: 200, ..Default::default() });
        let r = evaluate(&g, &spec, &m).unwrap();
        assert!(r.is_feasible());
    }

    #[test]
    fn pre_cancelled_anneal_returns_the_start() {
        use cellstream_core::scheduler::CancelToken;
        let g = chain("a", 12, &CostParams::default(), 3);
        let spec = CellSpec::ps3();
        let start = Mapping::all_on(&g, PeId(0));
        let token = CancelToken::new();
        token.cancel();
        let opts = AnnealingOptions {
            steps: 50_000_000, // would take minutes uncancelled
            cancel: Some(token),
            ..Default::default()
        };
        let started = std::time::Instant::now();
        let (m, p) = anneal(&g, &spec, &start, &opts);
        assert_eq!(m, start, "no step taken after cancellation");
        assert!(started.elapsed() < Duration::from_secs(2));
        let r = evaluate(&g, &spec, &m).unwrap();
        assert!((r.period - p).abs() < 1e-15);
    }

    #[test]
    fn zero_budget_still_returns_a_feasible_mapping() {
        let g = chain("a", 9, &CostParams::default(), 5);
        let spec = CellSpec::ps3();
        let start = Mapping::all_on(&g, PeId(0));
        let opts = AnnealingOptions { budget: Some(Duration::ZERO), ..Default::default() };
        let (m, p) = anneal(&g, &spec, &start, &opts);
        let r = evaluate(&g, &spec, &m).unwrap();
        assert!(r.is_feasible());
        assert!((r.period - p).abs() < 1e-15);
    }
}
