//! The disjoint-SPE-partition baseline for multi-application workloads.
//!
//! The obvious way to run N streaming applications on one Cell is to
//! *partition* it: give each application its own disjoint set of SPEs,
//! schedule each application alone on its slice, and share only the PPE
//! (which hosts the OS and the control thread anyway). This module
//! builds that baseline so co-scheduling (all applications planned
//! jointly on the composed graph, free to share every PE) can be
//! compared against it:
//!
//! * [`partition_mapping`] — plan each application alone on a reduced
//!   platform with its allotted SPE count, then translate the pieces
//!   back onto the full platform's disjoint SPE ranges;
//! * [`best_partition`] — sweep every SPE allocation and keep the one
//!   whose *composed* evaluation (all applications' PPE loads summed,
//!   exactly as the machine would see them) has the smallest maximum
//!   weighted per-application period.
//!
//! Co-scheduling searches a strict superset of the partitioned
//! placements — every partition mapping is a valid mapping of the
//! composed graph — so a co-scheduler seeded with the best partition is
//! never worse than it, and usually strictly better: partitions strand
//! idle SPE cycles inside one application's slice that another
//! application could have used.

use crate::search::{multi_start, LocalSearchOptions};
use cellstream_core::scheduler::{PlanContext, PlanError};
use cellstream_core::workload::{evaluate_workload, WorkloadReport};
use cellstream_core::Mapping;
use cellstream_graph::{AppId, Workload};
use cellstream_platform::{CellSpec, PeId};

/// Build the reduced platform an application sees inside its partition:
/// the full spec's parameters with only `n_spe` SPEs.
fn reduced_spec(spec: &CellSpec, n_spe: usize) -> CellSpec {
    CellSpec::builder()
        .ppes(spec.n_ppe())
        .spes(n_spe)
        .interface_bw(spec.interface_bw())
        .eib_bw(spec.eib_bw())
        .local_store(spec.local_store())
        .code_size(spec.code_size())
        .dma_in_limit(spec.dma_in_limit())
        .dma_ppe_limit(spec.dma_ppe_limit())
        .build()
        .expect("a slice of a valid platform is valid")
}

/// Plan every application alone on its slice of the machine and compose
/// the result: application `i` gets `alloc[i]` SPEs (disjoint,
/// allocated in workload order after the shared PPEs). Each slice is
/// planned with [`multi_start`] local search from the standard starts.
///
/// Errors when `alloc` does not match the application count or
/// over-commits the machine's SPEs.
pub fn partition_mapping(
    w: &Workload,
    spec: &CellSpec,
    alloc: &[usize],
) -> Result<Mapping, PlanError> {
    if alloc.len() != w.n_apps() {
        return Err(PlanError::Unsupported(format!(
            "partition allocates {} slices for {} applications",
            alloc.len(),
            w.n_apps()
        )));
    }
    let total: usize = alloc.iter().sum();
    if total > spec.n_spe() {
        return Err(PlanError::Unsupported(format!(
            "partition allocates {total} SPEs, platform has {}",
            spec.n_spe()
        )));
    }
    // no plateau descent here: each slice is planned in isolation, and
    // balance-motivated moves onto the PPE — period-neutral within the
    // slice — collide once every application's PPE share is summed in
    // the composed evaluation
    let opts = LocalSearchOptions { plateau: false, ..Default::default() };
    let mut assignment = vec![PeId(0); w.graph().n_tasks()];
    let mut spe_base = spec.n_ppe();
    for (i, &n_spe) in alloc.iter().enumerate() {
        let app = AppId(i);
        let sub = w.subgraph(app);
        let slice = reduced_spec(spec, n_spe);
        let starts = vec![
            crate::greedy::greedy_mem(&sub, &slice),
            crate::greedy::greedy_cpu(&sub, &slice),
            crate::comm_aware::comm_aware_greedy(&sub, &slice),
            Mapping::all_on(&sub, PeId(0)),
        ];
        let (local, _) = multi_start(&sub, &slice, &starts, &opts);
        for (k, t) in w.tasks_of(app).enumerate() {
            let pe = local.pe_of(cellstream_graph::TaskId(k));
            assignment[t.index()] = if pe.index() < spec.n_ppe() {
                pe // shared PPEs keep their ids
            } else {
                PeId(spe_base + (pe.index() - spec.n_ppe()))
            };
        }
        spe_base += n_spe;
    }
    Mapping::new(w.graph(), spec, assignment).map_err(PlanError::Mapping)
}

/// Every way to hand `total` SPEs to `parts` applications (compositions
/// of `total` into `parts` non-negative terms, all SPEs handed out).
fn allocations(total: usize, parts: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = vec![0usize; parts];
    fn rec(total: usize, i: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if i == cur.len() - 1 {
            cur[i] = total;
            out.push(cur.clone());
            return;
        }
        for k in 0..=total {
            cur[i] = k;
            rec(total - k, i + 1, cur, out);
        }
    }
    rec(total, 0, &mut cur, &mut out);
    out
}

/// The best disjoint-SPE-partition baseline: sweep every SPE allocation,
/// evaluate each partitioned placement on the **composed** workload
/// (shared-PPE loads summed), and keep the allocation with the smallest
/// maximum weighted per-application period. Returns the winning
/// mapping, its allocation, and its composed evaluation.
///
/// The sweep enumerates `C(n_spe + N − 1, N − 1)` allocations; it
/// refuses workloads where that exceeds 10 000 (at QS22 scale that is
/// ≥ 6 concurrent applications — partition baselines stop being
/// interesting well before that). `ctx.budget` is honoured as a soft
/// deadline *between* allocations: balanced splits are tried first, at
/// least one allocation is always evaluated, and the sweep stops early
/// once the budget is spent (each slice plan itself uses the default
/// multi-start options).
pub fn best_partition(
    w: &Workload,
    spec: &CellSpec,
    ctx: &PlanContext,
) -> Result<(Mapping, Vec<usize>, WorkloadReport), PlanError> {
    let mut allocs = allocations(spec.n_spe(), w.n_apps());
    if allocs.len() > 10_000 {
        return Err(PlanError::Unsupported(format!(
            "partition sweep would try {} allocations",
            allocs.len()
        )));
    }
    // balanced splits first, so a budget-truncated sweep still compares
    // against the allocations a human would try (ties keep the
    // enumeration order — deterministic)
    let imbalance = |a: &[usize]| {
        let (lo, hi) = (a.iter().min().copied().unwrap_or(0), a.iter().max().copied().unwrap_or(0));
        hi - lo
    };
    allocs.sort_by_key(|a| imbalance(a));
    let deadline = ctx.budget.map(|b| std::time::Instant::now() + b);
    let mut best: Option<(Mapping, Vec<usize>, WorkloadReport)> = None;
    for alloc in allocs {
        if best.is_some() && deadline.is_some_and(|d| std::time::Instant::now() >= d) {
            break;
        }
        let mapping = partition_mapping(w, spec, &alloc)?;
        let report = evaluate_workload(w, spec, &mapping).map_err(PlanError::Mapping)?;
        if !report.is_feasible() {
            continue;
        }
        // strict `<` keeps the first (deterministic) allocation on ties
        let better = best
            .as_ref()
            .is_none_or(|(_, _, b)| report.max_weighted_period() < b.max_weighted_period());
        if better {
            best = Some((mapping, alloc, report));
        }
    }
    best.ok_or_else(|| {
        PlanError::Infeasible("no feasible SPE partition exists for this workload".to_owned())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellstream_daggen::{chain, CostParams};
    use cellstream_graph::TaskId;

    fn pair_workload() -> Workload {
        let a = chain("a", 5, &CostParams::default(), 3);
        let b = chain("b", 4, &CostParams::default(), 11);
        Workload::compose("pair", &[&a, &b]).unwrap()
    }

    #[test]
    fn allocations_enumerate_compositions() {
        let a = allocations(3, 2);
        assert_eq!(a, vec![vec![0, 3], vec![1, 2], vec![2, 1], vec![3, 0]]);
        assert_eq!(allocations(8, 2).len(), 9);
        assert_eq!(allocations(4, 3).len(), 15); // C(6,2)
    }

    #[test]
    fn partition_keeps_apps_in_their_slices() {
        let w = pair_workload();
        let spec = CellSpec::with_spes(4);
        let m = partition_mapping(&w, &spec, &[2, 2]).unwrap();
        for t in w.tasks_of(AppId(0)) {
            let pe = m.pe_of(t).index();
            assert!(pe == 0 || (1..=2).contains(&pe), "app a on PPE or SPE1-2, got PE{pe}");
        }
        for t in w.tasks_of(AppId(1)) {
            let pe = m.pe_of(t).index();
            assert!(pe == 0 || (3..=4).contains(&pe), "app b on PPE or SPE3-4, got PE{pe}");
        }
    }

    #[test]
    fn partition_rejects_bad_allocations() {
        let w = pair_workload();
        let spec = CellSpec::with_spes(4);
        assert!(matches!(partition_mapping(&w, &spec, &[2]), Err(PlanError::Unsupported(_))));
        assert!(matches!(partition_mapping(&w, &spec, &[3, 3]), Err(PlanError::Unsupported(_))));
    }

    #[test]
    fn best_partition_is_feasible_and_no_worse_than_even_split() {
        let w = pair_workload();
        let spec = CellSpec::with_spes(4);
        let (_, alloc, report) = best_partition(&w, &spec, &PlanContext::default()).unwrap();
        assert!(report.is_feasible());
        assert_eq!(alloc.iter().sum::<usize>(), 4);
        let even = partition_mapping(&w, &spec, &[2, 2]).unwrap();
        let even_report = evaluate_workload(&w, &spec, &even).unwrap();
        assert!(report.max_weighted_period() <= even_report.max_weighted_period() + 1e-15);
    }

    #[test]
    fn best_partition_honours_a_tiny_budget() {
        // a zero budget stops the sweep after the first evaluated
        // allocation — which, by balanced-first ordering, is the even
        // split — instead of ignoring the caller's deadline
        let w = pair_workload();
        let spec = CellSpec::with_spes(4);
        let ctx = PlanContext::with_budget(std::time::Duration::ZERO);
        let (_, alloc, report) = best_partition(&w, &spec, &ctx).unwrap();
        assert!(report.is_feasible());
        assert_eq!(alloc, vec![2, 2]);
    }

    #[test]
    fn co_scheduling_seeded_with_partition_never_loses_to_it() {
        let w = pair_workload();
        let spec = CellSpec::with_spes(4);
        let (baseline, _, base_report) =
            best_partition(&w, &spec, &PlanContext::default()).unwrap();
        let starts = vec![baseline];
        let (m, p) = multi_start(w.graph(), &spec, &starts, &LocalSearchOptions::default());
        assert!(p <= base_report.max_weighted_period() + 1e-15);
        let _ = m.pe_of(TaskId(0));
    }
}
