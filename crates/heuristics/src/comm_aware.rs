//! Communication-aware greedy (extension heuristic, paper §7).
//!
//! The paper's greedies fail because they ignore data transfers. This
//! variant keeps their one-pass, no-backtracking shape but scores each
//! candidate PE by the **period of the partial mapping** (tasks seen so
//! far), computed by the exact evaluator on the induced subgraph — so
//! interface bandwidth, memory reads/writes and compute load all count.
//! Infeasible placements (local store, DMA) are skipped outright.

use cellstream_core::steady::buffers::BufferPlan;
use cellstream_core::Mapping;
use cellstream_graph::StreamGraph;
use cellstream_platform::{CellSpec, PeId, PeKind};

/// One-pass greedy that minimises the partial-mapping period at each step.
pub fn comm_aware_greedy(g: &StreamGraph, spec: &CellSpec) -> Mapping {
    let plan = BufferPlan::new(g);
    let budget = spec.local_store_budget() as f64;
    let mut mem_used = vec![0.0f64; spec.n_pes()];
    let mut dma_in = vec![0u32; spec.n_pes()];
    let mut dma_ppe = vec![0u32; spec.n_pes()];
    // incremental loads for the score
    let mut compute = vec![0.0f64; spec.n_pes()];
    let mut in_bytes = vec![0.0f64; spec.n_pes()];
    let mut out_bytes = vec![0.0f64; spec.n_pes()];
    let bw = spec.interface_bw().as_bytes_per_s();

    let mut assignment: Vec<Option<PeId>> = vec![None; g.n_tasks()];

    for &t in g.topo_order() {
        let task = g.task(t);
        let need = plan.for_task(t);
        let mut best: Option<(PeId, f64)> = None;
        for pe in spec.pes() {
            let i = pe.index();
            // feasibility pre-checks for SPEs
            if spec.is_spe(pe) {
                if mem_used[i] + need > budget {
                    continue;
                }
                let new_dma_in = dma_in[i]
                    + g.predecessors(t)
                        .filter(|p| assignment[p.index()].is_some_and(|ppe| ppe != pe))
                        .count() as u32;
                if new_dma_in > spec.dma_in_limit() {
                    continue;
                }
            }
            // score: the period of the partial mapping if t goes on pe
            let mut worst = compute[i] + task.cost_on(spec.kind_of(pe));
            let mut in_b = in_bytes[i] + task.read_bytes;
            let mut out_b = out_bytes[i] + task.write_bytes;
            for e in g.in_edges(t) {
                let edge = g.edge(*e);
                if let Some(src_pe) = assignment[edge.src.index()] {
                    if src_pe != pe {
                        in_b += edge.data_bytes;
                    }
                }
            }
            // predecessors' outgoing loads change too; fold into the score
            for e in g.in_edges(t) {
                let edge = g.edge(*e);
                if let Some(src_pe) = assignment[edge.src.index()] {
                    if src_pe != pe {
                        let src_out = out_bytes[src_pe.index()] + edge.data_bytes;
                        worst = worst.max(src_out / bw);
                    }
                }
            }
            worst = worst.max(in_b / bw).max(out_b / bw);
            let _ = &mut out_b;
            if best.as_ref().is_none_or(|(_, b)| worst < *b) {
                best = Some((pe, worst));
            }
        }
        let (pe, _) = best.expect("the PPE always qualifies");
        // commit
        let i = pe.index();
        assignment[t.index()] = Some(pe);
        compute[i] += task.cost_on(spec.kind_of(pe));
        in_bytes[i] += task.read_bytes;
        out_bytes[i] += task.write_bytes;
        if spec.is_spe(pe) {
            mem_used[i] += need;
        }
        for e in g.in_edges(t) {
            let edge = g.edge(*e);
            if let Some(src_pe) = assignment[edge.src.index()] {
                if src_pe != pe {
                    in_bytes[i] += edge.data_bytes;
                    out_bytes[src_pe.index()] += edge.data_bytes;
                    if spec.is_spe(pe) {
                        dma_in[i] += 1;
                    }
                    if spec.is_spe(src_pe) && spec.kind_of(pe) == PeKind::Ppe {
                        dma_ppe[src_pe.index()] += 1;
                    }
                }
            }
        }
    }

    let assignment: Vec<PeId> = assignment.into_iter().map(|o| o.expect("all assigned")).collect();
    Mapping::new(g, spec, assignment).expect("constructed within bounds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellstream_core::evaluate;
    use cellstream_daggen::{chain, CostParams};

    #[test]
    fn comm_aware_feasible_and_not_worse_than_ppe_only() {
        for seed in [1, 5, 9] {
            let g = chain("c", 12, &CostParams::default(), seed);
            let spec = CellSpec::qs22();
            let m = comm_aware_greedy(&g, &spec);
            let r = evaluate(&g, &spec, &m).unwrap();
            let ppe = evaluate(&g, &spec, &Mapping::all_on(&g, PeId(0))).unwrap();
            assert!(
                r.period <= ppe.period + 1e-12,
                "seed {seed}: {} vs PPE-only {}",
                r.period,
                ppe.period
            );
        }
    }

    #[test]
    fn keeps_heavy_communicators_together() {
        use cellstream_graph::{StreamGraph, TaskSpec};
        // two tasks exchanging a huge datum: cutting the edge would make
        // the interfaces the bottleneck, so they must stay co-mapped
        let mut b = StreamGraph::builder("pair");
        let a = b.add_task(TaskSpec::new("a").ppe_cost(1e-6).spe_cost(0.9e-6));
        let z = b.add_task(TaskSpec::new("z").ppe_cost(1e-6).spe_cost(0.9e-6));
        b.add_edge(a, z, 2.0e6).unwrap(); // 80us on the wire >> 1us compute
        let g = b.build().unwrap();
        let spec = CellSpec::with_spes(2);
        let m = comm_aware_greedy(&g, &spec);
        assert_eq!(
            m.pe_of(cellstream_graph::TaskId(0)),
            m.pe_of(cellstream_graph::TaskId(1)),
            "heavy edge must not be cut: {m}"
        );
    }

    #[test]
    fn respects_local_store() {
        let g = chain("c", 30, &CostParams::default(), 13);
        let spec = CellSpec::ps3();
        let m = comm_aware_greedy(&g, &spec);
        let r = evaluate(&g, &spec, &m).unwrap();
        assert!(
            !r.violations
                .iter()
                .any(|v| matches!(v, cellstream_core::Violation::LocalStore { .. })),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn deterministic() {
        let g = chain("c", 15, &CostParams::default(), 3);
        let spec = CellSpec::qs22();
        assert_eq!(comm_aware_greedy(&g, &spec), comm_aware_greedy(&g, &spec));
    }
}
