//! Communication-aware greedy (extension heuristic, paper §7).
//!
//! The paper's greedies fail because they ignore data transfers. This
//! variant keeps their one-pass, no-backtracking shape but scores every
//! candidate placement with the **incremental evaluator**
//! ([`EvalState`](cellstream_core::EvalState)): all tasks start on the
//! PPE (the always-feasible baseline), then each task is visited once in
//! topological order and relocated to the PE that minimises the *full
//! mapping's* period — interface bandwidth, memory reads/writes, compute
//! load, local-store and DMA feasibility all count, exactly as the
//! verifier sees them. Staying on the PPE is always among the scored
//! candidates, so the period is monotone non-increasing along the pass:
//! the result is feasible and never worse than PPE-only, by construction.
//!
//! Each probe is an O(degree) `score_move`, so the whole pass is
//! O(K · n · degree) — the same shape as the old hand-rolled partial
//! accumulator version, but scoring the true period instead of a
//! truncated approximation of it.

use cellstream_core::{EvalState, Mapping, Move};
use cellstream_graph::StreamGraph;
use cellstream_platform::{CellSpec, PeId};

/// One-pass greedy that minimises the mapped period at each step.
pub fn comm_aware_greedy(g: &StreamGraph, spec: &CellSpec) -> Mapping {
    let ppe_only = Mapping::all_on(g, spec.pe(0));
    let mut state = EvalState::new(g, spec, &ppe_only).expect("PPE-only is structurally valid");

    for &t in g.topo_order() {
        let mut best: Option<(PeId, f64)> = None;
        for pe in spec.pes() {
            // a no-op relocate scores as the current period, so "stay put"
            // is covered by the same probe
            let score = state.score_move(Move::Relocate { task: t, to: pe });
            // strict `<` keeps the earliest PE on ties → deterministic
            if best.as_ref().is_none_or(|&(_, b)| score < b) {
                best = Some((pe, score));
            }
        }
        let (pe, _) = best.expect("the current PE is always scored");
        state.apply(Move::Relocate { task: t, to: pe });
    }
    state.mapping()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellstream_core::evaluate;
    use cellstream_daggen::{chain, CostParams};

    #[test]
    fn comm_aware_feasible_and_not_worse_than_ppe_only() {
        for seed in [1, 5, 9] {
            let g = chain("c", 12, &CostParams::default(), seed);
            let spec = CellSpec::qs22();
            let m = comm_aware_greedy(&g, &spec);
            let r = evaluate(&g, &spec, &m).unwrap();
            assert!(r.is_feasible(), "seed {seed}: {:?}", r.violations);
            let ppe = evaluate(&g, &spec, &Mapping::all_on(&g, PeId(0))).unwrap();
            assert!(
                r.period <= ppe.period + 1e-12,
                "seed {seed}: {} vs PPE-only {}",
                r.period,
                ppe.period
            );
        }
    }

    #[test]
    fn keeps_heavy_communicators_together() {
        use cellstream_graph::{StreamGraph, TaskSpec};
        // two tasks exchanging a huge datum: cutting the edge would make
        // the interfaces the bottleneck, so they must stay co-mapped
        let mut b = StreamGraph::builder("pair");
        let a = b.add_task(TaskSpec::new("a").ppe_cost(1e-6).spe_cost(0.9e-6));
        let z = b.add_task(TaskSpec::new("z").ppe_cost(1e-6).spe_cost(0.9e-6));
        b.add_edge(a, z, 2.0e6).unwrap(); // 80us on the wire >> 1us compute
        let g = b.build().unwrap();
        let spec = CellSpec::with_spes(2);
        let m = comm_aware_greedy(&g, &spec);
        assert_eq!(
            m.pe_of(cellstream_graph::TaskId(0)),
            m.pe_of(cellstream_graph::TaskId(1)),
            "heavy edge must not be cut: {m}"
        );
    }

    #[test]
    fn respects_local_store() {
        let g = chain("c", 30, &CostParams::default(), 13);
        let spec = CellSpec::ps3();
        let m = comm_aware_greedy(&g, &spec);
        let r = evaluate(&g, &spec, &m).unwrap();
        assert!(r.is_feasible(), "{:?}", r.violations);
    }

    #[test]
    fn respects_dma_limits_too() {
        use cellstream_graph::{StreamGraph, TaskSpec};
        // 20 PPE-friendly producers feeding one SPE-friendly sink: naively
        // offloading the sink would need 20 concurrent incoming DMAs (> 16)
        let mut b = StreamGraph::builder("fan");
        let producers: Vec<_> = (0..20)
            .map(|i| b.add_task(TaskSpec::new(format!("p{i}")).ppe_cost(1e-7).spe_cost(1e-5)))
            .collect();
        let sink = b.add_task(TaskSpec::new("sink").ppe_cost(1e-4).spe_cost(1e-6));
        for &p in &producers {
            b.add_edge(p, sink, 8.0).unwrap();
        }
        let g = b.build().unwrap();
        let spec = CellSpec::with_spes(2);
        let m = comm_aware_greedy(&g, &spec);
        let r = evaluate(&g, &spec, &m).unwrap();
        assert!(r.is_feasible(), "{:?}", r.violations);
    }

    #[test]
    fn deterministic() {
        let g = chain("c", 15, &CostParams::default(), 3);
        let spec = CellSpec::qs22();
        assert_eq!(comm_aware_greedy(&g, &spec), comm_aware_greedy(&g, &spec));
    }
}
