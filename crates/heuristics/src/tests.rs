//! Cross-heuristic properties.

use crate::{comm_aware_greedy, greedy_cpu, greedy_mem, local_search, LocalSearchOptions};
use cellstream_core::{evaluate, Mapping};
use cellstream_daggen::{generate, CostParams, DagGenParams};
use cellstream_platform::{CellSpec, PeId};
use proptest::prelude::*;

fn any_graph(seed: u64, n: usize) -> cellstream_graph::StreamGraph {
    generate(
        "h",
        &DagGenParams {
            n,
            fat: 0.6,
            regular: 0.5,
            density: 0.4,
            jump: 2,
            costs: CostParams::default(),
        },
        seed,
    )
    .unwrap()
}

#[test]
fn paper_scale_graph2_refines_with_swaps_in_tier1() {
    // The incremental engine's headline unlock: steepest descent with the
    // full O(K²) swap neighbourhood on the paper's 94-task graph 2 and a
    // QS22, fast enough for the tier-1 suite.
    let g = cellstream_daggen::paper::graph2();
    let spec = CellSpec::qs22();
    let start = greedy_cpu(&g, &spec);
    let start_p = evaluate(&g, &spec, &start).unwrap().period;
    let opts = LocalSearchOptions::default();
    assert!(opts.swaps, "swaps are the default neighbourhood");
    let (m, p) = local_search(&g, &spec, &start, &opts);
    assert!(p <= start_p + 1e-15, "search never worsens: {p} vs {start_p}");
    let r = evaluate(&g, &spec, &m).unwrap();
    assert!(r.is_feasible());
    assert_eq!(r.period, p, "published period is the verifier's");
}

#[test]
fn all_heuristics_produce_valid_mappings() {
    let g = any_graph(1, 25);
    let spec = CellSpec::qs22();
    for m in [greedy_mem(&g, &spec), greedy_cpu(&g, &spec), comm_aware_greedy(&g, &spec)] {
        let r = evaluate(&g, &spec, &m).unwrap();
        assert!(r.period > 0.0);
        // memory constraint respected by construction in all three
        assert!(
            !r.violations
                .iter()
                .any(|v| matches!(v, cellstream_core::Violation::LocalStore { .. })),
            "{:?}",
            r.violations
        );
    }
}

#[test]
fn milp_dominates_heuristics_on_small_instances() {
    // The central claim of Figure 7, in miniature: the MILP mapping is at
    // least as good as every heuristic.
    let g = any_graph(3, 8);
    let spec = CellSpec::with_spes(3);
    let opts = cellstream_core::SolveOptions {
        mip: cellstream_milp::bb::MipOptions { rel_gap: 0.0, abs_gap: 1e-9, ..Default::default() },
        ..Default::default()
    };
    let milp = cellstream_core::solve(&g, &spec, &opts).unwrap();
    for (name, m) in [
        ("greedy_mem", greedy_mem(&g, &spec)),
        ("greedy_cpu", greedy_cpu(&g, &spec)),
        ("comm_aware", comm_aware_greedy(&g, &spec)),
    ] {
        let r = evaluate(&g, &spec, &m).unwrap();
        if r.is_feasible() {
            assert!(
                milp.period <= r.period + 1e-12,
                "{name}: milp {} vs heuristic {}",
                milp.period,
                r.period
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prop_heuristics_valid_on_random_graphs(seed in 0u64..500, n in 5usize..40) {
        let g = any_graph(seed, n);
        for spes in [0usize, 2, 6, 8] {
            let spec = CellSpec::with_spes(spes);
            for m in [greedy_mem(&g, &spec), greedy_cpu(&g, &spec), comm_aware_greedy(&g, &spec)] {
                let r = evaluate(&g, &spec, &m).unwrap();
                prop_assert!(r.period.is_finite() && r.period > 0.0);
                let mem_violated = r.violations.iter().any(
                    |v| matches!(v, cellstream_core::Violation::LocalStore { .. }));
                prop_assert!(!mem_violated);
            }
        }
    }

    #[test]
    fn prop_local_search_monotone(seed in 0u64..200) {
        let g = any_graph(seed, 12);
        let spec = CellSpec::ps3();
        for start in [greedy_mem(&g, &spec), greedy_cpu(&g, &spec), Mapping::all_on(&g, PeId(0))] {
            let before = evaluate(&g, &spec, &start).unwrap();
            let (after_m, after_p) = local_search(&g, &spec, &start, &LocalSearchOptions::default());
            let after = evaluate(&g, &spec, &after_m).unwrap();
            prop_assert!((after.period - after_p).abs() < 1e-12);
            if before.is_feasible() {
                prop_assert!(after_p <= before.period + 1e-15);
                prop_assert!(after.is_feasible());
            }
        }
    }
}
