//! The parallel scheduler portfolio.
//!
//! The paper's workflow (§6) runs the greedy heuristics *and* the MILP
//! on every instance and compares; its conclusion asks for "involved
//! mapping heuristics which approach the optimal throughput". A
//! [`Portfolio`] packages that workflow: run any set of [`Scheduler`]s
//! concurrently on OS threads, honour a wall-clock budget, feed every
//! feasible heuristic mapping into the MILP stage as warm-start
//! incumbents (exactly how §6's CPLEX runs were seeded), and return the
//! best feasible plan together with a full leaderboard.
//!
//! Execution model: members run in two waves. Every non-MILP member
//! starts immediately on its own thread; MILP members run afterwards so
//! their warm starts can include the first wave's mappings, with their
//! time limit clamped to whatever remains of the budget.

use crate::schedulers::scheduler_by_name;
use cellstream_core::scheduler::{Plan, PlanContext, PlanError, Scheduler};
use cellstream_graph::{StreamGraph, Workload};
use cellstream_platform::CellSpec;
use std::time::{Duration, Instant};

/// Minimum wall-clock budget the second (warm-start) wave receives even
/// when the first wave consumed the whole portfolio budget: enough for
/// the MILP's root LP + rounding pass, which is what guarantees
/// best-of-members behaviour. This is the only amount by which a
/// portfolio run may overshoot its budget — a **fixed** floor, not a
/// fraction of the budget (the old `budget / 20` top-up let a run exceed
/// a large budget by 5%).
pub const SECOND_WAVE_FLOOR: Duration = Duration::from_millis(100);

/// The second wave's budget: whatever the first wave left, but at least
/// [`SECOND_WAVE_FLOOR`]. Total portfolio wall time is therefore capped
/// at `budget + SECOND_WAVE_FLOOR` (plus scheduling noise).
fn second_wave_budget(budget: Duration, elapsed: Duration) -> Duration {
    budget.saturating_sub(elapsed).max(SECOND_WAVE_FLOOR)
}

/// One member's result in the [`PortfolioOutcome`] leaderboard.
#[derive(Debug, Clone)]
pub struct MemberResult {
    /// The member's registry name.
    pub scheduler: String,
    /// Its plan, or why it failed.
    pub result: Result<Plan, PlanError>,
}

impl MemberResult {
    /// The plan when it exists and is feasible.
    pub fn feasible_plan(&self) -> Option<&Plan> {
        self.result.as_ref().ok().filter(|p| p.is_feasible())
    }
}

/// The result of [`Portfolio::run`].
#[derive(Debug, Clone)]
pub struct PortfolioOutcome {
    /// The best feasible plan across all members.
    pub best: Plan,
    /// Every member's result, sorted best-first (feasible plans by
    /// period, then failures).
    pub leaderboard: Vec<MemberResult>,
    /// Total wall-clock time of the portfolio run.
    pub wall: Duration,
}

impl PortfolioOutcome {
    /// Leaderboard entry of a member by name.
    pub fn member(&self, name: &str) -> Option<&MemberResult> {
        self.leaderboard.iter().find(|m| m.scheduler == name)
    }

    /// Render the leaderboard as aligned text, one member per line —
    /// period, feasibility, wall time, and where the budget went:
    /// search iterations for iterative members; nodes, simplex
    /// iterations, gap and the dual-simplex warm-start hit rate for the
    /// MILP. This is what the bench binaries print so solver effort is
    /// visible next to solution quality.
    pub fn render_leaderboard(&self) -> String {
        use cellstream_core::scheduler::PlanStats;
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "  {:<12} {:>12} {:>10}  budget breakdown",
            "member", "period(us)", "wall(ms)"
        );
        for m in &self.leaderboard {
            match &m.result {
                Ok(plan) => {
                    let detail = match &plan.stats {
                        PlanStats::Heuristic => String::new(),
                        PlanStats::Search { iterations } => format!("iters {iterations}"),
                        PlanStats::Exhaustive { enumerated } => format!("enumerated {enumerated}"),
                        PlanStats::Milp {
                            gap,
                            nodes,
                            lp_iterations,
                            warm_start_rate,
                            status,
                            ..
                        } => format!(
                            "gap {:.1}%  nodes {}  simplex {}  warm {:.0}%  {:?}",
                            gap * 100.0,
                            nodes,
                            lp_iterations,
                            warm_start_rate * 100.0,
                            status
                        ),
                    };
                    let _ = writeln!(
                        out,
                        "  {:<12} {:>12.3} {:>10.1}  {}{}",
                        m.scheduler,
                        plan.period() * 1e6,
                        plan.wall.as_secs_f64() * 1e3,
                        if plan.is_feasible() { "" } else { "[infeasible] " },
                        detail
                    );
                }
                Err(e) => {
                    let _ =
                        writeln!(out, "  {:<12} {:>12} {:>10}  failed: {e}", m.scheduler, "-", "-");
                }
            }
        }
        out
    }
}

/// A set of schedulers raced in parallel. See the module docs for the
/// execution model.
///
/// ```
/// use cellstream_daggen::{chain, CostParams};
/// use cellstream_heuristics::Portfolio;
/// use cellstream_platform::CellSpec;
/// use std::time::Duration;
///
/// let g = chain("pipe", 6, &CostParams::default(), 1);
/// let outcome = Portfolio::standard()
///     .budget(Duration::from_secs(10))
///     .run(&g, &CellSpec::ps3())
///     .unwrap();
/// assert!(outcome.best.is_feasible());
/// assert!(outcome.leaderboard.len() >= 5);
/// ```
pub struct Portfolio {
    members: Vec<Box<dyn Scheduler>>,
    budget: Option<Duration>,
    seed_milp: bool,
}

impl Default for Portfolio {
    fn default() -> Self {
        Portfolio::new()
    }
}

impl Portfolio {
    /// An empty portfolio; add members with [`with`](Self::with) /
    /// [`with_named`](Self::with_named).
    pub fn new() -> Self {
        Portfolio { members: Vec::new(), budget: None, seed_milp: true }
    }

    /// The paper's §6 line-up: the PPE-only baseline (§6.4.2), both
    /// greedies, the comm-aware greedy, multi-start local search,
    /// simulated annealing, and the seed-fed MILP. The baseline member
    /// makes the "always returns a feasible plan" guarantee structural:
    /// PPE-only is feasible on every instance.
    pub fn standard() -> Self {
        Portfolio::heuristics_only().with_named("milp")
    }

    /// The heuristic-only line-up (no MILP): fast and budget-friendly,
    /// with the same PPE-only feasibility guarantee. The iterative
    /// members (multi-start search, annealing) run on the incremental
    /// evaluator and honour the portfolio budget, so a bigger budget
    /// directly buys more probed moves.
    pub fn heuristics_only() -> Self {
        Portfolio::new()
            .with_named("ppe_only")
            .with_named("greedy_mem")
            .with_named("greedy_cpu")
            .with_named("comm_aware")
            .with_named("multi_start")
            .with_named("anneal")
    }

    /// Add a scheduler instance.
    pub fn with(mut self, s: impl Scheduler + 'static) -> Self {
        self.members.push(Box::new(s));
        self
    }

    /// Add a scheduler by registry name. Panics on unknown names — the
    /// registry is static, so this is a programming error, not input.
    pub fn with_named(mut self, name: &str) -> Self {
        let s = scheduler_by_name(name)
            .unwrap_or_else(|| panic!("unknown scheduler `{name}`; see SCHEDULER_NAMES"));
        self.members.push(s);
        self
    }

    /// Cap the wall-clock time of the whole run. Heuristic members get
    /// the budget as a hint; MILP members have their time limit clamped
    /// to whatever remains when they start.
    pub fn budget(mut self, budget: Duration) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Disable feeding first-wave mappings into second-wave members as
    /// warm starts (enabled by default).
    pub fn no_milp_seeding(mut self) -> Self {
        self.seed_milp = false;
        self
    }

    /// The member names, first-wave members before warm-start members.
    pub fn member_names(&self) -> Vec<&str> {
        let (second, first): (Vec<_>, Vec<_>) =
            self.members.iter().partition(|s| s.wants_warm_starts());
        first.iter().chain(second.iter()).map(|s| s.name()).collect()
    }

    /// Race every member and return the best feasible plan plus the
    /// leaderboard. Fails with [`PlanError::Unsupported`] on an empty
    /// portfolio and [`PlanError::Infeasible`] when no member produced a
    /// feasible plan.
    pub fn run(&self, g: &StreamGraph, spec: &CellSpec) -> Result<PortfolioOutcome, PlanError> {
        self.run_with(g, spec, &PlanContext::default())
    }

    /// Race the portfolio on a composed multi-application [`Workload`]:
    /// the composed graph's period is the maximum weighted
    /// per-application period, so every member co-schedules the
    /// applications jointly with no changes. Split the winner per
    /// application with `Plan::per_app` or
    /// `cellstream_core::evaluate_workload`.
    pub fn run_workload(
        &self,
        w: &Workload,
        spec: &CellSpec,
        ctx: &PlanContext,
    ) -> Result<PortfolioOutcome, PlanError> {
        self.run_with(w.graph(), spec, ctx)
    }

    /// Like [`run`](Self::run), with caller-supplied seeds/MILP options.
    /// `ctx.budget`, when unset, is filled from the portfolio's budget.
    pub fn run_with(
        &self,
        g: &StreamGraph,
        spec: &CellSpec,
        ctx: &PlanContext,
    ) -> Result<PortfolioOutcome, PlanError> {
        if self.members.is_empty() {
            return Err(PlanError::Unsupported("empty portfolio".to_owned()));
        }
        let started = Instant::now();
        let mut base_ctx = ctx.clone();
        if base_ctx.budget.is_none() {
            base_ctx.budget = self.budget;
        }

        let (second_wave, first_wave): (Vec<_>, Vec<_>) =
            self.members.iter().partition(|s| s.wants_warm_starts());

        // ---- wave 1: constructive members, one thread per member ----------
        let mut leaderboard: Vec<MemberResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = first_wave
                .iter()
                .map(|member| {
                    let ctx = &base_ctx;
                    scope.spawn(move || MemberResult {
                        scheduler: member.name().to_owned(),
                        result: member.plan(g, spec, ctx),
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("scheduler threads do not panic")).collect()
        });

        // ---- wave 2: warm-start members (MILP and friends), seeded --------
        if !second_wave.is_empty() {
            let mut milp_ctx = base_ctx.clone();
            if self.seed_milp {
                milp_ctx.seeds.extend(
                    leaderboard.iter().filter_map(|m| m.feasible_plan()).map(|p| p.mapping.clone()),
                );
            }
            if let Some(budget) = base_ctx.budget {
                milp_ctx.budget = Some(second_wave_budget(budget, started.elapsed()));
            }
            let results: Vec<MemberResult> = std::thread::scope(|scope| {
                let handles: Vec<_> = second_wave
                    .iter()
                    .map(|member| {
                        let ctx = &milp_ctx;
                        scope.spawn(move || MemberResult {
                            scheduler: member.name().to_owned(),
                            result: member.plan(g, spec, ctx),
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("scheduler threads do not panic"))
                    .collect()
            });
            leaderboard.extend(results);
        }

        // ---- pick the winner, sort the leaderboard ------------------------
        // NaN-safe total order on periods, then scheduler name: members
        // with equal periods used to land in thread-completion order,
        // making the leaderboard (and the reported winner on ties)
        // nondeterministic run-to-run.
        leaderboard.sort_by(|a, b| {
            let key = |m: &MemberResult| m.feasible_plan().map(Plan::period);
            match (key(a), key(b)) {
                (Some(x), Some(y)) => x.total_cmp(&y).then_with(|| a.scheduler.cmp(&b.scheduler)),
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (None, None) => a.scheduler.cmp(&b.scheduler),
            }
        });
        let best =
            leaderboard.iter().filter_map(MemberResult::feasible_plan).next().cloned().ok_or_else(
                || {
                    PlanError::Infeasible(format!(
                        "none of the {} portfolio members produced a feasible plan",
                        self.members.len()
                    ))
                },
            )?;
        Ok(PortfolioOutcome { best, leaderboard, wall: started.elapsed() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellstream_daggen::{chain, fork_join, CostParams};
    use cellstream_platform::CellSpec;

    #[test]
    fn portfolio_never_worse_than_any_member() {
        let g = fork_join("fj", 3, &CostParams::default(), 5);
        let spec = CellSpec::ps3();
        let outcome = Portfolio::standard().budget(Duration::from_secs(20)).run(&g, &spec).unwrap();
        for member in &outcome.leaderboard {
            if let Some(plan) = member.feasible_plan() {
                assert!(
                    outcome.best.period() <= plan.period() + 1e-15,
                    "best {} worse than member {}: {} vs {}",
                    outcome.best.scheduler,
                    member.scheduler,
                    outcome.best.period(),
                    plan.period()
                );
            }
        }
    }

    #[test]
    fn leaderboard_covers_all_members_and_is_sorted() {
        let g = chain("c", 6, &CostParams::default(), 11);
        let spec = CellSpec::with_spes(2);
        let p = Portfolio::heuristics_only();
        let outcome = p.run(&g, &spec).unwrap();
        assert_eq!(outcome.leaderboard.len(), 6);
        let periods: Vec<f64> = outcome
            .leaderboard
            .iter()
            .filter_map(|m| m.feasible_plan().map(Plan::period))
            .collect();
        assert!(periods.windows(2).all(|w| w[0] <= w[1] + 1e-15), "{periods:?}");
        assert!((outcome.best.period() - periods[0]).abs() < 1e-15);
    }

    #[test]
    fn milp_member_sees_heuristic_seeds() {
        // On a budget too small for the B&B to do anything, the seeded
        // MILP must still return at least the best heuristic mapping.
        let g = fork_join("fj", 4, &CostParams::default(), 2);
        let spec = CellSpec::ps3();
        let outcome =
            Portfolio::standard().budget(Duration::from_millis(400)).run(&g, &spec).unwrap();
        let milp = outcome.member("milp").expect("milp is a member");
        let multi = outcome.member("multi_start").expect("multi_start is a member");
        // both must be feasible unconditionally: the heuristics always
        // are, and the seeded MILP inherits their mappings as incumbents
        let milp_plan = milp.feasible_plan().expect("seeded MILP returns a feasible plan");
        let multi_plan = multi.feasible_plan().expect("multi_start is always feasible");
        assert!(
            milp_plan.period() <= multi_plan.period() + 1e-12,
            "seeded MILP ({}) must not lose to its own seed ({})",
            milp_plan.period(),
            multi_plan.period()
        );
    }

    #[test]
    fn leaderboard_renders_milp_budget_breakdown() {
        let g = chain("c", 5, &CostParams::default(), 3);
        let spec = CellSpec::with_spes(2);
        let outcome = Portfolio::standard().budget(Duration::from_secs(5)).run(&g, &spec).unwrap();
        let text = outcome.render_leaderboard();
        // every member appears
        for m in &outcome.leaderboard {
            assert!(text.contains(&m.scheduler), "missing {} in:\n{text}", m.scheduler);
        }
        // the MILP line carries its budget breakdown incl. warm starts
        let milp_line = text.lines().find(|l| l.contains("milp")).expect("milp line");
        for needle in ["gap", "nodes", "simplex", "warm"] {
            assert!(milp_line.contains(needle), "missing {needle} in: {milp_line}");
        }
    }

    #[test]
    fn empty_portfolio_is_an_error() {
        let g = chain("c", 3, &CostParams::default(), 1);
        let err = Portfolio::new().run(&g, &CellSpec::ps3()).unwrap_err();
        assert!(matches!(err, PlanError::Unsupported(_)));
    }

    #[test]
    fn member_names_put_milp_last() {
        let p = Portfolio::standard();
        let names = p.member_names();
        assert_eq!(names.last(), Some(&"milp"));
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn leaderboard_ties_break_by_name_deterministically() {
        // a single-task graph: several members produce the identical
        // best mapping (task on an SPE), so their periods tie exactly.
        // Before the name tie-break, their order was whatever the thread
        // scheduler produced that run.
        use cellstream_graph::{StreamGraph, TaskSpec};
        let mut b = StreamGraph::builder("one");
        b.add_task(TaskSpec::new("t").ppe_cost(4e-6).spe_cost(1e-6));
        let g = b.build().unwrap();
        let spec = CellSpec::with_spes(2);
        let p = Portfolio::heuristics_only();
        let reference: Vec<String> =
            p.run(&g, &spec).unwrap().leaderboard.iter().map(|m| m.scheduler.clone()).collect();
        for _ in 0..6 {
            let names: Vec<String> =
                p.run(&g, &spec).unwrap().leaderboard.iter().map(|m| m.scheduler.clone()).collect();
            assert_eq!(names, reference, "leaderboard order must be reproducible");
        }
        // and within an equal-period block the names are sorted
        let outcome = p.run(&g, &spec).unwrap();
        for w in outcome.leaderboard.windows(2) {
            let (pa, pb) = (w[0].feasible_plan(), w[1].feasible_plan());
            if let (Some(pa), Some(pb)) = (pa, pb) {
                if pa.period() == pb.period() {
                    assert!(w[0].scheduler < w[1].scheduler, "ties sorted by name");
                }
            }
        }
    }

    #[test]
    fn second_wave_budget_is_remaining_plus_fixed_floor_only() {
        // the old clamp was remaining.max(budget / 20): with the whole
        // budget consumed by the first wave the MILP still got 5% of the
        // budget *on top*, unbounded in absolute terms. The fix caps the
        // overshoot at the fixed SECOND_WAVE_FLOOR regardless of budget.
        let budget = Duration::from_secs(600);
        assert_eq!(second_wave_budget(budget, budget), SECOND_WAVE_FLOOR);
        assert_eq!(second_wave_budget(budget, budget * 2), SECOND_WAVE_FLOOR);
        // plenty left: the second wave gets exactly the remainder
        assert_eq!(second_wave_budget(budget, Duration::from_secs(1)), Duration::from_secs(599));
        // the floor only kicks in below itself
        assert_eq!(second_wave_budget(budget, budget - SECOND_WAVE_FLOOR / 2), SECOND_WAVE_FLOOR);
    }

    #[test]
    fn portfolio_wall_respects_budget_plus_floor() {
        let g = fork_join("fj", 3, &CostParams::default(), 7);
        let spec = CellSpec::ps3();
        let budget = Duration::from_millis(600);
        let outcome = Portfolio::standard().budget(budget).run(&g, &spec).unwrap();
        // documented cap: budget + SECOND_WAVE_FLOOR, plus generous slack
        // for thread scheduling and the B&B's per-node limit check
        let cap = budget + SECOND_WAVE_FLOOR + Duration::from_millis(750);
        assert!(outcome.wall <= cap, "portfolio ran {:?}, cap {:?}", outcome.wall, cap);
    }

    #[test]
    fn cancel_aborts_a_running_portfolio_within_a_step() {
        use crate::schedulers::{AnnealScheduler, LocalSearchScheduler, MultiStartScheduler};
        use crate::{AnnealingOptions, LocalSearchOptions};
        use cellstream_core::scheduler::CancelToken;
        // iterative members sized to run for minutes if uncancelled
        let huge_search = LocalSearchOptions { max_rounds: usize::MAX, ..Default::default() };
        let p = Portfolio::new()
            .with_named("ppe_only")
            .with(LocalSearchScheduler { opts: huge_search.clone() })
            .with(MultiStartScheduler { opts: huge_search })
            .with(AnnealScheduler {
                opts: AnnealingOptions { steps: u32::MAX, ..Default::default() },
            });
        let g = chain("c", 40, &CostParams::default(), 17);
        let spec = CellSpec::qs22();
        let ctx = PlanContext::default();
        let token: CancelToken = ctx.cancel.clone();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            token.cancel();
        });
        let started = Instant::now();
        let outcome = p.run_with(&g, &spec, &ctx).unwrap();
        canceller.join().unwrap();
        // every member noticed the shared flag within one search step;
        // generous bound for slow CI machines
        assert!(started.elapsed() < Duration::from_secs(10), "cancel took {:?}", started.elapsed());
        assert!(outcome.best.is_feasible(), "cancelled members return best-so-far");
    }

    #[test]
    fn run_workload_co_schedules_composed_apps() {
        use cellstream_graph::Workload;
        let a = chain("a", 4, &CostParams::default(), 3);
        let b = chain("b", 3, &CostParams::default(), 5);
        let w = Workload::compose("pair", &[&a, &b]).unwrap();
        let spec = CellSpec::ps3();
        let outcome =
            Portfolio::heuristics_only().run_workload(&w, &spec, &PlanContext::default()).unwrap();
        assert!(outcome.best.is_feasible());
        let per_app = outcome.best.per_app(&w, &spec);
        assert_eq!(per_app.len(), 2);
        for ar in &per_app {
            assert!((ar.weighted_period - outcome.best.period()).abs() < 1e-15);
        }
    }
}
