//! Incremental replanning: repair an incumbent mapping after the
//! workload changes, instead of re-solving from scratch.
//!
//! The online serving regime (cf. Benoit et al., *Resource Allocation
//! for Multiple Concurrent In-Network Stream-Processing Applications*)
//! replans on every application arrival, departure and rate change.
//! Those events leave most of the workload — and most of a good mapping
//! — intact, so [`repair`] treats the incumbent as a **partial
//! assignment** and only works on the delta:
//!
//! 1. **seed** — every retained task keeps its incumbent PE;
//! 2. **place** — unseeded tasks (newly admitted applications) are
//!    inserted one by one in topological order, each onto the PE that
//!    minimises the whole mapping's period on the incremental evaluator
//!    (feasible hosts strictly preferred — the same one-pass scheme as
//!    the comm-aware greedy);
//! 3. **evict** — if the seeded seats themselves became infeasible (a
//!    reweight grew buffer footprints, say), tasks are moved off the
//!    violated SPEs onto the PPE, largest working set first, until the
//!    §3.2 constraints hold again (the PPE accepts every task, so this
//!    always terminates feasible);
//! 4. **refine** — a budgeted [`local_search`] polishes the result from
//!    the repaired seats.
//!
//! Steps 2–3 are O(K·n_PEs) probes on [`EvalState`]; step 4 is bounded
//! by the caller's budget/round cap. That is what buys the serving
//! layer's order-of-magnitude replan-latency headroom over a from-scratch
//! portfolio while staying within a few percent of its quality (the
//! `online` bench gates both).

use crate::search::{local_search, LocalSearchOptions};
use cellstream_core::scheduler::{Plan, PlanContext, PlanError, PlanStats, Scheduler};
use cellstream_core::{EvalState, Mapping, Move};
use cellstream_graph::{StreamGraph, TaskId};
use cellstream_platform::{CellSpec, PeId};
use std::time::Instant;

/// Repair a partial assignment into a full feasible mapping and refine
/// it. `partial[k]` is the retained PE of task `k` (`None` for tasks
/// that need placing — newly admitted work). Returns the mapping and its
/// exact verifier period (`+∞` only if even all-PPE is infeasible, which
/// cannot happen on platforms with a PPE).
///
/// Panics if `partial` and the graph disagree on length, or a retained
/// PE does not exist on `spec` — partial assignments and graphs travel
/// together, like mappings.
pub fn repair(
    g: &StreamGraph,
    spec: &CellSpec,
    partial: &[Option<PeId>],
    opts: &LocalSearchOptions,
) -> (Mapping, f64) {
    assert_eq!(partial.len(), g.n_tasks(), "partial assignment covers every task");
    let ppe = spec.pe(0);
    // seed: retained seats; unplaced tasks start on the PPE (always legal)
    let assignment: Vec<PeId> = partial.iter().map(|p| p.unwrap_or(ppe)).collect();
    let seed = Mapping::new(g, spec, assignment).expect("retained PEs exist on this platform");
    let mut state = EvalState::new(g, spec, &seed).expect("seed is structurally valid");

    // place the delta: topological order so producers sit before
    // consumers. Period ties (frequent: placements below the current
    // bottleneck all look equal) break toward the least-occupied host,
    // so fresh work spreads over idle SPEs instead of piling onto the
    // first PE probed.
    for &t in g.topo_order() {
        if partial[t.index()].is_some() {
            continue;
        }
        let mut best: Option<(PeId, f64, bool, f64)> = None;
        for to in spec.pes() {
            state.apply(Move::Relocate { task: t, to });
            let (p, feasible, occ) = (state.period(), state.is_feasible(), state.occupancy(to));
            state.undo();
            let better = match best {
                None => true,
                // feasible hosts strictly dominate infeasible ones;
                // within a class: smaller period, then emptier host
                Some((_, bp, bf, bocc)) => {
                    (feasible && !bf)
                        || (feasible == bf
                            && (p < bp * (1.0 - 1e-12) || (p <= bp * (1.0 + 1e-12) && occ < bocc)))
                }
            };
            if better {
                best = Some((to, p, feasible, occ));
            }
        }
        let (to, ..) = best.expect("platforms have at least one PE");
        state.apply(Move::Relocate { task: t, to });
    }

    // evict: restore feasibility if the retained seats (or a reweight)
    // broke it — move the largest working set off each violated SPE to
    // the PPE until the verifier is satisfied
    evict_until_feasible(&mut state, spec);
    debug_assert!(state.is_feasible(), "eviction ends feasible");

    // refine from the repaired seats
    local_search(g, spec, &state.mapping(), opts)
}

/// Move tasks off violated SPEs onto the PPE until constraints (1i)–(1k)
/// hold. Terminates: every step strictly shrinks the SPE-resident task
/// set, and the all-PPE mapping satisfies all three constraints.
fn evict_until_feasible(state: &mut EvalState<'_>, spec: &CellSpec) {
    let g = state.graph();
    let ppe = spec.pe(0);
    if state.is_feasible() {
        return;
    }
    let plan = cellstream_core::steady::buffers::BufferPlan::new(g);
    while !state.is_feasible() {
        // the report names the violated SPEs; evict from the first
        let report = state.report();
        let Some(violation) = report.violations.first() else {
            break; // defensive: is_feasible and violations disagree
        };
        let pe = match *violation {
            cellstream_core::Violation::LocalStore { pe, .. }
            | cellstream_core::Violation::DmaIn { pe, .. }
            | cellstream_core::Violation::DmaPpe { pe, .. } => pe,
        };
        // largest buffer working set first: frees the most memory (and
        // its DMA slots) per move
        let victim = g
            .task_ids()
            .filter(|&t| state.pe_of(t) == pe)
            .max_by(|&a, &b| plan.for_task(a).total_cmp(&plan.for_task(b)))
            .expect("a violated SPE hosts at least one task");
        state.apply(Move::Relocate { task: victim, to: ppe });
    }
}

/// [`repair`] as a registry [`Scheduler`] (`"repair"`).
///
/// The trait's [`PlanContext`] carries full mappings of the *current*
/// graph, so the partial assignment is derived from the first seed:
/// every task keeps its seed PE, and with no seed at all every task is
/// "new" — repair degrades to its one-pass placement + refinement, a
/// self-contained constructive heuristic. The serving layer calls
/// [`repair`] directly with a name-matched partial instead.
#[derive(Debug, Clone, Default)]
pub struct RepairScheduler {
    /// Refinement parameters (step 4).
    pub opts: LocalSearchOptions,
}

impl Scheduler for RepairScheduler {
    fn name(&self) -> &str {
        "repair"
    }

    fn plan(&self, g: &StreamGraph, spec: &CellSpec, ctx: &PlanContext) -> Result<Plan, PlanError> {
        let started = Instant::now();
        let partial: Vec<Option<PeId>> =
            match ctx.seeds.iter().find(|m| m.validate(g, spec).is_ok()) {
                Some(m) => m.assignment().iter().map(|&pe| Some(pe)).collect(),
                None => vec![None; g.n_tasks()],
            };
        let mut opts = self.opts.clone();
        if opts.budget.is_none() {
            opts.budget = ctx.budget;
        }
        if opts.cancel.is_none() {
            opts.cancel = Some(ctx.cancel.clone());
        }
        let (mapping, _) = repair(g, spec, &partial, &opts);
        Plan::from_mapping(
            self.name(),
            g,
            spec,
            mapping,
            PlanStats::Search { iterations: 0 },
            started.elapsed(),
        )
    }
}

/// Derive the partial assignment for [`repair`] by carrying an incumbent
/// mapping of one graph over to another version of it: tasks are matched
/// by name (stable across `Workload` recompositions), tasks without a
/// namesake — or whose retained PE no longer exists — come back `None`.
pub fn carry_over(
    old_g: &StreamGraph,
    old_m: &Mapping,
    new_g: &StreamGraph,
    spec: &CellSpec,
) -> Vec<Option<PeId>> {
    use std::collections::HashMap;
    assert_eq!(old_m.assignment().len(), old_g.n_tasks(), "incumbent/graph mismatch");
    let old_by_name: HashMap<&str, TaskId> =
        old_g.tasks().iter().enumerate().map(|(i, t)| (t.name.as_str(), TaskId(i))).collect();
    new_g
        .tasks()
        .iter()
        .map(|t| {
            old_by_name
                .get(t.name.as_str())
                .map(|&id| old_m.pe_of(id))
                .filter(|pe| pe.index() < spec.n_pes())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellstream_core::evaluate;
    use cellstream_daggen::{chain, fork_join, CostParams};
    use cellstream_graph::Workload;

    #[test]
    fn full_partial_keeps_feasible_seats() {
        let g = chain("c", 8, &CostParams::default(), 5);
        let spec = CellSpec::ps3();
        let seed = crate::greedy_cpu(&g, &spec);
        let seed_p = evaluate(&g, &spec, &seed).unwrap().period;
        let partial: Vec<_> = seed.assignment().iter().map(|&p| Some(p)).collect();
        let (m, p) = repair(&g, &spec, &partial, &LocalSearchOptions::default());
        assert!(p <= seed_p + 1e-15, "repair never worsens a feasible incumbent");
        assert!(evaluate(&g, &spec, &m).unwrap().is_feasible());
    }

    #[test]
    fn empty_partial_is_a_constructive_heuristic() {
        let g = fork_join("fj", 3, &CostParams::default(), 7);
        let spec = CellSpec::ps3();
        let (m, p) = repair(&g, &spec, &vec![None; g.n_tasks()], &LocalSearchOptions::default());
        let r = evaluate(&g, &spec, &m).unwrap();
        assert!(r.is_feasible());
        assert!((r.period - p).abs() < 1e-15);
        // never worse than all-on-PPE (its own fallback seat)
        let ppe = evaluate(&g, &spec, &Mapping::all_on(&g, PeId(0))).unwrap().period;
        assert!(p <= ppe + 1e-15);
    }

    #[test]
    fn eviction_restores_feasibility_from_broken_seats() {
        use cellstream_graph::{StreamGraph, TaskSpec};
        use cellstream_platform::{ByteSize, CellSpecBuilder};
        // one tiny SPE; two fat-edged tasks pinned on it are infeasible
        let spec = CellSpecBuilder::default()
            .spes(1)
            .local_store(ByteSize::kib(128))
            .code_size(ByteSize::kib(64))
            .build()
            .unwrap();
        let mut b = StreamGraph::builder("fat");
        let a = b.add_task(TaskSpec::new("a").uniform_cost(1e-6));
        let z = b.add_task(TaskSpec::new("z").uniform_cost(1e-6));
        b.add_edge(a, z, 64.0 * 1024.0).unwrap();
        let g = b.build().unwrap();
        let partial = vec![Some(PeId(1)), Some(PeId(1))]; // both on the SPE
        let (m, p) = repair(&g, &spec, &partial, &LocalSearchOptions::default());
        let r = evaluate(&g, &spec, &m).unwrap();
        assert!(r.is_feasible(), "repair must evict until feasible");
        assert!(p.is_finite());
    }

    #[test]
    fn carry_over_matches_by_name_across_versions() {
        let a = chain("a", 3, &CostParams::default(), 1);
        let b = chain("b", 2, &CostParams::default(), 2);
        let spec = CellSpec::ps3();
        let old_w = Workload::compose("w", &[&a]).unwrap();
        let old_m = Mapping::new(old_w.graph(), &spec, vec![PeId(1), PeId(2), PeId(0)]).unwrap();
        let mut new_w = old_w.clone();
        new_w.add(&b, 1.0).unwrap();
        let partial = carry_over(old_w.graph(), &old_m, new_w.graph(), &spec);
        assert_eq!(
            partial,
            vec![Some(PeId(1)), Some(PeId(2)), Some(PeId(0)), None, None],
            "retained tasks keep seats, admitted tasks are unplaced"
        );
        let (m, p) = repair(new_w.graph(), &spec, &partial, &LocalSearchOptions::default());
        assert!(p.is_finite());
        assert!(evaluate(new_w.graph(), &spec, &m).unwrap().is_feasible());
    }

    #[test]
    fn scheduler_wrapper_uses_the_first_seed() {
        let g = chain("c", 6, &CostParams::default(), 9);
        let spec = CellSpec::with_spes(2);
        let seed = crate::greedy_mem(&g, &spec);
        let seed_p = evaluate(&g, &spec, &seed).unwrap().period;
        let ctx = PlanContext::default().seed(seed);
        let plan = RepairScheduler::default().plan(&g, &spec, &ctx).unwrap();
        assert!(plan.is_feasible());
        assert!(plan.period() <= seed_p + 1e-15);
        assert_eq!(plan.scheduler, "repair");
        // and with no seed it still plans
        let plan = RepairScheduler::default().plan(&g, &spec, &PlanContext::default()).unwrap();
        assert!(plan.is_feasible());
    }
}
