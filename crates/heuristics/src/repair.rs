//! Incremental replanning: repair an incumbent mapping after the
//! workload changes, instead of re-solving from scratch.
//!
//! The online serving regime (cf. Benoit et al., *Resource Allocation
//! for Multiple Concurrent In-Network Stream-Processing Applications*)
//! replans on every application arrival, departure and rate change.
//! Those events leave most of the workload — and most of a good mapping
//! — intact, so [`repair`] treats the incumbent as a **partial
//! assignment** and only works on the delta:
//!
//! 1. **seed** — every retained task keeps its incumbent PE;
//! 2. **place** — unseeded tasks (newly admitted applications) are
//!    inserted one by one in topological order, each onto the PE that
//!    minimises the whole mapping's period on the incremental evaluator
//!    (feasible hosts strictly preferred — the same one-pass scheme as
//!    the comm-aware greedy);
//! 3. **evict** — if the seeded seats themselves became infeasible (a
//!    reweight grew buffer footprints, say), tasks are moved off the
//!    violated SPEs onto the PPE, largest working set first, until the
//!    §3.2 constraints hold again (the PPE accepts every task, so this
//!    always terminates feasible);
//! 4. **refine** — a budgeted [`local_search`] polishes the result from
//!    the repaired seats.
//!
//! Steps 2–3 are O(K·n_PEs) probes on [`EvalState`]; step 4 is bounded
//! by the caller's budget/round cap. That is what buys the serving
//! layer's order-of-magnitude replan-latency headroom over a from-scratch
//! portfolio while staying within a few percent of its quality (the
//! `online` bench gates both).

use crate::search::{exact_period, exact_period_with, refine_in_place, LocalSearchOptions};
use cellstream_core::scheduler::{Plan, PlanContext, PlanError, PlanStats, Scheduler};
use cellstream_core::{Availability, EvalState, Mapping, Move};
use cellstream_graph::{StreamGraph, TaskId};
use cellstream_platform::{CellSpec, PeId};
use std::time::Instant;

/// Knobs for [`repair_with`] beyond the refinement pass.
#[derive(Debug, Clone)]
pub struct RepairOptions {
    /// Parameters of the final [`refine_in_place`] polish (step 4).
    pub refine: LocalSearchOptions,
    /// Worker threads for the placement probes (step 2). `0`/`1` keeps
    /// placement sequential; more threads split the PE range into
    /// contiguous id chunks probed concurrently on per-thread
    /// [`EvalState`] clones. The chosen seats are **identical** to the
    /// sequential scan's — workers report raw per-PE verdicts and the
    /// reduction folds them in global PE id order, so the tie-break
    /// stays "lowest PE id wins" regardless of thread timing.
    pub probe_threads: usize,
    /// Minimum probe count (`unplaced tasks × PEs`) before the thread
    /// pool spins up; smaller deltas stay sequential (spawning costs
    /// more than it buys on a handful of O(degree) probes).
    pub parallel_min_probes: usize,
    /// Live platform capacity. `None` plans against the nominal
    /// platform (every PE healthy — the common case, zero overhead).
    /// `Some` overlays per-PE health: the evaluator slows tasks on
    /// degraded PEs and reads any seat on a dead PE as a §3.2
    /// violation, so placement avoids dead PEs and the evict pass
    /// evacuates seats stranded on them — fault recovery reuses the
    /// ordinary repair machinery unchanged.
    pub avail: Option<Availability>,
}

impl Default for RepairOptions {
    fn default() -> Self {
        RepairOptions {
            refine: LocalSearchOptions::default(),
            probe_threads: 1,
            parallel_min_probes: 2048,
            avail: None,
        }
    }
}

/// Repair a partial assignment into a full feasible mapping and refine
/// it. `partial[k]` is the retained PE of task `k` (`None` for tasks
/// that need placing — newly admitted work). Returns the mapping and its
/// exact verifier period (`+∞` only if even all-PPE is infeasible, which
/// cannot happen on platforms with a PPE).
///
/// Panics if `partial` and the graph disagree on length, or a retained
/// PE does not exist on `spec` — partial assignments and graphs travel
/// together, like mappings.
pub fn repair(
    g: &StreamGraph,
    spec: &CellSpec,
    partial: &[Option<PeId>],
    opts: &LocalSearchOptions,
) -> (Mapping, f64) {
    let ropts = RepairOptions { refine: opts.clone(), ..RepairOptions::default() };
    repair_with(g, spec, partial, &ropts)
}

/// [`repair`] with explicit [`RepairOptions`] (parallel probing et al.).
pub fn repair_with(
    g: &StreamGraph,
    spec: &CellSpec,
    partial: &[Option<PeId>],
    opts: &RepairOptions,
) -> (Mapping, f64) {
    assert_eq!(partial.len(), g.n_tasks(), "partial assignment covers every task");
    let ppe = spec.pe(0);
    // seed: retained seats; unplaced tasks start on the PPE (always legal)
    let assignment: Vec<PeId> = partial.iter().map(|p| p.unwrap_or(ppe)).collect();
    let seed = Mapping::new(g, spec, assignment).expect("retained PEs exist on this platform"); // check:allow(hot-path-panic): seed uses only PE ids the caller retained
    let mut state = match &opts.avail {
        Some(avail) => EvalState::new_with(g, spec, avail, &seed),
        None => EvalState::new(g, spec, &seed),
    }
    .expect("seed is structurally valid"); // check:allow(hot-path-panic): the just-built seed mapping is structurally valid
    repair_in_place_with(&mut state, partial, opts);
    // publish the exact verifier period, free of incremental drift
    let mapping = state.mapping();
    let period = match &opts.avail {
        Some(avail) => exact_period_with(g, spec, avail, &mapping),
        None => exact_period(g, spec, &mapping),
    };
    (mapping, period)
}

/// The allocation-free core of [`repair`]: re-seat a caller-owned
/// [`EvalState`] on `partial` (unplaced tasks fall back to the PPE),
/// place the delta, evict until feasible and refine — committing the
/// result into the state and returning its incremental score. With a
/// warmed-up state this performs **zero heap allocations** (the
/// counting-allocator suite pins it); the serving layer leans on that to
/// keep steady-state replans off the allocator entirely.
// check: no-alloc
pub fn repair_in_place(
    state: &mut EvalState<'_>,
    partial: &[Option<PeId>],
    opts: &LocalSearchOptions,
) -> f64 {
    repair_seats(state, partial, opts, 1)
}

/// [`repair_in_place`] with [`RepairOptions`] (the parallel-probing
/// variant allocates for its thread plumbing; the sequential path stays
/// allocation-free).
pub fn repair_in_place_with(
    state: &mut EvalState<'_>,
    partial: &[Option<PeId>],
    opts: &RepairOptions,
) -> f64 {
    let unplaced = partial.iter().filter(|p| p.is_none()).count();
    let threads =
        if opts.probe_threads > 1 && unplaced * state.spec().n_pes() >= opts.parallel_min_probes {
            opts.probe_threads
        } else {
            1
        };
    repair_seats(state, partial, &opts.refine, threads)
}

// check: no-alloc
fn repair_seats(
    state: &mut EvalState<'_>,
    partial: &[Option<PeId>],
    refine: &LocalSearchOptions,
    threads: usize,
) -> f64 {
    let spec = state.spec();
    assert_eq!(partial.len(), state.graph().n_tasks(), "partial assignment covers every task");
    let ppe = spec.pe(0);
    // seed: retained seats; unplaced tasks start on the PPE (always legal)
    state.reseat(partial.iter().map(|p| p.unwrap_or(ppe)));

    if threads > 1 {
        place_delta_parallel(state, partial, threads);
    } else {
        place_delta(state, partial);
    }

    // evict: restore feasibility if the retained seats (or a reweight)
    // broke it — move the largest working set off each violated SPE to
    // the PPE until the verifier is satisfied
    evict_until_feasible(state, spec);
    debug_assert!(state.is_feasible(), "eviction ends feasible");

    // drop the drift the committed placement/eviction moves accumulated
    // before refining, so the descent trajectory matches a fresh start
    // from the repaired seats
    state.rebase();
    #[cfg(feature = "debug_invariants")]
    state.check_invariants("repair_seats: after eviction and rebase");
    refine_in_place(state, refine)
}

/// One seat candidate strictly beats the incumbent: feasible hosts
/// dominate infeasible ones; within a class, smaller period, then the
/// emptier host. Period ties (frequent: placements below the current
/// bottleneck all look equal) break toward the least-occupied host, so
/// fresh work spreads over idle SPEs instead of piling onto the first PE
/// probed.
fn seat_better(best: &Option<(PeId, f64, bool, f64)>, p: f64, feasible: bool, occ: f64) -> bool {
    match *best {
        None => true,
        Some((_, bp, bf, bocc)) => {
            (feasible && !bf)
                || (feasible == bf
                    && (p < bp * (1.0 - 1e-12) || (p <= bp * (1.0 + 1e-12) && occ < bocc)))
        }
    }
}

/// Place the delta tasks sequentially: topological order so producers
/// sit before consumers, each onto the best seat per [`seat_better`].
fn place_delta(state: &mut EvalState<'_>, partial: &[Option<PeId>]) {
    let g = state.graph();
    let spec = state.spec();
    for &t in g.topo_order() {
        if partial[t.index()].is_some() {
            continue;
        }
        let mut best: Option<(PeId, f64, bool, f64)> = None;
        for to in spec.pes() {
            state.apply(Move::Relocate { task: t, to });
            let (p, feasible, occ) = (state.period(), state.is_feasible(), state.occupancy(to));
            state.undo();
            if seat_better(&best, p, feasible, occ) {
                best = Some((to, p, feasible, occ));
            }
        }
        let (to, ..) = best.expect("platforms have at least one PE"); // check:allow(hot-path-panic): every platform has at least the PPE, so the fold is non-empty
        state.apply(Move::Relocate { task: t, to });
    }
}

/// Per-PE probe verdict a worker reports: (period, feasible, occupancy).
type SeatProbe = (f64, bool, f64);

enum ProbeJob {
    /// Probe every PE in the worker's chunk for this task.
    Probe(TaskId),
    /// The main thread chose this seat: commit it so the clone tracks.
    Commit(TaskId, PeId),
}

/// [`place_delta`] with the per-task PE scan fanned out over worker
/// threads holding [`EvalState`] clones. Workers report raw per-PE
/// verdicts for contiguous PE id chunks and the main thread folds them
/// in global PE id order through the same [`seat_better`] predicate, so
/// the chosen seats — including every tie-break — are bitwise identical
/// to the sequential scan's, independent of thread scheduling (probes
/// restore exactly and commits replay identically on every clone, so no
/// clone ever drifts from the main state).
fn place_delta_parallel(state: &mut EvalState<'_>, partial: &[Option<PeId>], threads: usize) {
    let g = state.graph();
    let spec = state.spec();
    let n_pes = spec.n_pes();
    let threads = threads.min(n_pes).max(1);
    // chunk w probes PE ids [bounds[w], bounds[w+1])
    let bounds: Vec<usize> = (0..=threads).map(|w| w * n_pes / threads).collect();
    std::thread::scope(|scope| {
        let (res_tx, res_rx) = std::sync::mpsc::channel::<(usize, Vec<SeatProbe>)>();
        let mut job_txs = Vec::with_capacity(threads);
        for w in 0..threads {
            let (tx, rx) = std::sync::mpsc::channel::<ProbeJob>();
            job_txs.push(tx);
            let res_tx = res_tx.clone();
            let mut local = state.clone();
            let (lo, hi) = (bounds[w], bounds[w + 1]);
            scope.spawn(move || {
                while let Ok(job) = rx.recv() {
                    match job {
                        ProbeJob::Probe(t) => {
                            let mut probes = Vec::with_capacity(hi - lo);
                            for i in lo..hi {
                                let to = spec.pe(i);
                                local.apply(Move::Relocate { task: t, to });
                                probes.push((
                                    local.period(),
                                    local.is_feasible(),
                                    local.occupancy(to),
                                ));
                                local.undo();
                            }
                            if res_tx.send((w, probes)).is_err() {
                                break;
                            }
                        }
                        ProbeJob::Commit(t, to) => local.apply(Move::Relocate { task: t, to }),
                    }
                }
            });
        }
        drop(res_tx);
        let mut round: Vec<Option<Vec<SeatProbe>>> = vec![None; threads];
        for &t in g.topo_order() {
            if partial[t.index()].is_some() {
                continue;
            }
            for tx in &job_txs {
                tx.send(ProbeJob::Probe(t)).expect("probe worker alive"); // check:allow(hot-path-panic): probe workers live until Shutdown is sent
            }
            round.iter_mut().for_each(|r| *r = None);
            for _ in 0..threads {
                let (w, probes) = res_rx.recv().expect("probe worker replies"); // check:allow(hot-path-panic): each worker sends exactly one reply per round
                round[w] = Some(probes);
            }
            // the sequential scan's fold, replayed in global PE id order
            let mut best: Option<(PeId, f64, bool, f64)> = None;
            for w in 0..threads {
                let probes = round[w].as_ref().expect("every worker reported"); // check:allow(hot-path-panic): filled by the recv loop just above
                for (k, &(p, feasible, occ)) in probes.iter().enumerate() {
                    if seat_better(&best, p, feasible, occ) {
                        best = Some((spec.pe(bounds[w] + k), p, feasible, occ));
                    }
                }
            }
            let (to, ..) = best.expect("platforms have at least one PE"); // check:allow(hot-path-panic): every platform has at least the PPE, so the fold is non-empty
            for tx in &job_txs {
                tx.send(ProbeJob::Commit(t, to)).expect("probe worker alive"); // check:allow(hot-path-panic): probe workers live until Shutdown is sent
            }
            state.apply(Move::Relocate { task: t, to });
        }
    });
}

/// Move tasks off violated SPEs onto the PPE until constraints (1i)–(1k)
/// hold. Terminates: every step strictly shrinks the SPE-resident task
/// set, and the all-PPE mapping satisfies all three constraints.
/// Allocation-free: the violated SPE and the victim's buffer working set
/// are read straight off the live state instead of materialising a
/// report or a fresh `BufferPlan`.
// check: no-alloc
fn evict_until_feasible(state: &mut EvalState<'_>, spec: &CellSpec) {
    let g = state.graph();
    let ppe = spec.pe(0);
    while !state.is_feasible() {
        let Some(pe) = state.first_violated_spe() else {
            break; // defensive: is_feasible and the scan disagree
        };
        // largest buffer working set first: frees the most memory (and
        // its DMA slots) per move
        let victim = g
            .task_ids()
            .filter(|&t| state.pe_of(t) == pe)
            .max_by(|&a, &b| state.task_buffer_bytes(a).total_cmp(&state.task_buffer_bytes(b)))
            .expect("a violated SPE hosts at least one task"); // check:allow(hot-path-panic): a violated SPE cannot be empty: zero tasks means zero load
        state.apply(Move::Relocate { task: victim, to: ppe });
    }
}

/// [`repair`] as a registry [`Scheduler`] (`"repair"`).
///
/// The trait's [`PlanContext`] carries full mappings of the *current*
/// graph, so the partial assignment is derived from the first seed:
/// every task keeps its seed PE, and with no seed at all every task is
/// "new" — repair degrades to its one-pass placement + refinement, a
/// self-contained constructive heuristic. The serving layer calls
/// [`repair`] directly with a name-matched partial instead.
#[derive(Debug, Clone, Default)]
pub struct RepairScheduler {
    /// Refinement parameters (step 4).
    pub opts: LocalSearchOptions,
}

impl Scheduler for RepairScheduler {
    fn name(&self) -> &str {
        "repair"
    }

    fn plan(&self, g: &StreamGraph, spec: &CellSpec, ctx: &PlanContext) -> Result<Plan, PlanError> {
        let started = Instant::now();
        let partial: Vec<Option<PeId>> =
            match ctx.seeds.iter().find(|m| m.validate(g, spec).is_ok()) {
                Some(m) => m.assignment().iter().map(|&pe| Some(pe)).collect(),
                None => vec![None; g.n_tasks()],
            };
        let mut opts = self.opts.clone();
        if opts.budget.is_none() {
            opts.budget = ctx.budget;
        }
        if opts.cancel.is_none() {
            opts.cancel = Some(ctx.cancel.clone());
        }
        let (mapping, _) = repair(g, spec, &partial, &opts);
        Plan::from_mapping(
            self.name(),
            g,
            spec,
            mapping,
            PlanStats::Search { iterations: 0 },
            started.elapsed(),
        )
    }
}

/// Derive the partial assignment for [`repair`] by carrying an incumbent
/// mapping of one graph over to another version of it: tasks are matched
/// by name (stable across `Workload` recompositions), tasks without a
/// namesake — or whose retained PE no longer exists — come back `None`.
pub fn carry_over(
    old_g: &StreamGraph,
    old_m: &Mapping,
    new_g: &StreamGraph,
    spec: &CellSpec,
) -> Vec<Option<PeId>> {
    let mut out = Vec::with_capacity(new_g.n_tasks());
    carry_over_into(old_g, old_m, new_g, spec, &mut out);
    out
}

/// [`carry_over`] into a caller-owned buffer: `out` is cleared and
/// refilled, so an event loop reuses one seat vector across replans
/// instead of allocating a fresh one per event.
pub fn carry_over_into(
    old_g: &StreamGraph,
    old_m: &Mapping,
    new_g: &StreamGraph,
    spec: &CellSpec,
    out: &mut Vec<Option<PeId>>,
) {
    use std::collections::HashMap;
    assert_eq!(old_m.assignment().len(), old_g.n_tasks(), "incumbent/graph mismatch");
    let old_by_name: HashMap<&str, TaskId> =
        old_g.tasks().iter().enumerate().map(|(i, t)| (t.name.as_str(), TaskId(i))).collect();
    out.clear();
    out.extend(new_g.tasks().iter().map(|t| {
        old_by_name
            .get(t.name.as_str())
            .map(|&id| old_m.pe_of(id))
            .filter(|pe| pe.index() < spec.n_pes())
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellstream_core::evaluate;
    use cellstream_daggen::{chain, fork_join, CostParams};
    use cellstream_graph::Workload;

    #[test]
    fn full_partial_keeps_feasible_seats() {
        let g = chain("c", 8, &CostParams::default(), 5);
        let spec = CellSpec::ps3();
        let seed = crate::greedy_cpu(&g, &spec);
        let seed_p = evaluate(&g, &spec, &seed).unwrap().period;
        let partial: Vec<_> = seed.assignment().iter().map(|&p| Some(p)).collect();
        let (m, p) = repair(&g, &spec, &partial, &LocalSearchOptions::default());
        assert!(p <= seed_p + 1e-15, "repair never worsens a feasible incumbent");
        assert!(evaluate(&g, &spec, &m).unwrap().is_feasible());
    }

    #[test]
    fn empty_partial_is_a_constructive_heuristic() {
        let g = fork_join("fj", 3, &CostParams::default(), 7);
        let spec = CellSpec::ps3();
        let (m, p) = repair(&g, &spec, &vec![None; g.n_tasks()], &LocalSearchOptions::default());
        let r = evaluate(&g, &spec, &m).unwrap();
        assert!(r.is_feasible());
        assert!((r.period - p).abs() < 1e-15);
        // never worse than all-on-PPE (its own fallback seat)
        let ppe = evaluate(&g, &spec, &Mapping::all_on(&g, PeId(0))).unwrap().period;
        assert!(p <= ppe + 1e-15);
    }

    #[test]
    fn eviction_restores_feasibility_from_broken_seats() {
        use cellstream_graph::{StreamGraph, TaskSpec};
        use cellstream_platform::{ByteSize, CellSpecBuilder};
        // one tiny SPE; two fat-edged tasks pinned on it are infeasible
        let spec = CellSpecBuilder::default()
            .spes(1)
            .local_store(ByteSize::kib(128))
            .code_size(ByteSize::kib(64))
            .build()
            .unwrap();
        let mut b = StreamGraph::builder("fat");
        let a = b.add_task(TaskSpec::new("a").uniform_cost(1e-6));
        let z = b.add_task(TaskSpec::new("z").uniform_cost(1e-6));
        b.add_edge(a, z, 64.0 * 1024.0).unwrap();
        let g = b.build().unwrap();
        let partial = vec![Some(PeId(1)), Some(PeId(1))]; // both on the SPE
        let (m, p) = repair(&g, &spec, &partial, &LocalSearchOptions::default());
        let r = evaluate(&g, &spec, &m).unwrap();
        assert!(r.is_feasible(), "repair must evict until feasible");
        assert!(p.is_finite());
    }

    #[test]
    fn carry_over_matches_by_name_across_versions() {
        let a = chain("a", 3, &CostParams::default(), 1);
        let b = chain("b", 2, &CostParams::default(), 2);
        let spec = CellSpec::ps3();
        let old_w = Workload::compose("w", &[&a]).unwrap();
        let old_m = Mapping::new(old_w.graph(), &spec, vec![PeId(1), PeId(2), PeId(0)]).unwrap();
        let mut new_w = old_w.clone();
        new_w.add(&b, 1.0).unwrap();
        let partial = carry_over(old_w.graph(), &old_m, new_w.graph(), &spec);
        assert_eq!(
            partial,
            vec![Some(PeId(1)), Some(PeId(2)), Some(PeId(0)), None, None],
            "retained tasks keep seats, admitted tasks are unplaced"
        );
        let (m, p) = repair(new_w.graph(), &spec, &partial, &LocalSearchOptions::default());
        assert!(p.is_finite());
        assert!(evaluate(new_w.graph(), &spec, &m).unwrap().is_feasible());
    }

    #[test]
    fn parallel_probing_places_identically_to_sequential() {
        // several graph shapes × platforms × thread counts: the chosen
        // mapping must be bitwise identical to the sequential scan's
        // (workers report raw verdicts; the fold replays PE id order)
        let spec_big = CellSpec::qs22();
        let spec_small = CellSpec::ps3();
        for (g, spec) in [
            (chain("c", 24, &CostParams::default(), 3), &spec_big),
            (fork_join("fj", 9, &CostParams::default(), 8), &spec_big),
            (chain("s", 12, &CostParams::default(), 5), &spec_small),
        ] {
            // half the tasks retained (alternating), half unplaced
            let partial: Vec<Option<PeId>> =
                (0..g.n_tasks()).map(|k| (k % 2 == 0).then(|| spec.pe(k % spec.n_pes()))).collect();
            let (seq, seq_p) = repair(&g, spec, &partial, &LocalSearchOptions::default());
            for threads in [2, 3, 8] {
                let opts = RepairOptions {
                    probe_threads: threads,
                    parallel_min_probes: 1, // force the pool on
                    ..RepairOptions::default()
                };
                let (par, par_p) = repair_with(&g, spec, &partial, &opts);
                assert_eq!(par, seq, "{threads} threads diverged on {}", g.name());
                assert_eq!(par_p, seq_p);
            }
        }
    }

    #[test]
    fn small_deltas_stay_sequential_under_the_probe_threshold() {
        // under parallel_min_probes the pool must not spin up; results
        // are identical either way, so pin via the default threshold
        let g = chain("c", 4, &CostParams::default(), 2);
        let spec = CellSpec::ps3();
        let partial = vec![None; g.n_tasks()];
        let opts = RepairOptions { probe_threads: 4, ..RepairOptions::default() };
        assert!(g.n_tasks() * spec.n_pes() < opts.parallel_min_probes);
        let (m, p) = repair_with(&g, &spec, &partial, &opts);
        let (seq, seq_p) = repair(&g, &spec, &partial, &LocalSearchOptions::default());
        assert_eq!(m, seq);
        assert_eq!(p, seq_p);
    }

    #[test]
    fn repair_in_place_reuses_one_state_across_deltas() {
        // the serving shape: one EvalState, successive partials on the
        // same composed graph — each in-place pass must match a from-
        // scratch repair of the same partial
        let g = fork_join("fj", 5, &CostParams::default(), 11);
        let spec = CellSpec::ps3();
        let opts = LocalSearchOptions { sweep: true, ..LocalSearchOptions::default() };
        let seed = Mapping::all_on(&g, PeId(0));
        let mut state = EvalState::new(&g, &spec, &seed).unwrap();
        for round in 0..4 {
            // retain a sliding window of seats, leave the rest unplaced
            let partial: Vec<Option<PeId>> = (0..g.n_tasks())
                .map(|k| ((k + round) % 3 != 0).then(|| spec.pe((k + round) % spec.n_pes())))
                .collect();
            let score = repair_in_place(&mut state, &partial, &opts);
            let (fresh, fresh_p) = repair(&g, &spec, &partial, &opts);
            assert_eq!(state.mapping(), fresh, "round {round}");
            assert!(state.is_feasible());
            assert!((score - fresh_p).abs() <= 1e-9 * fresh_p.max(1e-12), "round {round}");
        }
    }

    #[test]
    fn repair_evacuates_dead_pes_and_avoids_them() {
        // kill an SPE under an incumbent that seats work there: the
        // repaired mapping must hold zero seats on the dead PE and stay
        // feasible on the degraded platform
        let g = chain("c", 8, &CostParams::default(), 5);
        let spec = CellSpec::ps3();
        let seed = crate::greedy_cpu(&g, &spec);
        let dead = seed
            .assignment()
            .iter()
            .copied()
            .find(|pe| pe.index() > 0)
            .expect("greedy seats something on an SPE");
        let mut avail = Availability::full(&spec);
        avail.fail(dead);
        let partial: Vec<_> = seed.assignment().iter().map(|&p| Some(p)).collect();
        let opts = RepairOptions { avail: Some(avail.clone()), ..RepairOptions::default() };
        let (m, p) = repair_with(&g, &spec, &partial, &opts);
        assert!(p.is_finite(), "recovery must find a live plan");
        assert!(m.assignment().iter().all(|pe| *pe != dead), "no seat survives on the dead PE");
        let r = cellstream_core::evaluate_with(&g, &spec, &avail, &m).unwrap();
        assert!(r.is_feasible());
        assert!((r.period - p).abs() < 1e-15);
        // fresh placements (no partial) must also avoid the dead PE
        let (m2, p2) = repair_with(&g, &spec, &vec![None; g.n_tasks()], &opts);
        assert!(p2.is_finite());
        assert!(m2.assignment().iter().all(|pe| *pe != dead));
    }

    #[test]
    fn degraded_pe_shifts_work_elsewhere() {
        // a half-speed SPE is still usable but less attractive; the
        // repaired plan must score with the slowdown applied
        let g = fork_join("fj", 4, &CostParams::default(), 3);
        let spec = CellSpec::ps3();
        let mut avail = Availability::full(&spec);
        avail.set_factor(spec.pe(1), 0.5);
        let opts = RepairOptions { avail: Some(avail.clone()), ..RepairOptions::default() };
        let (m, p) = repair_with(&g, &spec, &vec![None; g.n_tasks()], &opts);
        let r = cellstream_core::evaluate_with(&g, &spec, &avail, &m).unwrap();
        assert!(r.is_feasible());
        assert!((r.period - p).abs() < 1e-15, "published period scores live capacity");
    }

    #[test]
    fn scheduler_wrapper_uses_the_first_seed() {
        let g = chain("c", 6, &CostParams::default(), 9);
        let spec = CellSpec::with_spes(2);
        let seed = crate::greedy_mem(&g, &spec);
        let seed_p = evaluate(&g, &spec, &seed).unwrap().period;
        let ctx = PlanContext::default().seed(seed);
        let plan = RepairScheduler::default().plan(&g, &spec, &ctx).unwrap();
        assert!(plan.is_feasible());
        assert!(plan.period() <= seed_p + 1e-15);
        assert_eq!(plan.scheduler, "repair");
        // and with no seed it still plans
        let plan = RepairScheduler::default().plan(&g, &spec, &PlanContext::default()).unwrap();
        assert!(plan.is_feasible());
    }
}
