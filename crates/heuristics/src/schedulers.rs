//! [`Scheduler`] implementations for the heuristics, plus the
//! string-keyed registry covering every algorithm in the workspace.
//!
//! The registry is what makes bench binaries and examples data-driven:
//! `scheduler_by_name("greedy_mem")` instead of a hand-wired call, and
//! [`all_schedulers`] to sweep the whole family (as the paper's §6
//! evaluation does).

use crate::annealing::{anneal, AnnealingOptions};
use crate::comm_aware::comm_aware_greedy;
use crate::greedy::{greedy_cpu, greedy_mem};
use crate::search::{local_search, multi_start, LocalSearchOptions};
use cellstream_core::scheduler::{
    BruteScheduler, MilpScheduler, Plan, PlanContext, PlanError, PlanStats, PpeOnlyScheduler,
    Scheduler,
};
use cellstream_core::{evaluate, Mapping};
use cellstream_graph::StreamGraph;
use cellstream_platform::{CellSpec, PeId};
use std::time::Instant;

/// *GreedyMem* (paper §6.3) as a [`Scheduler`].
#[derive(Debug, Clone, Default)]
pub struct GreedyMemScheduler;

impl Scheduler for GreedyMemScheduler {
    fn name(&self) -> &str {
        "greedy_mem"
    }

    fn plan(
        &self,
        g: &StreamGraph,
        spec: &CellSpec,
        _ctx: &PlanContext,
    ) -> Result<Plan, PlanError> {
        let started = Instant::now();
        let mapping = greedy_mem(g, spec);
        Plan::from_mapping(self.name(), g, spec, mapping, PlanStats::Heuristic, started.elapsed())
    }
}

/// *GreedyCpu* (paper §6.3) as a [`Scheduler`].
#[derive(Debug, Clone, Default)]
pub struct GreedyCpuScheduler;

impl Scheduler for GreedyCpuScheduler {
    fn name(&self) -> &str {
        "greedy_cpu"
    }

    fn plan(
        &self,
        g: &StreamGraph,
        spec: &CellSpec,
        _ctx: &PlanContext,
    ) -> Result<Plan, PlanError> {
        let started = Instant::now();
        let mapping = greedy_cpu(g, spec);
        Plan::from_mapping(self.name(), g, spec, mapping, PlanStats::Heuristic, started.elapsed())
    }
}

/// The communication-aware greedy extension as a [`Scheduler`].
#[derive(Debug, Clone, Default)]
pub struct CommAwareScheduler;

impl Scheduler for CommAwareScheduler {
    fn name(&self) -> &str {
        "comm_aware"
    }

    fn plan(
        &self,
        g: &StreamGraph,
        spec: &CellSpec,
        _ctx: &PlanContext,
    ) -> Result<Plan, PlanError> {
        let started = Instant::now();
        let mapping = comm_aware_greedy(g, spec);
        Plan::from_mapping(self.name(), g, spec, mapping, PlanStats::Heuristic, started.elapsed())
    }
}

/// Fill an unset per-options budget and cancellation token from the
/// planning context, so a [`Portfolio`](crate::Portfolio) wall-clock
/// budget actually bounds the iterative members and a context-level
/// cancel aborts them (explicit option values win).
fn search_opts_for(base: &LocalSearchOptions, ctx: &PlanContext) -> LocalSearchOptions {
    let mut opts = base.clone();
    if opts.budget.is_none() {
        opts.budget = ctx.budget;
    }
    if opts.cancel.is_none() {
        opts.cancel = Some(ctx.cancel.clone());
    }
    opts
}

/// Steepest-descent local search as a [`Scheduler`]: refines the first
/// feasible seed from the context, falling back to *GreedyCpu*. Honours
/// `ctx.budget` unless the options carry their own.
#[derive(Debug, Clone, Default)]
pub struct LocalSearchScheduler {
    /// Search parameters.
    pub opts: LocalSearchOptions,
}

impl Scheduler for LocalSearchScheduler {
    fn name(&self) -> &str {
        "local_search"
    }

    fn plan(&self, g: &StreamGraph, spec: &CellSpec, ctx: &PlanContext) -> Result<Plan, PlanError> {
        let started = Instant::now();
        let start = ctx
            .seeds
            .iter()
            .find(|m| evaluate(g, spec, m).map(|r| r.is_feasible()).unwrap_or(false))
            .cloned()
            .unwrap_or_else(|| greedy_cpu(g, spec));
        let (mapping, _) = local_search(g, spec, &start, &search_opts_for(&self.opts, ctx));
        // local_search does not report how many rounds it actually ran,
        // so follow the PlanStats contract: 0 when untracked.
        Plan::from_mapping(
            self.name(),
            g,
            spec,
            mapping,
            PlanStats::Search { iterations: 0 },
            started.elapsed(),
        )
    }
}

/// Simulated annealing as a [`Scheduler`]: walks from the first feasible
/// seed (falling back to *GreedyCpu*; infeasible starts are handled by
/// [`anneal`] itself, which restarts from PPE-only). Honours
/// `ctx.budget` unless the options carry their own.
#[derive(Debug, Clone, Default)]
pub struct AnnealScheduler {
    /// Annealing parameters.
    pub opts: AnnealingOptions,
}

impl Scheduler for AnnealScheduler {
    fn name(&self) -> &str {
        "anneal"
    }

    fn plan(&self, g: &StreamGraph, spec: &CellSpec, ctx: &PlanContext) -> Result<Plan, PlanError> {
        let started = Instant::now();
        let start = ctx
            .seeds
            .iter()
            .find(|m| evaluate(g, spec, m).map(|r| r.is_feasible()).unwrap_or(false))
            .cloned()
            .unwrap_or_else(|| greedy_cpu(g, spec));
        let mut opts = self.opts.clone();
        if opts.budget.is_none() {
            opts.budget = ctx.budget;
        }
        if opts.cancel.is_none() {
            opts.cancel = Some(ctx.cancel.clone());
        }
        let (mapping, _) = anneal(g, spec, &start, &opts);
        Plan::from_mapping(
            self.name(),
            g,
            spec,
            mapping,
            PlanStats::Search { iterations: self.opts.steps as u64 },
            started.elapsed(),
        )
    }
}

/// Multi-start local search as a [`Scheduler`]: refines both §6.3
/// greedies, the comm-aware greedy, the PPE-only baseline, and every
/// context seed, keeping the best result — "the best heuristic answer
/// without the MILP".
#[derive(Debug, Clone, Default)]
pub struct MultiStartScheduler {
    /// Search parameters applied to every start.
    pub opts: LocalSearchOptions,
}

impl Scheduler for MultiStartScheduler {
    fn name(&self) -> &str {
        "multi_start"
    }

    fn plan(&self, g: &StreamGraph, spec: &CellSpec, ctx: &PlanContext) -> Result<Plan, PlanError> {
        let started = Instant::now();
        let mut starts = vec![
            greedy_mem(g, spec),
            greedy_cpu(g, spec),
            comm_aware_greedy(g, spec),
            Mapping::all_on(g, PeId(0)),
        ];
        starts.extend(ctx.seeds.iter().cloned());
        let n_starts = starts.len() as u64;
        // the per-start budget splits the context budget across starts
        let mut opts = self.opts.clone();
        if opts.budget.is_none() {
            opts.budget = ctx.budget.map(|b| b / starts.len().max(1) as u32);
        }
        if opts.cancel.is_none() {
            opts.cancel = Some(ctx.cancel.clone());
        }
        let (mapping, _) = multi_start(g, spec, &starts, &opts);
        Plan::from_mapping(
            self.name(),
            g,
            spec,
            mapping,
            PlanStats::Search { iterations: n_starts },
            started.elapsed(),
        )
    }
}

/// Names of every registered scheduler, in presentation order.
pub const SCHEDULER_NAMES: [&str; 10] = [
    "ppe_only",
    "greedy_mem",
    "greedy_cpu",
    "comm_aware",
    "local_search",
    "anneal",
    "multi_start",
    "repair",
    "milp",
    "brute",
];

/// The registry's keys, **sorted alphabetically** — what CLI/bench
/// binaries and the serving layers enumerate instead of hard-coding the
/// family. The cluster coordinator surfaces this list in status
/// reports, so its order must be reproducible across builds rather than
/// whatever presentation order [`SCHEDULER_NAMES`] happens to use.
/// Every name resolves through [`scheduler_by_name`].
pub fn scheduler_names() -> &'static [&'static str] {
    static SORTED: std::sync::OnceLock<Vec<&'static str>> = std::sync::OnceLock::new();
    SORTED.get_or_init(|| {
        let mut names = SCHEDULER_NAMES.to_vec();
        names.sort_unstable();
        names
    })
}

/// Look up a scheduler by its registry name; `None` for unknown names.
///
/// Covers the full family: the paper's §6.3 greedies, the extension
/// heuristics, the incremental repair scheduler, the §5 MILP driver, the
/// exhaustive optimum, and the PPE-only baseline.
pub fn scheduler_by_name(name: &str) -> Option<Box<dyn Scheduler>> {
    match name {
        "ppe_only" => Some(Box::new(PpeOnlyScheduler)),
        "greedy_mem" => Some(Box::new(GreedyMemScheduler)),
        "greedy_cpu" => Some(Box::new(GreedyCpuScheduler)),
        "comm_aware" => Some(Box::new(CommAwareScheduler)),
        "local_search" => Some(Box::new(LocalSearchScheduler::default())),
        "anneal" => Some(Box::new(AnnealScheduler::default())),
        "multi_start" => Some(Box::new(MultiStartScheduler::default())),
        "repair" => Some(Box::new(crate::repair::RepairScheduler::default())),
        "milp" => Some(Box::new(MilpScheduler)),
        "brute" => Some(Box::new(BruteScheduler)),
        _ => None,
    }
}

/// Every registered scheduler, in [`SCHEDULER_NAMES`] order.
pub fn all_schedulers() -> Vec<Box<dyn Scheduler>> {
    SCHEDULER_NAMES
        .iter()
        .map(|n| scheduler_by_name(n).expect("registry covers its own names"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellstream_daggen::{chain, CostParams};

    #[test]
    fn registry_is_closed_over_its_names() {
        for name in SCHEDULER_NAMES {
            let s = scheduler_by_name(name).expect(name);
            assert_eq!(s.name(), name);
        }
        assert!(scheduler_by_name("nope").is_none());
        assert_eq!(all_schedulers().len(), SCHEDULER_NAMES.len());
    }

    #[test]
    fn scheduler_names_is_the_sorted_registry() {
        let names = scheduler_names();
        let mut sorted = SCHEDULER_NAMES.to_vec();
        sorted.sort_unstable();
        assert_eq!(names, sorted.as_slice(), "sorted view of the registry");
        assert!(names.windows(2).all(|w| w[0] < w[1]), "strictly sorted, no duplicates");
        // parity: same key set as the registry, every key resolves
        for name in names {
            assert!(SCHEDULER_NAMES.contains(name));
            assert_eq!(scheduler_by_name(name).expect(name).name(), *name);
        }
        assert_eq!(names.len(), SCHEDULER_NAMES.len());
    }

    #[test]
    fn heuristic_schedulers_match_their_functions() {
        let g = chain("c", 6, &CostParams::default(), 7);
        let spec = CellSpec::ps3();
        let ctx = PlanContext::default();
        let plan = GreedyMemScheduler.plan(&g, &spec, &ctx).unwrap();
        assert_eq!(plan.mapping, greedy_mem(&g, &spec));
        let plan = GreedyCpuScheduler.plan(&g, &spec, &ctx).unwrap();
        assert_eq!(plan.mapping, greedy_cpu(&g, &spec));
        let plan = CommAwareScheduler.plan(&g, &spec, &ctx).unwrap();
        assert_eq!(plan.mapping, comm_aware_greedy(&g, &spec));
    }

    #[test]
    fn seeded_local_search_never_worse_than_seed() {
        let g = chain("c", 8, &CostParams::default(), 21);
        let spec = CellSpec::with_spes(3);
        let seed = greedy_mem(&g, &spec);
        let seed_period = evaluate(&g, &spec, &seed).unwrap().period;
        let ctx = PlanContext::default().seed(seed);
        let plan = LocalSearchScheduler::default().plan(&g, &spec, &ctx).unwrap();
        assert!(plan.period() <= seed_period + 1e-15);
    }

    #[test]
    fn multi_start_beats_or_matches_all_greedies() {
        let g = chain("c", 7, &CostParams::default(), 17);
        let spec = CellSpec::with_spes(2);
        let ctx = PlanContext::default();
        let best = MultiStartScheduler::default().plan(&g, &spec, &ctx).unwrap();
        for name in ["greedy_mem", "greedy_cpu", "comm_aware", "ppe_only"] {
            let plan = scheduler_by_name(name).unwrap().plan(&g, &spec, &ctx).unwrap();
            if plan.is_feasible() {
                assert!(best.period() <= plan.period() + 1e-15, "{name}");
            }
        }
    }
}
