//! Mapping heuristics.
//!
//! The two **reference heuristics of paper §6.3** — both greedy, both
//! memory-aware, both deliberately communication-blind (that blindness is
//! exactly what Figure 7 exposes):
//!
//! * [`greedy_mem`] — *GreedyMem*: walk tasks in topological order; among
//!   the SPEs with enough free local store for the task's buffers, pick
//!   the one with the **least loaded memory**; fall back to the PPE.
//! * [`greedy_cpu`] — *GreedyCpu*: same walk, but among all PEs (SPEs and
//!   the PPE) with enough memory, pick the one with the **smallest
//!   computation load**.
//!
//! Plus the extension heuristics the paper's conclusion calls for
//! ("design involved mapping heuristics which approach the optimal
//! throughput"):
//!
//! * [`local_search`] — steepest-descent task-move/swap refinement of any
//!   starting mapping;
//! * [`comm_aware_greedy`] — one-pass greedy that relocates each task off
//!   the PPE-only baseline to the PE minimising the *whole mapping's*
//!   period (so communication, memory traffic and DMA pressure count),
//!   not just memory or compute;
//! * [`anneal`] — simulated annealing over single-task moves, for
//!   escaping the local optima where steepest descent stops.
//!
//! All three iterative heuristics run on the **incremental evaluator**
//! ([`cellstream_core::EvalState`]): probing a neighbour is an O(degree)
//! delta update instead of a full O(V+E) re-evaluation, which is what
//! makes the O(K²) swap neighbourhood the default and paper-scale graphs
//! (94 tasks on a QS22) routine.
//!
//! Every heuristic returns a structurally valid mapping; feasibility of
//! the greedy outputs follows from their memory checks (DMA limits can
//! still be violated — the paper's greedies ignore them too, and the
//! evaluator reports it).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annealing;
pub mod comm_aware;
pub mod greedy;
pub mod multi_app;
pub mod portfolio;
pub mod repair;
pub mod schedulers;
pub mod search;

pub use annealing::{anneal, AnnealingOptions};
pub use comm_aware::comm_aware_greedy;
pub use greedy::{greedy_cpu, greedy_mem};
pub use multi_app::{best_partition, partition_mapping};
pub use portfolio::{MemberResult, Portfolio, PortfolioOutcome};
pub use repair::{
    carry_over, carry_over_into, repair, repair_in_place, repair_in_place_with, repair_with,
    RepairOptions, RepairScheduler,
};
pub use schedulers::{
    all_schedulers, scheduler_by_name, scheduler_names, AnnealScheduler, CommAwareScheduler,
    GreedyCpuScheduler, GreedyMemScheduler, LocalSearchScheduler, MultiStartScheduler,
    SCHEDULER_NAMES,
};
pub use search::{local_search, multi_start, refine_in_place, LocalSearchOptions};

#[cfg(test)]
mod tests;
