//! The paper's two reference heuristics (§6.3), implemented to the letter.
//!
//! Both process tasks in topological order and never revisit a decision
//! ("Both strategies are greedy strategies: they map the tasks one after
//! the other, and never go back on a previous decision").

use cellstream_core::steady::buffers::BufferPlan;
use cellstream_core::Mapping;
use cellstream_graph::StreamGraph;
use cellstream_platform::{CellSpec, PeId, PeKind};

/// *GreedyMem*: place each task on the SPE with enough free local store
/// and the least-loaded memory; if no SPE fits, on the PPE.
///
/// Paper: "Given a task, it selects the SPEs which have enough free
/// memory to host the task and its buffers. Among those SPEs, the one
/// with the least loaded memory is chosen. If no SPE can host the task,
/// it is allocated on the PPE."
pub fn greedy_mem(g: &StreamGraph, spec: &CellSpec) -> Mapping {
    let plan = BufferPlan::new(g);
    let budget = spec.local_store_budget() as f64;
    let mut mem_used = vec![0.0f64; spec.n_pes()];
    let mut assignment = vec![PeId(0); g.n_tasks()];

    for &t in g.topo_order() {
        let need = plan.for_task(t);
        let candidate =
            spec.spes().filter(|pe| mem_used[pe.index()] + need <= budget).min_by(|a, b| {
                mem_used[a.index()].total_cmp(&mem_used[b.index()]).then(a.index().cmp(&b.index()))
            });
        match candidate {
            Some(pe) => {
                mem_used[pe.index()] += need;
                assignment[t.index()] = pe;
            }
            None => assignment[t.index()] = spec.pe(0), // PPE fallback
        }
    }
    Mapping::new(g, spec, assignment).expect("greedy output is structurally valid")
}

/// *GreedyCpu*: place each task on the PE (SPE **or** PPE) with enough
/// memory and the smallest computation load.
///
/// Paper: "among the processing elements (SPEs and PPE) with enough
/// memory to host a task, it selects the one with the smallest
/// computation load."
pub fn greedy_cpu(g: &StreamGraph, spec: &CellSpec) -> Mapping {
    let plan = BufferPlan::new(g);
    let budget = spec.local_store_budget() as f64;
    let mut mem_used = vec![0.0f64; spec.n_pes()];
    let mut cpu_load = vec![0.0f64; spec.n_pes()];
    let mut assignment = vec![PeId(0); g.n_tasks()];

    for &t in g.topo_order() {
        let need = plan.for_task(t);
        let candidate = spec
            .pes()
            .filter(|&pe| {
                // the PPE's main memory is unconstrained (paper §2.1)
                spec.kind_of(pe) == PeKind::Ppe || mem_used[pe.index()] + need <= budget
            })
            .min_by(|a, b| {
                cpu_load[a.index()].total_cmp(&cpu_load[b.index()]).then(a.index().cmp(&b.index()))
            })
            .expect("the PPE always qualifies");
        if spec.is_spe(candidate) {
            mem_used[candidate.index()] += need;
        }
        cpu_load[candidate.index()] += g.task(t).cost_on(spec.kind_of(candidate));
        assignment[t.index()] = candidate;
    }
    Mapping::new(g, spec, assignment).expect("greedy output is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellstream_core::evaluate;
    use cellstream_daggen::{chain, CostParams};
    use cellstream_platform::CellSpecBuilder;

    #[test]
    fn greedy_mem_prefers_spes() {
        let g = chain("c", 6, &CostParams::default(), 3);
        let spec = CellSpec::with_spes(4);
        let m = greedy_mem(&g, &spec);
        // small chain: everything fits on SPEs, PPE unused
        assert_eq!(m.count_on(PeId(0)), 0);
        let report = evaluate(&g, &spec, &m).unwrap();
        // greedy_mem respects the memory budget by construction
        assert!(!report
            .violations
            .iter()
            .any(|v| matches!(v, cellstream_core::Violation::LocalStore { .. })));
    }

    #[test]
    fn greedy_mem_falls_back_to_ppe_when_stores_full() {
        // tiny local store: nothing fits on the single SPE
        let spec = CellSpecBuilder::default()
            .spes(1)
            .local_store(cellstream_platform::ByteSize::kib(65))
            .code_size(cellstream_platform::ByteSize::kib(64))
            .build()
            .unwrap();
        let g = chain("c", 5, &CostParams::default(), 3); // buffers are tens of kB
        let m = greedy_mem(&g, &spec);
        assert_eq!(m.count_on(PeId(0)), 5, "all tasks must fall back to the PPE");
    }

    #[test]
    fn greedy_mem_spreads_by_least_loaded_memory() {
        let g = chain("c", 4, &CostParams::default(), 9);
        let spec = CellSpec::with_spes(4);
        let m = greedy_mem(&g, &spec);
        // least-loaded rule scatters consecutive tasks across empty SPEs
        let used: std::collections::BTreeSet<_> = m.assignment().iter().collect();
        assert!(used.len() >= 3, "expected scattering, got {m}");
    }

    #[test]
    fn greedy_cpu_balances_compute() {
        let g = chain("c", 8, &CostParams::default(), 5);
        let spec = CellSpec::with_spes(4);
        let m = greedy_cpu(&g, &spec);
        let report = evaluate(&g, &spec, &m).unwrap();
        // compute should be spread: no single PE carries everything
        let max_load = report.compute_load.iter().cloned().fold(0.0, f64::max);
        let total: f64 = report.compute_load.iter().sum();
        assert!(max_load < total, "greedy_cpu must use several PEs: {m}");
    }

    #[test]
    fn greedy_cpu_uses_ppe_too() {
        // With zero SPEs both heuristics collapse to PPE-only.
        let g = chain("c", 4, &CostParams::default(), 2);
        let spec = CellSpec::with_spes(0);
        assert_eq!(greedy_cpu(&g, &spec).count_on(PeId(0)), 4);
        assert_eq!(greedy_mem(&g, &spec).count_on(PeId(0)), 4);
    }

    #[test]
    fn deterministic() {
        let g = chain("c", 10, &CostParams::default(), 8);
        let spec = CellSpec::ps3();
        assert_eq!(greedy_mem(&g, &spec), greedy_mem(&g, &spec));
        assert_eq!(greedy_cpu(&g, &spec), greedy_cpu(&g, &spec));
    }
}
