//! `cellstream-check` — the workspace lint gate.
//!
//! ```text
//! cargo run -p cellstream-check -- [--deny] [--json PATH] [--root PATH]
//! ```
//!
//! Walks `<root>/crates/*/src`, applies the repo rules (see
//! `cellstream_check::lint::rules`), prints findings as
//! `file:line: [rule] message`, optionally writes a JSON report, and —
//! under `--deny` — exits non-zero when anything fired.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut json: Option<PathBuf> = None;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => match args.next() {
                Some(p) => json = Some(PathBuf::from(p)),
                None => return usage("--json needs a path"),
            },
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root needs a path"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let report = match cellstream_check::lint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cellstream-check: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for f in &report.findings {
        println!("{f}");
    }
    println!(
        "cellstream-check: {} file(s) scanned, {} finding(s)",
        report.files_scanned,
        report.findings.len()
    );
    if let Some(path) = json {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("cellstream-check: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if deny && !report.findings.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("cellstream-check: {err}");
    eprintln!("usage: cellstream-check [--deny] [--json PATH] [--root PATH]");
    ExitCode::from(2)
}
