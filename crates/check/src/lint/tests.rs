//! Rule pins: seeding any single banned pattern must produce a finding,
//! suppressions must silence it, and — the acceptance gate — the real
//! workspace must scan clean.

use super::rules;
use super::{check_source, run};
use std::path::Path;

fn rules_fired(path: &str, src: &str) -> Vec<String> {
    check_source(path, src).into_iter().map(|f| f.rule).collect()
}

// ---- float-ord -----------------------------------------------------------

#[test]
fn float_ord_flags_partial_cmp_unwrap() {
    let src = "fn f(xs: &mut Vec<f64>) {\n    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
    let fired = rules_fired("crates/x/src/a.rs", src);
    assert!(fired.contains(&rules::FLOAT_ORD.to_string()), "fired: {fired:?}");
}

#[test]
fn float_ord_flags_test_code_too() {
    // PR 3's bug class lived in a test helper — the rule must not skip
    // #[cfg(test)] regions
    let src = "#[cfg(test)]\nmod tests {\n    fn f(a: f64, b: f64) -> bool { a.partial_cmp(&b).is_some() }\n}\n";
    let fired = rules_fired("crates/x/src/a.rs", src);
    assert!(fired.contains(&rules::FLOAT_ORD.to_string()));
}

#[test]
fn float_ord_accepts_total_cmp_and_allows() {
    let clean = "fn f(xs: &mut Vec<f64>) {\n    xs.sort_by(|a, b| a.total_cmp(b));\n}\n";
    assert!(rules_fired("crates/x/src/a.rs", clean).is_empty());
    let allowed = "impl PartialOrd for T {\n    // check:allow(float-ord): forwards to Ord\n    fn partial_cmp(&self, o: &Self) -> Option<Ordering> { Some(self.cmp(o)) }\n}\n";
    assert!(rules_fired("crates/x/src/a.rs", allowed).is_empty());
}

#[test]
fn float_ord_ignores_partial_cmp_in_strings_and_comments() {
    let src = "// partial_cmp would be wrong here\nfn f() -> &'static str { \"partial_cmp\" }\n";
    assert!(rules_fired("crates/x/src/a.rs", src).is_empty());
}

// ---- hot-path-panic ------------------------------------------------------

#[test]
fn hot_path_panic_flags_unwrap_expect_panic() {
    for seed in ["x.unwrap();", "x.expect(\"reason\");", "panic!(\"boom\");"] {
        let src = format!("fn f() {{\n    {seed}\n}}\n");
        let fired = rules_fired("crates/serve/src/service.rs", &src);
        assert!(
            fired.contains(&rules::HOT_PATH_PANIC.to_string()),
            "{seed} must fire, got {fired:?}"
        );
    }
}

#[test]
fn hot_path_panic_applies_only_to_hot_path_files() {
    let src = "fn f() { x.unwrap(); }\n";
    assert!(rules_fired("crates/milp/src/bb.rs", src).is_empty());
    assert!(!rules_fired("crates/heuristics/src/repair.rs", src).is_empty());
}

#[test]
fn hot_path_panic_skips_tests_and_allows() {
    let test_only = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
    assert!(rules_fired("crates/rt/src/ring.rs", test_only).is_empty());
    let allowed = "fn f() {\n    // check:allow(hot-path-panic): validated upfront\n    x.expect(\"validated\");\n}\n";
    assert!(rules_fired("crates/serve/src/pipeline.rs", allowed).is_empty());
}

#[test]
fn hot_path_panic_does_not_flag_lookalikes() {
    // unwrap_or is not unwrap; should_panic has no bang; assert! is a
    // deliberate guard, not a panic operator
    let src = "fn f() {\n    let v = x.unwrap_or(0);\n    assert!(v >= 0, \"guard\");\n}\n";
    assert!(rules_fired("crates/rt/src/ring.rs", src).is_empty());
}

// ---- forbid-unsafe -------------------------------------------------------

#[test]
fn forbid_unsafe_flags_a_bare_crate_root() {
    let fired = rules_fired("crates/x/src/lib.rs", "pub mod a;\n");
    assert!(fired.contains(&rules::FORBID_UNSAFE.to_string()));
    let ok = "#![forbid(unsafe_code)]\npub mod a;\n";
    assert!(rules_fired("crates/x/src/lib.rs", ok).is_empty());
    // non-roots are not checked
    assert!(rules_fired("crates/x/src/a.rs", "pub fn f() {}\n").is_empty());
}

// ---- no-alloc ------------------------------------------------------------

#[test]
fn no_alloc_flags_each_allocating_call() {
    for seed in [
        "let v = Vec::new();",
        "let v = vec![1, 2];",
        "let s = x.to_string();",
        "let s = format!(\"{x}\");",
        "let v: Vec<u32> = it.collect();",
        "let v = it.collect::<Vec<_>>();",
        "let y = x.clone();",
        "let b = Box::new(x);",
    ] {
        let src = format!("// check: no-alloc\nfn hot(x: u32) {{\n    {seed}\n}}\n");
        let fired = rules_fired("crates/x/src/a.rs", &src);
        assert!(fired.contains(&rules::NO_ALLOC.to_string()), "{seed} must fire, got {fired:?}");
    }
}

#[test]
fn no_alloc_is_scoped_to_the_tagged_fn() {
    let src = "// check: no-alloc\nfn hot() {\n    let x = 1 + 1;\n}\n\nfn cold() {\n    let v = Vec::new();\n}\n";
    assert!(rules_fired("crates/x/src/a.rs", src).is_empty(), "allocation outside the tag is fine");
}

#[test]
fn no_alloc_honours_inline_allows() {
    let src = "// check: no-alloc\nfn hot() {\n    // check:allow(no-alloc): one-time warm-up\n    let v = Vec::new();\n}\n";
    assert!(rules_fired("crates/x/src/a.rs", src).is_empty());
}

// ---- atomic-ordering -----------------------------------------------------

#[test]
fn atomic_ordering_flags_relaxed_and_seqcst() {
    for seed in ["x.load(Ordering::Relaxed);", "x.store(1, Ordering::SeqCst);"] {
        let src = format!("fn f(x: &AtomicU64) {{\n    {seed}\n}}\n");
        let fired = rules_fired("crates/x/src/a.rs", &src);
        assert!(
            fired.contains(&rules::ATOMIC_ORDERING.to_string()),
            "{seed} must fire, got {fired:?}"
        );
    }
}

#[test]
fn atomic_ordering_accepts_acquire_release_and_justified_sites() {
    let clean = "fn f(x: &AtomicU64) {\n    x.store(x.load(Ordering::Acquire) + 1, Ordering::Release);\n}\n";
    assert!(rules_fired("crates/x/src/a.rs", clean).is_empty());
    let justified = "fn f(x: &AtomicU64) {\n    // check:allow(atomic-ordering): lone flag\n    x.load(Ordering::Relaxed);\n}\n";
    assert!(rules_fired("crates/x/src/a.rs", justified).is_empty());
}

#[test]
fn atomic_ordering_exempts_test_code() {
    let src =
        "#[cfg(test)]\nmod tests {\n    fn t(x: &AtomicU64) { x.load(Ordering::Relaxed); }\n}\n";
    assert!(rules_fired("crates/x/src/a.rs", src).is_empty());
    let tests_file = "fn helper(x: &AtomicU64) { x.load(Ordering::SeqCst); }\n";
    assert!(rules_fired("crates/x/src/tests.rs", tests_file).is_empty());
}

// ---- the acceptance gate -------------------------------------------------

#[test]
fn workspace_scans_clean() {
    // `cargo run -p cellstream-check -- --deny` exiting clean on the
    // whole workspace is an ISSUE acceptance criterion; this test pins
    // it from the suite so a regression fails `cargo test` too.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = run(&root).expect("workspace scan succeeds");
    assert!(report.files_scanned > 50, "scanned only {} files", report.files_scanned);
    assert!(
        report.findings.is_empty(),
        "workspace must lint clean, found:\n{}",
        report.findings.iter().map(|f| format!("  {f}")).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn json_report_is_well_formed() {
    let src = "fn f(xs: &mut Vec<f64>) {\n    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
    let findings = check_source("crates/x/src/a.rs", src);
    let report = super::Report { root: "/ws".into(), files_scanned: 1, findings };
    let json = report.to_json();
    assert!(json.contains("\"rule\": \"float-ord\""));
    assert!(json.contains("\"line\": 2"));
    assert!(json.contains("\"files_scanned\": 1"));
}
