//! The repo-specific rules. Each rule walks the code channel of a
//! [`SourceFile`] and reports [`Finding`]s; `check:allow(rule)`
//! suppressions are honoured uniformly here.

use super::source::SourceFile;
use super::Finding;

/// The serving hot-path modules where panicking operators are banned.
pub const HOT_PATH_FILES: &[&str] = &[
    "crates/serve/src/service.rs",
    "crates/serve/src/pipeline.rs",
    "crates/serve/src/metrics.rs",
    "crates/heuristics/src/repair.rs",
    "crates/rt/src/ring.rs",
    "crates/cluster/src/coordinator.rs",
    "crates/cluster/src/agent.rs",
    "crates/cluster/src/metrics.rs",
    "crates/telemetry/src/metrics.rs",
    "crates/telemetry/src/recorder.rs",
];

/// Rule id: float comparisons must use `total_cmp`.
pub const FLOAT_ORD: &str = "float-ord";
/// Rule id: no panicking operators in the serving hot path.
pub const HOT_PATH_PANIC: &str = "hot-path-panic";
/// Rule id: every crate root carries `#![forbid(unsafe_code)]`.
pub const FORBID_UNSAFE: &str = "forbid-unsafe";
/// Rule id: no allocating calls in `// check: no-alloc` functions.
pub const NO_ALLOC: &str = "no-alloc";
/// Rule id: `Ordering::Relaxed`/`SeqCst` need a justification comment.
pub const ATOMIC_ORDERING: &str = "atomic-ordering";

/// Run every per-line rule over one file.
pub fn apply_all(f: &SourceFile, findings: &mut Vec<Finding>) {
    float_ord(f, findings);
    hot_path_panic(f, findings);
    no_alloc(f, findings);
    atomic_ordering(f, findings);
    forbid_unsafe(f, findings);
}

/// Byte positions where `tok` occurs in `code` with identifier
/// boundaries on both sides.
fn word_positions(code: &str, tok: &str) -> Vec<usize> {
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    code.match_indices(tok)
        .filter(|&(p, _)| {
            let prev_ok = code[..p].chars().next_back().is_none_or(|c| !ident(c));
            let next_ok = code[p + tok.len()..].chars().next().is_none_or(|c| !ident(c));
            prev_ok && next_ok
        })
        .map(|(p, _)| p)
        .collect()
}

/// `true` when `tok` at `p` reads as a method call: preceded (modulo
/// whitespace) by `.` and followed by `(` or a `::<` turbofish.
fn is_method_call(code: &str, p: usize, tok: &str) -> bool {
    let before_ok = code[..p].trim_end().ends_with('.');
    let after = &code[p + tok.len()..];
    before_ok && (after.starts_with('(') || after.starts_with("::<"))
}

/// Any `partial_cmp` token is a finding: floats compare with
/// `total_cmp`, and the two legitimate `PartialOrd`-from-`Ord`
/// forwardings carry justification comments. Applies to test code too —
/// PR 3's float-ordering bug class lives in tests as happily as in
/// production code.
fn float_ord(f: &SourceFile, findings: &mut Vec<Finding>) {
    for (l, line) in f.lines.iter().enumerate() {
        if !word_positions(&line.code, "partial_cmp").is_empty() && !f.is_allowed(FLOAT_ORD, l) {
            findings.push(Finding::new(
                f,
                l,
                FLOAT_ORD,
                "partial_cmp use — compare floats with total_cmp, or justify with \
                 check:allow(float-ord)",
            ));
        }
    }
}

/// No `.unwrap()`, `.expect(..)` or `panic!` outside `#[cfg(test)]` in
/// the hot-path modules; every deliberate panic carries a
/// `check:allow(hot-path-panic)` justification.
fn hot_path_panic(f: &SourceFile, findings: &mut Vec<Finding>) {
    if !HOT_PATH_FILES.iter().any(|h| f.path.ends_with(h)) {
        return;
    }
    for (l, line) in f.lines.iter().enumerate() {
        if line.in_test || f.is_allowed(HOT_PATH_PANIC, l) {
            continue;
        }
        for tok in ["unwrap", "expect"] {
            if word_positions(&line.code, tok).iter().any(|&p| is_method_call(&line.code, p, tok)) {
                findings.push(Finding::new(
                    f,
                    l,
                    HOT_PATH_PANIC,
                    &format!(".{tok}() in a serving hot-path module"),
                ));
            }
        }
        if word_positions(&line.code, "panic")
            .iter()
            .any(|&p| line.code[p + "panic".len()..].starts_with('!'))
        {
            findings.push(Finding::new(
                f,
                l,
                HOT_PATH_PANIC,
                "panic! in a serving hot-path module",
            ));
        }
    }
}

/// The allocating calls banned inside `// check: no-alloc` functions:
/// `(token, is_method)` pairs.
const ALLOC_TOKENS: &[(&str, bool)] = &[
    ("Vec::new", false),
    ("Vec::with_capacity", false),
    ("String::new", false),
    ("String::from", false),
    ("String::with_capacity", false),
    ("Box::new", false),
    ("vec", false), // checked for a trailing `!` below
    ("format", false),
    ("to_string", true),
    ("to_owned", true),
    ("to_vec", true),
    ("collect", true),
    ("clone", true),
];

/// Functions tagged `// check: no-alloc` must not contain allocating
/// calls — the lexical twin of the counting-allocator runtime suite.
fn no_alloc(f: &SourceFile, findings: &mut Vec<Finding>) {
    for &fn_line in &f.noalloc_fns {
        let Some(last) = fn_extent(f, fn_line) else { continue };
        for l in fn_line..=last {
            if f.is_allowed(NO_ALLOC, l) {
                continue;
            }
            let code = &f.lines[l].code;
            for &(tok, method) in ALLOC_TOKENS {
                let hit = word_positions(code, tok).iter().any(|&p| {
                    if method {
                        is_method_call(code, p, tok)
                    } else if tok == "vec" || tok == "format" {
                        code[p + tok.len()..].starts_with('!')
                    } else {
                        true
                    }
                });
                if hit {
                    findings.push(Finding::new(
                        f,
                        l,
                        NO_ALLOC,
                        &format!("allocating call `{tok}` in a `check: no-alloc` function"),
                    ));
                }
            }
        }
    }
}

/// Last line (0-based) of the fn item starting at `fn_line`: brace-match
/// from the first `{` at or after it.
fn fn_extent(f: &SourceFile, fn_line: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut seen_open = false;
    for (l, line) in f.lines.iter().enumerate().skip(fn_line) {
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    seen_open = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
            if seen_open && depth == 0 {
                return Some(l);
            }
        }
    }
    None
}

/// `Ordering::Relaxed` and `Ordering::SeqCst` are allowed only at
/// comment-justified sites: the workspace convention is paired
/// Acquire/Release, and every exception must say why it is safe.
/// Test code (including `src/tests.rs` modules) is exempt.
fn atomic_ordering(f: &SourceFile, findings: &mut Vec<Finding>) {
    if f.path.ends_with("tests.rs") {
        return;
    }
    for (l, line) in f.lines.iter().enumerate() {
        if line.in_test || f.is_allowed(ATOMIC_ORDERING, l) {
            continue;
        }
        for tok in ["Ordering::Relaxed", "Ordering::SeqCst"] {
            if line.code.contains(tok) {
                findings.push(Finding::new(
                    f,
                    l,
                    ATOMIC_ORDERING,
                    &format!("{tok} without a check:allow(atomic-ordering) justification"),
                ));
            }
        }
    }
}

/// Every crate root must forbid `unsafe` — the workspace stays
/// mechanically free of it (rings use mutexed slots instead).
fn forbid_unsafe(f: &SourceFile, findings: &mut Vec<Finding>) {
    if !f.path.ends_with("src/lib.rs") && !f.path.ends_with("src/main.rs") {
        return;
    }
    // only crate roots, not arbitrary files: `src/lib.rs` is always a
    // root; `src/main.rs` only when no lib.rs exists beside it (the
    // driver filters that case before calling us)
    let has = f.lines.iter().any(|l| l.code.contains("#![forbid(unsafe_code)]"));
    if !has && f.path.ends_with("src/lib.rs") {
        findings.push(Finding::new(
            f,
            0,
            FORBID_UNSAFE,
            "crate root lacks #![forbid(unsafe_code)]",
        ));
    }
}

impl Finding {
    fn new(f: &SourceFile, line0: usize, rule: &str, message: &str) -> Finding {
        Finding {
            file: f.path.clone(),
            line: line0 + 1,
            rule: rule.to_string(),
            message: message.to_string(),
        }
    }
}
