//! The workspace lint engine: walk `crates/*/src`, lex each file
//! ([`source`]), apply the repo rules ([`rules`]), and report findings
//! with `file:line` + rule id, optionally as machine-readable JSON.

pub mod rules;
pub mod source;

use source::SourceFile;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule id (see [`rules`]).
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// The result of one lint run.
#[derive(Debug)]
pub struct Report {
    /// The workspace root scanned.
    pub root: String,
    /// Number of `.rs` files lexed.
    pub files_scanned: usize,
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
}

impl Report {
    /// Render the report as a small JSON document (hand-rolled — the
    /// tool itself must stay dependency-free).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"root\": \"{}\",\n", esc(&self.root)));
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
                esc(&f.file),
                f.line,
                esc(&f.rule),
                esc(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Lint every `.rs` file under `<root>/crates/*/src`.
pub fn run(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    members.sort();
    for member in members {
        collect_rs(&member.join("src"), &mut files)?;
    }
    files.sort();

    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let text = fs::read_to_string(path)?;
        let rel = path.strip_prefix(root).unwrap_or(path);
        let rel = rel.to_string_lossy().replace('\\', "/");
        let sf = SourceFile::lex(&rel, &text);
        rules::apply_all(&sf, &mut findings);
        scanned += 1;
    }
    findings
        .sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)).then(a.rule.cmp(&b.rule)));
    Ok(Report { root: root.to_string_lossy().into_owned(), files_scanned: scanned, findings })
}

/// Lint a single in-memory file — the entry point the rule tests use to
/// seed banned patterns without touching the filesystem.
pub fn check_source(path: &str, text: &str) -> Vec<Finding> {
    let sf = SourceFile::lex(path, text);
    let mut findings = Vec::new();
    rules::apply_all(&sf, &mut findings);
    findings
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests;
