//! The source model: a hand-rolled lexer splitting a Rust file into a
//! *code channel* (comments removed, literal contents blanked) and a
//! *comment channel* (where `check:` directives live), plus `#[cfg(test)]`
//! region tracking. No syn, no regex — the container is offline and the
//! rules below only need token-level fidelity: string and character
//! literals (including raw and byte strings) must never leak into the
//! code channel, and brace/paren structure must survive so item extents
//! can be matched.

use std::collections::HashSet;

/// One lexed line of a source file.
#[derive(Debug)]
pub struct Line {
    /// The line's code with comments stripped and the *contents* of
    /// string/char literals replaced by spaces (delimiters kept), so
    /// token searches never match inside literals.
    pub code: String,
    /// Comment text on this line (without the `//`, `/*`, `*/` markers).
    pub comments: Vec<String>,
    /// `true` when the line lies inside a `#[cfg(test)]` item (or is
    /// the attribute itself).
    pub in_test: bool,
}

/// A lexed source file plus the directive tables the rules consume.
#[derive(Debug)]
pub struct SourceFile {
    /// Path as reported in findings (workspace-relative).
    pub path: String,
    /// Per-line views; `lines[0]` is line 1.
    pub lines: Vec<Line>,
    /// `(line0, rule)` pairs suppressed by `check:allow(rule)` comments.
    allowed: HashSet<(usize, String)>,
    /// Lines (0-based) of `fn` items tagged `// check: no-alloc`.
    pub noalloc_fns: Vec<usize>,
}

impl SourceFile {
    /// Lex `text` into the code/comment channels and resolve directives.
    pub fn lex(path: &str, text: &str) -> SourceFile {
        let mut lines = split_channels(text);
        mark_test_regions(&mut lines);
        let (allowed, noalloc_fns) = resolve_directives(&lines);
        SourceFile { path: path.to_string(), lines, allowed, noalloc_fns }
    }

    /// `true` when a `check:allow(rule)` directive covers `line0`.
    pub fn is_allowed(&self, rule: &str, line0: usize) -> bool {
        self.allowed.contains(&(line0, rule.to_string()))
    }

    /// The whole code channel joined with newlines (for extent matching).
    pub fn flat_code(&self) -> String {
        let mut s = String::new();
        for l in &self.lines {
            s.push_str(&l.code);
            s.push('\n');
        }
        s
    }
}

/// Pass 1: split the text into per-line code and comment channels.
fn split_channels(text: &str) -> Vec<Line> {
    let cs: Vec<char> = text.chars().collect();
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comments: Vec<String> = Vec::new();
    let mut i = 0;

    // Close out the current line.
    macro_rules! end_line {
        () => {
            lines.push(Line {
                code: std::mem::take(&mut code),
                comments: std::mem::take(&mut comments),
                in_test: false,
            });
        };
    }

    while i < cs.len() {
        let c = cs[i];
        if c == '\n' {
            end_line!();
            i += 1;
        } else if c == '/' && cs.get(i + 1) == Some(&'/') {
            // line comment (includes `///` and `//!` docs)
            let mut text = String::new();
            i += 2;
            while i < cs.len() && cs[i] != '\n' {
                text.push(cs[i]);
                i += 1;
            }
            comments.push(text);
        } else if c == '/' && cs.get(i + 1) == Some(&'*') {
            // block comment, possibly nested, possibly multi-line
            let mut depth = 1usize;
            let mut text = String::new();
            i += 2;
            while i < cs.len() && depth > 0 {
                if cs[i] == '/' && cs.get(i + 1) == Some(&'*') {
                    depth += 1;
                    text.push_str("/*");
                    i += 2;
                } else if cs[i] == '*' && cs.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                    i += 2;
                } else if cs[i] == '\n' {
                    comments.push(std::mem::take(&mut text));
                    end_line!();
                    i += 1;
                } else {
                    text.push(cs[i]);
                    i += 1;
                }
            }
            if !text.is_empty() {
                comments.push(text);
            }
        } else if is_raw_string_start(&cs, i) {
            // r"..", r#".."#, br#".."# — blank contents, keep delimiters
            let start = i;
            while cs[i] == 'r' || cs[i] == 'b' {
                code.push(cs[i]);
                i += 1;
            }
            let mut hashes = 0usize;
            while cs.get(i) == Some(&'#') {
                code.push('#');
                hashes += 1;
                i += 1;
            }
            debug_assert!(cs.get(i) == Some(&'"'), "raw string at {start} lost its quote");
            code.push('"');
            i += 1;
            loop {
                match cs.get(i) {
                    None => break,
                    Some('"') if (1..=hashes).all(|k| cs.get(i + k) == Some(&'#')) => {
                        code.push('"');
                        for _ in 0..hashes {
                            code.push('#');
                        }
                        i += 1 + hashes;
                        break;
                    }
                    Some('\n') => {
                        end_line!();
                        i += 1;
                    }
                    Some(_) => {
                        code.push(' ');
                        i += 1;
                    }
                }
            }
        } else if c == '"' {
            // ordinary (or byte) string: the `b` prefix was emitted as code
            code.push('"');
            i += 1;
            while i < cs.len() {
                match cs[i] {
                    '\\' if cs.get(i + 1) == Some(&'\n') => {
                        // escaped newline (string continuation): the
                        // physical line still ends here
                        code.push(' ');
                        end_line!();
                        i += 2;
                    }
                    '\\' => {
                        code.push_str("  ");
                        i += 2;
                    }
                    '"' => {
                        code.push('"');
                        i += 1;
                        break;
                    }
                    '\n' => {
                        end_line!();
                        i += 1;
                    }
                    _ => {
                        code.push(' ');
                        i += 1;
                    }
                }
            }
        } else if c == '\'' {
            // char literal vs lifetime: a backslash or a close-quote two
            // chars on means a literal; otherwise it is a lifetime
            if cs.get(i + 1) == Some(&'\\') {
                code.push_str("'  ");
                i += 2; // consume the backslash and the escaped char
                i += 1;
                while i < cs.len() && cs[i] != '\'' {
                    code.push(' ');
                    i += 1;
                }
                code.push('\'');
                i += 1;
            } else if cs.get(i + 2) == Some(&'\'') && cs.get(i + 1) != Some(&'\'') {
                code.push_str("' '");
                i += 3;
            } else {
                code.push('\'');
                i += 1;
            }
        } else {
            code.push(c);
            i += 1;
        }
    }
    if !code.is_empty() || !comments.is_empty() {
        end_line!();
    }
    lines
}

/// Is `cs[i]` the start of a raw (or raw byte) string literal rather
/// than an identifier beginning with `r`/`b`?
fn is_raw_string_start(cs: &[char], i: usize) -> bool {
    if i > 0 && (cs[i - 1].is_alphanumeric() || cs[i - 1] == '_') {
        return false; // mid-identifier
    }
    let mut j = i;
    if cs.get(j) == Some(&'b') {
        j += 1;
    }
    if cs.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while cs.get(j) == Some(&'#') {
        j += 1;
    }
    cs.get(j) == Some(&'"') && (cs[i] == 'r' || cs[i] == 'b')
}

/// Pass 2: mark every line belonging to a `#[cfg(test)]` item.
fn mark_test_regions(lines: &mut [Line]) {
    let fc: Vec<char> = {
        let mut s = String::new();
        for l in lines.iter() {
            s.push_str(&l.code);
            s.push('\n');
        }
        s.chars().collect()
    };
    // char index → 0-based line
    let line_of = |idx: usize| -> usize { fc[..idx].iter().filter(|&&c| c == '\n').count() };

    let mut i = 0usize;
    while i + 1 < fc.len() {
        if !(fc[i] == '#' && fc[i + 1] == '[') {
            i += 1;
            continue;
        }
        let attr_start = i;
        // bracket-match the attribute
        let mut j = attr_start + 1;
        let mut depth = 0i32;
        while j < fc.len() {
            match fc[j] {
                '[' => depth += 1,
                ']' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let attr_end = j.min(fc.len() - 1);
        let attr: String = fc[attr_start..=attr_end].iter().collect();
        i = attr_end + 1;
        let is_test = attr.contains("cfg(test")
            || attr.contains("cfg(all(test")
            || attr.contains("cfg(any(test");
        if !is_test {
            continue;
        }
        // skip whitespace and any further attributes, then find the
        // item's extent: up to the matching `}` of its first block, or
        // the first `;` for braceless items (`mod tests;`, statics)
        let mut k = attr_end + 1;
        loop {
            while k < fc.len() && fc[k].is_whitespace() {
                k += 1;
            }
            if k + 1 < fc.len() && fc[k] == '#' && fc[k + 1] == '[' {
                let mut d = 0i32;
                while k < fc.len() {
                    match fc[k] {
                        '[' => d += 1,
                        ']' => {
                            d -= 1;
                            if d == 0 {
                                k += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
            } else {
                break;
            }
        }
        let mut end = k;
        let mut brace = 0i32;
        while end < fc.len() {
            match fc[end] {
                '{' => brace += 1,
                '}' => {
                    brace -= 1;
                    if brace == 0 {
                        break;
                    }
                }
                ';' if brace == 0 => break,
                _ => {}
            }
            end += 1;
        }
        let (first, last) = (line_of(attr_start), line_of(end.min(fc.len() - 1)));
        for l in lines.iter_mut().take(last + 1).skip(first) {
            l.in_test = true;
        }
    }
}

/// Pass 3: resolve `check:` directives. An allow (or tag) on line `L`
/// covers `L` itself and the first line at or after `L` whose code
/// channel is non-blank — so a standalone comment (possibly continued
/// over several comment lines) covers the statement below it, and a
/// trailing comment covers its own line.
fn resolve_directives(lines: &[Line]) -> (HashSet<(usize, String)>, Vec<usize>) {
    let first_code_at = |from: usize| -> Option<usize> {
        (from..lines.len()).find(|&l| !lines[l].code.trim().is_empty())
    };
    let mut allowed = HashSet::new();
    let mut noalloc = Vec::new();
    for (l, line) in lines.iter().enumerate() {
        for c in &line.comments {
            if let Some(rule) = parse_allow(c) {
                allowed.insert((l, rule.clone()));
                if let Some(t) = first_code_at(l) {
                    allowed.insert((t, rule));
                }
            }
            // exact match (modulo whitespace): prose *mentioning* the
            // tag — e.g. the rule's own docs — must not tag anything
            if c.trim() == "check: no-alloc" {
                if let Some(t) = first_code_at(l) {
                    noalloc.push(t);
                }
            }
        }
    }
    (allowed, noalloc)
}

/// Extract the rule id from a `check:allow(rule)` directive.
fn parse_allow(comment: &str) -> Option<String> {
    let at = comment.find("check:allow(")?;
    let rest = &comment[at + "check:allow(".len()..];
    let close = rest.find(')')?;
    Some(rest[..close].trim().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_leave_the_code_channel() {
        let f = SourceFile::lex(
            "t.rs",
            "let s = \"panic!(do not match)\"; // but panic! here is comment\nlet c = '\\n';\n",
        );
        assert!(!f.lines[0].code.contains("panic!"), "string contents blanked");
        assert!(f.lines[0].comments[0].contains("panic!"), "comment captured");
        assert!(f.lines[1].code.starts_with("let c = '"), "char literal kept as shell");
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = SourceFile::lex("t.rs", "let s = r#\"unwrap() inside\"#;\nlet t = br\"x\";\n");
        assert!(!f.lines[0].code.contains("unwrap"), "raw string contents blanked");
        assert!(f.lines[0].code.contains("r#\""), "delimiters survive");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = SourceFile::lex("t.rs", "fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(f.lines[0].code.contains("-> &'a str"), "lifetimes pass through");
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let f = SourceFile::lex("t.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test, "the attribute line");
        assert!(f.lines[2].in_test && f.lines[3].in_test && f.lines[4].in_test, "the mod body");
        assert!(!f.lines[5].in_test, "code after the region");
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let f = SourceFile::lex("t.rs", "#[cfg(not(test))]\nfn live() {}\n");
        assert!(!f.lines[1].in_test);
    }

    #[test]
    fn allow_covers_the_next_code_line_across_comment_continuations() {
        let src = "// check:allow(some-rule): reason spills\n// over two comment lines\nlet x = 1;\nlet y = 2;\n";
        let f = SourceFile::lex("t.rs", src);
        assert!(f.is_allowed("some-rule", 2), "first code line below is covered");
        assert!(!f.is_allowed("some-rule", 3), "the line after is not");
    }

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let f = SourceFile::lex("t.rs", "let x = 1; // check:allow(some-rule)\n");
        assert!(f.is_allowed("some-rule", 0));
    }

    #[test]
    fn noalloc_tag_targets_the_fn_line() {
        let src = "// check: no-alloc\npub fn hot() {\n}\n";
        let f = SourceFile::lex("t.rs", src);
        assert_eq!(f.noalloc_fns, vec![1]);
    }
}
