//! Model-checker pins: the shipped ordering discipline must survive
//! every schedule, and each deliberately weakened ordering must be
//! caught — otherwise the checker proves nothing.

use super::{check_spsc, CheckConfig, Weaken};

fn cfg(capacity: usize, push_attempts: usize, pop_attempts: usize, weaken: Weaken) -> CheckConfig {
    CheckConfig { capacity, push_attempts, pop_attempts, weaken }
}

#[test]
fn shipped_orderings_survive_capacity_1() {
    let out = check_spsc(&cfg(1, 4, 4, Weaken::Nothing))
        .unwrap_or_else(|v| panic!("violation `{}` under schedule {:?}", v.message, v.schedule));
    // exhaustiveness sanity: this is a real state-space walk, not a
    // handful of smoke schedules
    assert!(out.executions > 1_000, "only {} schedules explored", out.executions);
}

#[test]
fn shipped_orderings_survive_capacity_2() {
    let out = check_spsc(&cfg(2, 3, 3, Weaken::Nothing))
        .unwrap_or_else(|v| panic!("violation `{}` under schedule {:?}", v.message, v.schedule));
    assert!(out.executions > 1_000, "only {} schedules explored", out.executions);
}

#[test]
fn shipped_orderings_survive_capacity_3() {
    let out = check_spsc(&cfg(3, 4, 4, Weaken::Nothing))
        .unwrap_or_else(|v| panic!("violation `{}` under schedule {:?}", v.message, v.schedule));
    assert!(out.executions > 1_000, "only {} schedules explored", out.executions);
}

#[test]
fn weakened_publish_ordering_is_caught() {
    // producer's `produced.store(.., Release)` demoted to relaxed: the
    // counter increment may drain before the slot value, so the
    // consumer can observe a published-but-empty slot
    let v = check_spsc(&cfg(1, 3, 3, Weaken::ProducedRelease))
        .expect_err("a relaxed publish store must be caught");
    assert!(
        v.message.contains("panic in ring code")
            || v.message.contains("lost publish")
            || v.message.contains("FIFO"),
        "unexpected violation kind: {}",
        v.message
    );
}

#[test]
fn weakened_recycle_ordering_is_caught() {
    // consumer's `consumed.store(.., Release)` demoted to relaxed: the
    // free-slot signal may drain before the slot is actually cleared,
    // so the producer can overwrite an untaken item
    let v = check_spsc(&cfg(1, 3, 3, Weaken::ConsumedRelease))
        .expect_err("a relaxed recycle store must be caught");
    assert!(
        v.message.contains("slot reuse") || v.message.contains("FIFO"),
        "unexpected violation kind: {}",
        v.message
    );
}

#[test]
fn weakened_recycle_ordering_is_caught_at_capacity_2() {
    check_spsc(&cfg(2, 4, 4, Weaken::ConsumedRelease))
        .expect_err("a relaxed recycle store must be caught at capacity 2 too");
}

#[test]
fn trivial_scenarios_terminate() {
    // no ops at all, and one-sided programs: nothing to race on
    for c in [
        cfg(1, 0, 0, Weaken::Nothing),
        cfg(2, 3, 0, Weaken::Nothing),
        cfg(2, 0, 3, Weaken::Nothing),
    ] {
        let out = check_spsc(&c).expect("one-sided scenarios are trivially safe");
        assert!(out.executions >= 1);
    }
}
