//! Exhaustive interleaving model checker for `cellstream_rt::SpscRing`.
//!
//! The ring's counters and slots are generic ([`AtomicCounter`],
//! [`RingSlot`]), so this module injects **simulated** implementations
//! into the exact `try_push`/`try_pop` source that ships and enumerates
//! every producer/consumer schedule under a weakly-ordered operational
//! memory model:
//!
//! * every store lands in the storing side's **store buffer** and
//!   becomes visible to the other side only when it *drains* to shared
//!   memory — a scheduler choice, not a fixed delay;
//! * drains respect per-location FIFO within one buffer (coherence) and
//!   the `Release` constraint: a `Release` store drains only once it is
//!   the oldest entry of its buffer, i.e. after everything the thread
//!   stored before it — exactly the one-way barrier the real ordering
//!   provides. Non-`Release` stores may drain **out of order** past
//!   older entries (ARM-style store reordering), which is what a
//!   deliberately weakened ordering exposes;
//! * loads read the loader's own newest buffered value for the location
//!   (store-to-load forwarding) or else shared memory. Load reordering
//!   is *not* modelled: the checker verifies the store-release
//!   discipline, which is where this protocol's correctness lives (see
//!   DESIGN.md for scope and limits).
//!
//! Scheduling choices are: which side attempts its next operation, and,
//! before each cross-thread load, which (if any) of the other side's
//! drainable entries commit first. The driver enumerates all schedules
//! by stateless depth-first replay and asserts, per schedule: no slot
//! reuse (a publish never overwrites an untaken item), no lost publish
//! (every successfully pushed item is popped, exactly once), FIFO
//! order, and `try_push` backpressure that never admits an item into a
//! full ring (conservative refusals are allowed — a refusal only means
//! a freed slot was not visible *yet*).

use cellstream_rt::{AtomicCounter, RingSlot, SpscRing};
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::atomic::Ordering;

const LOC_PRODUCED: usize = 0;
const LOC_CONSUMED: usize = 1;
const SLOT_BASE: usize = 2;
/// Slot encoding: 0 = empty, `v + 1` = `Some(v)`.
const EMPTY: u64 = 0;

const PRODUCER: usize = 0;
const CONSUMER: usize = 1;

/// Which `Release` store to deliberately weaken to `Relaxed` — the
/// negative tests prove the checker catches each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Weaken {
    /// Ship the orderings as written.
    Nothing,
    /// The producer's `produced.store(.., Release)` publish.
    ProducedRelease,
    /// The consumer's `consumed.store(.., Release)` recycle.
    ConsumedRelease,
}

/// One bounded checking scenario.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Ring capacity (the paper's rings are tiny; 1–3 is exhaustive).
    pub capacity: usize,
    /// `try_push` attempts the producer makes (values 0, 1, 2, …).
    pub push_attempts: usize,
    /// `try_pop` attempts the consumer makes during the race phase.
    pub pop_attempts: usize,
    /// Ordering weakening under test.
    pub weaken: Weaken,
}

/// Successful exhaustive run.
#[derive(Debug)]
pub struct CheckOutcome {
    /// Number of complete schedules executed.
    pub executions: u64,
}

/// A schedule that broke an invariant.
#[derive(Debug)]
pub struct Violation {
    /// What went wrong.
    pub message: String,
    /// The choice sequence reproducing it (see [`CheckConfig`]).
    pub schedule: Vec<usize>,
    /// Schedules executed up to and including the failing one.
    pub executions: u64,
}

/// One buffered, not-yet-visible store.
#[derive(Debug, Clone)]
struct Entry {
    loc: usize,
    value: u64,
    release: bool,
}

/// The simulated memory + scheduler state shared by the counters, the
/// slots and the driver of one execution.
#[derive(Debug)]
struct SimState {
    shared: Vec<u64>,
    buffers: [Vec<Entry>; 2],
    /// Which side is currently executing ring code.
    current: usize,
    /// Replay prefix for this execution (DFS position).
    prefix: Vec<usize>,
    /// `(chosen, n_options)` log of every choice point hit.
    taken: Vec<(usize, usize)>,
    /// First invariant breach detected inside the simulation.
    violation: Option<String>,
    /// `false` once the race phase ends: stores apply directly and
    /// loads stop consulting the scheduler.
    interleaving: bool,
}

impl SimState {
    fn new(capacity: usize, prefix: Vec<usize>) -> SimState {
        SimState {
            shared: vec![0; SLOT_BASE + capacity],
            buffers: [Vec::new(), Vec::new()],
            current: PRODUCER,
            prefix,
            taken: Vec::new(),
            violation: None,
            interleaving: true,
        }
    }

    /// Resolve one scheduler choice among `n` options.
    fn choose(&mut self, n: usize) -> usize {
        let idx = self.taken.len();
        let c = if idx < self.prefix.len() { self.prefix[idx] } else { 0 };
        debug_assert!(c < n, "replayed choice out of range");
        self.taken.push((c, n));
        c
    }

    /// The side that is the sole writer of `loc`, if any.
    fn owner(loc: usize) -> Option<usize> {
        match loc {
            LOC_PRODUCED => Some(PRODUCER),
            LOC_CONSUMED => Some(CONSUMER),
            _ => None,
        }
    }

    /// Indices into the *other* side's buffer that may drain now:
    /// nothing older targets the same location, and a `Release` entry
    /// must be the oldest of its buffer.
    fn drainable(&self) -> Vec<usize> {
        let other = 1 - self.current;
        let buf = &self.buffers[other];
        (0..buf.len())
            .filter(|&i| {
                let e = &buf[i];
                let coherent = buf[..i].iter().all(|p| p.loc != e.loc);
                let ordered = !e.release || i == 0;
                coherent && ordered
            })
            .collect()
    }

    fn drain(&mut self, side: usize, idx: usize) {
        let e = self.buffers[side].remove(idx);
        self.shared[e.loc] = e.value;
    }

    /// Commit everything, oldest-first per buffer (always legal).
    fn drain_all(&mut self) {
        for side in [PRODUCER, CONSUMER] {
            while !self.buffers[side].is_empty() {
                self.drain(side, 0);
            }
        }
    }

    /// A load as the ring code sees it: during the race phase a
    /// cross-thread load is a choice point — any subset of the other
    /// side's drainable entries may commit first, one at a time —
    /// then the value is the loader's own newest buffered store for
    /// the location (forwarding) or shared memory.
    fn load(&mut self, loc: usize) -> u64 {
        if self.interleaving && Self::owner(loc) != Some(self.current) {
            loop {
                let opts = self.drainable();
                if opts.is_empty() {
                    break;
                }
                let k = self.choose(1 + opts.len());
                if k == 0 {
                    break;
                }
                self.drain(1 - self.current, opts[k - 1]);
            }
        }
        let own = self.buffers[self.current].iter().rev().find(|e| e.loc == loc);
        own.map_or(self.shared[loc], |e| e.value)
    }

    fn store(&mut self, loc: usize, value: u64, release: bool) {
        if self.interleaving {
            self.buffers[self.current].push(Entry { loc, value, release });
        } else {
            self.shared[loc] = value;
        }
    }

    fn flag(&mut self, message: String) {
        self.violation.get_or_insert(message);
    }
}

/// Shared handle to one execution's simulation.
#[derive(Debug, Clone)]
struct Env(Rc<RefCell<SimState>>);

/// An [`AtomicCounter`] backed by simulated memory. `Release` stores
/// keep their barrier unless this counter is the weakened one; loads
/// are in-order (see the module docs for model scope).
#[derive(Debug, Clone)]
struct SimCounter {
    env: Env,
    loc: usize,
    weaken: bool,
}

impl AtomicCounter for SimCounter {
    fn load(&self, _order: Ordering) -> u64 {
        self.env.0.borrow_mut().load(self.loc)
    }

    fn store(&self, value: u64, order: Ordering) {
        let release = order == Ordering::Release && !self.weaken;
        self.env.0.borrow_mut().store(self.loc, value, release);
    }
}

/// A [`RingSlot`] backed by simulated memory; detects slot reuse at
/// `put` time (an untaken item anywhere in coherence order).
#[derive(Debug, Clone)]
struct SimSlot {
    env: Env,
    loc: usize,
}

impl RingSlot<u64> for SimSlot {
    fn put(&self, item: u64) {
        let mut st = self.env.0.borrow_mut();
        if st.interleaving {
            let pending = st.buffers.iter().any(|b| b.iter().any(|e| e.loc == self.loc));
            if pending || st.shared[self.loc] != EMPTY {
                st.flag(format!(
                    "slot reuse: publishing item {item} over a slot still holding an \
                     untaken or un-drained value"
                ));
            }
        }
        let loc = self.loc;
        st.store(loc, item + 1, false);
    }

    fn take(&self) -> Option<u64> {
        let mut st = self.env.0.borrow_mut();
        let v = st.load(self.loc);
        let loc = self.loc;
        st.store(loc, EMPTY, false);
        if v == EMPTY {
            None
        } else {
            Some(v - 1)
        }
    }
}

/// Exhaustively check one scenario. `Ok` means every schedule upheld
/// every invariant; `Err` carries the first violating schedule.
pub fn check_spsc(cfg: &CheckConfig) -> Result<CheckOutcome, Violation> {
    let mut prefix: Vec<usize> = Vec::new();
    let mut executions = 0u64;
    loop {
        executions += 1;
        let (taken, violation) = run_schedule(cfg, prefix.clone());
        if let Some(message) = violation {
            return Err(Violation {
                message,
                schedule: taken.iter().map(|&(c, _)| c).collect(),
                executions,
            });
        }
        // advance depth-first: bump the deepest choice with options left
        let mut t = taken;
        loop {
            match t.pop() {
                None => return Ok(CheckOutcome { executions }),
                Some((c, n)) if c + 1 < n => {
                    t.push((c + 1, n));
                    prefix = t.iter().map(|&(c, _)| c).collect();
                    break;
                }
                Some(_) => {}
            }
        }
    }
}

/// Execute one complete schedule; returns the choice log and the first
/// violation (from the simulation, the driver's ground-truth checks, or
/// a panic out of the shipped ring code — its `debug_assert` firing on
/// an empty published slot is itself a detection).
fn run_schedule(cfg: &CheckConfig, prefix: Vec<usize>) -> (Vec<(usize, usize)>, Option<String>) {
    let env = Env(Rc::new(RefCell::new(SimState::new(cfg.capacity, prefix))));
    let slots: Vec<SimSlot> =
        (0..cfg.capacity).map(|k| SimSlot { env: env.clone(), loc: SLOT_BASE + k }).collect();
    let produced = SimCounter {
        env: env.clone(),
        loc: LOC_PRODUCED,
        weaken: cfg.weaken == Weaken::ProducedRelease,
    };
    let consumed = SimCounter {
        env: env.clone(),
        loc: LOC_CONSUMED,
        weaken: cfg.weaken == Weaken::ConsumedRelease,
    };
    // the system under test: the exact SpscRing source that ships
    let ring: SpscRing<u64, SimCounter, SimSlot> = SpscRing::from_parts(slots, produced, consumed);

    let outcome = catch_unwind(AssertUnwindSafe(|| drive(&ring, &env, cfg)));
    let mut st = env.0.borrow_mut();
    let violation = match outcome {
        Ok(Err(driver_violation)) => Some(driver_violation),
        Ok(Ok(())) => st.violation.take(),
        Err(payload) => {
            // prefer the simulation's own diagnosis (e.g. slot reuse)
            // over the downstream panic it provoked
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "ring code panicked".to_string());
            Some(st.violation.take().unwrap_or_else(|| format!("panic in ring code: {msg}")))
        }
    };
    // a simulation-level flag outranks a clean driver result
    let violation = violation.or_else(|| st.violation.take());
    (std::mem::take(&mut st.taken), violation)
}

/// The two bounded thread programs, interleaved by scheduler choices.
/// Ground truth (`pushed`/`popped`) is exact because the driver itself
/// is sequential — only the simulated memory reorders.
fn drive(
    ring: &SpscRing<u64, SimCounter, SimSlot>,
    env: &Env,
    cfg: &CheckConfig,
) -> Result<(), String> {
    let cap = cfg.capacity as u64;
    let (mut push_left, mut pop_left) = (cfg.push_attempts, cfg.pop_attempts);
    let mut next_push = 0u64;
    let mut pushed = 0u64;
    let mut popped = 0u64;
    let mut expect = 0u64;

    while push_left > 0 || pop_left > 0 {
        let side = if push_left == 0 {
            CONSUMER
        } else if pop_left == 0 || env.0.borrow_mut().choose(2) == 0 {
            PRODUCER
        } else {
            CONSUMER
        };
        if side == PRODUCER {
            env.0.borrow_mut().current = PRODUCER;
            let was_full = pushed - popped == cap;
            match ring.try_push(next_push) {
                Ok(()) => {
                    if was_full {
                        return Err(format!(
                            "backpressure breach: try_push({next_push}) succeeded on a \
                             full ring ({pushed} pushed, {popped} popped, capacity {cap})"
                        ));
                    }
                    pushed += 1;
                    next_push += 1;
                }
                Err(back) => {
                    if back != next_push {
                        return Err(format!(
                            "refused push returned {back}, not the offered {next_push}"
                        ));
                    }
                    // refusing a non-full ring is allowed: the freed
                    // slot may simply not have drained into view yet
                }
            }
            push_left -= 1;
        } else {
            env.0.borrow_mut().current = CONSUMER;
            if let Some(v) = ring.try_pop() {
                if v != expect {
                    return Err(format!("FIFO breach: popped {v}, expected {expect}"));
                }
                expect += 1;
                popped += 1;
            }
            pop_left -= 1;
        }
    }

    // race phase over: commit every pending store and recover the rest
    {
        let mut st = env.0.borrow_mut();
        st.interleaving = false;
        st.drain_all();
        st.current = CONSUMER;
    }
    while let Some(v) = ring.try_pop() {
        if v != expect {
            return Err(format!("FIFO breach in drain-down: popped {v}, expected {expect}"));
        }
        expect += 1;
        popped += 1;
        if popped > pushed {
            return Err(format!("phantom item: popped {popped} of {pushed} pushed"));
        }
    }
    if popped != pushed {
        return Err(format!(
            "lost publish: {pushed} pushes succeeded but only {popped} items were popped"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests;
