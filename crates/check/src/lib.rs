//! Correctness tooling for the `cellstream` workspace.
//!
//! Two independent layers share this crate (see DESIGN.md, "Correctness
//! tooling"):
//!
//! * [`lint`] — a dependency-free Rust-source scanner enforcing the
//!   repo-specific conventions the compiler cannot: `total_cmp`-only
//!   float orderings, panic-free serving hot paths, `forbid(unsafe_code)`
//!   in every crate root, allocation-free `// check: no-alloc` functions,
//!   and justified `Ordering::Relaxed`/`SeqCst` sites. Run it as
//!   `cargo run -p cellstream-check -- --deny`.
//! * [`mc`] — an exhaustive interleaving model checker for the SPSC
//!   rings in `cellstream-rt`. It substitutes simulated weakly-ordered
//!   counters and slots into the *shipped* generic `SpscRing` code and
//!   enumerates every producer/consumer schedule, including store-buffer
//!   reordering of non-`Release` stores. Its suite runs under
//!   `cargo test -p cellstream-check`.
//!
//! The third layer of the tooling, the `debug_invariants` cargo feature,
//! lives in the audited crates themselves (`cellstream-core`,
//! `cellstream-serve`, `cellstream-cluster`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lint;
pub mod mc;
