//! **Figure 7 (a–c)**: measured speed-up vs. number of SPEs for the two
//! §6.3 greedy heuristics and the MILP mapping, one panel per evaluation
//! graph, all at CCR 0.775. Strategies are resolved through the
//! scheduler registry, so the column set is data, not code.
//!
//! Paper's shape to reproduce: the MILP curve scales to ~2–3x at 8 SPEs;
//! the greedies saturate around 1.3 and do not scale.
//!
//! Output: three tables on stdout + `crates/bench/results/fig7_graph{1,2,3}.csv`.

use cellstream_bench::{lp_plan, measured_throughput, ppe_only_throughput, quick_mode, write_csv};
use cellstream_core::scheduler::PlanContext;
use cellstream_daggen::paper;
use cellstream_heuristics::scheduler_by_name;
use cellstream_platform::CellSpec;

/// The heuristic columns, by registry name ("lp" is handled separately
/// because it draws on the whole seeded portfolio).
const HEURISTICS: [&str; 2] = ["greedy_mem", "greedy_cpu"];

fn main() {
    let spe_counts: Vec<usize> = if quick_mode() { vec![0, 2, 4, 8] } else { (0..=8).collect() };

    for (gi, base) in paper::all_graphs().into_iter().enumerate() {
        let g = paper::at_base_ccr(&base);
        println!(
            "\n# Figure 7({}): {} — speed-up vs number of SPEs",
            (b'a' + gi as u8) as char,
            g.name()
        );
        print!("{:>6}", "SPEs");
        for name in HEURISTICS {
            print!(" {name:>12}");
        }
        println!(" {:>12}", "LP");
        let mut rows = Vec::new();
        // one PPE-only reference per graph (nS-independent)
        let ppe_rho = ppe_only_throughput(&g, &CellSpec::with_spes(0));
        for &spes in &spe_counts {
            let spec = CellSpec::with_spes(spes);
            let su = |m: &cellstream_core::Mapping| -> f64 {
                measured_throughput(&g, &spec, m).map_or(f64::NAN, |r| r / ppe_rho)
            };
            print!("{spes:>6}");
            let mut cells = vec![format!("{spes}")];
            for name in HEURISTICS {
                let plan = scheduler_by_name(name)
                    .expect("registered")
                    .plan(&g, &spec, &PlanContext::default())
                    .expect("greedy heuristics always plan");
                let s = su(&plan.mapping);
                print!(" {s:>12.2}");
                cells.push(format!("{s:.4}"));
            }
            let s_lp = if spes == 0 { 1.0 } else { su(&lp_plan(&g, &spec).mapping) };
            println!(" {s_lp:>12.2}");
            cells.push(format!("{s_lp:.4}"));
            rows.push(cells.join(","));
        }
        let header = format!("spes,{},lp", HEURISTICS.join(","));
        write_csv(&format!("fig7_graph{}.csv", gi + 1), &header, &rows);
    }
    println!("\npaper shape check: LP at 8 SPEs should sit between ~2 and ~3,");
    println!("greedies should flatten out near ~1.3 (graph-dependent).");
}
