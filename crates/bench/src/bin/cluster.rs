//! Fleet serving under churn: inter-node placement policies compared on
//! aggregate delivered throughput over a cluster of simulated QS22
//! nodes (ISSUE 6).
//!
//! The bench generates a seeded churn trace — 64 concurrent chain
//! applications with skewed sizes and weights, a reweight wave, then a
//! retire/replace wave — persists it as JSON under
//! `crates/bench/traces/` (round-tripping it through the serializer),
//! and replays it against a fresh [`Cluster`] per placement policy:
//! the load/affinity scoring placer versus round-robin and random
//! baselines. Delivered instances are credited per application
//! cluster-wide by `sim::online::replay_fleet`.
//!
//! A drain demo then evacuates the busiest node of the scoring fleet
//! and checks the maintenance story: every resident application moves,
//! every move is priced by the network model, and every surviving
//! incumbent still passes the §3.2 verifier.
//!
//! **Gates** (this binary exits non-zero on violation; CI runs it in
//! quick mode):
//!
//! * scoring placer aggregate throughput ≥ random **and** ≥ round-robin;
//! * median admission latency ≤ 50 ms (bounded under churn);
//! * drain strands nothing and violates no capacity invariant.
//!
//! Emits `crates/bench/results/BENCH_cluster.json`, plus the surviving
//! scoring fleet's merged telemetry snapshot as
//! `FLEET_SNAPSHOT.prom`/`FLEET_SNAPSHOT.json` (CI uploads both).

use cellstream_bench::{quick_mode, write_results};
use cellstream_cluster::{policy_by_name, Cluster, ClusterOptions, ClusterVerdict, NetworkModel};
use cellstream_daggen::{chain, CostParams};
use cellstream_platform::CellSpec;
use cellstream_sim::online::{replay_fleet, EventTrace, OnlineReport, TraceEvent};
use cellstream_telemetry::Histogram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::time::Duration;

const NODES: usize = 8;
const APPS: usize = 64;
const HORIZON: f64 = 1.0;

/// The churn trace: `APPS` arrivals with skewed sizes/weights, a
/// reweight wave over ~30% of them, then a retire-and-replace wave over
/// ~20%. Fully determined by the seed.
fn churn_trace(seed: u64) -> EventTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = EventTrace::new(HORIZON);
    let costs = CostParams::default();
    let mut names: Vec<String> = Vec::new();

    // arrival wave: sizes 2..=6 tasks, weights skewed low (many light
    // apps, a few heavy ones) — the skew is what separates a
    // load-aware placer from count-balancing baselines
    for i in 0..APPS {
        let name = format!("app{i:03}");
        let n = rng.gen_range(2..=6usize);
        let weight = (rng.gen_range(1..=6u32) as f64).powf(1.5);
        let at = 0.3 * i as f64 / APPS as f64;
        trace.push(
            at,
            TraceEvent::Admit { graph: chain(&name, n, &costs, seed ^ i as u64), weight },
        );
        names.push(name);
    }

    // reweight wave (~30%)
    for k in 0..APPS * 3 / 10 {
        let app = names[rng.gen_range(0..names.len())].clone();
        let weight = (rng.gen_range(1..=6u32) as f64).powf(1.5);
        trace.push(0.35 + 0.2 * k as f64 / APPS as f64, TraceEvent::Reweight { app, weight });
    }

    // retire-and-replace wave (~20%)
    for k in 0..APPS / 5 {
        let gone = names.swap_remove(rng.gen_range(0..names.len()));
        let at = 0.65 + 0.25 * k as f64 / APPS as f64;
        trace.push(at, TraceEvent::Retire { app: gone });
        let name = format!("fresh{k:02}");
        let n = rng.gen_range(2..=6usize);
        let weight = (rng.gen_range(1..=6u32) as f64).powf(1.5);
        trace.push(
            at + 0.002,
            TraceEvent::Admit { graph: chain(&name, n, &costs, seed ^ (1000 + k as u64)), weight },
        );
        names.push(name);
    }
    trace
}

/// Persist the trace as JSON under `crates/bench/traces/` and read it
/// back — the replayed trace is the deserialized one, so the round
/// trip is load-bearing, not decorative.
fn persist_and_reload(trace: &EventTrace) -> EventTrace {
    let json = serde_json::to_string(trace).expect("traces serialize");
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("traces");
    std::fs::create_dir_all(&dir).expect("create traces dir");
    let path: PathBuf = dir.join("cluster_churn.json");
    std::fs::write(&path, &json).expect("write trace");
    eprintln!("wrote {}", path.display());
    let back: EventTrace = serde_json::from_str(&json).expect("traces deserialize");
    assert_eq!(back.events().len(), trace.events().len(), "round trip is lossless");
    back
}

struct PolicyRun {
    policy: &'static str,
    instances: f64,
    rejected: usize,
    median_admit: Duration,
    p99_admit: Duration,
    max_period: f64,
    migration_bytes: f64,
}

fn run_policy(policy: &'static str, trace: &EventTrace, instances: u64) -> (PolicyRun, Cluster) {
    let opts = ClusterOptions {
        policy: policy_by_name(policy, None, 42).expect("known policy"),
        ..ClusterOptions::default()
    };
    let mut fleet = Cluster::homogeneous(NODES, &CellSpec::qs22(), opts);
    let report: OnlineReport = replay_fleet(&mut fleet, trace, instances);
    if std::env::var("CLUSTER_DEBUG").is_ok() {
        for n in fleet.status().nodes {
            let w: f64 = n.apps.iter().map(|(_, w)| w).sum();
            eprintln!(
                "  [{policy}] {} apps={} period={:.1}us W={:.1} rate={:.0}/s",
                n.node,
                n.n_apps,
                n.period * 1e6,
                w,
                if n.period.is_finite() { w / n.period } else { 0.0 }
            );
        }
    }
    // admit latencies go through a telemetry histogram (the same cells
    // the snapshots expose), not a sorted Vec
    let admits = Histogram::new();
    for e in report.events.iter().filter(|e| e.applied && e.label.starts_with("admit")) {
        admits.record_duration(e.replan);
    }
    let admits = admits.snapshot();
    let median_admit = admits.quantile_duration(50.0);
    let p99_admit = admits.quantile_duration(99.0);
    (
        PolicyRun {
            policy,
            instances: report.total_instances(),
            rejected: report.rejected,
            median_admit,
            p99_admit,
            max_period: fleet.max_period(),
            migration_bytes: report.total_migration_bytes,
        },
        fleet,
    )
}

/// Evacuate the busiest node and check the maintenance invariants.
/// Returns `(moved, stranded, network_bytes, network_seconds)`.
fn drain_demo(fleet: &mut Cluster) -> (usize, usize, f64, f64) {
    let status = fleet.status();
    let victim = status.nodes.iter().max_by_key(|s| s.n_apps).expect("fleet has nodes").node;
    let resident = status.nodes[victim.index()].n_apps;
    let report = fleet.drain(victim).expect("victim is a real node");
    let ClusterVerdict::Drained { moved, stranded } = report.verdict else {
        panic!("drain reported {:?}", report.verdict)
    };
    assert_eq!(moved + stranded, resident, "every resident app accounted for");

    // every move priced by the network model
    let net = NetworkModel::default();
    for m in &report.migrations {
        assert_eq!(m.from, victim);
        let expect = net.transfer_time(m.from, m.to, m.bytes);
        assert!(
            (m.seconds - expect).abs() < 1e-12,
            "migration of {} not network-priced: {} vs {}",
            m.app,
            m.seconds,
            expect
        );
    }

    // zero capacity-invariant violations anywhere in the fleet
    for a in fleet.agents() {
        let s = a.service();
        if let (Some(w), Some(m)) = (s.workload(), s.mapping()) {
            let r = cellstream_core::evaluate(w.graph(), s.spec(), m).expect("valid incumbent");
            assert!(r.is_feasible(), "capacity violated on {}: {:?}", a.node(), r.violations);
        }
    }
    let empty = fleet.status().nodes[victim.index()].clone();
    assert_eq!(empty.n_apps, 0, "the drained node is empty");
    (moved, stranded, report.network_bytes(), report.network_seconds())
}

/// Route one churn burst through per-node batch messages
/// (`Coordinator::process_burst` → `Service::process_batch` on each
/// agent): retire a handful of residents, admit replacements, reweight
/// survivors — all in one coordinator call. Returns
/// `(events, node_batches, applied, latency_ms)`.
fn burst_demo(fleet: &mut Cluster) -> (usize, usize, usize, f64) {
    let resident: Vec<String> = fleet
        .status()
        .nodes
        .iter()
        .flat_map(|n| n.apps.iter().map(|(name, _)| name.clone()))
        .collect();
    assert!(resident.len() >= 12, "the churned fleet keeps dozens of residents");
    let costs = CostParams::default();
    let mut burst: Vec<TraceEvent> = Vec::new();
    for app in &resident[..6] {
        burst.push(TraceEvent::Retire { app: app.clone() });
    }
    for k in 0..6 {
        burst.push(TraceEvent::Admit {
            graph: chain(&format!("burst{k:02}"), 3, &costs, 7000 + k as u64),
            weight: 2.0,
        });
    }
    for (k, app) in resident[6..10].iter().enumerate() {
        burst.push(TraceEvent::Reweight { app: app.clone(), weight: 1.0 + k as f64 });
    }

    let before = fleet.n_apps();
    let report = fleet.process_burst(&burst);
    assert_eq!(report.applied(), burst.len(), "every burst event lands: {:?}", report.events);
    assert_eq!(fleet.n_apps(), before, "6 retired, 6 admitted");
    for a in fleet.agents() {
        let s = a.service();
        if let (Some(w), Some(m)) = (s.workload(), s.mapping()) {
            let r = cellstream_core::evaluate(w.graph(), s.spec(), m).expect("valid incumbent");
            assert!(r.is_feasible(), "burst violated capacity on {}: {:?}", a.node(), r.violations);
        }
    }
    (burst.len(), report.batches, report.applied(), report.latency.as_secs_f64() * 1e3)
}

fn main() {
    let instances = if quick_mode() { 200 } else { 2_000 };
    let trace = persist_and_reload(&churn_trace(20100406));
    println!(
        "churn trace: {} events, {} concurrent apps, {} qs22 nodes, horizon {HORIZON} s",
        trace.events().len(),
        APPS,
        NODES
    );

    let mut runs: Vec<PolicyRun> = Vec::new();
    let mut scoring_fleet: Option<Cluster> = None;
    for policy in ["load_affinity", "round_robin", "random"] {
        let (run, fleet) = run_policy(policy, &trace, instances);
        if policy == "load_affinity" {
            scoring_fleet = Some(fleet);
        }
        runs.push(run);
    }

    println!(
        "\n{:<14} {:>14} {:>9} {:>14} {:>14} {:>12} {:>12}",
        "policy", "instances", "rejected", "med admit ms", "p99 admit ms", "period us", "migr KiB"
    );
    for r in &runs {
        println!(
            "{:<14} {:>14.0} {:>9} {:>14.3} {:>14.3} {:>12.3} {:>12.1}",
            r.policy,
            r.instances,
            r.rejected,
            r.median_admit.as_secs_f64() * 1e3,
            r.p99_admit.as_secs_f64() * 1e3,
            r.max_period * 1e6,
            r.migration_bytes / 1024.0,
        );
    }

    let mut fleet = scoring_fleet.expect("load_affinity ran");
    let (moved, stranded, net_bytes, net_seconds) = drain_demo(&mut fleet);
    println!(
        "\ndrain demo: {moved} moved, {stranded} stranded, {:.1} KiB over the network \
         ({:.3} ms of transfer)",
        net_bytes / 1024.0,
        net_seconds * 1e3,
    );

    let (burst_events, burst_batches, burst_applied, burst_ms) = burst_demo(&mut fleet);
    println!(
        "burst demo: {burst_applied}/{burst_events} events applied through {burst_batches} \
         node batches in {burst_ms:.3} ms",
    );

    // the merged fleet snapshot of the surviving scoring fleet, in both
    // exposition formats — CI uploads these as artifacts
    let snap = fleet.snapshot();
    assert_eq!(
        snap.gauge("cellstream_cluster_placed"),
        Some(fleet.n_apps() as f64),
        "snapshot placed gauge tracks the routing table"
    );
    write_results("FLEET_SNAPSHOT.prom", &snap.to_prometheus());
    write_results("FLEET_SNAPSHOT.json", &snap.to_json());

    // ---- JSON -------------------------------------------------------------
    let policy_rows: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "    {{\"policy\": \"{}\", \"instances\": {:.0}, \"rejected\": {}, \
                 \"median_admit_ms\": {:.4}, \"p99_admit_ms\": {:.4}, \
                 \"max_period_s\": {:.9e}, \"migration_bytes\": {:.1}}}",
                r.policy,
                r.instances,
                r.rejected,
                r.median_admit.as_secs_f64() * 1e3,
                r.p99_admit.as_secs_f64() * 1e3,
                r.max_period,
                r.migration_bytes,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"cluster\",\n  \"spec\": \"qs22\",\n  \"nodes\": {NODES},\n  \
         \"apps\": {APPS},\n  \"quick\": {},\n  \"events\": {},\n  \"policies\": [\n{}\n  ],\n  \
         \"drain\": {{\"moved\": {moved}, \"stranded\": {stranded}, \
         \"network_bytes\": {net_bytes:.1}, \"network_seconds\": {net_seconds:.6}}},\n  \
         \"burst\": {{\"events\": {burst_events}, \"node_batches\": {burst_batches}, \
         \"applied\": {burst_applied}, \"latency_ms\": {burst_ms:.4}}}\n}}\n",
        quick_mode(),
        trace.events().len(),
        policy_rows.join(",\n"),
    );
    write_results("BENCH_cluster.json", &json);

    // ---- CI gates ---------------------------------------------------------
    let by = |name: &str| runs.iter().find(|r| r.policy == name).unwrap();
    let scoring = by("load_affinity");
    let rr = by("round_robin");
    let rnd = by("random");
    assert!(
        scoring.instances >= rr.instances,
        "GATE: scoring placer delivered {:.0} < round-robin {:.0}",
        scoring.instances,
        rr.instances
    );
    assert!(
        scoring.instances >= rnd.instances,
        "GATE: scoring placer delivered {:.0} < random {:.0}",
        scoring.instances,
        rnd.instances
    );
    assert!(
        scoring.median_admit <= Duration::from_millis(50),
        "GATE: median admission latency {:?} exceeds 50 ms",
        scoring.median_admit
    );
    assert!(
        scoring.p99_admit <= Duration::from_millis(250),
        "GATE: p99 admission latency {:?} exceeds 250 ms",
        scoring.p99_admit
    );
    assert_eq!(stranded, 0, "GATE: drain stranded {stranded} apps");
    println!(
        "gates passed: scoring {:.0} >= round-robin {:.0} and random {:.0}; \
         median admit {:.3} ms <= 50 ms; p99 admit {:.3} ms <= 250 ms; drain stranded 0; \
         burst applied {burst_applied}/{burst_events}",
        scoring.instances,
        rr.instances,
        rnd.instances,
        scoring.median_admit.as_secs_f64() * 1e3,
        scoring.p99_admit.as_secs_f64() * 1e3,
    );
}
