//! Fault injection and recovery: the adversarial scenario gate
//! (ISSUE 9).
//!
//! Two demos, both CI-gated:
//!
//! **Single-node recovery.** A qs22 serving loop carries a population
//! of chain applications; one SPE dies. The recovery replan
//! (carry-over repair around the dead PE, shed-and-queue for whatever
//! no longer fits) must bring the aggregate guaranteed rate back to
//! ≥ 90 % of its pre-fault value within a bounded number of
//! subsequent events, and the §3.2 verifier must hold on every
//! intermediate incumbent.
//!
//! **Adversarial fleet scenario.** The `sim::scenario` engine composes
//! bursty arrivals with retire/reweight churn and an impairment
//! schedule — an SPE outage, a whole-node crash and return, a cost
//! drift — into one trace, persists it as JSON under
//! `crates/bench/traces/` (the round trip is load-bearing), and
//! replays it against a fleet. After the storm: zero
//! capacity-invariant violations anywhere, and every application the
//! faults displaced is either serving again or visible in the
//! coordinator's stranded ledger — never silently dropped.
//!
//! Both demos also drain their flight recorders and reconcile the
//! black box against the independently-measured run: the single-node
//! recovery's flight shed total must equal the `ServeReport`'s shed
//! count exactly, and the fleet flight log's migration-byte sum must be
//! *bitwise* equal to the replayed scenario's
//! `total_migration_bytes` (same f64 expression, same order), with the
//! final flight entry's stranded count matching the coordinator's
//! ledger. The matched totals land in the JSON alongside the run.
//!
//! Emits `crates/bench/results/BENCH_faults.json`.

use cellstream_bench::{quick_mode, write_results};
use cellstream_cluster::{Cluster, ClusterOptions};
use cellstream_daggen::{chain, CostParams};
use cellstream_platform::CellSpec;
use cellstream_serve::{Event, Service, ServiceOptions};
use cellstream_sim::online::{replay_fleet, EventTrace};
use cellstream_sim::scenario::{Arrivals, Impairment, Scenario};
use std::path::{Path, PathBuf};

/// Events the single-node recovery may consume before the rate gate.
const RECOVERY_EVENT_BOUND: usize = 16;

/// Aggregate guaranteed rate `Σ_i w_i / T` (instances per second).
fn agg_rate(svc: &Service) -> f64 {
    svc.app_reports().iter().map(|r| r.throughput).sum()
}

/// Every incumbent mapping passes the §3.2 verifier.
fn assert_feasible(svc: &Service, ctx: &str) {
    if let (Some(w), Some(m)) = (svc.workload(), svc.mapping()) {
        let r = cellstream_core::evaluate(w.graph(), svc.spec(), m).expect("valid incumbent");
        assert!(r.is_feasible(), "GATE: capacity violated {ctx}: {:?}", r.violations);
    }
}

struct RecoveryRun {
    apps: usize,
    pre_rate: f64,
    post_fault_rate: f64,
    recovered_rate: f64,
    shed: usize,
    events_to_recover: usize,
    /// Flight-recorder reconciliation: entries drained, shed total
    /// summed from the log, recoveries seen in the log.
    flight_events: usize,
    flight_shed: u64,
    flight_recoveries: usize,
}

/// Kill one SPE under a serving population and measure how fast the
/// recovery replan restores the aggregate guaranteed rate.
fn recovery_demo() -> RecoveryRun {
    // a dual-Cell blade (16 SPEs): one SPE is 1/16 of the vector
    // capacity, so a single failure leaves ≥ 90 % of the guaranteed
    // rate reachable — on a single qs22 Cell the fault removes 1/8 of
    // the bottleneck class and no replan can win the gate back
    let spec = CellSpec::with_spes(16);
    let opts = ServiceOptions { queue_rejected: true, ..Default::default() };
    let mut svc = Service::with_options(spec.clone(), opts);
    let costs = CostParams::default();
    let apps = if quick_mode() { 10 } else { 24 };
    for i in 0..apps {
        let g = chain(&format!("app{i:02}"), 2 + i % 4, &costs, 4200 + i as u64);
        svc.admit(&g, 1.0 + (i % 3) as f64);
    }
    let placed = svc.n_apps();
    assert!(placed > 0, "the population admits");
    let pre_rate = agg_rate(&svc);
    assert_feasible(&svc, "before the fault");

    let spe = spec.pe(spec.n_ppe()); // first SPE
    let report = svc.fail_pe(spe).expect("a failing SPE is absorbed, not an error");
    let shed = report.recovery.as_ref().map_or(0, |r| r.shed.len());
    let post_fault_rate = agg_rate(&svc);
    assert_feasible(&svc, "right after the fault");

    // bounded recovery: benign churn events rotate the retry queue
    // until the rate is back (or the bound runs out)
    let mut events_to_recover = RECOVERY_EVENT_BOUND;
    for k in 0..RECOVERY_EVENT_BOUND {
        if agg_rate(&svc) >= 0.9 * pre_rate {
            events_to_recover = k;
            break;
        }
        let r = svc.app_reports();
        let first = r.first().expect("population survives the fault");
        let h = svc.handle_of(&first.app).expect("report names are live");
        svc.process(Event::Reweight(h, first.weight)).expect("benign reweight");
        assert_feasible(&svc, "during recovery churn");
    }
    // reconcile the black box against the measured run: the drained
    // flight log must tell the same story the ServeReports told
    let flights = svc.metrics().recorder.drain();
    let flight_shed: u64 = flights.iter().map(|f| u64::from(f.shed)).sum();
    let flight_recoveries = flights.iter().filter(|f| f.kind == "pe failed").count();
    RecoveryRun {
        apps: placed,
        pre_rate,
        post_fault_rate,
        recovered_rate: agg_rate(&svc),
        shed,
        events_to_recover,
        flight_events: flights.len(),
        flight_shed,
        flight_recoveries,
    }
}

const NODES: usize = 4;
const HORIZON: f64 = 1.0;

/// The adversarial trace: bursty arrivals, churn, an SPE outage, a
/// node crash-and-return, and a cost drift, all from one seed.
fn adversarial_trace(seed: u64) -> EventTrace {
    let costs = CostParams::default();
    let spe = CellSpec::qs22().pe(CellSpec::qs22().n_ppe());
    Scenario::new(HORIZON)
        .seed(seed)
        .arrivals(Arrivals::Bursty { rate: 24.0, burst: 3 })
        .template(chain("ingest", 3, &costs, 1), 2.0)
        .template(chain("filter", 4, &costs, 2), 1.0)
        .template(chain("mix", 2, &costs, 3), 3.0)
        .retire_fraction(0.2)
        .reweight_fraction(0.2)
        .impair(Impairment::PeOutage { node: 0, pe: spe, at: 0.30, outage: 0.40 })
        .impair(Impairment::NodeOutage { node: 1, at: 0.45, outage: 0.30 })
        .impair(Impairment::Drift { at: 0.60, factor: 2.5 })
        .build()
}

/// Persist the trace as JSON under `crates/bench/traces/` and read it
/// back — the replayed trace is the deserialized one, so the fault
/// variants' round trip is load-bearing, not decorative.
fn persist_and_reload(trace: &EventTrace) -> EventTrace {
    let json = serde_json::to_string(trace).expect("traces serialize");
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("traces");
    std::fs::create_dir_all(&dir).expect("create traces dir");
    let path: PathBuf = dir.join("faults_scenario.json");
    std::fs::write(&path, &json).expect("write trace");
    eprintln!("wrote {}", path.display());
    let back: EventTrace = serde_json::from_str(&json).expect("traces deserialize");
    assert_eq!(back.events().len(), trace.events().len(), "round trip is lossless");
    back
}

struct ScenarioRun {
    events: usize,
    faults: usize,
    applied: usize,
    instances: f64,
    serving: usize,
    stranded: usize,
    dead: usize,
    /// The replay engine's migration-byte total (EventOutcome sums).
    migration_bytes: f64,
    /// Flight-recorder reconciliation against the above.
    flight_events: usize,
    flight_dropped: u64,
    flight_shed: u64,
    flight_stranded_final: u32,
    flight_migration_bytes: f64,
}

/// Replay the adversarial trace against a fleet and audit the wreckage.
fn scenario_demo(trace: &EventTrace, instances: u64) -> ScenarioRun {
    let mut fleet = Cluster::homogeneous(NODES, &CellSpec::qs22(), ClusterOptions::default());
    let report = replay_fleet(&mut fleet, trace, instances);

    // zero capacity-invariant violations anywhere in the fleet
    for a in fleet.agents() {
        let s = a.service();
        if let (Some(w), Some(m)) = (s.workload(), s.mapping()) {
            let r = cellstream_core::evaluate(w.graph(), s.spec(), m).expect("valid incumbent");
            assert!(
                r.is_feasible(),
                "GATE: capacity violated on {} after the storm: {:?}",
                a.node(),
                r.violations
            );
        }
    }
    let status = fleet.status();

    // drain the fleet's black box: one entry per coordinator operation,
    // its migration-byte field computed by the same f64 expression the
    // replay's EventOutcome carries — the sums must be bitwise equal
    let dropped = fleet.metrics().recorder.dropped();
    let flights = fleet.metrics().recorder.drain();
    let flight_shed: u64 = flights.iter().map(|f| u64::from(f.shed)).sum();
    let flight_migration_bytes: f64 = flights.iter().map(|f| f.migration_bytes).sum();
    let flight_stranded_final = flights.last().map_or(0, |f| f.stranded);
    ScenarioRun {
        events: trace.len(),
        faults: trace.events().iter().filter(|e| e.event.is_fault()).count(),
        applied: report.events.iter().filter(|e| e.applied).count(),
        instances: report.total_instances(),
        serving: fleet.n_apps(),
        stranded: status.stranded.len(),
        dead: status.dead.len(),
        migration_bytes: report.total_migration_bytes,
        flight_events: flights.len(),
        flight_dropped: dropped,
        flight_shed,
        flight_stranded_final,
        flight_migration_bytes,
    }
}

fn main() {
    let instances = if quick_mode() { 200 } else { 2_000 };

    let rec = recovery_demo();
    println!(
        "recovery demo: {} apps, rate {:.0}/s -> {:.0}/s at the fault -> {:.0}/s after {} \
         event(s), {} shed",
        rec.apps,
        rec.pre_rate,
        rec.post_fault_rate,
        rec.recovered_rate,
        rec.events_to_recover,
        rec.shed,
    );

    let trace = persist_and_reload(&adversarial_trace(20100406));
    let run = scenario_demo(&trace, instances);
    println!(
        "scenario demo: {} events ({} faults) over {NODES} nodes, {} applied, {:.0} instances \
         delivered; end state: {} serving, {} stranded, {} dead node(s)",
        run.events, run.faults, run.applied, run.instances, run.serving, run.stranded, run.dead,
    );
    println!(
        "flight log: {} entries ({} dropped), {} shed, {} stranded at close, {:.0} migration \
         bytes",
        run.flight_events,
        run.flight_dropped,
        run.flight_shed,
        run.flight_stranded_final,
        run.flight_migration_bytes,
    );

    // ---- JSON -------------------------------------------------------------
    let json = format!(
        "{{\n  \"bench\": \"faults\",\n  \"spec\": \"qs22\",\n  \"quick\": {},\n  \
         \"recovery\": {{\"apps\": {}, \"pre_rate\": {:.1}, \"post_fault_rate\": {:.1}, \
         \"recovered_rate\": {:.1}, \"recovery_ratio\": {:.4}, \"shed\": {}, \
         \"events_to_recover\": {}, \"event_bound\": {RECOVERY_EVENT_BOUND}, \
         \"flight_events\": {}, \"flight_shed\": {}, \"flight_recoveries\": {}}},\n  \
         \"scenario\": {{\"nodes\": {NODES}, \"events\": {}, \"faults\": {}, \"applied\": {}, \
         \"instances\": {:.0}, \"serving\": {}, \"stranded\": {}, \"dead_nodes\": {}, \
         \"migration_bytes\": {:.1}, \"capacity_violations\": 0}},\n  \
         \"flight\": {{\"events\": {}, \"dropped\": {}, \"shed\": {}, \"stranded\": {}, \
         \"migration_bytes\": {:.1}}}\n}}\n",
        quick_mode(),
        rec.apps,
        rec.pre_rate,
        rec.post_fault_rate,
        rec.recovered_rate,
        rec.recovered_rate / rec.pre_rate,
        rec.shed,
        rec.events_to_recover,
        rec.flight_events,
        rec.flight_shed,
        rec.flight_recoveries,
        run.events,
        run.faults,
        run.applied,
        run.instances,
        run.serving,
        run.stranded,
        run.dead,
        run.migration_bytes,
        run.flight_events,
        run.flight_dropped,
        run.flight_shed,
        run.flight_stranded_final,
        run.flight_migration_bytes,
    );
    write_results("BENCH_faults.json", &json);

    // ---- CI gates ---------------------------------------------------------
    assert!(
        rec.recovered_rate >= 0.9 * rec.pre_rate,
        "GATE: rate recovered to {:.0}/s, below 90% of pre-fault {:.0}/s within {} events",
        rec.recovered_rate,
        rec.pre_rate,
        RECOVERY_EVENT_BOUND,
    );
    assert!(
        rec.events_to_recover < RECOVERY_EVENT_BOUND,
        "GATE: recovery needed the whole event bound"
    );
    assert!(run.faults >= 5, "GATE: the scenario injected {} < 5 fault events", run.faults);
    assert_eq!(run.dead, 0, "GATE: the crashed node never returned");

    // flight-log reconciliation: the black box and the measured run
    // must agree exactly — a drifting recorder is worse than none
    assert_eq!(
        rec.flight_shed, rec.shed as u64,
        "GATE: recovery flight log summed {} shed, ServeReport said {}",
        rec.flight_shed, rec.shed,
    );
    assert_eq!(rec.flight_recoveries, 1, "GATE: recovery flight log must show exactly one fault");
    assert_eq!(run.flight_dropped, 0, "GATE: the fleet flight recorder overflowed");
    assert_eq!(
        run.flight_stranded_final, run.stranded as u32,
        "GATE: final flight entry says {} stranded, the coordinator ledger says {}",
        run.flight_stranded_final, run.stranded,
    );
    assert!(
        run.flight_migration_bytes.to_bits() == run.migration_bytes.to_bits(),
        "GATE: flight migration bytes {} != replayed scenario total {} (must be bitwise equal)",
        run.flight_migration_bytes,
        run.migration_bytes,
    );
    assert!(
        run.flight_shed >= run.stranded as u64,
        "GATE: {} ledger entries but the flight log only saw {} shed",
        run.stranded,
        run.flight_shed,
    );
    println!(
        "gates passed: recovery {:.1}% >= 90% within {}/{} events; {} faults absorbed with \
         zero capacity violations; all nodes back up; flight log reconciled (shed {}, stranded \
         {}, migration bytes bitwise-equal)",
        100.0 * rec.recovered_rate / rec.pre_rate,
        rec.events_to_recover,
        RECOVERY_EVENT_BOUND,
        run.faults,
        run.flight_shed,
        run.flight_stranded_final,
    );
}
