//! The serving hot path under bursty churn: one-at-a-time event
//! processing vs batched bursts vs the concurrent intake pipeline
//! (ISSUE 7).
//!
//! The trace fills a QS22 with 24 small pipelines, then replays burst
//! rounds of 20 events each (8 retires + 8 admits + 4 reweights, all
//! touching distinct applications). Three drivers consume the same
//! schedule from the same filled service:
//!
//! 1. **sequential** — every event through `Service::process`: one
//!    compose + repair replan per event;
//! 2. **batched** — every burst through `Service::process_batch`: one
//!    composed replan per 20-event burst;
//! 3. **pipelined** — events pushed through the bounded SPSC ring into
//!    the planner thread (`ServePipeline`), which drains the backlog
//!    into `process_batch` calls while the intake side keeps feeding.
//!
//! All three must land in the same final state (same applications,
//! feasible incumbent, zero rejections), so the throughput gap is pure
//! hot-path mechanics: batching amortises the compose + carry-over +
//! repair work that the sequential driver repeats per event.
//!
//! **Gates** (this binary exits non-zero on violation; CI runs it in
//! quick mode):
//!
//! * batched throughput ≥ 10× one-at-a-time on the bursty trace;
//! * pipelined throughput ≥ 5× one-at-a-time (it does the same batched
//!   work plus ring hand-off and thread scheduling);
//! * batched p99 replan latency ≤ 100 ms per burst;
//! * telemetry overhead: the instrumented batched driver retains ≥ 95%
//!   of the un-instrumented one's events/s (best of 3 runs each, so a
//!   single scheduling hiccup cannot fail the gate).
//!
//! Emits `crates/bench/results/BENCH_serve_hotpath.json`.

use cellstream_bench::{quick_mode, write_results};
use cellstream_graph::{StreamGraph, TaskSpec};
use cellstream_platform::CellSpec;
use cellstream_serve::{Event, PipelineOptions, ServePipeline, Service, ServiceOptions};
use cellstream_sim::online::{replay_concurrent, EventTrace, TraceEvent};
use cellstream_telemetry::Histogram;
use std::time::{Duration, Instant};

const FILL: usize = 24;
const BURST_RETIRES: usize = 8;
const BURST_ADMITS: usize = 8;
const BURST_REWEIGHTS: usize = 4;

fn pipeline(name: &str, n: usize) -> StreamGraph {
    let mut b = StreamGraph::builder(name);
    let mut prev = None;
    for i in 0..n {
        let t = b.add_task(TaskSpec::new(format!("t{i}")).ppe_cost(3e-6).spe_cost(1e-6));
        if let Some(p) = prev {
            b.add_edge(p, t, 2048.0).unwrap();
        }
        prev = Some(t);
    }
    b.build().unwrap()
}

/// Deterministic weight in [0.5, 2.5) from a counter.
fn weight(k: usize) -> f64 {
    0.5 + (k * 7 % 20) as f64 / 10.0
}

/// The burst schedule: per round, retire the 8 oldest residents, admit
/// 8 replacements, reweight 4 survivors — every event in a round
/// touches a distinct application, so a batched driver can fuse the
/// whole round into one replan.
fn burst_schedule(rounds: usize) -> (Vec<StreamGraph>, Vec<Vec<TraceEvent>>) {
    let fill: Vec<StreamGraph> =
        (0..FILL).map(|i| pipeline(&format!("app{i:02}"), 2 + i % 3)).collect();
    let mut live: Vec<String> = fill.iter().map(|g| g.name().to_owned()).collect();
    let mut bursts: Vec<Vec<TraceEvent>> = Vec::new();
    for round in 0..rounds {
        let mut burst: Vec<TraceEvent> = Vec::new();
        let retired: Vec<String> = live.drain(..BURST_RETIRES).collect();
        for app in retired {
            burst.push(TraceEvent::Retire { app });
        }
        for k in 0..BURST_ADMITS {
            let name = format!("r{round:02}a{k}");
            burst.push(TraceEvent::Admit {
                graph: pipeline(&name, 2 + (round + k) % 3),
                weight: weight(round * 31 + k),
            });
            live.push(name);
        }
        for (k, app) in live.iter().take(BURST_REWEIGHTS).enumerate() {
            burst.push(TraceEvent::Reweight {
                app: app.clone(),
                weight: weight(round * 17 + k + 3),
            });
        }
        bursts.push(burst);
    }
    (fill, bursts)
}

/// A freshly filled service: the steady-state posture every driver
/// starts from. `telemetry` toggles the metric cells — `false` is the
/// baseline of the overhead comparison.
fn filled(fill: &[StreamGraph], telemetry: bool) -> Service {
    let mut svc = Service::with_options(
        CellSpec::qs22(),
        ServiceOptions { telemetry, ..ServiceOptions::default() },
    );
    for (i, g) in fill.iter().enumerate() {
        let r = svc.admit(g, weight(i));
        assert!(r.admitted().is_some(), "fill app {} must fit: {:?}", g.name(), r.verdict);
    }
    svc
}

struct Run {
    mode: &'static str,
    events: usize,
    wall: Duration,
    /// Replan count and latency distribution: per event (sequential) or
    /// per burst (batched, pipelined — a burst commits atomically, so
    /// its replan is the latency every event in it experiences).
    replans: usize,
    hist: Histogram,
}

impl Run {
    /// Fold per-replan latencies into the histogram the tables and
    /// gates report from (the telemetry quantile machinery, not a
    /// sorted `Vec`).
    fn new(mode: &'static str, events: usize, wall: Duration, replans: &[Duration]) -> Run {
        let hist = Histogram::new();
        for d in replans {
            hist.record_duration(*d);
        }
        Run { mode, events, wall, replans: replans.len(), hist }
    }

    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall.as_secs_f64().max(1e-12)
    }

    fn percentile(&self, p: f64) -> Duration {
        self.hist.snapshot().quantile_duration(p * 100.0)
    }
}

/// One event through `Service::process`, resolving names against the
/// live incumbent exactly as the pipeline's planner does.
fn apply_sequential(svc: &mut Service, ev: &TraceEvent) -> Duration {
    let report = match ev {
        TraceEvent::Admit { graph, weight } => svc.admit(graph, *weight),
        TraceEvent::Retire { app } => {
            let id = svc.handle_of(app).expect("schedule retires live apps");
            svc.retire(id).expect("live handle")
        }
        TraceEvent::Reweight { app, weight } => {
            let id = svc.handle_of(app).expect("schedule reweights live apps");
            svc.reweight(id, *weight).expect("live handle")
        }
        other => panic!("hot-path schedules carry churn only: {other:?}"),
    };
    assert!(report.applied(), "hot-path schedule never rejects: {}", report.event);
    report.replan
}

fn run_sequential(fill: &[StreamGraph], bursts: &[Vec<TraceEvent>]) -> (Run, Service) {
    let mut svc = filled(fill, true);
    let mut replans = Vec::new();
    let started = Instant::now();
    for burst in bursts {
        for ev in burst {
            replans.push(apply_sequential(&mut svc, ev));
        }
    }
    let wall = started.elapsed();
    (Run::new("sequential", replans.len(), wall, &replans), svc)
}

fn run_batched(
    fill: &[StreamGraph],
    bursts: &[Vec<TraceEvent>],
    telemetry: bool,
) -> (Run, Service) {
    let mut svc = filled(fill, telemetry);
    let mut replans = Vec::new();
    let mut events = 0usize;
    let started = Instant::now();
    for burst in bursts {
        let batch: Vec<Event> = burst
            .iter()
            .map(|ev| match ev {
                TraceEvent::Admit { graph, weight } => Event::Admit(graph.clone(), *weight),
                TraceEvent::Retire { app } => {
                    Event::Retire(svc.handle_of(app).expect("schedule retires live apps"))
                }
                TraceEvent::Reweight { app, weight } => {
                    Event::Reweight(svc.handle_of(app).expect("live app"), *weight)
                }
                other => panic!("hot-path schedules carry churn only: {other:?}"),
            })
            .collect();
        let report = svc.process_batch(&batch).expect("validated schedule");
        assert_eq!(report.applied(), batch.len(), "hot-path schedule never rejects");
        events += batch.len();
        replans.push(report.replan);
    }
    let wall = started.elapsed();
    (Run::new("batched", events, wall, &replans), svc)
}

fn run_pipelined(fill: &[StreamGraph], bursts: &[Vec<TraceEvent>]) -> (Run, Service) {
    let svc = filled(fill, true);
    let mut trace = EventTrace::new(1.0);
    for (i, burst) in bursts.iter().enumerate() {
        for ev in burst {
            trace.push(i as f64 / bursts.len() as f64, ev.clone());
        }
    }
    let pipe = ServePipeline::launch(svc, PipelineOptions { capacity: 256, max_batch: 32 });
    let started = Instant::now();
    let intake = replay_concurrent(&pipe, &trace);
    let (svc, stats) = pipe.finish();
    let wall = started.elapsed();
    assert_eq!(stats.events, intake.submitted as u64, "nothing lost in the ring");
    assert_eq!(stats.skipped, 0, "every name resolved");
    assert_eq!(stats.rejected, 0, "hot-path schedule never rejects");
    (Run::new("pipelined", stats.events as usize, wall, &stats.replans), svc)
}

/// Best batched events/s over `n` runs with telemetry on or off — the
/// overhead comparison uses best-of-n on both sides so one scheduling
/// hiccup cannot skew the ratio.
fn best_batched_rate(
    n: usize,
    fill: &[StreamGraph],
    bursts: &[Vec<TraceEvent>],
    telemetry: bool,
) -> f64 {
    (0..n).map(|_| run_batched(fill, bursts, telemetry).0.events_per_sec()).fold(0.0f64, f64::max)
}

fn assert_same_final_state(a: &Service, b: &Service) {
    let names = |s: &Service| -> Vec<String> {
        let mut v: Vec<String> = s.apps().map(|(_, n)| n.to_owned()).collect();
        v.sort();
        v
    };
    assert_eq!(names(a), names(b), "drivers disagree on the surviving applications");
    for s in [a, b] {
        if let (Some(w), Some(m)) = (s.workload(), s.mapping()) {
            let r = cellstream_core::evaluate(w.graph(), s.spec(), m).expect("valid incumbent");
            assert!(r.is_feasible(), "driver left an infeasible incumbent: {:?}", r.violations);
        }
    }
}

fn main() {
    let rounds = if quick_mode() { 6 } else { 16 };
    let (fill, bursts) = burst_schedule(rounds);
    let burst_len = BURST_RETIRES + BURST_ADMITS + BURST_REWEIGHTS;
    println!(
        "bursty churn: {FILL} resident apps, {rounds} bursts x {burst_len} events \
         ({} timed events) on qs22",
        rounds * burst_len,
    );

    let (seq, seq_svc) = run_sequential(&fill, &bursts);
    let (batched, batch_svc) = run_batched(&fill, &bursts, true);
    let (piped, pipe_svc) = run_pipelined(&fill, &bursts);
    assert_same_final_state(&seq_svc, &batch_svc);
    assert_same_final_state(&seq_svc, &pipe_svc);

    // telemetry overhead: the same batched workload with the metric
    // cells on vs off, best of 3 runs each
    let telem_off = best_batched_rate(3, &fill, &bursts, false);
    let telem_on = best_batched_rate(3, &fill, &bursts, true);
    let retention = telem_on / telem_off.max(1e-12);
    println!(
        "telemetry overhead: on {telem_on:.0} vs off {telem_off:.0} events/s \
         ({:.1}% retained)",
        retention * 100.0,
    );

    let runs = [&seq, &batched, &piped];
    println!(
        "\n{:<12} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "mode", "events/s", "p50 ms", "p99 ms", "wall ms", "replans"
    );
    for r in &runs {
        println!(
            "{:<12} {:>12.0} {:>12.3} {:>12.3} {:>12.2} {:>10}",
            r.mode,
            r.events_per_sec(),
            r.percentile(0.5).as_secs_f64() * 1e3,
            r.percentile(0.99).as_secs_f64() * 1e3,
            r.wall.as_secs_f64() * 1e3,
            r.replans,
        );
    }
    let batch_speedup = batched.events_per_sec() / seq.events_per_sec();
    let pipe_speedup = piped.events_per_sec() / seq.events_per_sec();
    println!(
        "\nspeedup over one-at-a-time: batched {batch_speedup:.1}x, pipelined {pipe_speedup:.1}x"
    );

    // ---- JSON -------------------------------------------------------------
    let mode_rows: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "    {{\"mode\": \"{}\", \"events\": {}, \"events_per_sec\": {:.1}, \
                 \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"wall_ms\": {:.3}}}",
                r.mode,
                r.events,
                r.events_per_sec(),
                r.percentile(0.5).as_secs_f64() * 1e3,
                r.percentile(0.99).as_secs_f64() * 1e3,
                r.wall.as_secs_f64() * 1e3,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"serve_hotpath\",\n  \"spec\": \"qs22\",\n  \"quick\": {},\n  \
         \"fill\": {FILL},\n  \"bursts\": {rounds},\n  \"burst_events\": {burst_len},\n  \
         \"batched_speedup\": {batch_speedup:.2},\n  \"pipelined_speedup\": {pipe_speedup:.2},\n  \
         \"telemetry_on_events_per_sec\": {telem_on:.1},\n  \
         \"telemetry_off_events_per_sec\": {telem_off:.1},\n  \
         \"telemetry_retention\": {retention:.4},\n  \
         \"modes\": [\n{}\n  ]\n}}\n",
        quick_mode(),
        mode_rows.join(",\n"),
    );
    write_results("BENCH_serve_hotpath.json", &json);

    // ---- CI gates ---------------------------------------------------------
    assert!(
        batch_speedup >= 10.0,
        "GATE: batched throughput {batch_speedup:.1}x fell below 10x one-at-a-time \
         ({:.0} vs {:.0} events/s)",
        batched.events_per_sec(),
        seq.events_per_sec(),
    );
    assert!(
        pipe_speedup >= 5.0,
        "GATE: pipelined throughput {pipe_speedup:.1}x fell below 5x one-at-a-time \
         ({:.0} vs {:.0} events/s)",
        piped.events_per_sec(),
        seq.events_per_sec(),
    );
    let p99 = batched.percentile(0.99);
    assert!(
        p99 <= Duration::from_millis(100),
        "GATE: batched p99 replan {p99:?} exceeds 100 ms per burst"
    );
    assert!(
        retention >= 0.95,
        "GATE: telemetry retains only {:.1}% of un-instrumented throughput \
         ({telem_on:.0} vs {telem_off:.0} events/s, floor 95%)",
        retention * 100.0,
    );
    println!(
        "gates passed: batched {batch_speedup:.1}x >= 10x, pipelined {pipe_speedup:.1}x >= 5x, \
         batched p99 {:.3} ms <= 100 ms, telemetry retention {:.1}% >= 95%",
        p99.as_secs_f64() * 1e3,
        retention * 100.0,
    );
}
