//! **Figure 6**: throughput as a function of the number of processed
//! instances — theoretical (model) line vs. experimental (simulated)
//! ramp-up, for random graph 1 at CCR 0.775 on the QS22 with 8 SPEs.
//!
//! Paper's observations to reproduce: steady state is reached after
//! ~1000 instances, and the experimental plateau sits at ≈95 % of the
//! LP-predicted throughput.
//!
//! Output: the series on stdout + `crates/bench/results/fig6.csv`.

use cellstream_bench::{lp_plan, milp_stats, sim_instances, write_csv};
use cellstream_daggen::paper;
use cellstream_platform::CellSpec;
use cellstream_sim::{simulate, SimConfig};

fn main() {
    let g = paper::at_base_ccr(&paper::graph1());
    let spec = CellSpec::qs22();
    eprintln!("fig6: {} tasks, {} edges, CCR 0.775, {spec}", g.n_tasks(), g.n_edges());

    let plan = lp_plan(&g, &spec);
    let theoretical = plan.throughput();
    match milp_stats(&plan) {
        Some((gap, nodes, _, warm_rate)) => eprintln!(
            "LP plan (`{}`): period {:.3} us, gap {:.1}%, {} nodes, warm starts {:.0}%, {:.1}s",
            plan.scheduler,
            plan.period() * 1e6,
            gap * 100.0,
            nodes,
            warm_rate * 100.0,
            plan.wall.as_secs_f64()
        ),
        None => eprintln!(
            "LP plan (`{}`, non-MILP fallback): period {:.3} us, {:.1}s",
            plan.scheduler,
            plan.period() * 1e6,
            plan.wall.as_secs_f64()
        ),
    }

    let n = sim_instances();
    let trace = simulate(&g, &spec, &plan.mapping, &SimConfig::calibrated(), n)
        .expect("LP mapping is feasible");

    println!("# Figure 6: throughput vs processed instances");
    println!("# theoretical throughput: {theoretical:.1} instances/s");
    println!("{:>10} {:>18} {:>18}", "instances", "experimental(/s)", "theoretical(/s)");
    let mut rows = Vec::new();
    for (count, rho) in trace.throughput_curve(40) {
        println!("{count:>10} {rho:>18.1} {theoretical:>18.1}");
        rows.push(format!("{count},{rho:.3},{theoretical:.3}"));
    }
    let steady = trace.steady_state_throughput();
    let ratio = steady / theoretical;
    println!("\nsteady-state: {steady:.1}/s = {:.1}% of theoretical (paper: ~95%)", ratio * 100.0);

    // where does the ramp flatten? first instance count whose cumulative
    // throughput reaches 90% of the steady plateau
    let cum = trace.cumulative_throughput();
    let knee = cum.iter().position(|&r| r >= 0.9 * steady).unwrap_or(0) + 1;
    println!("steady state reached after ~{knee} instances (paper: ~1000)");

    rows.push(format!("# steady_ratio,{ratio:.4}"));
    rows.push(format!("# knee_instances,{knee}"));
    write_csv("fig6.csv", "instances,experimental,theoretical", &rows);
}
