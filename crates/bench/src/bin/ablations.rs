//! Quality-effect ablations (the *what changes*, complementing the
//! Criterion `ablations` bench which measures the *cost*):
//!
//! 1. **DMA constraints (1j)/(1k)**: optimal period with and without the
//!    queue limits — how much throughput the hardware's DMA stacks cost.
//! 2. **Buffer dedup (§4.2 future work)**: local-store bytes needed per
//!    SPE under the paper's duplicated buffers vs. shared buffers for
//!    co-mapped neighbours, on the MILP mappings.
//! 3. **Gap sweep**: solution quality vs. B&B stopping gap (the paper's
//!    5 % against exact and looser stops).
//!
//! Output: tables on stdout + `crates/bench/results/ablations.csv`.

use cellstream_bench::{mip_options, seed_stack, write_csv};
use cellstream_core::steady::buffers::BufferPlan;
use cellstream_core::{solve, FormulationConfig, SolveOptions};
use cellstream_daggen::paper;
use cellstream_platform::CellSpec;

fn main() {
    let spec = CellSpec::qs22();
    let g = paper::at_base_ccr(&paper::graph1());
    let mut rows = Vec::new();

    // --- 1. DMA constraint ablation ---------------------------------------
    println!("# Ablation 1: DMA-queue constraints (graph 1, CCR 0.775)");
    let mut periods = Vec::new();
    for dma in [true, false] {
        let outcome = solve(
            &g,
            &spec,
            &SolveOptions {
                formulation: FormulationConfig { dma_constraints: dma, ..Default::default() },
                seeds: seed_stack(&g, &spec),
                mip: mip_options(),
            },
        )
        .expect("solve runs");
        println!(
            "  dma_constraints={dma:<5}  period {:.3} us  (cut edges: {})",
            outcome.period * 1e6,
            outcome.mapping.n_cut_edges(&g)
        );
        rows.push(format!("dma,{dma},{:.6e}", outcome.period));
        periods.push(outcome.period);
    }
    println!(
        "  -> queue limits cost {:.1}% of throughput on this instance\n",
        100.0 * (periods[0] - periods[1]) / periods[0]
    );

    // --- 2. buffer dedup ----------------------------------------------------
    println!("# Ablation 2: duplicated vs shared buffers for co-mapped neighbours");
    let outcome = solve(
        &g,
        &spec,
        &SolveOptions { seeds: seed_stack(&g, &spec), mip: mip_options(), ..Default::default() },
    )
    .expect("solve runs");
    let plan = BufferPlan::new(&g);
    let mut saved_total = 0.0;
    for pe in spec.spes() {
        let tasks: Vec<_> = outcome.mapping.tasks_on(pe).collect();
        if tasks.is_empty() {
            continue;
        }
        let dup = plan.for_tasks(tasks.iter());
        let dedup = plan.for_tasks_dedup(&g, &tasks);
        saved_total += dup - dedup;
        println!(
            "  {pe}: {:>8.1} KiB duplicated, {:>8.1} KiB shared ({:.0}% saved)",
            dup / 1024.0,
            dedup / 1024.0,
            100.0 * (dup - dedup) / dup.max(1.0)
        );
        rows.push(format!("buffers,{pe},{dup:.0},{dedup:.0}"));
    }
    println!(
        "  -> total local store the future-work optimisation frees: {:.1} KiB\n",
        saved_total / 1024.0
    );

    // --- 3. gap sweep --------------------------------------------------------
    println!("# Ablation 3: B&B stopping gap vs solution quality (graph 1)");
    for gap in [0.25, 0.10, 0.05, 0.01] {
        let mut opts = mip_options();
        opts.rel_gap = gap;
        let o = solve(
            &g,
            &spec,
            &SolveOptions { seeds: seed_stack(&g, &spec), mip: opts, ..Default::default() },
        )
        .expect("solve runs");
        println!(
            "  gap target {:>5.2}: period {:.3} us, wall {:>6.1}s, nodes {:>5}, status {:?}",
            gap,
            o.period * 1e6,
            o.wall.as_secs_f64(),
            o.nodes,
            o.status
        );
        rows.push(format!("gap,{gap},{:.6e},{:.2},{}", o.period, o.wall.as_secs_f64(), o.nodes));
    }

    write_csv("ablations.csv", "ablation,key,value1,value2,value3", &rows);
}
