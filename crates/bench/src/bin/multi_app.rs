//! Co-scheduling vs disjoint-SPE partitioning on pairs of the real
//! applications (QS22 platform).
//!
//! For each pair (audio + cipher, video + dsp) this bench:
//!
//! 1. composes the pair into a [`Workload`] (equal weights);
//! 2. computes the **best disjoint-SPE-partition baseline**: every SPE
//!    allocation is swept, each application is planned alone on its
//!    slice, and the partitioned placement is evaluated on the composed
//!    workload (shared-PPE loads summed);
//! 3. **co-schedules** the composed workload with the heuristic
//!    portfolio, seeded with the baseline so the comparison is
//!    never-lose by construction;
//! 4. simulates the co-scheduled mapping (ideal config) and checks the
//!    per-application measured throughput against the per-application
//!    max-min fair model prediction (within 1%), plus the sandwich: at
//!    least the round guarantee `w_i / T`, at most the isolated bound
//!    `1 / isolated_period` (apps whose binding resources are private
//!    reclaim the slack between the two — the prediction accounts for
//!    it).
//!
//! Emits `crates/bench/results/BENCH_multi_app.json` and a table on
//! stdout. `CELLSTREAM_QUICK=1` shrinks the simulated instance counts.

use cellstream_bench::{quick_mode, write_results};
use cellstream_core::evaluate_workload;
use cellstream_core::scheduler::PlanContext;
use cellstream_graph::{AppId, StreamGraph, Workload};
use cellstream_heuristics::{best_partition, Portfolio};
use cellstream_platform::CellSpec;
use cellstream_sim::{simulate, SimConfig};

struct Row {
    pair: String,
    partition_alloc: Vec<usize>,
    partition_period: f64,
    cosched_period: f64,
    cosched_scheduler: String,
    per_app_model: Vec<f64>,
    per_app_iso: Vec<f64>,
    per_app_sim: Vec<f64>,
    max_guarantee_err: f64,
}

fn bench_pair(name: &str, a: &StreamGraph, b: &StreamGraph, spec: &CellSpec) -> Row {
    let w = Workload::compose(name, &[a, b]).expect("app pairs compose");

    // ---- baseline: best disjoint SPE partition ----------------------------
    let (baseline, alloc, base_report) =
        best_partition(&w, spec, &PlanContext::default()).expect("partition baseline exists");

    // ---- co-scheduling: heuristic portfolio seeded with the baseline ------
    let ctx = PlanContext::default().seed(baseline);
    let outcome = Portfolio::heuristics_only()
        .run_workload(&w, spec, &ctx)
        .expect("the ppe_only member guarantees a feasible plan");
    let plan = outcome.best;
    let report = evaluate_workload(&w, spec, &plan.mapping).expect("winning plan is valid");

    // ---- model-vs-sim agreement per application ---------------------------
    let instances = if quick_mode() { 1500 } else { 10_000 };
    let trace = simulate(w.graph(), spec, &plan.mapping, &SimConfig::ideal(), instances)
        .expect("feasible mappings simulate");
    let per_app_sim = trace.per_app_throughput(&w);
    let per_app_model: Vec<f64> = w.app_ids().map(|i| report.app(i).fair_throughput).collect();
    let per_app_iso: Vec<f64> = w.app_ids().map(|i| 1.0 / report.app(i).isolated_period).collect();
    // every app must match its max-min fair prediction within 1%, and
    // sit inside the guarantee/isolated-bound sandwich
    let mut max_guarantee_err = 0.0f64;
    for (i, ((s, m), iso)) in per_app_sim.iter().zip(&per_app_model).zip(&per_app_iso).enumerate() {
        assert!((s - m).abs() / m < 0.01, "app {i}: sim {s} vs fair prediction {m}");
        assert!(*s >= report.app(AppId(i)).throughput * 0.99, "below round guarantee");
        assert!(*s <= iso * 1.01, "sim {s} above the isolated bound {iso}");
        max_guarantee_err = max_guarantee_err.max((s - m).abs() / m);
    }

    Row {
        pair: name.to_owned(),
        partition_alloc: alloc,
        partition_period: base_report.max_weighted_period(),
        cosched_period: report.max_weighted_period(),
        cosched_scheduler: plan.scheduler,
        per_app_model,
        per_app_iso,
        per_app_sim,
        max_guarantee_err,
    }
}

fn main() {
    let spec = CellSpec::qs22();
    let pairs: Vec<(&str, StreamGraph, StreamGraph)> = vec![
        (
            "audio+cipher",
            cellstream_apps::audio::graph().unwrap(),
            cellstream_apps::cipher::graph().unwrap(),
        ),
        (
            "video+dsp",
            cellstream_apps::video::graph().unwrap(),
            cellstream_apps::dsp::graph().unwrap(),
        ),
    ];

    println!(
        "{:<14} {:>12} {:>16} {:>16} {:>8} {:>12}",
        "pair", "partition", "part period us", "cosched period", "gain", "sim err"
    );
    let mut rows = Vec::new();
    for (name, a, b) in &pairs {
        let row = bench_pair(name, a, b, &spec);
        println!(
            "{:<14} {:>12} {:>16.3} {:>16.3} {:>7.1}% {:>11.2}%",
            row.pair,
            format!("{:?}", row.partition_alloc),
            row.partition_period * 1e6,
            row.cosched_period * 1e6,
            (row.partition_period / row.cosched_period - 1.0) * 100.0,
            row.max_guarantee_err * 100.0
        );
        assert!(
            row.cosched_period <= row.partition_period * (1.0 + 1e-12),
            "{}: co-scheduling must never lose to the seeded partition",
            row.pair
        );
        rows.push(row);
    }

    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            let apps: Vec<String> = r
                .per_app_model
                .iter()
                .zip(&r.per_app_iso)
                .zip(&r.per_app_sim)
                .map(|((m, iso), s)| {
                    format!(
                        "{{\"fair_model\": {m:.1}, \"isolated_bound\": {iso:.1}, \"sim\": {s:.1}}}"
                    )
                })
                .collect();
            format!(
                "    {{\"pair\": \"{}\", \"partition_alloc\": {:?}, \
                 \"partition_period_s\": {:.9e}, \"coscheduled_period_s\": {:.9e}, \
                 \"winner\": \"{}\", \"gain_pct\": {:.2}, \"max_sim_err_pct\": {:.3}, \
                 \"per_app\": [{}]}}",
                r.pair,
                r.partition_alloc,
                r.partition_period,
                r.cosched_period,
                r.cosched_scheduler,
                (r.partition_period / r.cosched_period - 1.0) * 100.0,
                r.max_guarantee_err * 100.0,
                apps.join(", ")
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"multi_app\",\n  \"spec\": \"qs22\",\n  \"quick\": {},\n  \
         \"objective\": \"max weighted per-app period\",\n  \"results\": [\n{}\n  ]\n}}\n",
        quick_mode(),
        body.join(",\n")
    );
    write_results("BENCH_multi_app.json", &json);

    // keep AppId in the public surface honest
    let _ = AppId(0);
}
