//! Online serving under churn: warm-started repair replanning vs a
//! from-scratch portfolio re-solve, on an audio/video/cipher/dsp
//! arrival/departure trace (QS22 platform).
//!
//! For every applied event the bench:
//!
//! 1. lets the [`Service`] replan incrementally (repair from the
//!    incumbent), recording its replan latency and migration bytes;
//! 2. re-solves the *same* workload from scratch with the
//!    heuristic-only portfolio and records its wall time;
//! 3. computes the quality ratio `T_scratch / T_repair` (repair
//!    throughput as a fraction of from-scratch throughput).
//!
//! A second, fresh service is driven through `sim::online::replay` to
//! measure per-application delivered instances over the trace horizon.
//!
//! **Gates** (this binary exits non-zero on violation; CI runs it in
//! quick mode):
//!
//! * geometric-mean quality ≥ 95% of from-scratch throughput;
//! * median replan latency ≥ 10× lower than from-scratch.
//!
//! Emits `crates/bench/results/BENCH_online.json`.

use cellstream_bench::{quick_mode, write_results};
use cellstream_core::scheduler::PlanContext;
use cellstream_graph::StreamGraph;
use cellstream_heuristics::Portfolio;
use cellstream_platform::CellSpec;
use cellstream_serve::Service;
use cellstream_sim::online::{replay, EventTrace, OnlineSystem, TraceEvent};
use cellstream_telemetry::Histogram;
use std::time::{Duration, Instant};

struct Row {
    label: String,
    applied: bool,
    repair_period: f64,
    scratch_period: f64,
    quality: f64,
    repair: Duration,
    scratch: Duration,
    migration_bytes: f64,
}

/// The churn trace: arrivals, rate changes and departures of the four
/// real applications (duplicates renamed — application names key the
/// workload).
fn churn_events() -> Vec<(f64, TraceEvent)> {
    let audio = cellstream_apps::audio::graph().unwrap();
    let video = cellstream_apps::video::graph().unwrap();
    let cipher = cellstream_apps::cipher::graph().unwrap();
    let dsp = cellstream_apps::dsp::graph().unwrap();
    let ev = |g: &StreamGraph, w: f64| TraceEvent::Admit { graph: g.clone(), weight: w };
    vec![
        (0.00, ev(&audio, 1.0)),
        (0.02, ev(&video, 1.0)),
        (0.04, ev(&cipher, 2.0)),
        (0.06, TraceEvent::Reweight { app: audio.name().to_owned(), weight: 2.0 }),
        (0.08, ev(&dsp, 1.0)),
        (0.10, TraceEvent::Retire { app: video.name().to_owned() }),
        (0.12, ev(&video.renamed("video-2"), 1.0)),
        (0.14, TraceEvent::Reweight { app: cipher.name().to_owned(), weight: 1.0 }),
        (0.16, ev(&cipher.renamed("cipher-2"), 1.0)),
        (0.18, TraceEvent::Retire { app: audio.name().to_owned() }),
        (0.20, ev(&audio.renamed("audio-2"), 2.0)),
        (0.22, TraceEvent::Retire { app: dsp.name().to_owned() }),
    ]
}

fn main() {
    let spec = CellSpec::qs22();
    let events = churn_events();

    // ---- repair vs from-scratch, event by event ---------------------------
    let mut svc = Service::new(spec.clone());
    let mut rows: Vec<Row> = Vec::new();
    for (_, ev) in &events {
        let report = match ev {
            TraceEvent::Admit { graph, weight } => svc.admit(graph, *weight),
            TraceEvent::Retire { app } => {
                let id = svc.handle_of(app).expect("trace retires live apps");
                svc.retire(id).expect("live handle")
            }
            TraceEvent::Reweight { app, weight } => {
                let id = svc.handle_of(app).expect("trace reweights live apps");
                svc.reweight(id, *weight).expect("live handle")
            }
            other => panic!("the churn trace carries no fault events: {other:?}"),
        };
        let (scratch_period, scratch_wall) = match svc.workload() {
            Some(w) => {
                let started = Instant::now();
                let outcome = Portfolio::heuristics_only()
                    .run_workload(w, &spec, &PlanContext::default())
                    .expect("the ppe_only member guarantees a plan");
                (outcome.best.period(), started.elapsed())
            }
            None => (f64::INFINITY, Duration::ZERO),
        };
        let quality = match (scratch_period.is_finite(), report.period.is_finite()) {
            (true, true) => scratch_period / report.period,
            _ => 1.0, // idle after the last retire: nothing to compare
        };
        rows.push(Row {
            label: report.event.to_string(),
            applied: report.applied(),
            repair_period: report.period,
            scratch_period,
            quality,
            repair: report.replan,
            scratch: scratch_wall,
            migration_bytes: report.migration_bytes(),
        });
    }

    // ---- trace replay: delivered throughput per application ---------------
    let mut replay_svc = Service::new(spec.clone());
    let mut trace = EventTrace::new(0.25);
    for (t, ev) in &events {
        trace.push(*t, ev.clone());
    }
    let instances = if quick_mode() { 800 } else { 5_000 };
    let online = replay(&mut replay_svc, &trace, instances);
    assert_eq!(online.rejected, 0, "the whole trace fits on a QS22");
    if let (Some(w), Some(m)) = (replay_svc.current().map(|c| c.0), replay_svc.mapping()) {
        let r = cellstream_core::evaluate(w.graph(), &spec, m).expect("valid incumbent");
        assert!(r.is_feasible(), "the incumbent must end feasible");
    }

    // ---- table + gates ----------------------------------------------------
    println!(
        "{:<26} {:>12} {:>12} {:>8} {:>10} {:>10} {:>10}",
        "event", "repair(us)", "scratch(us)", "qual", "repair ms", "scratch ms", "migr KiB"
    );
    for r in &rows {
        println!(
            "{:<26} {:>12.3} {:>12.3} {:>7.1}% {:>10.3} {:>10.1} {:>10.2}",
            r.label,
            r.repair_period * 1e6,
            r.scratch_period * 1e6,
            r.quality * 100.0,
            r.repair.as_secs_f64() * 1e3,
            r.scratch.as_secs_f64() * 1e3,
            r.migration_bytes / 1024.0,
        );
    }

    let compared: Vec<&Row> = rows.iter().filter(|r| r.applied && r.quality.is_finite()).collect();
    let geo_quality =
        (compared.iter().map(|r| r.quality.ln()).sum::<f64>() / compared.len() as f64).exp();
    let min_quality = compared.iter().map(|r| r.quality).fold(f64::INFINITY, f64::min);
    // medians come from telemetry histograms (the serving loop's own
    // latency cells), not a sorted Vec
    let median = |durations: &mut dyn Iterator<Item = Duration>| -> Duration {
        let h = Histogram::new();
        for d in durations {
            h.record_duration(d);
        }
        h.snapshot().quantile_duration(50.0)
    };
    let med_repair = median(&mut compared.iter().map(|r| r.repair));
    let med_scratch = median(&mut compared.iter().map(|r| r.scratch));
    let speedup = med_scratch.as_secs_f64() / med_repair.as_secs_f64().max(1e-9);
    let total_migration: f64 = rows.iter().map(|r| r.migration_bytes).sum();

    println!(
        "\nquality: geomean {:.1}% (min {:.1}%)   replan latency: median {:.3} ms vs {:.1} ms \
         ({speedup:.0}x)   migration total {:.1} KiB   rejected {}",
        geo_quality * 100.0,
        min_quality * 100.0,
        med_repair.as_secs_f64() * 1e3,
        med_scratch.as_secs_f64() * 1e3,
        total_migration / 1024.0,
        online.rejected,
    );
    for served in &online.served {
        println!(
            "  served {:<16} {:>8.3} s residency, {:>12.0} instances ({:.0}/s)",
            served.app,
            served.seconds,
            served.instances,
            served.throughput()
        );
    }

    // ---- JSON -------------------------------------------------------------
    let event_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"event\": \"{}\", \"applied\": {}, \"repair_period_s\": {:.9e}, \
                 \"scratch_period_s\": {:.9e}, \"quality\": {:.4}, \"repair_ms\": {:.4}, \
                 \"scratch_ms\": {:.3}, \"migration_bytes\": {:.1}}}",
                r.label,
                r.applied,
                r.repair_period,
                r.scratch_period,
                r.quality,
                r.repair.as_secs_f64() * 1e3,
                r.scratch.as_secs_f64() * 1e3,
                r.migration_bytes,
            )
        })
        .collect();
    let served_rows: Vec<String> = online
        .served
        .iter()
        .map(|s| {
            format!(
                "    {{\"app\": \"{}\", \"residency_s\": {:.3}, \"instances\": {:.0}, \
                 \"throughput\": {:.1}}}",
                s.app,
                s.seconds,
                s.instances,
                s.throughput()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"online\",\n  \"spec\": \"qs22\",\n  \"quick\": {},\n  \
         \"geo_quality\": {:.4},\n  \"min_quality\": {:.4},\n  \"median_repair_ms\": {:.4},\n  \
         \"median_scratch_ms\": {:.3},\n  \"latency_speedup\": {:.1},\n  \
         \"total_migration_bytes\": {:.1},\n  \"rejected\": {},\n  \"events\": [\n{}\n  ],\n  \
         \"served\": [\n{}\n  ]\n}}\n",
        quick_mode(),
        geo_quality,
        min_quality,
        med_repair.as_secs_f64() * 1e3,
        med_scratch.as_secs_f64() * 1e3,
        speedup,
        total_migration,
        online.rejected,
        event_rows.join(",\n"),
        served_rows.join(",\n"),
    );
    write_results("BENCH_online.json", &json);

    // ---- CI gates ---------------------------------------------------------
    assert!(
        geo_quality >= 0.95,
        "GATE: repair quality {:.1}% fell below 95% of from-scratch",
        geo_quality * 100.0
    );
    assert!(
        speedup >= 10.0,
        "GATE: replan latency speedup {speedup:.1}x fell below 10x \
         (median repair {med_repair:?} vs scratch {med_scratch:?})"
    );
    println!(
        "gates passed: quality {:.1}% >= 95%, speedup {speedup:.0}x >= 10x",
        geo_quality * 100.0
    );
}
