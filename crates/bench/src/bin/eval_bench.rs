//! Moves-per-second of the incremental evaluation engine vs full
//! re-evaluation, on the paper's three §6.2 workloads (QS22 platform).
//!
//! "Full" is what every search heuristic did before the engine existed:
//! clone the mapping (`Mapping::with_move`) and run `evaluate()` from
//! scratch — revalidation, buffer-plan rebuild, full task/edge rescan.
//! "Incremental" is one `EvalState::score_move` per probe: an O(degree)
//! delta apply, an O(n_PEs) verdict scan, an exact undo.
//!
//! Emits `crates/bench/results/BENCH_eval.json` and a human-readable
//! table on stdout. `CELLSTREAM_QUICK=1` shrinks the probe counts ~10x.

use cellstream_bench::{quick_mode, write_results};
use cellstream_core::{evaluate, EvalState, Move};
use cellstream_daggen::paper;
use cellstream_graph::{StreamGraph, TaskId};
use cellstream_heuristics::greedy_cpu;
use cellstream_platform::{CellSpec, PeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// A deterministic probe sequence: (task, target PE) pairs.
fn probe_sequence(
    g: &StreamGraph,
    spec: &CellSpec,
    count: usize,
    seed: u64,
) -> Vec<(TaskId, PeId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| (TaskId(rng.gen_range(0..g.n_tasks())), PeId(rng.gen_range(0..spec.n_pes()))))
        .collect()
}

struct Row {
    graph: String,
    tasks: usize,
    edges: usize,
    full_rate: f64,
    incr_rate: f64,
}

fn bench_graph(g: &StreamGraph, spec: &CellSpec, full_n: usize, incr_n: usize) -> Row {
    let start = greedy_cpu(g, spec);
    let mut sink = 0.0f64;

    // full: clone-and-evaluate per probe (the pre-engine hot path)
    let probes = probe_sequence(g, spec, 1024, 0xBE7C4);
    let t0 = Instant::now();
    for i in 0..full_n {
        let (t, pe) = probes[i % probes.len()];
        let cand = start.with_move(t, pe);
        let r = evaluate(g, spec, &cand).expect("valid mapping");
        sink += r.period;
    }
    let full_rate = full_n as f64 / t0.elapsed().as_secs_f64();

    // incremental: score_move per probe on a live state
    let mut state = EvalState::new(g, spec, &start).expect("valid mapping");
    let t0 = Instant::now();
    for i in 0..incr_n {
        let (t, pe) = probes[i % probes.len()];
        sink += state.score_move(Move::Relocate { task: t, to: pe });
    }
    let incr_rate = incr_n as f64 / t0.elapsed().as_secs_f64();

    std::hint::black_box(sink);
    Row { graph: g.name().to_owned(), tasks: g.n_tasks(), edges: g.n_edges(), full_rate, incr_rate }
}

fn main() {
    let spec = CellSpec::qs22();
    let (full_n, incr_n) = if quick_mode() { (2_000, 200_000) } else { (20_000, 2_000_000) };

    let mut rows = Vec::new();
    println!(
        "{:<16} {:>6} {:>6} {:>16} {:>16} {:>9}",
        "graph", "tasks", "edges", "full moves/s", "incr moves/s", "speedup"
    );
    for g in paper::all_graphs() {
        let row = bench_graph(&g, &spec, full_n, incr_n);
        println!(
            "{:<16} {:>6} {:>6} {:>16.0} {:>16.0} {:>8.1}x",
            row.graph,
            row.tasks,
            row.edges,
            row.full_rate,
            row.incr_rate,
            row.incr_rate / row.full_rate
        );
        rows.push(row);
    }

    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"graph\": \"{}\", \"tasks\": {}, \"edges\": {}, \
                 \"full_moves_per_s\": {:.1}, \"incremental_moves_per_s\": {:.1}, \
                 \"speedup\": {:.2}}}",
                r.graph,
                r.tasks,
                r.edges,
                r.full_rate,
                r.incr_rate,
                r.incr_rate / r.full_rate
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"eval\",\n  \"spec\": \"qs22\",\n  \"quick\": {},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        quick_mode(),
        body.join(",\n")
    );
    write_results("BENCH_eval.json", &json);
}
