//! **Figure 8**: measured speed-up of the MILP mapping as a function of
//! the communication-to-computation ratio, for the three evaluation
//! graphs on the 8-SPE QS22.
//!
//! Paper's shape to reproduce: speed-up declines monotonically (modulo
//! noise) as the CCR rises from 0.775 to 4.6, approaching 1 — "eventually,
//! the best policy is to map all tasks to the PPE".
//!
//! Output: a table on stdout + `crates/bench/results/fig8.csv`.

use cellstream_bench::{lp_plan, measured_throughput, ppe_only_throughput, quick_mode, write_csv};
use cellstream_daggen::paper;
use cellstream_graph::ccr::paper_ccr_sweep;
use cellstream_platform::CellSpec;

fn main() {
    let spec = CellSpec::qs22();
    let ccrs: Vec<f64> =
        if quick_mode() { vec![0.775, 2.3, 4.6] } else { paper_ccr_sweep().to_vec() };

    let graphs = paper::all_graphs();
    println!("# Figure 8: speed-up vs CCR (8 SPEs, portfolio LP mappings)");
    print!("{:>8}", "CCR");
    for g in &graphs {
        print!(" {:>16}", g.name());
    }
    println!();

    let mut rows = Vec::new();
    for &target in &ccrs {
        print!("{target:>8.3}");
        let mut cells = vec![format!("{target:.3}")];
        for base in &graphs {
            let variants = paper::ccr_variants(base);
            let (_, g) = variants
                .iter()
                .min_by(|a, b| (a.0 - target).abs().total_cmp(&(b.0 - target).abs()))
                .expect("six variants");
            let plan = lp_plan(g, &spec);
            let ppe_rho = ppe_only_throughput(g, &spec);
            let su = measured_throughput(g, &spec, &plan.mapping).map_or(f64::NAN, |r| r / ppe_rho);
            print!(" {su:>16.2}");
            cells.push(format!("{su:.4}"));
        }
        println!();
        rows.push(cells.join(","));
    }
    write_csv("fig8.csv", "ccr,graph1,graph2,graph3", &rows);
    println!("\npaper shape check: every column should trend downward toward ~1.");
}
