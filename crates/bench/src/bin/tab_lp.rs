//! **§6 prose table**: MILP solve statistics. The paper reports that with
//! CPLEX stopped at a 5 % gap, "the time for solving a linear program was
//! always kept below one minute (mostly around 20 seconds)".
//!
//! This binary reports the same quantities for the in-repo solver on
//! every evaluation graph at the CCR extremes, plus the formulation
//! sparsity — the honest comparison point for the CPLEX substitution
//! discussed in EXPERIMENTS.md. Since the sparse revised simplex with
//! dual-simplex warm starts replaced the dense tableau, it also measures
//! **branch-and-bound node throughput** (nodes/second at a zero gap, so
//! both engines must genuinely branch) against the retained dense
//! from-scratch oracle, per graph.
//!
//! Output:
//! * a table on stdout + `crates/bench/results/tab_lp.csv`;
//! * machine-readable `crates/bench/results/BENCH_milp.json` (wall,
//!   nodes, simplex iterations, gap at stop, warm-start hit rate, and
//!   the node-throughput speedup vs the dense path);
//! * the graph-1 portfolio leaderboard, so the budget breakdown of the
//!   full workflow (heuristics + seeded MILP) is visible in CI logs.
//!
//! **CI gate**: in quick mode (`CELLSTREAM_QUICK=1`) the binary exits
//! non-zero unless the paper's 5 % gap is reached within the budget on
//! every graph whose relaxation admits it (graph 2 — the bound sits
//! within 5 % of the seeded incumbent as soon as the root LP solves),
//! and the remaining graphs stay under their regression ceilings.
//! Graph 1 at CCR 0.775 has a measured **~15 % integrality gap**: the
//! bound plateaus at ≈3.35 µs against a 3.932 µs optimum-by-all-
//! heuristics incumbent, so no cut-less branch-and-bound can certify
//! 5 % there — CPLEX's cutting planes are what made the paper's figure
//! possible (recorded as known deviation #1 in DESIGN.md). The ceiling
//! pins today's reachable gap so the solver cannot silently regress.

use cellstream_bench::{
    mip_options, portfolio_outcome, quick_mode, seed_stack, write_csv, write_results,
};
use cellstream_core::{solve, Formulation, FormulationConfig, SolveOptions};
use cellstream_daggen::paper;
use cellstream_graph::ccr::{rescale_to_ccr, DEFAULT_BW};
use cellstream_milp::bb::MipOptions;
use cellstream_milp::model::{LpAlgo, LpOptions};
use cellstream_platform::CellSpec;
use std::time::Duration;

/// Options for the node-throughput probe: zero gap so the search cannot
/// stop early, a node cap, and a wall budget — identical for both
/// engines, so nodes/second is an apples-to-apples rate.
fn probe_options(algo: LpAlgo) -> MipOptions {
    let (nodes, secs, iters) = if quick_mode() { (80, 6, 8_000) } else { (300, 30, 60_000) };
    MipOptions {
        rel_gap: 0.0,
        abs_gap: 0.0,
        max_nodes: nodes,
        time_limit: Duration::from_secs(secs),
        lp: LpOptions { max_iterations: iters, algo, ..Default::default() },
        ..Default::default()
    }
}

struct GraphBench {
    graph: String,
    ccr: f64,
    vars: usize,
    rows: usize,
    nnz: usize,
    wall_s: f64,
    nodes: u64,
    gap: f64,
    simplex: u64,
    warm_rate: f64,
    status: String,
    sparse_nps: f64,
    dense_nps: f64,
    speedup: f64,
}

fn main() {
    let spec = CellSpec::qs22();
    println!("# MILP solve statistics (gap target 5%, budget {:?})", mip_options().time_limit);
    println!(
        "{:<18} {:>6} {:>6} {:>6} {:>7} {:>8} {:>6} {:>6} {:>8} {:>6} {:>9} {:>9}",
        "graph",
        "CCR",
        "vars",
        "rows",
        "nnz",
        "wall(s)",
        "nodes",
        "gap%",
        "simplex",
        "warm%",
        "nodes/s",
        "vs dense"
    );
    let mut rows = Vec::new();
    let mut benches: Vec<GraphBench> = Vec::new();
    let mut gate_failed: Option<String> = None;

    for (gi, base) in paper::all_graphs().into_iter().enumerate() {
        for ccr in [0.775, 4.6] {
            let g = rescale_to_ccr(&base, ccr, DEFAULT_BW);
            let form = Formulation::build(&g, &spec, &FormulationConfig::default());
            let (nrows, nvars, nnz) = form.sparsity();

            // ---- the paper workflow: 5% gap, heuristic seed stack ------
            let seeds = seed_stack(&g, &spec);
            let outcome = solve(
                &g,
                &spec,
                &SolveOptions { seeds: seeds.clone(), mip: mip_options(), ..Default::default() },
            )
            .expect("solve runs");

            // ---- node-throughput probe: sparse vs dense, base CCR only -
            // (None at the high-CCR point: the probe is skipped there)
            let probe_rates: Option<(f64, f64)> = (ccr < 1.0).then(|| {
                let mut rates = [0.0f64; 2];
                for (slot, algo) in [LpAlgo::Revised, LpAlgo::Dense].into_iter().enumerate() {
                    let t0 = std::time::Instant::now();
                    let probe = solve(
                        &g,
                        &spec,
                        &SolveOptions {
                            seeds: seeds.clone(),
                            mip: probe_options(algo),
                            ..Default::default()
                        },
                    )
                    .expect("probe runs");
                    let wall = t0.elapsed().as_secs_f64().max(1e-6);
                    rates[slot] = probe.nodes as f64 / wall;
                }
                (rates[0], rates[1])
            });

            let (nps_col, speedup_col, nps_csv, dense_csv) = match probe_rates {
                Some((s, d)) => (
                    format!("{s:.1}"),
                    format!("{:.1}x", s / d),
                    format!("{s:.2}"),
                    format!("{d:.2}"),
                ),
                None => ("-".to_owned(), "-".to_owned(), String::new(), String::new()),
            };
            println!(
                "{:<18} {:>6.3} {:>6} {:>6} {:>7} {:>8.1} {:>6} {:>6.1} {:>8} {:>6.0} {:>9} {:>9}",
                g.name(),
                ccr,
                nvars,
                nrows,
                nnz,
                outcome.wall.as_secs_f64(),
                outcome.nodes,
                outcome.gap * 100.0,
                outcome.lp_iterations,
                outcome.warm_start_rate() * 100.0,
                nps_col,
                speedup_col,
            );
            rows.push(format!(
                "{},{ccr},{nvars},{nrows},{nnz},{:.2},{},{:.4},{},{:.4},{:?},{nps_csv},{dense_csv}",
                g.name(),
                outcome.wall.as_secs_f64(),
                outcome.nodes,
                outcome.gap,
                outcome.lp_iterations,
                outcome.warm_start_rate(),
                outcome.status,
            ));
            if let Some((sparse_nps, dense_nps)) = probe_rates {
                let speedup = sparse_nps / dense_nps;
                benches.push(GraphBench {
                    graph: g.name().to_owned(),
                    ccr,
                    vars: nvars,
                    rows: nrows,
                    nnz,
                    wall_s: outcome.wall.as_secs_f64(),
                    nodes: outcome.nodes,
                    gap: outcome.gap,
                    simplex: outcome.lp_iterations,
                    warm_rate: outcome.warm_start_rate(),
                    status: format!("{:?}", outcome.status),
                    sparse_nps,
                    dense_nps,
                    speedup,
                });
            }

            // ---- CI gate (base CCR): graph 2 carries the paper's 5%
            // contract; graphs 1/3 get regression ceilings above their
            // measured integrality gaps (see module docs)
            if ccr < 1.0 {
                let ceiling = match gi {
                    1 => 0.05, // graph 2: the 5% contract proper
                    _ => 0.20, // graphs 1/3: integrality-gap regression ceiling
                };
                if outcome.gap > ceiling + 1e-9 {
                    gate_failed = Some(format!(
                        "{} stopped at gap {:.2}% (ceiling {:.0}%) within {:?} ({:?})",
                        g.name(),
                        outcome.gap * 100.0,
                        ceiling * 100.0,
                        mip_options().time_limit,
                        outcome.status
                    ));
                }
            }
        }
    }

    // ---- graph-1 portfolio leaderboard: where the budget went ----------
    let g1 = paper::at_base_ccr(&paper::graph1());
    let outcome = portfolio_outcome(&g1, &spec);
    println!("\n# graph 1 portfolio leaderboard (budget breakdown)");
    print!("{}", outcome.render_leaderboard());

    write_csv(
        "tab_lp.csv",
        "graph,ccr,vars,rows,nnz,wall_s,nodes,gap,simplex_iters,warm_start_rate,status,\
         sparse_nodes_per_s,dense_nodes_per_s",
        &rows,
    );
    let body: Vec<String> = benches
        .iter()
        .map(|b| {
            format!(
                "    {{\"graph\": \"{}\", \"ccr\": {}, \"vars\": {}, \"rows\": {}, \"nnz\": {}, \
                 \"wall_s\": {:.3}, \"nodes\": {}, \"simplex_iters\": {}, \"gap_at_stop\": {:.5}, \
                 \"warm_start_rate\": {:.4}, \"status\": \"{}\", \
                 \"sparse_nodes_per_s\": {:.2}, \"dense_nodes_per_s\": {:.2}, \
                 \"node_throughput_speedup\": {:.2}}}",
                b.graph,
                b.ccr,
                b.vars,
                b.rows,
                b.nnz,
                b.wall_s,
                b.nodes,
                b.simplex,
                b.gap,
                b.warm_rate,
                b.status,
                b.sparse_nps,
                b.dense_nps,
                b.speedup,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"milp\",\n  \"spec\": \"qs22\",\n  \"quick\": {},\n  \
         \"gap_target\": 0.05,\n  \"results\": [\n{}\n  ]\n}}\n",
        quick_mode(),
        body.join(",\n")
    );
    write_results("BENCH_milp.json", &json);

    println!("\npaper reference: CPLEX stayed under 60 s, around 20 s, always within 5%.");
    if let Some(reason) = gate_failed {
        if quick_mode() {
            eprintln!("GATE FAILED: {reason}");
            std::process::exit(1);
        }
        eprintln!("warning (non-quick mode, not fatal): {reason}");
    }
}
