//! **§6 prose table**: MILP solve statistics. The paper reports that with
//! CPLEX stopped at a 5 % gap, "the time for solving a linear program was
//! always kept below one minute (mostly around 20 seconds)".
//!
//! This binary reports the same quantities for the in-repo B&B solver on
//! every evaluation graph at the CCR extremes, plus the formulation sizes
//! — the honest comparison point for the CPLEX substitution discussed in
//! EXPERIMENTS.md.
//!
//! Output: a table on stdout + `crates/bench/results/tab_lp.csv`.

use cellstream_bench::{mip_options, seed_stack, write_csv};
use cellstream_core::{solve, Formulation, FormulationConfig, SolveOptions};
use cellstream_daggen::paper;
use cellstream_graph::ccr::{rescale_to_ccr, DEFAULT_BW};
use cellstream_platform::CellSpec;

fn main() {
    let spec = CellSpec::qs22();
    println!("# MILP solve statistics (gap target 5%, budget {:?})", mip_options().time_limit);
    println!(
        "{:<18} {:>6} {:>7} {:>7} {:>9} {:>7} {:>7} {:>9} {:>9}",
        "graph", "CCR", "vars", "rows", "wall(s)", "nodes", "gap%", "simplex", "status"
    );
    let mut rows = Vec::new();
    for base in paper::all_graphs() {
        for ccr in [0.775, 4.6] {
            let g = rescale_to_ccr(&base, ccr, DEFAULT_BW);
            let form = Formulation::build(&g, &spec, &FormulationConfig::default());
            let (nv, nc) = (form.model.n_vars(), form.model.n_cons());
            let outcome = solve(
                &g,
                &spec,
                &SolveOptions {
                    seeds: seed_stack(&g, &spec),
                    mip: mip_options(),
                    ..Default::default()
                },
            )
            .expect("solve runs");
            println!(
                "{:<18} {:>6.3} {:>7} {:>7} {:>9.1} {:>7} {:>7.1} {:>9} {:>9?}",
                g.name(),
                ccr,
                nv,
                nc,
                outcome.wall.as_secs_f64(),
                outcome.nodes,
                outcome.gap * 100.0,
                outcome.lp_iterations,
                outcome.status,
            );
            rows.push(format!(
                "{},{ccr},{nv},{nc},{:.2},{},{:.4},{},{:?}",
                g.name(),
                outcome.wall.as_secs_f64(),
                outcome.nodes,
                outcome.gap,
                outcome.lp_iterations,
                outcome.status
            ));
        }
    }
    write_csv("tab_lp.csv", "graph,ccr,vars,rows,wall_s,nodes,gap,simplex_iters,status", &rows);
    println!("\npaper reference: CPLEX stayed under 60 s, around 20 s, always within 5%.");
}
