//! Shared harness for the figure-regeneration binaries
//! (`fig6`, `fig7`, `fig8`, `tab_lp`, `ablations`) and the Criterion
//! micro-benchmarks.
//!
//! Conventions:
//!
//! * **Measured throughput** always comes from the calibrated
//!   discrete-event simulator ([`cellstream_sim::SimConfig::calibrated`])
//!   — the reproduction's analogue of the paper's QS22 runs — while
//!   **predicted throughput** comes from the analytic evaluator, exactly
//!   as the paper contrasts its LP predictions with hardware runs.
//! * **Speed-ups** are normalised to the *measured* PPE-only throughput
//!   (§6.4.2).
//! * The "LP" mapping of every figure comes from [`lp_plan`]: the
//!   standard scheduler [`Portfolio`] (both §6.3 greedies, the
//!   comm-aware greedy, multi-start local search, and the MILP
//!   warm-started with all of their mappings) with the paper's 5 % gap —
//!   see EXPERIMENTS.md for why the seeds matter when the in-repo B&B
//!   replaces CPLEX.
//! * `CELLSTREAM_QUICK=1` shrinks sweeps and budgets by ~10x for smoke
//!   runs; the recorded EXPERIMENTS.md numbers use full mode.

#![forbid(unsafe_code)]

use cellstream_core::scheduler::{Plan, PlanContext, PlanStats};
use cellstream_core::{evaluate, Mapping, SolveOptions};
use cellstream_graph::StreamGraph;
use cellstream_heuristics::{LocalSearchOptions, MultiStartScheduler, Portfolio, PortfolioOutcome};
use cellstream_milp::bb::MipOptions;
use cellstream_milp::model::LpOptions;
use cellstream_platform::{CellSpec, PeId};
use cellstream_sim::{simulate, SimConfig, SimError};
use std::io::Write as _;
use std::path::Path;
use std::time::Duration;

/// `true` when `CELLSTREAM_QUICK=1`: smaller sweeps, smaller budgets.
pub fn quick_mode() -> bool {
    std::env::var("CELLSTREAM_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// Instances to simulate per measurement.
pub fn sim_instances() -> u64 {
    if quick_mode() {
        1500
    } else {
        10_000
    }
}

/// The MILP budget per solve. The node caps assume the sparse revised
/// simplex with warm-started re-solves (hundreds of nodes per second on
/// the paper graphs); the wall-clock limit is the real budget and is
/// enforced *inside* the LP pivot loops, so a generous node cap cannot
/// blow the runtime.
pub fn mip_options() -> MipOptions {
    if quick_mode() {
        MipOptions {
            rel_gap: 0.05,
            time_limit: Duration::from_secs(10),
            max_nodes: 4_000,
            lp: LpOptions { max_iterations: 8_000, ..Default::default() },
            ..Default::default()
        }
    } else {
        MipOptions {
            rel_gap: 0.05,
            time_limit: Duration::from_secs(120),
            max_nodes: 50_000,
            lp: LpOptions { max_iterations: 60_000, ..Default::default() },
            ..Default::default()
        }
    }
}

/// The planning context used for every figure: paper-default formulation
/// with the figure MILP budget.
pub fn plan_context() -> PlanContext {
    PlanContext {
        solve: SolveOptions { mip: mip_options(), ..Default::default() },
        ..Default::default()
    }
}

/// Multi-start local search sized for the current mode (16 rounds in
/// quick mode, 64 in full mode, matching the historical seed stack).
fn sized_multi_start() -> MultiStartScheduler {
    MultiStartScheduler {
        opts: LocalSearchOptions {
            max_rounds: if quick_mode() { 16 } else { 64 },
            ..Default::default()
        },
    }
}

/// The heuristic wave of the figure portfolio: the PPE-only baseline,
/// both §6.3 greedies, the comm-aware greedy, and mode-sized
/// multi-start refinement.
fn heuristic_portfolio() -> Portfolio {
    Portfolio::new()
        .with_named("ppe_only")
        .with_named("greedy_mem")
        .with_named("greedy_cpu")
        .with_named("comm_aware")
        .with(sized_multi_start())
}

/// The standard figure portfolio (see the crate docs).
pub fn figure_portfolio() -> Portfolio {
    heuristic_portfolio().with_named("milp")
}

/// Run the figure portfolio on one instance.
pub fn portfolio_outcome(g: &StreamGraph, spec: &CellSpec) -> PortfolioOutcome {
    figure_portfolio()
        .run_with(g, spec, &plan_context())
        .expect("the ppe_only member guarantees a feasible plan")
}

/// The figures' "LP" plan: the MILP member of the standard portfolio
/// (warm-started with every heuristic mapping), falling back to the
/// portfolio winner if the MILP member failed. The fallback is loudly
/// reported on stderr — a figure's "LP" column should never silently
/// contain heuristic numbers.
pub fn lp_plan(g: &StreamGraph, spec: &CellSpec) -> Plan {
    let outcome = portfolio_outcome(g, spec);
    match outcome.member("milp").and_then(|m| m.feasible_plan().cloned()) {
        Some(plan) => plan,
        None => {
            eprintln!(
                "warning: MILP member failed on {}; substituting portfolio winner `{}`",
                g.name(),
                outcome.best.scheduler
            );
            outcome.best
        }
    }
}

/// MILP statistics of a plan (`None` for non-MILP plans):
/// `(gap, nodes, lp_iterations, warm_start_rate)`.
pub fn milp_stats(plan: &Plan) -> Option<(f64, u64, u64, f64)> {
    match plan.stats {
        PlanStats::Milp { gap, nodes, lp_iterations, warm_start_rate, .. } => {
            Some((gap, nodes, lp_iterations, warm_start_rate))
        }
        _ => None,
    }
}

/// The heuristic seed stack used by the solver-statistics binaries:
/// every feasible mapping from the heuristic-only portfolio.
pub fn seed_stack(g: &StreamGraph, spec: &CellSpec) -> Vec<Mapping> {
    let outcome =
        heuristic_portfolio().run(g, spec).expect("the ppe_only member guarantees a feasible plan");
    outcome
        .leaderboard
        .iter()
        .filter_map(|m| m.feasible_plan())
        .map(|p| p.mapping.clone())
        .collect()
}

/// Measured steady-state throughput of a mapping on the calibrated
/// simulator; `None` for infeasible/stalled runs.
pub fn measured_throughput(g: &StreamGraph, spec: &CellSpec, m: &Mapping) -> Option<f64> {
    match simulate(g, spec, m, &SimConfig::calibrated(), sim_instances()) {
        Ok(trace) => Some(trace.steady_state_throughput()),
        Err(SimError::BadMapping(_)) => None,
        Err(e) => {
            eprintln!("warning: simulation failed: {e}");
            None
        }
    }
}

/// Measured PPE-only throughput (the speed-up denominator of §6.4.2).
pub fn ppe_only_throughput(g: &StreamGraph, spec: &CellSpec) -> f64 {
    measured_throughput(g, spec, &Mapping::all_on(g, PeId(0))).expect("PPE-only always simulates")
}

/// Model-predicted throughput of a mapping.
pub fn predicted_throughput(g: &StreamGraph, spec: &CellSpec, m: &Mapping) -> f64 {
    evaluate(g, spec, m).expect("valid mapping").throughput
}

/// Write a CSV file under `crates/bench/results/`, creating directories.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> std::path::PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").unwrap();
    for r in rows {
        writeln!(f, "{r}").unwrap();
    }
    eprintln!("wrote {}", path.display());
    path
}

/// Write an arbitrary results file (e.g. JSON) under
/// `crates/bench/results/`, creating directories.
pub fn write_results(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write results file");
    eprintln!("wrote {}", path.display());
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellstream_daggen::{chain, CostParams};

    #[test]
    fn harness_measures_consistently() {
        std::env::set_var("CELLSTREAM_QUICK", "1");
        let g = chain("h", 6, &CostParams::default(), 3);
        let spec = CellSpec::with_spes(2);
        let rho = ppe_only_throughput(&g, &spec);
        assert!(rho > 0.0);
        let seeds = seed_stack(&g, &spec);
        assert_eq!(seeds.len(), 5);
        for m in &seeds {
            // every seed must at least evaluate
            let _ = predicted_throughput(&g, &spec, m);
        }
        // the LP plan must beat or match the best seed
        let lp = lp_plan(&g, &spec);
        assert!(lp.is_feasible());
        for m in &seeds {
            let r = evaluate(&g, &spec, m).unwrap();
            if r.is_feasible() {
                assert!(lp.period() <= r.period + 1e-12);
            }
        }
    }
}
