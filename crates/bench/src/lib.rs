//! Shared harness for the figure-regeneration binaries
//! (`fig6`, `fig7`, `fig8`, `tab_lp`, `ablations`) and the Criterion
//! micro-benchmarks.
//!
//! Conventions:
//!
//! * **Measured throughput** always comes from the calibrated
//!   discrete-event simulator ([`cellstream_sim::SimConfig::calibrated`])
//!   — the reproduction's analogue of the paper's QS22 runs — while
//!   **predicted throughput** comes from the analytic evaluator, exactly
//!   as the paper contrasts its LP predictions with hardware runs.
//! * **Speed-ups** are normalised to the *measured* PPE-only throughput
//!   (§6.4.2).
//! * The MILP runs with the paper's 5 % gap, seeded with both §6.3
//!   greedies, the comm-aware greedy and a multi-start local-search
//!   refinement — see EXPERIMENTS.md for why the seeds matter when the
//!   in-repo B&B replaces CPLEX.
//! * `CELLSTREAM_QUICK=1` shrinks sweeps and budgets by ~10x for smoke
//!   runs; the recorded EXPERIMENTS.md numbers use full mode.

#![forbid(unsafe_code)]

use cellstream_core::{evaluate, solve, Mapping, SolveOptions};
use cellstream_graph::StreamGraph;
use cellstream_heuristics as heur;
use cellstream_milp::bb::MipOptions;
use cellstream_milp::model::LpOptions;
use cellstream_platform::{CellSpec, PeId};
use cellstream_sim::{simulate, SimConfig, SimError};
use std::io::Write as _;
use std::path::Path;
use std::time::Duration;

/// `true` when `CELLSTREAM_QUICK=1`: smaller sweeps, smaller budgets.
pub fn quick_mode() -> bool {
    std::env::var("CELLSTREAM_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// Instances to simulate per measurement.
pub fn sim_instances() -> u64 {
    if quick_mode() { 1500 } else { 10_000 }
}

/// The MILP budget per solve.
pub fn mip_options() -> MipOptions {
    if quick_mode() {
        MipOptions {
            rel_gap: 0.05,
            time_limit: Duration::from_secs(10),
            max_nodes: 60,
            lp: LpOptions { max_iterations: 8_000, ..Default::default() },
            ..Default::default()
        }
    } else {
        MipOptions {
            rel_gap: 0.05,
            time_limit: Duration::from_secs(120),
            max_nodes: 600,
            lp: LpOptions { max_iterations: 60_000, ..Default::default() },
            ..Default::default()
        }
    }
}

/// The heuristic seed stack: both §6.3 greedies, the comm-aware greedy,
/// and the best multi-start local-search refinement.
pub fn seed_stack(g: &StreamGraph, spec: &CellSpec) -> Vec<Mapping> {
    let gm = heur::greedy_mem(g, spec);
    let gc = heur::greedy_cpu(g, spec);
    let ca = heur::comm_aware_greedy(g, spec);
    let opts = heur::LocalSearchOptions {
        max_rounds: if quick_mode() { 16 } else { 64 },
        ..Default::default()
    };
    let (ls, _) = heur::search::multi_start(
        g,
        spec,
        &[gm.clone(), gc.clone(), ca.clone(), Mapping::all_on(g, PeId(0))],
        &opts,
    );
    vec![gm, gc, ca, ls]
}

/// Solve the MILP with the full seed stack and the figure budget.
pub fn lp_mapping(g: &StreamGraph, spec: &CellSpec) -> cellstream_core::SolveOutcome {
    solve(g, spec, &SolveOptions { seeds: seed_stack(g, spec), mip: mip_options(), ..Default::default() })
        .expect("mapping solve never fails (PPE-only fallback)")
}

/// Measured steady-state throughput of a mapping on the calibrated
/// simulator; `None` for infeasible/stalled runs.
pub fn measured_throughput(g: &StreamGraph, spec: &CellSpec, m: &Mapping) -> Option<f64> {
    match simulate(g, spec, m, &SimConfig::calibrated(), sim_instances()) {
        Ok(trace) => Some(trace.steady_state_throughput()),
        Err(SimError::BadMapping(_)) => None,
        Err(e) => {
            eprintln!("warning: simulation failed: {e}");
            None
        }
    }
}

/// Measured PPE-only throughput (the speed-up denominator of §6.4.2).
pub fn ppe_only_throughput(g: &StreamGraph, spec: &CellSpec) -> f64 {
    measured_throughput(g, spec, &Mapping::all_on(g, PeId(0))).expect("PPE-only always simulates")
}

/// Model-predicted throughput of a mapping.
pub fn predicted_throughput(g: &StreamGraph, spec: &CellSpec, m: &Mapping) -> f64 {
    evaluate(g, spec, m).expect("valid mapping").throughput
}

/// Write a CSV file under `crates/bench/results/`, creating directories.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> std::path::PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").unwrap();
    for r in rows {
        writeln!(f, "{r}").unwrap();
    }
    eprintln!("wrote {}", path.display());
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellstream_daggen::{chain, CostParams};

    #[test]
    fn harness_measures_consistently() {
        std::env::set_var("CELLSTREAM_QUICK", "1");
        let g = chain("h", 6, &CostParams::default(), 3);
        let spec = CellSpec::with_spes(2);
        let rho = ppe_only_throughput(&g, &spec);
        assert!(rho > 0.0);
        let seeds = seed_stack(&g, &spec);
        assert_eq!(seeds.len(), 4);
        for m in &seeds {
            // every seed must at least evaluate
            let _ = predicted_throughput(&g, &spec, m);
        }
    }
}
