//! Ablation benchmarks for the design choices called out in DESIGN.md §5:
//!
//! * **DMA constraints (1j)/(1k)** — solve cost with and without the
//!   DMA-queue rows (the quality effect is reported by the `ablations`
//!   binary; here we measure what the rows cost the solver).
//! * **Buffer dedup** — the paper's deliberately-simple duplicated-buffer
//!   accounting vs. the §4.2 "future optimisation" that shares buffers
//!   between co-mapped neighbours.
//! * **Formulation encodings** — the paper's verbatim β encoding vs. the
//!   compact γ encoding, LP-relaxation solve time on the same instance.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cellstream_core::steady::buffers::BufferPlan;
use cellstream_core::{FormKind, Formulation, FormulationConfig};
use cellstream_daggen::{generate, CostParams, DagGenParams};
use cellstream_milp::model::LpOptions;
use cellstream_platform::CellSpec;

fn small_graph() -> cellstream_graph::StreamGraph {
    generate(
        "ablate",
        &DagGenParams {
            n: 16,
            fat: 0.5,
            regular: 0.5,
            density: 0.25,
            jump: 2,
            costs: CostParams::default(),
        },
        0xAB1A7E,
    )
    .unwrap()
}

fn bench_dma_rows(c: &mut Criterion) {
    let g = small_graph();
    let spec = CellSpec::qs22();
    let mut group = c.benchmark_group("ablation/dma_rows");
    for (label, dma) in [("with_dma", true), ("without_dma", false)] {
        group.bench_function(label, |b| {
            let form = Formulation::build(
                &g,
                &spec,
                &FormulationConfig { kind: FormKind::Compact, dma_constraints: dma },
            );
            b.iter(|| black_box(form.model.solve_lp(&LpOptions::default()).unwrap()))
        });
    }
    group.finish();
}

fn bench_formulation_encodings(c: &mut Criterion) {
    let g = small_graph();
    let spec = CellSpec::with_spes(3);
    let mut group = c.benchmark_group("ablation/encoding");
    for (label, kind) in [("paper_beta", FormKind::Paper), ("compact_gamma", FormKind::Compact)] {
        group.bench_function(label, |b| {
            let form =
                Formulation::build(&g, &spec, &FormulationConfig { kind, dma_constraints: true });
            b.iter(|| black_box(form.model.solve_lp(&LpOptions::default()).unwrap()))
        });
    }
    group.finish();
}

fn bench_buffer_accounting(c: &mut Criterion) {
    let g = generate(
        "buffers",
        &DagGenParams {
            n: 60,
            fat: 0.5,
            regular: 0.5,
            density: 0.2,
            jump: 2,
            costs: CostParams::default(),
        },
        7,
    )
    .unwrap();
    let plan = BufferPlan::new(&g);
    let tasks: Vec<_> = g.task_ids().collect();
    let mut group = c.benchmark_group("ablation/buffer_accounting");
    group
        .bench_function("duplicated_paper", |b| b.iter(|| black_box(plan.for_tasks(tasks.iter()))));
    group.bench_function("dedup_future_work", |b| {
        b.iter(|| black_box(plan.for_tasks_dedup(&g, &tasks)))
    });
    group.finish();
}

criterion_group!(benches, bench_dma_rows, bench_formulation_encodings, bench_buffer_accounting);
criterion_main!(benches);
