//! Criterion micro-benchmarks of the core machinery: simplex pivots,
//! mapping evaluation, discrete-event simulation, graph generation and
//! the heuristics.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use cellstream_core::{evaluate, Mapping};
use cellstream_daggen::{generate, paper, CostParams, DagGenParams};
use cellstream_heuristics::{
    comm_aware_greedy, greedy_cpu, greedy_mem, local_search, LocalSearchOptions,
};
use cellstream_milp::model::{Cmp, LpOptions, Model, VarKind};
use cellstream_platform::{CellSpec, PeId};
use cellstream_sim::{simulate, SimConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_lp(n_vars: usize, n_cons: usize, seed: u64) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Model::new("bench");
    let vars: Vec<_> = (0..n_vars)
        .map(|i| {
            m.add_var(
                format!("x{i}"),
                0.0,
                rng.gen_range(1.0..4.0),
                rng.gen_range(-3.0..3.0),
                VarKind::Continuous,
            )
        })
        .collect();
    for _ in 0..n_cons {
        let mut terms = Vec::new();
        for &v in &vars {
            if rng.gen_bool(0.3) {
                terms.push((v, rng.gen_range(-2.0..4.0f64)));
            }
        }
        if !terms.is_empty() {
            m.add_con(terms, Cmp::Le, rng.gen_range(1.0..10.0));
        }
    }
    m
}

fn bench_simplex(c: &mut Criterion) {
    let small = random_lp(30, 20, 1);
    let medium = random_lp(200, 120, 2);
    c.bench_function("simplex/lp_30x20", |b| {
        b.iter(|| black_box(small.solve_lp(&LpOptions::default()).unwrap()))
    });
    c.bench_function("simplex/lp_200x120", |b| {
        b.iter(|| black_box(medium.solve_lp(&LpOptions::default()).unwrap()))
    });
}

fn bench_eval(c: &mut Criterion) {
    let g = paper::at_base_ccr(&paper::graph2());
    let spec = CellSpec::qs22();
    let m = greedy_cpu(&g, &spec);
    c.bench_function("eval/graph2_94tasks", |b| {
        b.iter(|| black_box(evaluate(&g, &spec, &m).unwrap()))
    });
}

fn bench_sim(c: &mut Criterion) {
    let g = paper::at_base_ccr(&paper::graph1());
    let spec = CellSpec::qs22();
    let m = greedy_cpu(&g, &spec);
    c.bench_function("sim/graph1_500_instances", |b| {
        b.iter(|| black_box(simulate(&g, &spec, &m, &SimConfig::calibrated(), 500).unwrap()))
    });
}

fn bench_daggen(c: &mut Criterion) {
    let params = DagGenParams {
        n: 94,
        fat: 0.55,
        regular: 0.5,
        density: 0.12,
        jump: 3,
        costs: CostParams::default(),
    };
    c.bench_function("daggen/generate_94", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(generate("bench", &params, seed).unwrap())
        })
    });
}

fn bench_heuristics(c: &mut Criterion) {
    let g = paper::at_base_ccr(&paper::graph1());
    let spec = CellSpec::qs22();
    c.bench_function("heuristics/greedy_mem", |b| b.iter(|| black_box(greedy_mem(&g, &spec))));
    c.bench_function("heuristics/greedy_cpu", |b| b.iter(|| black_box(greedy_cpu(&g, &spec))));
    c.bench_function("heuristics/comm_aware", |b| {
        b.iter(|| black_box(comm_aware_greedy(&g, &spec)))
    });
    c.bench_function("heuristics/local_search_1round", |b| {
        b.iter_batched(
            || greedy_cpu(&g, &spec),
            |start| {
                black_box(local_search(
                    &g,
                    &spec,
                    &start,
                    &LocalSearchOptions { max_rounds: 1, ..Default::default() },
                ))
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_schedule(c: &mut Criterion) {
    use cellstream_core::schedule::PeriodicSchedule;
    let g = paper::at_base_ccr(&paper::graph3());
    let spec = CellSpec::qs22();
    let m = Mapping::all_on(&g, PeId(0));
    let report = evaluate(&g, &spec, &m).unwrap();
    c.bench_function("schedule/build_chain50", |b| {
        b.iter(|| black_box(PeriodicSchedule::build(&g, &spec, &m, &report)))
    });
}

criterion_group!(
    benches,
    bench_simplex,
    bench_eval,
    bench_sim,
    bench_daggen,
    bench_heuristics,
    bench_schedule
);
criterion_main!(benches);
