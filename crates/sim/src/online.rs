//! The online half of the simulator: timestamped event traces and the
//! replay driver that measures a serving system under churn.
//!
//! The paper's evaluation maps one application and streams it forever;
//! the serving scenario (a Cell blade shared by media pipelines) sees
//! applications **arrive, change rate, and depart**. An [`EventTrace`]
//! captures such a run as timestamped [`TraceEvent`]s; [`replay`] feeds
//! them to any [`OnlineSystem`] (the `cellstream-serve::Service`
//! implements it) and, between events, simulates the system's current
//! workload + mapping to attribute delivered throughput per application.
//!
//! Measured per run:
//!
//! * per-application **delivered instances** (simulated steady-state
//!   throughput of the incumbent mapping × residency interval, in
//!   application-instance terms);
//! * per-event **replan latency** and **migration bytes** (what the
//!   serving layer reports);
//! * **rejected / queued admissions**.
//!
//! Events name applications by their graph name (stable across workload
//! recompositions), not by positional app id — a trace is data and must
//! survive the id shifts that retirements cause.

use crate::engine::{simulate, SimConfig};
use cellstream_core::Mapping;
use cellstream_graph::{StreamGraph, Workload};
use cellstream_platform::{CellSpec, PeId};
use std::time::{Duration, Instant};

/// One workload-churn event, application named by graph name.
#[derive(Debug, Clone)]
pub enum TraceEvent {
    /// An application arrives, asking for the given throughput weight.
    Admit {
        /// The application's graph (its name identifies it from now on).
        graph: StreamGraph,
        /// Relative throughput target (instances per composed round).
        weight: f64,
    },
    /// The named application departs.
    Retire {
        /// Application (graph) name.
        app: String,
    },
    /// The named application changes its throughput weight.
    Reweight {
        /// Application (graph) name.
        app: String,
        /// New weight.
        weight: f64,
    },
    /// A processing element fails (dies or is fenced off). `node` is the
    /// fleet index of the machine hosting it — single-node systems serve
    /// node 0 and ignore events addressed elsewhere.
    PeFailed {
        /// Fleet index of the affected node.
        node: usize,
        /// The failed PE on that node's platform.
        pe: PeId,
    },
    /// A previously failed processing element returns to service.
    PeRestored {
        /// Fleet index of the affected node.
        node: usize,
        /// The restored PE.
        pe: PeId,
    },
    /// The named application's declared compute costs turn out to be
    /// misestimated: multiply them by `factor` (>1 = heavier than
    /// declared). Traffic and buffer sizes are untouched — misestimated
    /// compute does not move bytes.
    CostDrift {
        /// Application (graph) name.
        app: String,
        /// Multiplicative cost correction.
        factor: f64,
    },
    /// A whole machine drops out of the fleet (power loss, network
    /// partition). Meaningless for single-node systems.
    NodeFailed {
        /// Fleet index of the lost node.
        node: usize,
    },
    /// A failed machine rejoins the fleet, empty and cold.
    NodeRestored {
        /// Fleet index of the returning node.
        node: usize,
    },
}

impl TraceEvent {
    /// Compact human label (`"admit audio"`, `"retire video"`, ...).
    pub fn label(&self) -> String {
        match self {
            TraceEvent::Admit { graph, weight } => format!("admit {} w={weight}", graph.name()),
            TraceEvent::Retire { app } => format!("retire {app}"),
            TraceEvent::Reweight { app, weight } => format!("reweight {app} w={weight}"),
            TraceEvent::PeFailed { node, pe } => format!("fail n{node} {pe}"),
            TraceEvent::PeRestored { node, pe } => format!("restore n{node} {pe}"),
            TraceEvent::CostDrift { app, factor } => format!("drift {app} x{factor}"),
            TraceEvent::NodeFailed { node } => format!("node-fail n{node}"),
            TraceEvent::NodeRestored { node } => format!("node-restore n{node}"),
        }
    }

    /// `true` for the impairment variants (PE/node failures, restores,
    /// cost drift) — the events a scenario's impairment schedule injects,
    /// as opposed to workload churn.
    pub fn is_fault(&self) -> bool {
        matches!(
            self,
            TraceEvent::PeFailed { .. }
                | TraceEvent::PeRestored { .. }
                | TraceEvent::CostDrift { .. }
                | TraceEvent::NodeFailed { .. }
                | TraceEvent::NodeRestored { .. }
        )
    }
}

/// A timestamped [`TraceEvent`].
#[derive(Debug, Clone)]
pub struct TimedEvent {
    /// Seconds since the start of the trace.
    pub at: f64,
    /// The event.
    pub event: TraceEvent,
}

/// A replayable arrival/departure trace: events sorted by timestamp plus
/// a measurement horizon.
#[derive(Debug, Clone, Default)]
pub struct EventTrace {
    events: Vec<TimedEvent>,
    /// End of the measured run (seconds). Intervals past the last event
    /// up to the horizon still count toward delivered throughput.
    pub horizon: f64,
}

impl EventTrace {
    /// An empty trace with the given horizon.
    pub fn new(horizon: f64) -> Self {
        assert!(horizon.is_finite() && horizon >= 0.0, "horizon must be finite, got {horizon}");
        EventTrace { events: Vec::new(), horizon }
    }

    /// Append an event (kept sorted by timestamp; ties keep insertion
    /// order). Builder-style.
    pub fn at(mut self, t: f64, event: TraceEvent) -> Self {
        self.push(t, event);
        self
    }

    /// Append an event, keeping the trace sorted by timestamp.
    pub fn push(&mut self, t: f64, event: TraceEvent) {
        assert!(t.is_finite() && t >= 0.0, "event timestamps must be finite, got {t}");
        let idx = self.events.partition_point(|e| e.at <= t);
        self.events.insert(idx, TimedEvent { at: t, event });
    }

    /// The events, sorted by timestamp.
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

// Traces are data: benches persist them under `bench/traces/` so the
// online and cluster drivers replay the identical churn. Events render
// as tagged objects ({"type": "admit", ...}); the unit-enum macro cannot
// express payload-carrying variants, so the impls are spelled out.
impl serde::Serialize for TraceEvent {
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        let obj = |pairs: Vec<(&str, Value)>| {
            Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
        };
        match self {
            TraceEvent::Admit { graph, weight } => obj(vec![
                ("type", Value::Str("admit".into())),
                ("graph", graph.to_value()),
                ("weight", Value::Num(*weight)),
            ]),
            TraceEvent::Retire { app } => {
                obj(vec![("type", Value::Str("retire".into())), ("app", Value::Str(app.clone()))])
            }
            TraceEvent::Reweight { app, weight } => obj(vec![
                ("type", Value::Str("reweight".into())),
                ("app", Value::Str(app.clone())),
                ("weight", Value::Num(*weight)),
            ]),
            TraceEvent::PeFailed { node, pe } => obj(vec![
                ("type", Value::Str("pe_failed".into())),
                ("node", Value::Num(*node as f64)),
                ("pe", pe.to_value()),
            ]),
            TraceEvent::PeRestored { node, pe } => obj(vec![
                ("type", Value::Str("pe_restored".into())),
                ("node", Value::Num(*node as f64)),
                ("pe", pe.to_value()),
            ]),
            TraceEvent::CostDrift { app, factor } => obj(vec![
                ("type", Value::Str("cost_drift".into())),
                ("app", Value::Str(app.clone())),
                ("factor", Value::Num(*factor)),
            ]),
            TraceEvent::NodeFailed { node } => obj(vec![
                ("type", Value::Str("node_failed".into())),
                ("node", Value::Num(*node as f64)),
            ]),
            TraceEvent::NodeRestored { node } => obj(vec![
                ("type", Value::Str("node_restored".into())),
                ("node", Value::Num(*node as f64)),
            ]),
        }
    }
}

impl serde::Deserialize for TraceEvent {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v.field("type")?.as_str()? {
            "admit" => Ok(TraceEvent::Admit {
                graph: StreamGraph::from_value(v.field("graph")?)?,
                weight: v.field("weight")?.as_f64()?,
            }),
            "retire" => Ok(TraceEvent::Retire { app: v.field("app")?.as_str()?.to_owned() }),
            "reweight" => Ok(TraceEvent::Reweight {
                app: v.field("app")?.as_str()?.to_owned(),
                weight: v.field("weight")?.as_f64()?,
            }),
            "pe_failed" => Ok(TraceEvent::PeFailed {
                node: v.field("node")?.as_u64()? as usize,
                pe: PeId::from_value(v.field("pe")?)?,
            }),
            "pe_restored" => Ok(TraceEvent::PeRestored {
                node: v.field("node")?.as_u64()? as usize,
                pe: PeId::from_value(v.field("pe")?)?,
            }),
            "cost_drift" => Ok(TraceEvent::CostDrift {
                app: v.field("app")?.as_str()?.to_owned(),
                factor: v.field("factor")?.as_f64()?,
            }),
            "node_failed" => {
                Ok(TraceEvent::NodeFailed { node: v.field("node")?.as_u64()? as usize })
            }
            "node_restored" => {
                Ok(TraceEvent::NodeRestored { node: v.field("node")?.as_u64()? as usize })
            }
            other => Err(serde::Error::new(format!("unknown TraceEvent type `{other}`"))),
        }
    }
}

serde::impl_json_struct!(TimedEvent { at, event });

impl serde::Serialize for EventTrace {
    fn to_value(&self) -> serde::Value {
        serde::Value::Obj(vec![
            ("horizon".to_owned(), serde::Value::Num(self.horizon)),
            ("events".to_owned(), self.events.to_value()),
        ])
    }
}

impl serde::Deserialize for EventTrace {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let horizon = v.field("horizon")?.as_f64()?;
        if !(horizon.is_finite() && horizon >= 0.0) {
            return Err(serde::Error::new(format!("invalid trace horizon {horizon}")));
        }
        // rebuild through push so the sorted-by-timestamp invariant (and
        // timestamp validity) is re-established, whatever the file says
        let events = Vec::<TimedEvent>::from_value(v.field("events")?)?;
        for e in &events {
            if !(e.at.is_finite() && e.at >= 0.0) {
                return Err(serde::Error::new(format!("invalid event timestamp {}", e.at)));
            }
        }
        let mut trace = EventTrace::new(horizon);
        for e in events {
            trace.push(e.at, e.event);
        }
        Ok(trace)
    }
}

/// What a serving system reports back for one applied event. The replay
/// driver stamps [`at`](EventOutcome::at); everything else comes from
/// the system (the serve crate maps its richer `ServeReport` into this).
#[derive(Debug, Clone)]
pub struct EventOutcome {
    /// Trace timestamp (stamped by [`replay`]).
    pub at: f64,
    /// Event label.
    pub label: String,
    /// `true` when the event changed the served workload (admitted /
    /// retired / reweighted); `false` for rejected or queued admissions
    /// and unknown-app events.
    pub applied: bool,
    /// `true` when an admission was parked in the wait queue rather than
    /// rejected outright.
    pub queued: bool,
    /// Wall-clock replanning latency of this event.
    pub replan: Duration,
    /// Migration traffic the adopted plan requires (bytes over the EIB).
    pub migration_bytes: f64,
    /// Composed round period after the event (`+∞` when nothing is
    /// being served).
    pub period: f64,
}

/// A system that can be driven by an [`EventTrace`]: apply one event,
/// expose the incumbent workload + mapping for measurement.
pub trait OnlineSystem {
    /// Apply one event and report what happened.
    fn apply_event(&mut self, ev: &TraceEvent) -> EventOutcome;

    /// The currently served workload and its incumbent mapping (`None`
    /// while nothing is admitted).
    fn current(&self) -> Option<(&Workload, &Mapping)>;

    /// The platform everything runs on.
    fn spec(&self) -> &CellSpec;
}

/// Per-application delivery tally of one replay.
#[derive(Debug, Clone, PartialEq)]
pub struct AppServed {
    /// Application (graph) name.
    pub app: String,
    /// Seconds the application was resident over the measured horizon.
    pub seconds: f64,
    /// Application instances delivered while resident (simulated
    /// steady-state throughput × residency, summed over intervals).
    pub instances: f64,
}

impl AppServed {
    /// Mean delivered throughput over the application's residency
    /// (instances per second); 0 for zero residency.
    pub fn throughput(&self) -> f64 {
        if self.seconds > 0.0 {
            self.instances / self.seconds
        } else {
            0.0
        }
    }
}

/// Everything [`replay`] measures.
#[derive(Debug, Clone)]
pub struct OnlineReport {
    /// One outcome per trace event, in trace order.
    pub events: Vec<EventOutcome>,
    /// Delivered instances per application name.
    pub served: Vec<AppServed>,
    /// Admissions that did not enter service immediately (rejected or
    /// queued).
    pub rejected: usize,
    /// Total migration traffic across all adopted replans (bytes).
    pub total_migration_bytes: f64,
}

impl OnlineReport {
    /// Median replanning latency across the *applied* events (what a
    /// serving SLO would track). Zero for an empty trace.
    pub fn median_replan(&self) -> Duration {
        let mut applied: Vec<Duration> =
            self.events.iter().filter(|e| e.applied).map(|e| e.replan).collect();
        if applied.is_empty() {
            return Duration::ZERO;
        }
        applied.sort();
        applied[applied.len() / 2]
    }

    /// Delivery tally of one application by name.
    pub fn app(&self, name: &str) -> Option<&AppServed> {
        self.served.iter().find(|a| a.app == name)
    }

    /// Total application instances delivered across all applications —
    /// the aggregate-throughput numerator the cluster bench gates on.
    pub fn total_instances(&self) -> f64 {
        self.served.iter().map(|a| a.instances).sum()
    }
}

/// Replay a trace against a serving system.
///
/// Between consecutive events (and from the last event to the trace
/// horizon) the system's incumbent mapping is simulated for
/// `instances_per_measure` instances under the **ideal** config (the
/// model-faithful limit, same convention as the co-scheduling bench) and
/// each resident application is credited its measured steady-state
/// throughput × interval length. Replan latencies and migration bytes
/// come from the system's own per-event reports.
pub fn replay<S: OnlineSystem>(
    sys: &mut S,
    trace: &EventTrace,
    instances_per_measure: u64,
) -> OnlineReport {
    let mut report = OnlineReport {
        events: Vec::with_capacity(trace.len()),
        served: Vec::new(),
        rejected: 0,
        total_migration_bytes: 0.0,
    };
    for (i, te) in trace.events().iter().enumerate() {
        let mut outcome = sys.apply_event(&te.event);
        outcome.at = te.at;
        if !outcome.applied {
            report.rejected += 1;
        }
        report.total_migration_bytes += outcome.migration_bytes;
        report.events.push(outcome);

        let until = trace.events().get(i + 1).map_or(trace.horizon, |n| n.at);
        let interval = (until - te.at).max(0.0);
        if interval > 0.0 {
            credit_interval(sys, interval, instances_per_measure, &mut report.served);
        }
    }
    report
}

/// Simulate the incumbent and credit every resident application its
/// delivered share of one inter-event interval.
fn credit_interval<S: OnlineSystem>(
    sys: &S,
    interval: f64,
    instances: u64,
    served: &mut Vec<AppServed>,
) {
    let Some((w, m)) = sys.current() else {
        return; // idle: nothing served
    };
    credit_node(w, m, sys.spec(), interval, instances, served);
}

/// Credit one node's resident applications for one interval.
fn credit_node(
    w: &Workload,
    m: &Mapping,
    spec: &CellSpec,
    interval: f64,
    instances: u64,
    served: &mut Vec<AppServed>,
) {
    let per_app = match simulate(w.graph(), spec, m, &SimConfig::ideal(), instances) {
        Ok(trace) => trace.per_app_throughput(w),
        Err(_) => vec![0.0; w.n_apps()],
    };
    for (info, thr) in w.apps().iter().zip(per_app) {
        let entry = match served.iter_mut().find(|a| a.app == info.name) {
            Some(e) => e,
            None => {
                served.push(AppServed { app: info.name.clone(), seconds: 0.0, instances: 0.0 });
                served.last_mut().expect("just pushed")
            }
        };
        entry.seconds += interval;
        entry.instances += thr * interval;
    }
}

/// A *sharded* serving system driven by an [`EventTrace`]: one
/// coordinator routing events across many nodes, each with its own
/// platform and incumbent mapping (the `cellstream-cluster` crate's
/// in-process `Cluster` implements it).
pub trait FleetSystem {
    /// Apply one event and report what happened cluster-wide.
    fn apply_event(&mut self, ev: &TraceEvent) -> EventOutcome;

    /// Every node's incumbent `(workload, mapping, platform)` triple,
    /// idle nodes omitted. Application names are cluster-unique, so the
    /// per-node tallies merge into one cluster-wide account.
    fn incumbents(&self) -> Vec<(&Workload, &Mapping, &CellSpec)>;
}

/// [`replay`] for a fleet: identical trace semantics, but between events
/// **every** node's incumbent is simulated and each resident application
/// is credited on whichever node hosts it, yielding cluster-wide
/// aggregate delivered throughput.
pub fn replay_fleet<S: FleetSystem>(
    sys: &mut S,
    trace: &EventTrace,
    instances_per_measure: u64,
) -> OnlineReport {
    let mut report = OnlineReport {
        events: Vec::with_capacity(trace.len()),
        served: Vec::new(),
        rejected: 0,
        total_migration_bytes: 0.0,
    };
    for (i, te) in trace.events().iter().enumerate() {
        let mut outcome = sys.apply_event(&te.event);
        outcome.at = te.at;
        if !outcome.applied {
            report.rejected += 1;
        }
        report.total_migration_bytes += outcome.migration_bytes;
        report.events.push(outcome);

        let until = trace.events().get(i + 1).map_or(trace.horizon, |n| n.at);
        let interval = (until - te.at).max(0.0);
        if interval > 0.0 {
            for (w, m, spec) in sys.incumbents() {
                credit_node(w, m, spec, interval, instances_per_measure, &mut report.served);
            }
        }
    }
    report
}

/// A serving system with a **concurrent intake**: events submitted on
/// the trace-driving thread land in a bounded queue and are applied
/// asynchronously by a planner thread (the `cellstream-serve` crate's
/// `ServePipeline` implements it over an SPSC ring). Submission order is
/// the application order — the planner may *batch* adjacent events into
/// one replan but never reorders across a dependency.
pub trait IntakeSystem {
    /// Submit one event, blocking (spinning/yielding) until the intake
    /// queue accepts it. Returns `true` if the queue refused the event
    /// at least once first — the backpressure signal.
    fn submit(&self, ev: TraceEvent) -> bool;

    /// Events accepted but not yet applied by the planner.
    fn backlog(&self) -> usize;
}

/// What [`replay_concurrent`] measured on the intake side. Planner-side
/// outcomes (batch sizes, replan latency, final incumbent) belong to the
/// concrete [`IntakeSystem`] — harvest them when the pipeline is joined.
#[derive(Debug, Clone)]
pub struct IntakeReport {
    /// Events submitted (== the trace length).
    pub submitted: usize,
    /// Events the queue pushed back on at least once before accepting.
    pub backpressured: usize,
    /// Largest backlog observed right after a submission.
    pub peak_backlog: usize,
    /// Wall-clock time to hand the whole trace over (planning continues
    /// after this on the planner thread).
    pub wall: Duration,
}

/// Drive an [`IntakeSystem`] through a trace **as fast as backpressure
/// allows**, ignoring the trace timestamps: the trace supplies ordering,
/// the ring supplies pacing. This is the saturation mode the hot-path
/// bench measures; wall-clock per event on the intake side is pure queue
/// handoff, while replanning proceeds concurrently on the planner
/// thread.
pub fn replay_concurrent<S: IntakeSystem + ?Sized>(sys: &S, trace: &EventTrace) -> IntakeReport {
    let started = Instant::now();
    let mut backpressured = 0;
    let mut peak = 0;
    for te in trace.events() {
        if sys.submit(te.event.clone()) {
            backpressured += 1;
        }
        peak = peak.max(sys.backlog());
    }
    IntakeReport {
        submitted: trace.len(),
        backpressured,
        peak_backlog: peak,
        wall: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellstream_graph::TaskSpec;
    use cellstream_platform::PeId;

    fn tiny_app(name: &str) -> StreamGraph {
        let mut b = StreamGraph::builder(name);
        let s = b.add_task(TaskSpec::new("s").uniform_cost(1e-6));
        let t = b.add_task(TaskSpec::new("t").uniform_cost(1e-6));
        b.add_edge(s, t, 64.0).unwrap();
        b.build().unwrap()
    }

    /// Minimal serving stand-in: admits everything onto the PPE, retires
    /// by name, rejects admissions once `cap` apps are live.
    struct PpeServer {
        spec: CellSpec,
        state: Option<(Workload, Mapping)>,
        cap: usize,
    }

    impl PpeServer {
        fn replan(&mut self, w: Option<Workload>) {
            self.state = w.map(|w| {
                let m = Mapping::all_on(w.graph(), PeId(0));
                (w, m)
            });
        }
        fn outcome(&self, ev: &TraceEvent, applied: bool) -> EventOutcome {
            EventOutcome {
                at: 0.0,
                label: ev.label(),
                applied,
                queued: false,
                replan: Duration::from_micros(10),
                migration_bytes: if applied { 64.0 } else { 0.0 },
                period: self
                    .state
                    .as_ref()
                    .map_or(f64::INFINITY, |(w, _)| w.graph().total_ppe_work()),
            }
        }
    }

    impl OnlineSystem for PpeServer {
        fn apply_event(&mut self, ev: &TraceEvent) -> EventOutcome {
            match ev {
                TraceEvent::Admit { graph, weight } => {
                    let n = self.state.as_ref().map_or(0, |(w, _)| w.n_apps());
                    if n >= self.cap {
                        return self.outcome(ev, false);
                    }
                    let w = match self.state.take() {
                        None => {
                            let mut b = Workload::builder("served");
                            b.push(graph, *weight).unwrap();
                            b.build().unwrap()
                        }
                        Some((mut w, _)) => {
                            w.add(graph, *weight).unwrap();
                            w
                        }
                    };
                    self.replan(Some(w));
                    self.outcome(ev, true)
                }
                TraceEvent::Retire { app } => {
                    let Some((mut w, _)) = self.state.take() else {
                        return self.outcome(ev, false);
                    };
                    let Some(id) = w.app_id(app) else {
                        self.state = Some((w.clone(), Mapping::all_on(w.graph(), PeId(0))));
                        return self.outcome(ev, false);
                    };
                    if w.n_apps() == 1 {
                        self.replan(None);
                    } else {
                        w.retire(id).unwrap();
                        self.replan(Some(w));
                    }
                    self.outcome(ev, true)
                }
                TraceEvent::Reweight { app, weight } => {
                    let Some((mut w, _)) = self.state.take() else {
                        return self.outcome(ev, false);
                    };
                    let applied = match w.app_id(app) {
                        Some(id) => w.reweight(id, *weight).is_ok(),
                        None => false,
                    };
                    self.replan(Some(w));
                    self.outcome(ev, applied)
                }
                // the toy server models no impairments: faults bounce
                TraceEvent::PeFailed { .. }
                | TraceEvent::PeRestored { .. }
                | TraceEvent::CostDrift { .. }
                | TraceEvent::NodeFailed { .. }
                | TraceEvent::NodeRestored { .. } => self.outcome(ev, false),
            }
        }

        fn current(&self) -> Option<(&Workload, &Mapping)> {
            self.state.as_ref().map(|(w, m)| (w, m))
        }

        fn spec(&self) -> &CellSpec {
            &self.spec
        }
    }

    #[test]
    fn trace_stays_sorted_and_labelled() {
        let trace = EventTrace::new(1.0)
            .at(0.5, TraceEvent::Retire { app: "a".into() })
            .at(0.1, TraceEvent::Admit { graph: tiny_app("a"), weight: 1.0 })
            .at(0.3, TraceEvent::Reweight { app: "a".into(), weight: 2.0 });
        let ts: Vec<f64> = trace.events().iter().map(|e| e.at).collect();
        assert_eq!(ts, vec![0.1, 0.3, 0.5]);
        assert_eq!(trace.events()[0].event.label(), "admit a w=1");
        assert_eq!(trace.len(), 3);
        assert!(!trace.is_empty());
    }

    #[test]
    fn replay_credits_residency_and_counts_rejections() {
        let mut sys = PpeServer { spec: CellSpec::ps3(), state: None, cap: 1 };
        let trace = EventTrace::new(1.0)
            .at(0.0, TraceEvent::Admit { graph: tiny_app("a"), weight: 1.0 })
            .at(0.4, TraceEvent::Admit { graph: tiny_app("b"), weight: 1.0 }) // over cap
            .at(0.6, TraceEvent::Retire { app: "a".into() });
        let report = replay(&mut sys, &trace, 400);
        assert_eq!(report.events.len(), 3);
        assert_eq!(report.rejected, 1, "the over-cap admission is rejected");
        assert!(report.events[0].applied && !report.events[1].applied);
        // a is resident from 0.0 to 0.6 and delivers ~1/(2us) inst/s
        let a = report.app("a").expect("a was served");
        assert!((a.seconds - 0.6).abs() < 1e-12);
        assert!(a.instances > 0.0);
        let thr = a.throughput();
        let model = 1.0 / sys.spec.pes().count() as f64; // unused sanity anchor
        let _ = model;
        assert!((thr - 1.0 / 2e-6).abs() / (1.0 / 2e-6) < 0.05, "ppe-only chain rate, got {thr}");
        // nothing served after the retire; b never entered
        assert!(report.app("b").is_none());
        assert_eq!(report.total_migration_bytes, 64.0 * 2.0);
        assert!(report.median_replan() > Duration::ZERO);
    }

    #[test]
    fn traces_round_trip_through_json() {
        let trace = EventTrace::new(2.5)
            .at(0.0, TraceEvent::Admit { graph: tiny_app("a"), weight: 1.5 })
            .at(0.25, TraceEvent::Reweight { app: "a".into(), weight: 3.0 })
            .at(1.0, TraceEvent::Retire { app: "a".into() });
        let json = serde_json::to_string(&trace).unwrap();
        let back: EventTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back.horizon, trace.horizon);
        assert_eq!(back.len(), trace.len());
        for (orig, re) in trace.events().iter().zip(back.events()) {
            assert_eq!(orig.at, re.at);
            assert_eq!(orig.event.label(), re.event.label());
        }
        match &back.events()[0].event {
            TraceEvent::Admit { graph, weight } => {
                assert_eq!(graph.name(), "a");
                assert_eq!(graph.n_tasks(), 2);
                assert_eq!(*weight, 1.5);
            }
            other => panic!("expected admit, got {}", other.label()),
        }
        // a bogus tag is rejected, not misparsed
        let bad = r#"{"horizon": 1.0, "events": [{"at": 0.0, "event": {"type": "explode"}}]}"#;
        assert!(serde_json::from_str::<EventTrace>(bad).is_err());
    }

    #[test]
    fn fault_events_round_trip_through_json() {
        let trace = EventTrace::new(4.0)
            .at(0.0, TraceEvent::Admit { graph: tiny_app("a"), weight: 1.0 })
            .at(0.5, TraceEvent::PeFailed { node: 0, pe: PeId(3) })
            .at(1.0, TraceEvent::CostDrift { app: "a".into(), factor: 1.75 })
            .at(1.5, TraceEvent::NodeFailed { node: 2 })
            .at(2.0, TraceEvent::PeRestored { node: 0, pe: PeId(3) })
            .at(2.5, TraceEvent::NodeRestored { node: 2 });
        let json = serde_json::to_string(&trace).unwrap();
        let back: EventTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), trace.len());
        for (orig, re) in trace.events().iter().zip(back.events()) {
            assert_eq!(orig.at, re.at);
            assert_eq!(orig.event.label(), re.event.label());
            assert_eq!(orig.event.is_fault(), re.event.is_fault());
        }
        match &back.events()[1].event {
            TraceEvent::PeFailed { node, pe } => {
                assert_eq!(*node, 0);
                assert_eq!(*pe, PeId(3));
            }
            other => panic!("expected pe_failed, got {}", other.label()),
        }
        match &back.events()[2].event {
            TraceEvent::CostDrift { app, factor } => {
                assert_eq!(app, "a");
                assert_eq!(*factor, 1.75);
            }
            other => panic!("expected cost_drift, got {}", other.label()),
        }
        assert!(back.events()[1].event.is_fault());
        assert!(!back.events()[0].event.is_fault());
    }

    /// Two independent [`PpeServer`]s behind a modulo router: enough of
    /// a fleet to pin `replay_fleet`'s cluster-wide crediting.
    struct TwoNode {
        nodes: [PpeServer; 2],
        next: usize,
        homes: Vec<(String, usize)>,
    }

    impl FleetSystem for TwoNode {
        fn apply_event(&mut self, ev: &TraceEvent) -> EventOutcome {
            let node = match ev {
                TraceEvent::Admit { graph, .. } => {
                    let n = self.next % 2;
                    self.next += 1;
                    self.homes.push((graph.name().to_owned(), n));
                    n
                }
                TraceEvent::Retire { app }
                | TraceEvent::Reweight { app, .. }
                | TraceEvent::CostDrift { app, .. } => {
                    self.homes.iter().find(|(name, _)| name == app).map_or(0, |&(_, n)| n)
                }
                TraceEvent::PeFailed { node, .. }
                | TraceEvent::PeRestored { node, .. }
                | TraceEvent::NodeFailed { node }
                | TraceEvent::NodeRestored { node } => *node % 2,
            };
            self.nodes[node].apply_event(ev)
        }

        fn incumbents(&self) -> Vec<(&Workload, &Mapping, &CellSpec)> {
            self.nodes.iter().filter_map(|n| n.current().map(|(w, m)| (w, m, n.spec()))).collect()
        }
    }

    #[test]
    fn fleet_replay_credits_every_node() {
        let node = || PpeServer { spec: CellSpec::ps3(), state: None, cap: 8 };
        let mut fleet = TwoNode { nodes: [node(), node()], next: 0, homes: Vec::new() };
        let trace = EventTrace::new(1.0)
            .at(0.0, TraceEvent::Admit { graph: tiny_app("a"), weight: 1.0 })
            .at(0.0, TraceEvent::Admit { graph: tiny_app("b"), weight: 1.0 });
        let report = replay_fleet(&mut fleet, &trace, 400);
        assert_eq!(report.rejected, 0);
        // both apps run the whole horizon, one per node, each at the
        // full single-node ppe-chain rate — the fleet doubles delivery
        let (a, b) = (report.app("a").unwrap(), report.app("b").unwrap());
        assert!((a.seconds - 1.0).abs() < 1e-12);
        assert!((b.seconds - 1.0).abs() < 1e-12);
        let rate = 1.0 / 2e-6;
        assert!((a.throughput() - rate).abs() / rate < 0.05, "{}", a.throughput());
        assert!((b.throughput() - rate).abs() / rate < 0.05, "{}", b.throughput());
        assert!((report.total_instances() - 2.0 * rate).abs() / (2.0 * rate) < 0.05);
    }

    #[test]
    fn idle_trace_reports_nothing_served() {
        let mut sys = PpeServer { spec: CellSpec::ps3(), state: None, cap: 8 };
        let trace = EventTrace::new(0.5).at(0.2, TraceEvent::Retire { app: "ghost".into() });
        let report = replay(&mut sys, &trace, 100);
        assert!(report.served.is_empty());
        assert_eq!(report.rejected, 1);
    }

    /// A bounded toy intake: accepts up to `cap` outstanding events,
    /// "plans" by summing labels. Checks the driver's ordering and
    /// backpressure accounting without a real planner thread.
    struct ToyIntake {
        cap: usize,
        queue: std::sync::Mutex<std::collections::VecDeque<TraceEvent>>,
        applied: std::sync::Mutex<Vec<String>>,
    }

    impl IntakeSystem for ToyIntake {
        fn submit(&self, ev: TraceEvent) -> bool {
            // single-threaded toy: a full queue drains itself instead of
            // waiting on a planner thread
            let mut q = self.queue.lock().unwrap();
            let pushed_back = q.len() == self.cap;
            if pushed_back {
                let mut done = self.applied.lock().unwrap();
                done.extend(q.drain(..).map(|e| e.label()));
            }
            q.push_back(ev);
            pushed_back
        }

        fn backlog(&self) -> usize {
            self.queue.lock().unwrap().len()
        }
    }

    #[test]
    fn concurrent_replay_preserves_order_under_backpressure() {
        let sys = ToyIntake {
            cap: 2,
            queue: std::sync::Mutex::new(std::collections::VecDeque::new()),
            applied: std::sync::Mutex::new(Vec::new()),
        };
        let mut trace = EventTrace::new(1.0);
        for i in 0..7 {
            trace.push(
                i as f64 * 0.1,
                TraceEvent::Admit { graph: tiny_app(&format!("g{i}")), weight: 1.0 },
            );
        }
        let report = replay_concurrent(&sys, &trace);
        assert_eq!(report.submitted, 7);
        assert_eq!(report.backpressured, 3, "a 2-slot queue under 7 pushes refuses thrice");
        assert!(report.peak_backlog <= 2);
        // drain the tail, then check arrival order == submission order
        let mut done = sys.applied.lock().unwrap().clone();
        done.extend(sys.queue.lock().unwrap().iter().map(|e| e.label()));
        let expect: Vec<String> = (0..7).map(|i| format!("admit g{i} w=1")).collect();
        assert_eq!(done, expect);
    }
}
