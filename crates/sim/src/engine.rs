//! The discrete-event core.
//!
//! Fluid-flow simulation: compute completions are exact events; transfer
//! completions are predicted from the current max-min rate allocation and
//! re-predicted (with a generation counter invalidating stale events)
//! whenever the active-flow set changes.

use crate::fair::{max_min_rates, FlowPorts};
use cellstream_core::steady::buffers::BufferPlan;
use cellstream_core::Mapping;
use cellstream_graph::{StreamGraph, TaskId};
use cellstream_platform::{CellSpec, PeId, PeKind};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Tunables of the simulated scheduling framework.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Fixed cost added to every task-instance activation (task selection,
    /// resource checks, data signalling — the Figure 4 loop).
    pub task_overhead: f64,
    /// Delay between admitting a DMA transfer and its first byte moving
    /// (DMA issue + synchronisation).
    pub dma_latency: f64,
    /// CPU time a PE loses per DMA transfer it has to issue or watch.
    /// §4.1: SPEs "are not multi-threaded and the computation must be
    /// interrupted to initiate a communication" — the consumer pays one
    /// interrupt per incoming transfer (issue the Get + watch it), the
    /// producer half of one (signal + unlock). This cost is what makes
    /// scattered mappings collapse on the real machine while the
    /// analytic model (which ignores it, like the paper's) barely
    /// notices; see EXPERIMENTS.md §Figure 7.
    pub comm_interrupt: f64,
    /// Memory-read prefetch window in instances.
    pub read_ahead: u64,
    /// Cap on outstanding memory writes per task before production blocks.
    pub write_window: u64,
    /// Safety valve on total simulation events.
    pub max_events: u64,
}

impl SimConfig {
    /// No overheads: the simulator converges to the model throughput.
    pub fn ideal() -> Self {
        SimConfig {
            task_overhead: 0.0,
            dma_latency: 0.0,
            comm_interrupt: 0.0,
            read_ahead: 2,
            write_window: 4,
            max_events: 200_000_000,
        }
    }

    /// Calibrated to the paper's observation that the real framework
    /// achieves ≈ 95 % of the predicted throughput on the MILP mappings
    /// (§6.4.1). The calibration procedure is recorded in EXPERIMENTS.md.
    pub fn calibrated() -> Self {
        SimConfig {
            task_overhead: 0.01e-6,
            dma_latency: 0.3e-6,
            comm_interrupt: 0.02e-6,
            ..Self::ideal()
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::calibrated()
    }
}

/// Simulation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// No event left but the target instance count was not reached —
    /// a deadlock, which a correctly sized buffer plan should preclude.
    Stalled {
        /// Simulated time of the stall.
        at: f64,
        /// Instances fully completed when the stall happened.
        completed: u64,
    },
    /// `max_events` exceeded.
    EventBudget,
    /// The mapping failed structural validation.
    BadMapping(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Stalled { at, completed } => {
                write!(f, "simulation stalled at t={at:.6}s with {completed} instances done")
            }
            SimError::EventBudget => write!(f, "event budget exhausted"),
            SimError::BadMapping(m) => write!(f, "bad mapping: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    ComputeDone { pe: usize, task: usize },
    TransferStart { id: usize },
    TransferDone { gen: u64 },
}

struct Event {
    at: f64,
    seq: u64,
    kind: Ev,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    // check:allow(float-ord): canonical PartialOrd-from-Ord forwarding; the
    // total order itself lives in `Ord::cmp` via `total_cmp`
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // min-heap: earlier time first (total order, NaN-safe), then
        // insertion order
        other.at.total_cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum FlowKind {
    Edge { edge: usize },
    Read { task: usize },
    Write,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum FlowState {
    Latency,
    Streaming,
    Done,
}

struct Flow {
    kind: FlowKind,
    state: FlowState,
    bytes_left: f64,
    /// original payload, for the relative drain threshold
    total_bytes: f64,
    rate: f64,
    ports: FlowPorts,
    /// DMA slot bookkeeping: which SPE queue / proxy queue this occupies.
    spe_queue: Option<usize>,
    proxy_queue: Option<usize>,
}

struct EdgeState {
    src: usize,
    dst: usize,
    bytes: f64,
    capacity: u64,
    co_mapped: bool,
    /// instances fully produced by the source task
    produced: u64,
    /// next instance to admit to DMA (cut edges only)
    next_send: u64,
    /// instances fully arrived at the consumer side
    arrived: u64,
    /// transfers completed (frees producer-side slots, cut edges only)
    transfers_done: u64,
    /// transfers currently admitted but not finished
    inflight: u64,
}

struct TaskState {
    pe: usize,
    /// next instance this task will process
    next: u64,
    reads_done: u64,
    reads_inflight: u64,
    writes_inflight: u64,
    priority: u64, // firstPeriod
    topo_rank: usize,
    is_sink: bool,
}

/// Run the mapped application for `n_instances` stream instances and
/// return the trace of sink completions.
pub fn simulate(
    g: &StreamGraph,
    spec: &CellSpec,
    mapping: &Mapping,
    config: &SimConfig,
    n_instances: u64,
) -> Result<crate::trace::RunTrace, SimError> {
    Sim::new(g, spec, mapping, config, n_instances)?.run()
}

struct Sim<'a> {
    g: &'a StreamGraph,
    spec: &'a CellSpec,
    config: SimConfig,
    n_instances: u64,

    now: f64,
    seq: u64,
    events: BinaryHeap<Event>,
    gen: u64,

    tasks: Vec<TaskState>,
    edges: Vec<EdgeState>,
    flows: Vec<Flow>,
    active_flow_ids: Vec<usize>,
    pe_busy: Vec<bool>,
    /// CPU time owed by each PE for DMA issue/watch interruptions,
    /// drained into its next compute slot.
    pending_interrupt: Vec<f64>,
    /// SPE-issued DMA queue occupancy (paper: ≤ 16)
    spe_queue_used: Vec<u32>,
    /// SPE→PPE proxy queue occupancy (paper: ≤ 8)
    proxy_used: Vec<u32>,
    /// per-PE task list in topo order
    pe_tasks: Vec<Vec<usize>>,

    /// completion time of each instance per sink task
    sink_times: Vec<Vec<f64>>,
    sink_ids: Vec<usize>,
    /// (flow id, owning task) for in-flight memory writes
    write_owner: Vec<(usize, usize)>,
    /// bytes that fully left each PE's outgoing interface
    bytes_out: Vec<f64>,
    /// bytes that fully entered each PE's incoming interface
    bytes_in: Vec<f64>,
    events_processed: u64,
}

impl<'a> Sim<'a> {
    fn new(
        g: &'a StreamGraph,
        spec: &'a CellSpec,
        mapping: &'a Mapping,
        config: &SimConfig,
        n_instances: u64,
    ) -> Result<Self, SimError> {
        assert!(n_instances > 0, "simulate at least one instance");
        Mapping::new(g, spec, mapping.assignment().to_vec())
            .map_err(|e| SimError::BadMapping(e.to_string()))?;
        let plan = BufferPlan::new(g);
        let topo_rank = {
            let mut r = vec![0usize; g.n_tasks()];
            for (rank, t) in g.topo_order().iter().enumerate() {
                r[t.index()] = rank;
            }
            r
        };
        let tasks: Vec<TaskState> = g
            .task_ids()
            .map(|t| TaskState {
                pe: mapping.pe_of(t).index(),
                next: 0,
                reads_done: 0,
                reads_inflight: 0,
                writes_inflight: 0,
                priority: plan.first_period[t.index()],
                topo_rank: topo_rank[t.index()],
                is_sink: g.out_edges(t).is_empty(),
            })
            .collect();
        let edges: Vec<EdgeState> = g
            .edges()
            .iter()
            .enumerate()
            .map(|(ei, e)| EdgeState {
                src: e.src.index(),
                dst: e.dst.index(),
                bytes: e.data_bytes,
                capacity: plan.edge_slots[ei].max(1),
                co_mapped: mapping.pe_of(e.src) == mapping.pe_of(e.dst),
                produced: 0,
                next_send: 0,
                arrived: 0,
                transfers_done: 0,
                inflight: 0,
            })
            .collect();
        let mut pe_tasks: Vec<Vec<usize>> = vec![Vec::new(); spec.n_pes()];
        for &t in g.topo_order() {
            pe_tasks[mapping.pe_of(t).index()].push(t.index());
        }
        let sink_ids: Vec<usize> = g.sinks().map(|t| t.index()).collect();
        Ok(Sim {
            g,
            spec,
            config: *config,
            n_instances,
            now: 0.0,
            seq: 0,
            events: BinaryHeap::new(),
            gen: 0,
            tasks,
            edges,
            flows: Vec::new(),
            active_flow_ids: Vec::new(),
            pe_busy: vec![false; spec.n_pes()],
            pending_interrupt: vec![0.0; spec.n_pes()],
            spe_queue_used: vec![0; spec.n_pes()],
            proxy_used: vec![0; spec.n_pes()],
            pe_tasks,
            sink_times: vec![Vec::new(); g.n_tasks()],
            sink_ids,
            write_owner: Vec::new(),
            bytes_out: vec![0.0; spec.n_pes()],
            bytes_in: vec![0.0; spec.n_pes()],
            events_processed: 0,
        })
    }

    fn push(&mut self, at: f64, kind: Ev) {
        self.seq += 1;
        self.events.push(Event { at, seq: self.seq, kind });
    }

    fn is_spe(&self, pe: usize) -> bool {
        self.spec.is_spe(PeId(pe))
    }

    /// A streaming flow counts as drained when its residue is negligible
    /// relative to its payload, or when its remaining transfer time
    /// vanishes under the floating-point resolution of `now` (otherwise
    /// the completion event would re-fire forever at the same instant).
    fn is_drained(&self, f: &Flow) -> bool {
        if f.state != FlowState::Streaming {
            return false;
        }
        if f.rate.is_infinite() {
            return true;
        }
        let rel = f.bytes_left <= 1e-9 * f.total_bytes.max(1.0);
        let eta = f.bytes_left / f.rate;
        let below_resolution = self.now + eta <= self.now;
        rel || below_resolution
    }

    // ---- flow management --------------------------------------------------

    /// Advance fluid progress of streaming flows from the last update to
    /// `self.now` (caller must have set `now`), given the stored rates.
    fn advance(&mut self, dt: f64) {
        if dt <= 0.0 {
            return;
        }
        for &fid in &self.active_flow_ids {
            let f = &mut self.flows[fid];
            if f.state == FlowState::Streaming && f.rate.is_finite() {
                f.bytes_left = (f.bytes_left - f.rate * dt).max(0.0);
            }
        }
    }

    /// Recompute max-min rates and schedule the next completion event.
    fn reallocate(&mut self) {
        self.gen += 1;
        let streaming: Vec<usize> = self
            .active_flow_ids
            .iter()
            .copied()
            .filter(|&fid| self.flows[fid].state == FlowState::Streaming)
            .collect();
        let ports: Vec<FlowPorts> = streaming.iter().map(|&fid| self.flows[fid].ports).collect();
        let rates =
            max_min_rates(&ports, 2 * self.spec.n_pes(), self.spec.interface_bw().as_bytes_per_s());
        if cfg!(debug_assertions) {
            // conservation check: no link may be over-allocated
            let bw = self.spec.interface_bw().as_bytes_per_s();
            let mut load = vec![0.0f64; 2 * self.spec.n_pes()];
            for (&fid, &rate) in streaming.iter().zip(&rates) {
                let f = &self.flows[fid];
                for l in [f.ports.src_link, f.ports.dst_link].into_iter().flatten() {
                    load[l] += rate;
                }
                let _ = fid;
            }
            for (l, &ld) in load.iter().enumerate() {
                debug_assert!(
                    ld <= bw * 1.0001,
                    "link {l} over-allocated: {ld:.3e} of {bw:.3e} at t={}",
                    self.now
                );
            }
        }
        let mut next_done: Option<f64> = None;
        for (&fid, &rate) in streaming.iter().zip(&rates) {
            let f = &mut self.flows[fid];
            f.rate = rate;
            let eta = if rate.is_infinite() { 0.0 } else { f.bytes_left / rate };
            // never predict beyond-horizon completions for already-drained
            // residue: fire immediately instead
            let done_at = self.now + eta;
            next_done = Some(next_done.map_or(done_at, |d: f64| d.min(done_at)));
        }
        if let Some(at) = next_done {
            self.push(at, Ev::TransferDone { gen: self.gen });
        }
    }

    /// Try to admit pending work everywhere: edge transfers, memory reads,
    /// and idle-PE activations. Returns whether anything changed the flow
    /// set (then the caller reallocates).
    fn pump(&mut self) -> bool {
        let mut flows_changed = false;

        // --- admit edge transfers -----------------------------------------
        for ei in 0..self.edges.len() {
            loop {
                let e = &self.edges[ei];
                if e.co_mapped || e.next_send >= e.produced {
                    break;
                }
                // consumer-side in-buffer reservation
                let consumer_done = self.tasks[e.dst].next;
                let reserved = (e.arrived - consumer_done.min(e.arrived)) + e.inflight;
                if reserved >= e.capacity {
                    break;
                }
                let (src_pe, dst_pe) = (self.tasks[e.src].pe, self.tasks[e.dst].pe);
                // DMA queue limits
                let needs_spe_queue = self.is_spe(dst_pe);
                let needs_proxy =
                    self.is_spe(src_pe) && self.spec.kind_of(PeId(dst_pe)) == PeKind::Ppe;
                if needs_spe_queue && self.spe_queue_used[dst_pe] >= self.spec.dma_in_limit() {
                    break;
                }
                if needs_proxy && self.proxy_used[src_pe] >= self.spec.dma_ppe_limit() {
                    break;
                }
                // admit; the endpoints pay the scheduler interruption
                self.pending_interrupt[dst_pe] += self.config.comm_interrupt;
                self.pending_interrupt[src_pe] += 0.5 * self.config.comm_interrupt;
                let e = &mut self.edges[ei];
                e.next_send += 1;
                e.inflight += 1;
                let bytes = e.bytes;
                if needs_spe_queue {
                    self.spe_queue_used[dst_pe] += 1;
                }
                if needs_proxy {
                    self.proxy_used[src_pe] += 1;
                }
                let n = self.spec.n_pes();
                let fid = self.flows.len();
                self.flows.push(Flow {
                    kind: FlowKind::Edge { edge: ei },
                    state: if self.config.dma_latency > 0.0 {
                        FlowState::Latency
                    } else {
                        FlowState::Streaming
                    },
                    bytes_left: bytes,
                    total_bytes: bytes,
                    rate: 0.0,
                    ports: FlowPorts { src_link: Some(src_pe), dst_link: Some(n + dst_pe) },
                    spe_queue: needs_spe_queue.then_some(dst_pe),
                    proxy_queue: needs_proxy.then_some(src_pe),
                });
                self.active_flow_ids.push(fid);
                if self.config.dma_latency > 0.0 {
                    self.push(self.now + self.config.dma_latency, Ev::TransferStart { id: fid });
                } else {
                    flows_changed = true;
                }
            }
        }

        // --- issue memory reads (prefetch window) ---------------------------
        for k in 0..self.tasks.len() {
            let read_bytes = self.g.task(TaskId(k)).read_bytes;
            if read_bytes <= 0.0 {
                continue;
            }
            loop {
                let t = &self.tasks[k];
                let issued = t.reads_done + t.reads_inflight;
                if issued >= self.n_instances + self.g.task(TaskId(k)).peek as u64 {
                    break; // no need to read past the stream end
                }
                if issued >= t.next + self.config.read_ahead {
                    break;
                }
                let pe = t.pe;
                if self.is_spe(pe) && self.spe_queue_used[pe] >= self.spec.dma_in_limit() {
                    break;
                }
                self.tasks[k].reads_inflight += 1;
                self.pending_interrupt[pe] += self.config.comm_interrupt;
                if self.is_spe(pe) {
                    self.spe_queue_used[pe] += 1;
                }
                let n = self.spec.n_pes();
                let fid = self.flows.len();
                self.flows.push(Flow {
                    kind: FlowKind::Read { task: k },
                    state: if self.config.dma_latency > 0.0 {
                        FlowState::Latency
                    } else {
                        FlowState::Streaming
                    },
                    bytes_left: read_bytes,
                    total_bytes: read_bytes,
                    rate: 0.0,
                    ports: FlowPorts { src_link: None, dst_link: Some(n + pe) },
                    spe_queue: self.is_spe(pe).then_some(pe),
                    proxy_queue: None,
                });
                self.active_flow_ids.push(fid);
                if self.config.dma_latency > 0.0 {
                    self.push(self.now + self.config.dma_latency, Ev::TransferStart { id: fid });
                } else {
                    flows_changed = true;
                }
            }
        }

        // --- wake idle PEs ---------------------------------------------------
        for pe in 0..self.spec.n_pes() {
            if !self.pe_busy[pe] {
                if let Some(k) = self.pick_task(pe) {
                    self.start_compute(pe, k);
                }
            }
        }
        flows_changed
    }

    /// The Figure 4 "select a runnable task" step: among this PE's tasks
    /// whose next instance has all inputs, reads and output space, pick
    /// the one whose periodic-schedule slot (firstPeriod + instance) is
    /// oldest, breaking ties by topological rank.
    fn pick_task(&self, pe: usize) -> Option<usize> {
        let mut best: Option<(u64, usize, usize)> = None;
        for &k in &self.pe_tasks[pe] {
            let t = &self.tasks[k];
            if t.next >= self.n_instances {
                continue;
            }
            if !self.ready(k) {
                continue;
            }
            let key = (t.priority + t.next, t.topo_rank, k);
            if best.is_none_or(|b| (key.0, key.1) < (b.0, b.1)) {
                best = Some(key);
            }
        }
        best.map(|(_, _, k)| k)
    }

    fn ready(&self, k: usize) -> bool {
        let t = &self.tasks[k];
        let i = t.next;
        let task = self.g.task(TaskId(k));
        // inputs: instances i..=i+peek arrived on every in-edge
        let need = i + task.peek as u64 + 1;
        for e in self.g.in_edges(TaskId(k)) {
            let es = &self.edges[e.index()];
            let avail = if es.co_mapped { es.produced } else { es.arrived };
            // near the end of the stream the peek window shrinks
            let need_here = need.min(self.n_instances);
            if avail < need_here {
                return false;
            }
        }
        // memory reads done
        if task.read_bytes > 0.0 && t.reads_done < i + 1 {
            return false;
        }
        // output space on every out-edge
        for e in self.g.out_edges(TaskId(k)) {
            let es = &self.edges[e.index()];
            let freed = if es.co_mapped {
                self.tasks[es.dst].next // consumer frees on processing
            } else {
                es.transfers_done
            };
            if es.produced - freed.min(es.produced) >= es.capacity {
                return false;
            }
        }
        // write window
        if task.write_bytes > 0.0 && t.writes_inflight >= self.config.write_window {
            return false;
        }
        true
    }

    fn start_compute(&mut self, pe: usize, k: usize) {
        debug_assert!(!self.pe_busy[pe]);
        let w = self.g.task(TaskId(k)).cost_on(self.spec.kind_of(PeId(pe)));
        let owed = std::mem::take(&mut self.pending_interrupt[pe]);
        let dur = w + self.config.task_overhead + owed;
        self.pe_busy[pe] = true;
        self.push(self.now + dur, Ev::ComputeDone { pe, task: k });
    }

    // ---- main loop ---------------------------------------------------------

    fn run(mut self) -> Result<crate::trace::RunTrace, SimError> {
        // initial pump: sources with no reads start immediately
        let changed = self.pump();
        if changed {
            self.reallocate();
        }
        let mut last_t = 0.0f64;
        while let Some(ev) = self.events.pop() {
            self.events_processed += 1;
            if self.events_processed > self.config.max_events {
                if std::env::var("SIM_DEBUG").is_ok() {
                    eprintln!(
                        "DEBUG t={} gen={} flows_active={} heap={}",
                        self.now,
                        self.gen,
                        self.active_flow_ids.len(),
                        self.events.len()
                    );
                    for &fid in self.active_flow_ids.iter().take(10) {
                        let f = &self.flows[fid];
                        eprintln!(
                            "  flow {fid}: {:?} {:?} bytes_left={} rate={}",
                            f.kind, f.state, f.bytes_left, f.rate
                        );
                    }
                    for (k, t) in self.tasks.iter().enumerate() {
                        eprintln!("  task {k}: next={} reads_done={} reads_inflight={} writes_inflight={}", t.next, t.reads_done, t.reads_inflight, t.writes_inflight);
                    }
                    for (ei, e) in self.edges.iter().enumerate() {
                        eprintln!(
                            "  edge {ei}: prod={} sent={} arr={} tdone={} inflight={} cap={} co={}",
                            e.produced,
                            e.next_send,
                            e.arrived,
                            e.transfers_done,
                            e.inflight,
                            e.capacity,
                            e.co_mapped
                        );
                    }
                }
                return Err(SimError::EventBudget);
            }
            self.now = ev.at.max(last_t);
            self.advance(self.now - last_t);
            last_t = self.now;

            let mut flows_changed = false;
            match ev.kind {
                Ev::ComputeDone { pe, task } => {
                    let i = self.tasks[task].next;
                    self.tasks[task].next = i + 1;
                    self.pe_busy[pe] = false;
                    // production on out-edges
                    for e in self.g.out_edges(TaskId(task)) {
                        let es = &mut self.edges[e.index()];
                        es.produced += 1;
                        if es.co_mapped {
                            es.arrived += 1;
                        }
                    }
                    // memory write
                    let wb = self.g.task(TaskId(task)).write_bytes;
                    if wb > 0.0 {
                        self.tasks[task].writes_inflight += 1;
                        self.pending_interrupt[pe] += self.config.comm_interrupt;
                        // writes are fire-and-forget puts; they take a DMA
                        // slot when one is free but are never delayed by a
                        // full stack (the put is buffered by the MFC)
                        let holds_slot =
                            self.is_spe(pe) && self.spe_queue_used[pe] < self.spec.dma_in_limit();
                        if holds_slot {
                            self.spe_queue_used[pe] += 1;
                        }
                        let fid = self.flows.len();
                        self.flows.push(Flow {
                            kind: FlowKind::Write,
                            state: FlowState::Streaming,
                            bytes_left: wb,
                            total_bytes: wb,
                            rate: 0.0,
                            ports: FlowPorts { src_link: Some(pe), dst_link: None },
                            spe_queue: holds_slot.then_some(pe),
                            proxy_queue: None,
                        });
                        self.active_flow_ids.push(fid);
                        self.write_owner.push((fid, task));
                        flows_changed = true;
                    }
                    // sink bookkeeping
                    if self.tasks[task].is_sink {
                        self.sink_times[task].push(self.now);
                    }
                    flows_changed |= self.pump();
                    if self.done() {
                        return Ok(self.finish());
                    }
                }
                Ev::TransferStart { id } => {
                    if self.flows[id].state == FlowState::Latency {
                        self.flows[id].state = FlowState::Streaming;
                        flows_changed = true;
                    }
                }
                Ev::TransferDone { gen } => {
                    if gen != self.gen {
                        continue; // stale prediction
                    }
                    // complete every streaming flow that has (numerically)
                    // drained; at least one must have
                    let drained: Vec<usize> = self
                        .active_flow_ids
                        .iter()
                        .copied()
                        .filter(|&fid| self.is_drained(&self.flows[fid]))
                        .collect();
                    for fid in drained {
                        self.complete_flow(fid);
                    }
                    flows_changed = true;
                }
            }
            if flows_changed {
                self.reallocate();
            }
        }
        if self.done() {
            Ok(self.finish())
        } else {
            let completed =
                self.sink_ids.iter().map(|&s| self.sink_times[s].len() as u64).min().unwrap_or(0);
            Err(SimError::Stalled { at: self.now, completed })
        }
    }

    fn complete_flow(&mut self, fid: usize) {
        let f = &mut self.flows[fid];
        f.state = FlowState::Done;
        f.bytes_left = 0.0;
        let n = self.spec.n_pes();
        if let Some(src) = f.ports.src_link {
            self.bytes_out[src] += f.total_bytes;
        }
        if let Some(dst) = f.ports.dst_link {
            self.bytes_in[dst - n] += f.total_bytes;
        }
        if let Some(pe) = f.spe_queue.take() {
            self.spe_queue_used[pe] -= 1;
        }
        if let Some(pe) = f.proxy_queue.take() {
            self.proxy_used[pe] -= 1;
        }
        match f.kind {
            FlowKind::Edge { edge } => {
                let es = &mut self.edges[edge];
                es.inflight -= 1;
                es.arrived += 1;
                es.transfers_done += 1;
            }
            FlowKind::Read { task } => {
                self.tasks[task].reads_inflight -= 1;
                self.tasks[task].reads_done += 1;
            }
            FlowKind::Write => {
                if let Some(pos) = self.write_owner.iter().position(|&(id, _)| id == fid) {
                    let (_, task) = self.write_owner.swap_remove(pos);
                    self.tasks[task].writes_inflight -= 1;
                }
            }
        }
        self.active_flow_ids.retain(|&id| id != fid);
        let _ = self.pump();
    }

    fn done(&self) -> bool {
        self.sink_ids.iter().all(|&s| self.sink_times[s].len() as u64 >= self.n_instances)
    }

    fn finish(self) -> crate::trace::RunTrace {
        // instance i leaves the pipeline when ALL sinks have finished it
        let n = self.n_instances as usize;
        let mut completions = vec![0.0f64; n];
        for &s in &self.sink_ids {
            for (i, &t) in self.sink_times[s].iter().take(n).enumerate() {
                completions[i] = completions[i].max(t);
            }
        }
        // per-sink times let multi-application traces attribute
        // throughput to each application's own sinks
        let sink_completions = self
            .sink_ids
            .iter()
            .map(|&s| {
                let mut times = self.sink_times[s].clone();
                times.truncate(n);
                (TaskId(s), times)
            })
            .collect();
        crate::trace::RunTrace {
            completions,
            sink_completions,
            events: self.events_processed,
            bytes_in: self.bytes_in,
            bytes_out: self.bytes_out,
        }
    }
}
