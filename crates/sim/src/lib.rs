//! Flow-level discrete-event simulator of the Cell platform model — the
//! reproduction's stand-in for the paper's PlayStation 3 / QS22 hardware.
//!
//! The simulator executes a mapped streaming application instance by
//! instance, under exactly the resource semantics of paper §2:
//!
//! * each PE processes one task instance at a time (tasks selected like
//!   the Figure 4 scheduler: the runnable task whose periodic-schedule
//!   slot is oldest);
//! * every data transfer occupies the producer's outgoing and the
//!   consumer's incoming interface; concurrent transfers share interface
//!   bandwidth **max-min fairly** (the fluid limit of the bounded
//!   multiport model);
//! * main-memory reads/writes occupy the issuing PE's interfaces
//!   (memory itself is not a bottleneck);
//! * SPEs admit at most 16 concurrent incoming DMAs and at most 8
//!   concurrent SPE→PPE proxy transfers — excess transfers queue;
//! * edge buffers hold `firstPeriod(dst) − firstPeriod(src)` instances on
//!   both the producer and the consumer side (§4.2); producers block when
//!   a buffer is full (back-pressure), consumers free a slot after the
//!   last peek touching it;
//! * configurable overheads ([`SimConfig`]) model the scheduling
//!   framework: a per-activation cost and a per-DMA initiation latency.
//!   With both at zero the simulated steady-state throughput converges to
//!   the model prediction `ρ = 1/T`; with the calibrated defaults it
//!   lands at ≈ 95 % of it, matching §6.4.1.
//!
//! The output is a [`trace::RunTrace`]: per-instance completion times at
//! the sinks, from which the Figure 6 ramp-up curve and the steady-state
//! throughput are derived.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod fair;
pub mod online;
pub mod scenario;
pub mod trace;

pub use engine::{simulate, SimConfig, SimError};
pub use online::{
    replay, replay_concurrent, replay_fleet, AppServed, EventOutcome, EventTrace, FleetSystem,
    IntakeReport, IntakeSystem, OnlineReport, OnlineSystem, TimedEvent, TraceEvent,
};
pub use scenario::{Arrivals, Impairment, Scenario};
pub use trace::RunTrace;

#[cfg(test)]
mod tests;
