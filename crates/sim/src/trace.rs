//! Run traces: per-instance completion times and throughput curves.
//!
//! This is the raw material of Figure 6 ("Throughput achieved depending on
//! the number of instances"): the cumulative throughput after `i`
//! instances is `i / t_i`, which ramps up through the pipeline fill and
//! converges to the steady-state rate.

/// The result of a simulation run.
#[derive(Debug, Clone)]
pub struct RunTrace {
    /// `completions[i]` = time at which instance `i` left the pipeline
    /// (max over sink tasks). Strictly increasing.
    pub completions: Vec<f64>,
    /// Total simulation events processed (cost metric).
    pub events: u64,
    /// Bytes that entered each PE's incoming interface over the run.
    pub bytes_in: Vec<f64>,
    /// Bytes that left each PE's outgoing interface over the run.
    pub bytes_out: Vec<f64>,
}

impl RunTrace {
    /// Number of instances completed.
    pub fn n_instances(&self) -> usize {
        self.completions.len()
    }

    /// Total simulated time.
    pub fn total_time(&self) -> f64 {
        *self.completions.last().expect("non-empty trace")
    }

    /// Cumulative throughput after each instance: `(i+1) / t_i`.
    pub fn cumulative_throughput(&self) -> Vec<f64> {
        self.completions.iter().enumerate().map(|(i, &t)| (i + 1) as f64 / t).collect()
    }

    /// The Figure 6 curve, downsampled: `(instance_count, cumulative
    /// throughput)` at `points` roughly equally spaced instance counts.
    pub fn throughput_curve(&self, points: usize) -> Vec<(u64, f64)> {
        assert!(points >= 2);
        let n = self.completions.len();
        let cum = self.cumulative_throughput();
        let mut out = Vec::with_capacity(points);
        for p in 0..points {
            let idx = ((p as f64 / (points - 1) as f64) * (n - 1) as f64).round() as usize;
            out.push(((idx + 1) as u64, cum[idx]));
        }
        out.dedup_by_key(|&mut (i, _)| i);
        out
    }

    /// Steady-state throughput, measured over the `[0.5·n, 0.85·n]`
    /// instance window: the pipeline-fill transient at the start *and*
    /// the pipeline-drain speed-up at the end (once sources run out of
    /// stream, periods shorten) are both excluded.
    pub fn steady_state_throughput(&self) -> f64 {
        let n = self.completions.len();
        assert!(n >= 8, "need a few instances to estimate steady state");
        let lo = n / 2;
        let hi = ((n as f64 * 0.85) as usize).clamp(lo + 1, n - 1);
        let dt = self.completions[hi] - self.completions[lo];
        (hi - lo) as f64 / dt
    }

    /// Instantaneous period averaged over the last `window` instances.
    pub fn tail_period(&self, window: usize) -> f64 {
        let n = self.completions.len();
        assert!(window >= 1 && window < n);
        (self.completions[n - 1] - self.completions[n - 1 - window]) / window as f64
    }

    /// Average utilisation of each PE's incoming interface over the run
    /// (fraction of `bw`), from the per-PE byte totals.
    pub fn in_utilisation(&self, bw_bytes_per_s: f64) -> Vec<f64> {
        let t = self.total_time();
        self.bytes_in.iter().map(|&b| b / (bw_bytes_per_s * t)).collect()
    }

    /// Average utilisation of each PE's outgoing interface over the run.
    pub fn out_utilisation(&self, bw_bytes_per_s: f64) -> Vec<f64> {
        let t = self.total_time();
        self.bytes_out.iter().map(|&b| b / (bw_bytes_per_s * t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_trace(period: f64, warmup: f64, n: usize) -> RunTrace {
        RunTrace {
            completions: (0..n).map(|i| warmup + period * (i + 1) as f64).collect(),
            events: 0,
            bytes_in: Vec::new(),
            bytes_out: Vec::new(),
        }
    }

    #[test]
    fn steady_state_recovers_period() {
        let tr = linear_trace(0.01, 0.5, 1000);
        let rho = tr.steady_state_throughput();
        assert!((rho - 100.0).abs() < 1e-6, "{rho}");
        assert!((tr.tail_period(100) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn cumulative_ramps_up_to_steady() {
        // warm-up delays early instances, so cumulative throughput starts
        // low and climbs toward 1/period
        let tr = linear_trace(0.01, 1.0, 2000);
        let cum = tr.cumulative_throughput();
        assert!(cum[0] < cum[1999]);
        assert!(cum[1999] < 100.0); // never exceeds the steady rate
        assert!(cum[1999] > 90.0); // but approaches it
    }

    #[test]
    fn curve_downsamples_monotonically() {
        let tr = linear_trace(0.01, 1.0, 500);
        let curve = tr.throughput_curve(20);
        assert!(curve.len() <= 20 && curve.len() >= 2);
        assert_eq!(curve[0].0, 1);
        assert_eq!(curve.last().unwrap().0, 500);
        for w in curve.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
    }
}
