//! Run traces: per-instance completion times and throughput curves.
//!
//! This is the raw material of Figure 6 ("Throughput achieved depending on
//! the number of instances"): the cumulative throughput after `i`
//! instances is `i / t_i`, which ramps up through the pipeline fill and
//! converges to the steady-state rate.
//!
//! Traces also carry **per-sink** completion times, so a composed
//! multi-application workload can attribute measured throughput to each
//! application from its own sinks ([`RunTrace::per_app_throughput`]).

use cellstream_graph::{AppId, TaskId, Workload};

/// The result of a simulation run.
#[derive(Debug, Clone)]
pub struct RunTrace {
    /// `completions[i]` = time at which instance `i` left the pipeline
    /// (max over sink tasks). Strictly increasing.
    pub completions: Vec<f64>,
    /// Per-sink completion times: `(sink task id, times)` with `times[i]`
    /// the completion of instance `i` at that sink. This is what lets a
    /// multi-application trace attribute throughput to each application
    /// ([`RunTrace::per_app_throughput`]) instead of only reporting the
    /// composed aggregate.
    pub sink_completions: Vec<(TaskId, Vec<f64>)>,
    /// Total simulation events processed (cost metric).
    pub events: u64,
    /// Bytes that entered each PE's incoming interface over the run.
    pub bytes_in: Vec<f64>,
    /// Bytes that left each PE's outgoing interface over the run.
    pub bytes_out: Vec<f64>,
}

impl RunTrace {
    /// Number of instances completed.
    pub fn n_instances(&self) -> usize {
        self.completions.len()
    }

    /// Total simulated time.
    pub fn total_time(&self) -> f64 {
        *self.completions.last().expect("non-empty trace")
    }

    /// Cumulative throughput after each instance: `(i+1) / t_i`.
    pub fn cumulative_throughput(&self) -> Vec<f64> {
        self.completions.iter().enumerate().map(|(i, &t)| (i + 1) as f64 / t).collect()
    }

    /// The Figure 6 curve, downsampled: `(instance_count, cumulative
    /// throughput)` at `points` roughly equally spaced instance counts.
    pub fn throughput_curve(&self, points: usize) -> Vec<(u64, f64)> {
        assert!(points >= 2);
        let n = self.completions.len();
        let cum = self.cumulative_throughput();
        let mut out = Vec::with_capacity(points);
        for p in 0..points {
            let idx = ((p as f64 / (points - 1) as f64) * (n - 1) as f64).round() as usize;
            out.push(((idx + 1) as u64, cum[idx]));
        }
        out.dedup_by_key(|&mut (i, _)| i);
        out
    }

    /// Steady-state throughput, measured over the `[0.5·n, 0.85·n]`
    /// instance window: the pipeline-fill transient at the start *and*
    /// the pipeline-drain speed-up at the end (once sources run out of
    /// stream, periods shorten) are both excluded.
    pub fn steady_state_throughput(&self) -> f64 {
        let n = self.completions.len();
        assert!(n >= 8, "need a few instances to estimate steady state");
        let lo = n / 2;
        let hi = ((n as f64 * 0.85) as usize).clamp(lo + 1, n - 1);
        let dt = self.completions[hi] - self.completions[lo];
        (hi - lo) as f64 / dt
    }

    /// Instantaneous period averaged over the last `window` instances.
    pub fn tail_period(&self, window: usize) -> f64 {
        let n = self.completions.len();
        assert!(window >= 1 && window < n);
        (self.completions[n - 1] - self.completions[n - 1 - window]) / window as f64
    }

    /// Completion times of one sink task, when recorded.
    pub fn sink_times(&self, t: TaskId) -> Option<&[f64]> {
        self.sink_completions.iter().find(|(s, _)| *s == t).map(|(_, ts)| ts.as_slice())
    }

    /// Steady-state throughput of a subset of sinks: instance `i` of the
    /// subset completes when *all* listed sinks finish it, measured over
    /// the same `[0.5·n, 0.85·n]` window as
    /// [`steady_state_throughput`](Self::steady_state_throughput).
    /// Degenerate runs (fewer than 8 instances, or a zero-work pipeline
    /// whose window has zero width) report `0.0`, mirroring the
    /// evaluator's `throughput_of` guard. Panics only on a sink id that
    /// was never recorded (a cross-graph mix-up).
    pub fn sink_group_throughput(&self, sinks: &[TaskId]) -> f64 {
        assert!(!sinks.is_empty(), "need at least one sink");
        let times: Vec<&[f64]> = sinks
            .iter()
            .map(|&s| self.sink_times(s).unwrap_or_else(|| panic!("{s} is not a recorded sink")))
            .collect();
        let n = times.iter().map(|t| t.len()).min().expect("non-empty sink set");
        if n < 8 {
            // too few instances for a steady-state estimate; follow the
            // evaluator's degenerate-case convention (0, not a panic —
            // this sits behind Result-returning session APIs)
            return 0.0;
        }
        let joint = |i: usize| times.iter().map(|t| t[i]).fold(0.0f64, f64::max);
        let lo = n / 2;
        let hi = ((n as f64 * 0.85) as usize).clamp(lo + 1, n - 1);
        let dt = joint(hi) - joint(lo);
        if dt > 0.0 {
            // zero-work pipelines complete everything at t = 0: report 0
            // like `throughput_of`, never inf
            (hi - lo) as f64 / dt
        } else {
            0.0
        }
    }

    /// Measured steady-state throughput of each application of a composed
    /// [`Workload`], in **application instances per second**: the rate at
    /// which the application's own sinks complete composed rounds, scaled
    /// by its weight (one round processes `w_i` instances of `A_i`).
    ///
    /// The trace must come from simulating `w.graph()`.
    pub fn per_app_throughput(&self, w: &Workload) -> Vec<f64> {
        w.app_ids().map(|a| self.sink_group_throughput(w.sinks_of(a)) * w.app(a).weight).collect()
    }

    /// Like [`per_app_throughput`](Self::per_app_throughput), indexed
    /// lookup for one application.
    pub fn app_throughput(&self, w: &Workload, a: AppId) -> f64 {
        self.sink_group_throughput(w.sinks_of(a)) * w.app(a).weight
    }

    /// Average utilisation of each PE's incoming interface over the run
    /// (fraction of `bw`), from the per-PE byte totals.
    pub fn in_utilisation(&self, bw_bytes_per_s: f64) -> Vec<f64> {
        let t = self.total_time();
        self.bytes_in.iter().map(|&b| b / (bw_bytes_per_s * t)).collect()
    }

    /// Average utilisation of each PE's outgoing interface over the run.
    pub fn out_utilisation(&self, bw_bytes_per_s: f64) -> Vec<f64> {
        let t = self.total_time();
        self.bytes_out.iter().map(|&b| b / (bw_bytes_per_s * t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_trace(period: f64, warmup: f64, n: usize) -> RunTrace {
        let completions: Vec<f64> = (0..n).map(|i| warmup + period * (i + 1) as f64).collect();
        RunTrace {
            sink_completions: vec![(TaskId(0), completions.clone())],
            completions,
            events: 0,
            bytes_in: Vec::new(),
            bytes_out: Vec::new(),
        }
    }

    #[test]
    fn steady_state_recovers_period() {
        let tr = linear_trace(0.01, 0.5, 1000);
        let rho = tr.steady_state_throughput();
        assert!((rho - 100.0).abs() < 1e-6, "{rho}");
        assert!((tr.tail_period(100) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn cumulative_ramps_up_to_steady() {
        // warm-up delays early instances, so cumulative throughput starts
        // low and climbs toward 1/period
        let tr = linear_trace(0.01, 1.0, 2000);
        let cum = tr.cumulative_throughput();
        assert!(cum[0] < cum[1999]);
        assert!(cum[1999] < 100.0); // never exceeds the steady rate
        assert!(cum[1999] > 90.0); // but approaches it
    }

    #[test]
    fn sink_group_throughput_degenerates_to_zero_not_panic() {
        // short runs and zero-work pipelines report 0 (the throughput_of
        // convention), because this sits behind Result-returning APIs
        let short = linear_trace(0.01, 0.0, 4);
        assert_eq!(short.sink_group_throughput(&[TaskId(0)]), 0.0);
        let zero_work = RunTrace {
            completions: vec![0.0; 20],
            sink_completions: vec![(TaskId(0), vec![0.0; 20])],
            events: 0,
            bytes_in: Vec::new(),
            bytes_out: Vec::new(),
        };
        assert_eq!(zero_work.sink_group_throughput(&[TaskId(0)]), 0.0);
    }

    #[test]
    fn curve_downsamples_monotonically() {
        let tr = linear_trace(0.01, 1.0, 500);
        let curve = tr.throughput_curve(20);
        assert!(curve.len() <= 20 && curve.len() >= 2);
        assert_eq!(curve[0].0, 1);
        assert_eq!(curve.last().unwrap().0, 500);
        for w in curve.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
    }
}
