//! Simulator validation: against the analytic model, conservation laws,
//! determinism and back-pressure.

use crate::engine::{simulate, SimConfig, SimError};
use cellstream_core::{evaluate, Mapping};
use cellstream_daggen::{chain, fork_join, generate, CostParams, DagGenParams};
use cellstream_graph::{StreamGraph, TaskSpec};
use cellstream_platform::{CellSpec, PeId};
use proptest::prelude::*;

fn sim_vs_model(g: &StreamGraph, spec: &CellSpec, mapping: &Mapping, n: u64) -> (f64, f64) {
    let report = evaluate(g, spec, mapping).unwrap();
    assert!(report.is_feasible(), "test mappings must be feasible: {:?}", report.violations);
    let trace = simulate(g, spec, mapping, &SimConfig::ideal(), n).unwrap();
    (trace.steady_state_throughput(), report.throughput)
}

#[test]
fn single_task_matches_model_exactly() {
    let mut b = StreamGraph::builder("one");
    b.add_task(TaskSpec::new("t").uniform_cost(2e-6));
    let g = b.build().unwrap();
    let spec = CellSpec::with_spes(1);
    let (sim, model) = sim_vs_model(&g, &spec, &Mapping::all_on(&g, PeId(0)), 500);
    assert!((sim - model).abs() / model < 1e-6, "sim {sim} model {model}");
}

#[test]
fn ppe_only_chain_matches_model() {
    let g = chain("c", 6, &CostParams::default(), 3);
    let spec = CellSpec::ps3();
    let (sim, model) = sim_vs_model(&g, &spec, &Mapping::all_on(&g, PeId(0)), 800);
    assert!((sim - model).abs() / model < 0.005, "sim {sim} model {model}");
}

#[test]
fn split_chain_matches_model() {
    let g = chain("c", 6, &CostParams::default(), 7);
    let spec = CellSpec::with_spes(2);
    // contiguous halves across PPE + 2 SPEs
    let m = Mapping::new(&g, &spec, vec![PeId(0), PeId(0), PeId(1), PeId(1), PeId(2), PeId(2)])
        .unwrap();
    let (sim, model) = sim_vs_model(&g, &spec, &m, 1500);
    assert!((sim - model).abs() / model < 0.01, "sim {sim} model {model}");
}

#[test]
fn fork_join_matches_model() {
    let g = fork_join("fj", 4, &CostParams::default(), 2);
    let spec = CellSpec::ps3();
    let mut assignment = vec![PeId(0); g.n_tasks()];
    for (i, t) in g.task_ids().enumerate() {
        assignment[t.index()] = spec.pe(i % spec.n_pes());
    }
    let m = Mapping::new(&g, &spec, assignment).unwrap();
    let report = evaluate(&g, &spec, &m).unwrap();
    if report.is_feasible() {
        let (sim, model) = sim_vs_model(&g, &spec, &m, 1500);
        // the fully scattered round-robin mapping pays max-min bandwidth
        // sharing on every edge; the fluid model ignores that contention,
        // so the sim lands a deterministic ~2.8% below it
        assert!((sim - model).abs() / model < 0.035, "sim {sim} model {model}");
    }
}

#[test]
fn peek_tasks_simulate_correctly() {
    // consumer with peek=2 cannot process instance i before producer
    // finished i+2; throughput still matches the model in steady state
    let mut b = StreamGraph::builder("peek");
    let a = b.add_task(TaskSpec::new("a").uniform_cost(1e-6));
    let z = b.add_task(TaskSpec::new("z").uniform_cost(1e-6).peek(2));
    b.add_edge(a, z, 1024.0).unwrap();
    let g = b.build().unwrap();
    let spec = CellSpec::with_spes(1);
    let m = Mapping::new(&g, &spec, vec![PeId(0), PeId(1)]).unwrap();
    let (sim, model) = sim_vs_model(&g, &spec, &m, 1000);
    assert!((sim - model).abs() / model < 0.01, "sim {sim} model {model}");
}

#[test]
fn bandwidth_bound_mapping_matches_model() {
    // huge datum: the wire, not the compute, sets the period
    let mut b = StreamGraph::builder("wire");
    let a = b.add_task(TaskSpec::new("a").uniform_cost(0.5e-6));
    let z = b.add_task(TaskSpec::new("z").uniform_cost(0.5e-6));
    b.add_edge(a, z, 80.0 * 1024.0).unwrap(); // 80 kB -> 3.3 us on the wire
    let g = b.build().unwrap();
    let spec = CellSpec::with_spes(1);
    let m = Mapping::new(&g, &spec, vec![PeId(0), PeId(1)]).unwrap();
    let report = evaluate(&g, &spec, &m).unwrap();
    assert!(matches!(
        report.bottleneck,
        cellstream_core::eval::Bottleneck::IncomingBw(_)
            | cellstream_core::eval::Bottleneck::OutgoingBw(_)
    ));
    let (sim, model) = sim_vs_model(&g, &spec, &m, 1000);
    assert!((sim - model).abs() / model < 0.01, "sim {sim} model {model}");
}

#[test]
fn overheads_cost_throughput_but_not_much() {
    let g = chain("c", 8, &CostParams::default(), 11);
    let spec = CellSpec::with_spes(3);
    let m = Mapping::new(
        &g,
        &spec,
        vec![PeId(0), PeId(0), PeId(1), PeId(1), PeId(2), PeId(2), PeId(3), PeId(3)],
    )
    .unwrap();
    let report = evaluate(&g, &spec, &m).unwrap();
    assert!(report.is_feasible());
    let ideal = simulate(&g, &spec, &m, &SimConfig::ideal(), 1200).unwrap();
    let loaded = simulate(&g, &spec, &m, &SimConfig::calibrated(), 1200).unwrap();
    let r_ideal = ideal.steady_state_throughput();
    let r_loaded = loaded.steady_state_throughput();
    assert!(r_loaded < r_ideal, "overheads must cost something");
    assert!(
        r_loaded > 0.75 * r_ideal,
        "calibrated overheads are small: {} vs {}",
        r_loaded,
        r_ideal
    );
}

#[test]
fn ramp_up_reaches_steady_state_like_figure6() {
    let g = chain("c", 10, &CostParams::default(), 13);
    let spec = CellSpec::with_spes(4);
    let mut assignment = Vec::new();
    for i in 0..10 {
        assignment.push(spec.pe((i / 2) % spec.n_pes()));
    }
    let m = Mapping::new(&g, &spec, assignment).unwrap();
    let report = evaluate(&g, &spec, &m).unwrap();
    assert!(report.is_feasible());
    let trace = simulate(&g, &spec, &m, &SimConfig::ideal(), 3000).unwrap();
    let curve = trace.cumulative_throughput();
    // cumulative throughput is increasing toward the model rate
    assert!(curve[50] < curve[2999]);
    assert!(curve[2999] <= report.throughput * 1.001);
    assert!(curve[2999] >= report.throughput * 0.9, "long runs converge");
}

#[test]
fn determinism() {
    let g = chain("c", 6, &CostParams::default(), 17);
    let spec = CellSpec::with_spes(2);
    let m = Mapping::new(&g, &spec, vec![PeId(0), PeId(1), PeId(1), PeId(2), PeId(2), PeId(0)])
        .unwrap();
    let a = simulate(&g, &spec, &m, &SimConfig::calibrated(), 400).unwrap();
    let b = simulate(&g, &spec, &m, &SimConfig::calibrated(), 400).unwrap();
    assert_eq!(a.completions, b.completions);
}

#[test]
fn completions_strictly_increase() {
    let g = chain("c", 5, &CostParams::default(), 19);
    let spec = CellSpec::with_spes(2);
    let m = Mapping::new(&g, &spec, vec![PeId(0), PeId(1), PeId(2), PeId(1), PeId(0)]).unwrap();
    let trace = simulate(&g, &spec, &m, &SimConfig::ideal(), 300).unwrap();
    for w in trace.completions.windows(2) {
        assert!(w[1] > w[0] - 1e-15, "instance completions must be ordered");
    }
    assert_eq!(trace.n_instances(), 300);
}

#[test]
fn bad_mapping_rejected() {
    let g = chain("c", 3, &CostParams::default(), 1);
    let spec = CellSpec::with_spes(1);
    let other_spec = CellSpec::qs22();
    let m = Mapping::all_on(&g, other_spec.pe(7)); // PE 7 not on `spec`
    assert!(matches!(
        simulate(&g, &spec, &m, &SimConfig::ideal(), 10),
        Err(SimError::BadMapping(_))
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn prop_sim_close_to_model_on_random_feasible_mappings(seed in 0u64..300) {
        let g = generate("p", &DagGenParams {
            n: 12, fat: 0.6, regular: 0.5, density: 0.4, jump: 2,
            costs: CostParams::default(),
        }, seed).unwrap();
        let spec = CellSpec::ps3();
        // derive a feasible mapping from the comm-aware greedy
        let m = {
            // inline greedy: contiguous topo blocks over the PEs
            let blocks = spec.n_pes();
            let per = g.n_tasks().div_ceil(blocks);
            let mut assignment = vec![PeId(0); g.n_tasks()];
            for (rank, t) in g.topo_order().iter().enumerate() {
                assignment[t.index()] = spec.pe((rank / per).min(blocks - 1));
            }
            Mapping::new(&g, &spec, assignment).unwrap()
        };
        let report = evaluate(&g, &spec, &m).unwrap();
        prop_assume!(report.is_feasible());
        let trace = simulate(&g, &spec, &m, &SimConfig::ideal(), 1200).unwrap();
        let sim = trace.steady_state_throughput();
        // The ideal sim can never beat the model (the model's period is a
        // per-resource lower bound)...
        prop_assert!(sim <= report.throughput * 1.01,
            "sim {} must not beat the model {}", sim, report.throughput);
        // ...but it may fall short of it when interfaces saturate: the
        // model assumes ideally scheduled average-rate communication
        // (paper §3.1), while the simulator shares links max-min fairly
        // with firstPeriod-sized buffers. 25% is the worst shortfall
        // observed across the seed space.
        prop_assert!(sim >= report.throughput * 0.75,
            "sim {} too far below model {}", sim, report.throughput);
    }

    #[test]
    fn prop_throughput_monotone_in_instances(n in 50u64..400) {
        let g = chain("c", 4, &CostParams::default(), 23);
        let spec = CellSpec::with_spes(2);
        let m = Mapping::new(&g, &spec, vec![PeId(0), PeId(1), PeId(2), PeId(0)]).unwrap();
        let t1 = simulate(&g, &spec, &m, &SimConfig::ideal(), n).unwrap();
        let t2 = simulate(&g, &spec, &m, &SimConfig::ideal(), n * 2).unwrap();
        // the first n completions are identical regardless of the horizon
        for i in 0..(n as usize).min(20) {
            prop_assert!((t1.completions[i] - t2.completions[i]).abs() < 1e-12);
        }
    }
}

#[test]
fn byte_accounting_conserves_traffic() {
    // total bytes into consumers == total bytes out of producers for the
    // cut edges, plus memory reads/writes on the right sides
    let g = chain("c", 5, &CostParams::default(), 29);
    let spec = CellSpec::with_spes(2);
    let m = Mapping::new(&g, &spec, vec![PeId(0), PeId(1), PeId(1), PeId(2), PeId(0)]).unwrap();
    let n = 400u64;
    let trace = simulate(&g, &spec, &m, &SimConfig::ideal(), n).unwrap();
    let report = evaluate(&g, &spec, &m).unwrap();
    for pe in spec.pes() {
        let i = pe.index();
        // per-instance averages match the model's load accounting
        assert!(
            (trace.bytes_in[i] / n as f64 - report.in_bytes[i]).abs()
                <= report.in_bytes[i] * 0.05 + 1.0,
            "{pe} in: {} vs {}",
            trace.bytes_in[i] / n as f64,
            report.in_bytes[i]
        );
        assert!(
            (trace.bytes_out[i] / n as f64 - report.out_bytes[i]).abs()
                <= report.out_bytes[i] * 0.05 + 1.0,
            "{pe} out: {} vs {}",
            trace.bytes_out[i] / n as f64,
            report.out_bytes[i]
        );
    }
    // utilisation never exceeds 1
    let bw = spec.interface_bw().as_bytes_per_s();
    for u in trace.in_utilisation(bw).into_iter().chain(trace.out_utilisation(bw)) {
        assert!((0.0..=1.0 + 1e-9).contains(&u), "utilisation {u}");
    }
}

#[test]
fn link_never_overallocated_under_heavy_contention() {
    // all-to-all-ish traffic through one consumer PE; the debug assertion
    // inside reallocate() would fire if max-min ever over-allocated
    let mut b = StreamGraph::builder("contend");
    let srcs: Vec<_> =
        (0..6).map(|i| b.add_task(TaskSpec::new(format!("s{i}")).uniform_cost(0.2e-6))).collect();
    let hub = b.add_task(TaskSpec::new("hub").uniform_cost(0.2e-6));
    for &s in &srcs {
        b.add_edge(s, hub, 20_000.0).unwrap();
    }
    let g = b.build().unwrap();
    let spec = CellSpec::qs22();
    // hub on the PPE: its six 40 kB in-buffers would overflow an SPE's
    // local store, and main memory is unconstrained (paper §2.1)
    let mut assignment: Vec<PeId> = (0..6).map(|i| spec.pe(1 + (i % 6))).collect();
    assignment.push(spec.pe(0));
    let m = Mapping::new(&g, &spec, assignment).unwrap();
    let report = evaluate(&g, &spec, &m).unwrap();
    assert!(report.is_feasible());
    let trace = simulate(&g, &spec, &m, &SimConfig::ideal(), 600).unwrap();
    // hub's incoming interface is the bottleneck: 120 kB / 25 GB/s
    let expected_period = 6.0 * 20_000.0 / 25e9;
    let sim_period = 1.0 / trace.steady_state_throughput();
    assert!(
        (sim_period - expected_period).abs() / expected_period < 0.05,
        "sim {} vs expected {}",
        sim_period,
        expected_period
    );
}

// ---------------------------------------------------------------------------
// Error surface: Stalled and EventBudget (previously constructed but never
// exercised by any test)
// ---------------------------------------------------------------------------

#[test]
fn stalled_when_write_window_is_zero() {
    // a writing task can never become ready with write_window = 0: the
    // simulation runs out of events before the target instance count —
    // the Stalled deadlock verdict, not a hang and not a panic
    let mut b = StreamGraph::builder("w");
    b.add_task(TaskSpec::new("t").uniform_cost(1e-6).writes(512.0));
    let g = b.build().unwrap();
    let spec = CellSpec::with_spes(1);
    let cfg = SimConfig { write_window: 0, ..SimConfig::ideal() };
    let err = simulate(&g, &spec, &Mapping::all_on(&g, PeId(0)), &cfg, 50).unwrap_err();
    match err {
        SimError::Stalled { at, completed } => {
            assert_eq!(completed, 0, "nothing can complete");
            assert_eq!(at, 0.0, "stalls before any event fires");
        }
        other => panic!("expected Stalled, got {other:?}"),
    }
}

#[test]
fn stalled_mid_stream_reports_progress() {
    // read_ahead = 0 starves a reading consumer after the initial pump:
    // the producer fills its buffer, then nothing is runnable
    let mut b = StreamGraph::builder("w");
    let s = b.add_task(TaskSpec::new("s").uniform_cost(1e-6));
    let t = b.add_task(TaskSpec::new("t").uniform_cost(1e-6).reads(512.0));
    b.add_edge(s, t, 128.0).unwrap();
    let g = b.build().unwrap();
    let spec = CellSpec::with_spes(1);
    let cfg = SimConfig { read_ahead: 0, ..SimConfig::ideal() };
    let err = simulate(&g, &spec, &Mapping::all_on(&g, PeId(0)), &cfg, 50).unwrap_err();
    assert!(matches!(err, SimError::Stalled { .. }), "{err:?}");
}

#[test]
fn event_budget_exhaustion_is_an_error_not_a_hang() {
    let g = chain("c", 6, &CostParams::default(), 3);
    let spec = CellSpec::ps3();
    let cfg = SimConfig { max_events: 10, ..SimConfig::ideal() };
    let err = simulate(&g, &spec, &Mapping::all_on(&g, PeId(0)), &cfg, 10_000).unwrap_err();
    assert_eq!(err, SimError::EventBudget);
    assert_eq!(err.to_string(), "event budget exhausted");
}

// ---------------------------------------------------------------------------
// Per-application attribution on composed workloads
// ---------------------------------------------------------------------------

#[test]
fn per_app_throughput_matches_model_per_app() {
    use cellstream_graph::{AppId, Workload};
    let a = chain("a", 4, &CostParams::default(), 3);
    let b = chain("b", 3, &CostParams::default(), 5);
    let mut wb = Workload::builder("pair");
    wb.push(&a, 1.0).unwrap();
    wb.push(&b, 2.0).unwrap();
    let w = wb.build().unwrap();
    let spec = CellSpec::ps3();
    let m = Mapping::all_on(w.graph(), PeId(0));
    let report = cellstream_core::evaluate_workload(&w, &spec, &m).unwrap();
    let trace = simulate(w.graph(), &spec, &m, &SimConfig::ideal(), 1000).unwrap();
    let measured = trace.per_app_throughput(&w);
    for (i, &rho) in measured.iter().enumerate() {
        let predicted = report.app(AppId(i)).throughput;
        assert!(
            (rho - predicted).abs() / predicted < 0.01,
            "app {i}: sim {rho} vs model {predicted}"
        );
    }
    // the weighted app runs at twice the rounds rate in instance terms
    assert!((measured[1] / measured[0] - 2.0).abs() < 0.02, "{measured:?}");
}

#[test]
fn sink_completions_cover_every_sink() {
    let g = fork_join("fj", 3, &CostParams::default(), 9);
    let spec = CellSpec::ps3();
    let trace =
        simulate(&g, &spec, &Mapping::all_on(&g, PeId(0)), &SimConfig::ideal(), 64).unwrap();
    let sinks: Vec<_> = g.sinks().collect();
    assert_eq!(trace.sink_completions.len(), sinks.len());
    for s in sinks {
        let times = trace.sink_times(s).expect("every sink recorded");
        assert_eq!(times.len(), 64);
        assert!(times.windows(2).all(|w| w[1] > w[0]), "strictly increasing");
    }
    // the aggregate completion is the max over sinks, instance by instance
    for i in [0usize, 31, 63] {
        let joint = trace.sink_completions.iter().map(|(_, t)| t[i]).fold(0.0f64, f64::max);
        assert_eq!(joint, trace.completions[i]);
    }
}
